//! Deterministic pseudo-random numbers for the AutoNCS reproduction.
//!
//! Every stochastic algorithm in the framework — pattern generation,
//! k-means++ seeding, simulated annealing, crossbar process variation —
//! takes an explicit `u64` seed and must produce bit-identical results on
//! every platform and every release, because the paper's tables and the
//! perf trajectory are regenerated from those seeds. This crate supplies
//! that substrate with zero external dependencies:
//!
//! * [`Rng`] — Xoshiro256++ (Blackman & Vigna), seeded through SplitMix64
//!   so that any `u64` (including 0) expands to a full 256-bit state.
//! * A small distribution surface: uniform `f64`/`bool`, unbiased integer
//!   and float ranges ([`Rng::gen_range`]), Box–Muller Gaussians
//!   ([`Rng::normal`]), Fisher–Yates [`Rng::shuffle`], and [`Rng::choose`].
//!
//! The output streams are pinned by known-answer tests against an
//! independent reference implementation; changing them is a breaking
//! change for every downstream experiment.
//!
//! # Examples
//!
//! ```
//! use ncs_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let p = rng.gen_f64();          // uniform in [0, 1)
//! assert!((0.0..1.0).contains(&p));
//! let i = rng.gen_range(0..10usize);
//! assert!(i < 10);
//! let mut xs = [1, 2, 3, 4, 5];
//! rng.shuffle(&mut xs);
//! assert_eq!(xs.iter().sum::<i32>(), 15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 step: the statistically strong 64-bit mixer used to expand a
/// single `u64` seed into Xoshiro state (and available on its own for
/// cheap seed derivation, e.g. per-trial sub-seeds).
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable Xoshiro256++ generator.
///
/// Not cryptographically secure — this is a simulation RNG chosen for
/// speed, equidistribution, and a trivially portable implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with SplitMix64, as the Xoshiro authors recommend. Distinct seeds
    /// (including 0) yield well-separated streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output of the Xoshiro256++ stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with the full 53 bits of mantissa
    /// randomness (`next_u64 >> 11` scaled by `2⁻⁵³`).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fair coin flip (the top bit of the next output).
    #[inline]
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() >> 63 != 0
    }

    /// Uniform sample from `range`: integer `a..b` / `a..=b` ranges are
    /// unbiased (rejection sampling), float `a..b` ranges are
    /// `a + u·(b−a)` with `u ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Unbiased integer in `[0, span)` by rejection sampling
    /// (`arc4random_uniform` style): draws above the largest multiple of
    /// `span` representable in 64 bits are rejected, so no modulo bias.
    #[inline]
    fn bounded_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        let threshold = span.wrapping_neg() % span;
        loop {
            let v = self.next_u64();
            if v >= threshold {
                return v % span;
            }
        }
    }

    /// Gaussian sample `N(mean, sigma²)` via the Box–Muller transform.
    /// Consumes exactly two uniforms per call (the second transform output
    /// is discarded, keeping call sites' stream positions easy to reason
    /// about).
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        let u1 = self.gen_f64().max(1e-12);
        let u2 = self.gen_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + sigma * z
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for k in (1..slice.len()).rev() {
            let j = self.bounded_u64(k as u64 + 1) as usize;
            slice.swap(k, j);
        }
    }

    /// Uniformly chosen element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let idx = self.bounded_u64(slice.len() as u64) as usize;
            Some(&slice[idx])
        }
    }
}

/// Range types [`Rng::gen_range`] accepts, with the element type they
/// produce. Implemented for half-open and inclusive integer ranges and
/// half-open `f64` ranges.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from(self, rng: &mut Rng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint for tiny spans.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from(self, rng: &mut Rng) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + rng.gen_f64() as f32 * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test: SplitMix64 against the published reference
    /// vectors (seed 0) plus our independently computed seed-42 stream.
    /// If this fails, every seeded experiment in the workspace changes.
    #[test]
    fn splitmix64_known_answers() {
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
        let mut s = 42u64;
        assert_eq!(splitmix64(&mut s), 0xBDD7_3226_2FEB_6E95);
        assert_eq!(splitmix64(&mut s), 0x28EF_E333_B266_F103);
        assert_eq!(splitmix64(&mut s), 0x4752_6757_130F_9F52);
    }

    /// Known-answer test: the Xoshiro256++ stream for three seeds,
    /// cross-checked against an independent Python reference
    /// implementation of Blackman & Vigna's algorithm.
    #[test]
    fn xoshiro_known_answers() {
        let expect: [(u64, [u64; 6]); 3] = [
            (
                0,
                [
                    0x5317_5D61_490B_23DF,
                    0x61DA_6F3D_C380_D507,
                    0x5C0F_DF91_EC9A_7BFC,
                    0x02EE_BF8C_3BBE_5E1A,
                    0x7ECA_04EB_AF4A_5EEA,
                    0x0543_C377_57F0_8D9A,
                ],
            ),
            (
                1,
                [
                    0xCFC5_D07F_6F03_C29B,
                    0xBF42_4132_963F_E08D,
                    0x19A3_7D57_57AA_F520,
                    0xBF08_119F_05CD_56D6,
                    0x2F47_184B_8618_6FA4,
                    0x9729_9FCA_E720_2345,
                ],
            ),
            (
                42,
                [
                    0xD076_4D4F_4476_689F,
                    0x519E_4174_576F_3791,
                    0xFBE0_7CFB_0C24_ED8C,
                    0xB37D_9F60_0CD8_35B8,
                    0xCB23_1C38_7484_6A73,
                    0x968D_9F00_4E50_DE7D,
                ],
            ),
        ];
        for (seed, stream) in expect {
            let mut rng = Rng::seed_from_u64(seed);
            for (i, &want) in stream.iter().enumerate() {
                assert_eq!(rng.next_u64(), want, "seed {seed}, output {i}");
            }
        }
    }

    /// The `f64` stream is a pure function of the u64 stream; pin it too
    /// so a change to the scaling convention cannot slip through.
    #[test]
    fn f64_stream_known_answers() {
        let mut rng = Rng::seed_from_u64(42);
        let expect = [
            0.8143051451229099,
            0.3188210400616611,
            0.9838941681774888,
            0.7011355981347556,
        ];
        for (i, want) in expect.into_iter().enumerate() {
            let got = rng.gen_f64();
            assert_eq!(got, want, "seed 42, f64 output {i}");
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let mut c = Rng::seed_from_u64(8);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn gen_f64_in_unit_interval_and_well_spread() {
        let mut rng = Rng::seed_from_u64(3);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = Rng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| rng.gen_bool()).count();
        assert!((4600..5400).contains(&heads), "heads {heads}");
    }

    #[test]
    fn integer_ranges_cover_exactly_the_range() {
        let mut rng = Rng::seed_from_u64(5);
        let mut seen = [0usize; 7];
        for _ in 0..7_000 {
            seen[rng.gen_range(0..7usize)] += 1;
        }
        for (v, &count) in seen.iter().enumerate() {
            assert!(count > 700, "value {v} drawn only {count} times");
        }
        // Inclusive ranges can hit both endpoints.
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1_000 {
            match rng.gen_range(2..=4usize) {
                2 => lo = true,
                4 => hi = true,
                3 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo && hi);
        // Degenerate singleton inclusive range.
        assert_eq!(rng.gen_range(9..=9u64), 9);
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut rng = Rng::seed_from_u64(6);
        for _ in 0..1_000 {
            let v = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Rng::seed_from_u64(0);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn normal_matches_moments() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = Rng::seed_from_u64(12);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs, sorted,
            "a 50-element shuffle fixing everything is ~impossible"
        );
        for _ in 0..100 {
            assert!(xs.contains(rng.choose(&xs).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let mut single = [9];
        rng.shuffle(&mut single);
        assert_eq!(single, [9]);
    }

    /// Per-seed stream stability for the composed distribution surface:
    /// the exact values the framework's experiments depend on.
    #[test]
    fn distribution_surface_is_stream_stable() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let seq_a = (
            a.gen_f64(),
            a.gen_bool(),
            a.gen_range(0..1000usize),
            a.gen_range(-1.0..1.0),
            a.normal(0.0, 1.0),
        );
        let seq_b = (
            b.gen_f64(),
            b.gen_bool(),
            b.gen_range(0..1000usize),
            b.gen_range(-1.0..1.0),
            b.normal(0.0, 1.0),
        );
        assert_eq!(seq_a, seq_b);
    }
}
