//! Deterministic structured tracing for the AutoNCS workspace.
//!
//! Every flow stage — eigensolver sweeps, k-means/ISC iterations, placer
//! outer loops, router batch commits — can report what it did through
//! three primitives:
//!
//! * [`span`] — an RAII guard measuring the monotonic elapsed time of a
//!   stage (`Open`/`Close` event pair),
//! * [`add`] — a named counter increment,
//! * [`record`] — a named distribution sample (e.g. an iteration count).
//!
//! All three are **gated**: when tracing is disabled (the default) they
//! reduce to a single thread-local flag read and emit nothing, so BENCH
//! numbers are unaffected. Tracing turns on via the `NCS_TRACE`
//! environment variable (`1`/`true`/`on`, sampled once per process) or an
//! in-process [`set_trace_override`] — the programmatic equivalent used
//! by tests and the bench harness, mirroring `ncs_par::set_thread_override`.
//!
//! # Determinism contract
//!
//! Events land in a **per-thread** sink in call order. Instrumentation in
//! this workspace sits exclusively on *serial control paths* — never
//! inside `ncs_par` worker closures (`ncs_par` itself emits its
//! `par.pool_dispatches` / `par.inline_fallbacks` counters from the
//! calling thread, and its dispatch decisions are pure functions of
//! problem size) — so the stream a flow run produces
//! on its calling thread is a pure function of the inputs: bit-identical
//! across runs, across `NCS_THREADS` settings, and immune to scheduler
//! interleaving. The golden-trace and thread-bit-identity tests in
//! `tests/determinism.rs` pin exactly this. (An event emitted from a
//! worker thread would go to that worker's private sink and be dropped
//! with it — it can never corrupt the caller's stream.)
//!
//! Timings (`elapsed_ns`) are the one non-deterministic field; the
//! [`structure`] view strips them so streams can be compared exactly.
//!
//! # Example
//!
//! ```
//! use ncs_trace::{capture, structure, TraceEvent};
//!
//! let ((), events) = capture(|| {
//!     let _s = ncs_trace::span("demo.stage");
//!     ncs_trace::add("demo.widgets", 3);
//! });
//! assert_eq!(
//!     structure(&events),
//!     vec!["open demo.stage span=0 depth=0", "count demo.widgets +3", "close demo.stage span=0"],
//! );
//! assert!(matches!(events[2], TraceEvent::Close { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::Instant;

/// One entry of a trace event stream.
///
/// `Open`/`Close` pairs share a `span` id assigned in open order (reset
/// by [`take_events`]); everything except `elapsed_ns` is deterministic
/// at a fixed seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A span opened.
    Open {
        /// Span id, dense in open order within one drained stream.
        span: usize,
        /// Nesting depth at open time (0 = top level).
        depth: usize,
        /// Static span name, e.g. `"flow.map"`.
        name: &'static str,
    },
    /// A span closed.
    Close {
        /// Id of the matching `Open`.
        span: usize,
        /// Static span name.
        name: &'static str,
        /// Monotonic elapsed nanoseconds between open and close.
        elapsed_ns: u128,
    },
    /// A named counter increment.
    Count {
        /// Counter name, e.g. `"route.commits"`.
        name: &'static str,
        /// Increment (always ≥ 1; zero deltas are dropped at the gate).
        delta: u64,
    },
    /// A named distribution sample.
    Sample {
        /// Distribution name, e.g. `"kmeans.iterations"`.
        name: &'static str,
        /// The sampled value.
        value: u64,
    },
}

/// Thread-local enable override: 0 = none, 1 = forced off, 2 = forced on.
const OVERRIDE_NONE: u8 = 0;
const OVERRIDE_OFF: u8 = 1;
const OVERRIDE_ON: u8 = 2;

thread_local! {
    static OVERRIDE: Cell<u8> = const { Cell::new(OVERRIDE_NONE) };
    static SINK: RefCell<SinkState> = RefCell::new(SinkState::default());
}

#[derive(Default)]
struct SinkState {
    events: Vec<TraceEvent>,
    next_span: usize,
    depth: usize,
}

/// `NCS_TRACE`, resolved once per process.
static ENV_ENABLED: OnceLock<bool> = OnceLock::new();

/// Whether tracing is enabled on the current thread.
///
/// Priority: [`set_trace_override`] (this thread only) > `NCS_TRACE`
/// (read once per process). The disabled path is one thread-local read
/// plus, at most, one `OnceLock` load — cheap enough to leave in the
/// hottest serial control paths.
pub fn enabled() -> bool {
    match OVERRIDE.with(Cell::get) {
        OVERRIDE_OFF => false,
        OVERRIDE_ON => true,
        _ => {
            *ENV_ENABLED.get_or_init(|| resolve_enabled(std::env::var("NCS_TRACE").ok().as_deref()))
        }
    }
}

/// Pure `NCS_TRACE` resolution, separated from process state so it can
/// be unit-tested without touching the environment.
///
/// `"1"`, `"true"` and `"on"` (after trimming) enable tracing; anything
/// else — including unset — leaves it off.
pub fn resolve_enabled(env_value: Option<&str>) -> bool {
    matches!(env_value.map(str::trim), Some("1" | "true" | "on"))
}

/// Installs (`Some(on)`) or removes (`None`) a **thread-local** tracing
/// override that takes priority over `NCS_TRACE`.
///
/// Thread-local on purpose: a test capturing a trace enables only its
/// own thread, so concurrently running tests (and `ncs_par` workers)
/// cannot pollute the captured stream.
pub fn set_trace_override(on: Option<bool>) {
    let v = match on {
        None => OVERRIDE_NONE,
        Some(false) => OVERRIDE_OFF,
        Some(true) => OVERRIDE_ON,
    };
    OVERRIDE.with(|c| c.set(v));
}

/// Returns the current thread's override installed by
/// [`set_trace_override`].
pub fn trace_override() -> Option<bool> {
    match OVERRIDE.with(Cell::get) {
        OVERRIDE_OFF => Some(false),
        OVERRIDE_ON => Some(true),
        _ => None,
    }
}

/// RAII guard returned by [`span`]: emits the matching `Close` event
/// (with monotonic elapsed time) when dropped. Inert when tracing was
/// disabled at open time, so a mid-span override flip never unbalances
/// the stream.
#[must_use = "a span measures the scope it is bound to; binding to _ closes it immediately"]
pub struct Span {
    open: Option<(usize, &'static str, Instant)>,
}

/// Opens a named span on the current thread's event stream.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { open: None };
    }
    let id = SINK.with(|s| {
        let mut s = s.borrow_mut();
        let id = s.next_span;
        s.next_span += 1;
        let depth = s.depth;
        s.depth += 1;
        s.events.push(TraceEvent::Open {
            span: id,
            depth,
            name,
        });
        id
    });
    Span {
        open: Some((id, name, Instant::now())),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((id, name, start)) = self.open.take() {
            let elapsed_ns = start.elapsed().as_nanos();
            SINK.with(|s| {
                let mut s = s.borrow_mut();
                s.depth = s.depth.saturating_sub(1);
                s.events.push(TraceEvent::Close {
                    span: id,
                    name,
                    elapsed_ns,
                });
            });
        }
    }
}

/// Increments the named counter by `delta`. Zero deltas are dropped so
/// "nothing happened" leaves no event behind.
pub fn add(name: &'static str, delta: u64) {
    if delta == 0 || !enabled() {
        return;
    }
    SINK.with(|s| {
        s.borrow_mut()
            .events
            .push(TraceEvent::Count { name, delta });
    });
}

/// Records one sample of the named distribution (iteration counts,
/// sizes, residual-scale integers — anything worth a histogram).
pub fn record(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    SINK.with(|s| {
        s.borrow_mut()
            .events
            .push(TraceEvent::Sample { name, value });
    });
}

/// Drains and returns the current thread's event stream, resetting span
/// ids and depth for the next capture.
pub fn take_events() -> Vec<TraceEvent> {
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        s.next_span = 0;
        s.depth = 0;
        std::mem::take(&mut s.events)
    })
}

/// Runs `f` with tracing force-enabled on this thread and returns its
/// result together with the events it emitted.
///
/// Any stale events left on this thread are discarded first, and the
/// previous override is restored afterwards, so captures compose with
/// the `NCS_TRACE` environment and with each other.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Vec<TraceEvent>) {
    let prev = trace_override();
    set_trace_override(Some(true));
    drop(take_events());
    let out = f();
    let events = take_events();
    set_trace_override(prev);
    (out, events)
}

/// The timing-free view of an event stream: one line per event with
/// names, span ids, depths, counter deltas and sample values — but no
/// `elapsed_ns`. Two runs of a deterministic flow produce **equal**
/// structures even though their timings differ; the determinism tests
/// compare exactly this.
pub fn structure(events: &[TraceEvent]) -> Vec<String> {
    events
        .iter()
        .map(|e| match e {
            TraceEvent::Open { span, depth, name } => {
                format!("open {name} span={span} depth={depth}")
            }
            TraceEvent::Close { span, name, .. } => format!("close {name} span={span}"),
            TraceEvent::Count { name, delta } => format!("count {name} +{delta}"),
            TraceEvent::Sample { name, value } => format!("sample {name} {value}"),
        })
        .collect()
}

/// Aggregate statistics of one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name.
    pub name: &'static str,
    /// Number of `Open`/`Close` pairs seen.
    pub count: u64,
    /// Sum of elapsed nanoseconds over all closes.
    pub total_ns: u128,
}

/// Aggregate total of one counter name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStat {
    /// Counter name.
    pub name: &'static str,
    /// Sum of all deltas.
    pub total: u64,
}

/// Aggregate statistics of one sample distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleStat {
    /// Distribution name.
    pub name: &'static str,
    /// Number of samples.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Sum of all samples.
    pub sum: u64,
}

/// Per-name aggregation of an event stream: span timings, counter
/// totals and sample distributions, each in **first-appearance order**
/// (a deterministic order, unlike any hash map's).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReport {
    /// Span statistics in first-open order.
    pub spans: Vec<SpanStat>,
    /// Counter totals in first-increment order.
    pub counters: Vec<CounterStat>,
    /// Sample distributions in first-sample order.
    pub samples: Vec<SampleStat>,
}

impl TraceReport {
    /// Aggregates an event stream.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut report = TraceReport::default();
        for e in events {
            match e {
                TraceEvent::Open { name, .. } => {
                    if !report.spans.iter().any(|s| s.name == *name) {
                        report.spans.push(SpanStat {
                            name,
                            count: 0,
                            total_ns: 0,
                        });
                    }
                }
                TraceEvent::Close {
                    name, elapsed_ns, ..
                } => {
                    // An Open always precedes its Close in one stream;
                    // a Close drained without its Open (split capture)
                    // still aggregates by materializing the slot here.
                    if !report.spans.iter().any(|s| s.name == *name) {
                        report.spans.push(SpanStat {
                            name,
                            count: 0,
                            total_ns: 0,
                        });
                    }
                    if let Some(slot) = report.spans.iter_mut().find(|s| s.name == *name) {
                        slot.count += 1;
                        slot.total_ns += elapsed_ns;
                    }
                }
                TraceEvent::Count { name, delta } => {
                    match report.counters.iter_mut().find(|c| c.name == *name) {
                        Some(c) => c.total += delta,
                        None => report.counters.push(CounterStat {
                            name,
                            total: *delta,
                        }),
                    }
                }
                TraceEvent::Sample { name, value } => {
                    match report.samples.iter_mut().find(|s| s.name == *name) {
                        Some(s) => {
                            s.count += 1;
                            s.min = s.min.min(*value);
                            s.max = s.max.max(*value);
                            s.sum += value;
                        }
                        None => report.samples.push(SampleStat {
                            name,
                            count: 1,
                            min: *value,
                            max: *value,
                            sum: *value,
                        }),
                    }
                }
            }
        }
        report
    }

    /// Hand-rolled JSON rendering (the workspace has no serializer):
    /// `{"spans": [...], "counters": [...], "samples": [...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}}}",
                s.name, s.count, s.total_ns
            );
        }
        out.push_str("\n  ],\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"total\": {}}}",
                c.name, c.total
            );
        }
        out.push_str("\n  ],\n  \"samples\": [");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"count\": {}, \"min\": {}, \"max\": {}, \"sum\": {}}}",
                s.name, s.count, s.min, s.max, s.sum
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the per-stage summary table the `autoncs` CLI prints
    /// under `NCS_TRACE=1`.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            let _ = writeln!(out, "{:<26} {:>6} {:>12}", "stage", "calls", "total ms");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "{:<26} {:>6} {:>12.3}",
                    s.name,
                    s.count,
                    s.total_ns as f64 / 1e6
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<26} {:>12}", "counter", "total");
            for c in &self.counters {
                let _ = writeln!(out, "{:<26} {:>12}", c.name, c.total);
            }
        }
        if !self.samples.is_empty() {
            let _ = writeln!(
                out,
                "{:<26} {:>6} {:>8} {:>8} {:>10}",
                "sample", "n", "min", "max", "sum"
            );
            for s in &self.samples {
                let _ = writeln!(
                    out,
                    "{:<26} {:>6} {:>8} {:>8} {:>10}",
                    s.name, s.count, s.min, s.max, s.sum
                );
            }
        }
        out
    }

    /// Writes the report as `results/TRACE_<flow>.json` (creating the
    /// `results/` directory if needed, like the bench artifacts) and
    /// returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-write failures.
    pub fn export(&self, flow: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("TRACE_{flow}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every test in this module drives its own thread-local override
    /// and sink, so no cross-test locking is needed.
    #[test]
    fn resolve_enabled_accepts_the_documented_spellings() {
        assert!(resolve_enabled(Some("1")));
        assert!(resolve_enabled(Some("true")));
        assert!(resolve_enabled(Some(" on ")));
        assert!(!resolve_enabled(Some("0")));
        assert!(!resolve_enabled(Some("yes")));
        assert!(!resolve_enabled(Some("")));
        assert!(!resolve_enabled(None));
    }

    #[test]
    fn override_round_trips_and_gates_emission() {
        set_trace_override(Some(false));
        assert_eq!(trace_override(), Some(false));
        add("t.counter", 1);
        let _s = span("t.span");
        drop(take_events());
        set_trace_override(Some(true));
        assert_eq!(trace_override(), Some(true));
        add("t.counter", 2);
        let events = take_events();
        set_trace_override(None);
        assert_eq!(trace_override(), None);
        assert_eq!(
            events,
            vec![TraceEvent::Count {
                name: "t.counter",
                delta: 2
            }]
        );
    }

    #[test]
    fn spans_nest_and_record_monotonic_time() {
        let ((), events) = capture(|| {
            let _outer = span("t.outer");
            {
                let _inner = span("t.inner");
            }
        });
        assert_eq!(
            structure(&events),
            vec![
                "open t.outer span=0 depth=0",
                "open t.inner span=1 depth=1",
                "close t.inner span=1",
                "close t.outer span=0",
            ]
        );
        let elapsed = |name: &str| {
            events
                .iter()
                .find_map(|e| match e {
                    TraceEvent::Close {
                        name: n,
                        elapsed_ns,
                        ..
                    } if *n == name => Some(*elapsed_ns),
                    _ => None,
                })
                .unwrap()
        };
        // Monotonic clock: the outer span contains the inner one.
        assert!(elapsed("t.outer") >= elapsed("t.inner"));
    }

    #[test]
    fn disabled_path_emits_nothing_and_zero_deltas_are_dropped() {
        set_trace_override(Some(false));
        drop(take_events());
        let _s = span("t.ghost");
        add("t.ghost", 7);
        record("t.ghost", 7);
        drop(_s);
        assert!(take_events().is_empty());
        set_trace_override(Some(true));
        add("t.zero", 0);
        assert!(take_events().is_empty(), "zero deltas are dropped");
        set_trace_override(None);
    }

    #[test]
    fn capture_discards_stale_events_and_restores_override() {
        set_trace_override(Some(true));
        add("t.stale", 1);
        let ((), events) = capture(|| add("t.fresh", 1));
        assert_eq!(
            structure(&events),
            vec!["count t.fresh +1"],
            "stale pre-capture events must not leak in"
        );
        assert_eq!(trace_override(), Some(true), "override restored");
        set_trace_override(None);
        drop(take_events());
    }

    #[test]
    fn take_events_resets_span_ids() {
        let ((), first) = capture(|| {
            let _a = span("t.a");
        });
        let ((), second) = capture(|| {
            let _b = span("t.b");
        });
        assert!(matches!(first[0], TraceEvent::Open { span: 0, .. }));
        assert!(
            matches!(second[0], TraceEvent::Open { span: 0, .. }),
            "span ids restart per drained stream"
        );
    }

    #[test]
    fn report_aggregates_in_first_appearance_order() {
        let ((), events) = capture(|| {
            {
                let _s = span("t.stage");
            }
            {
                let _s = span("t.stage");
            }
            add("t.beta", 2);
            add("t.alpha", 1);
            add("t.beta", 3);
            record("t.dist", 4);
            record("t.dist", 10);
            record("t.dist", 7);
        });
        let report = TraceReport::from_events(&events);
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, "t.stage");
        assert_eq!(report.spans[0].count, 2);
        assert_eq!(
            report
                .counters
                .iter()
                .map(|c| (c.name, c.total))
                .collect::<Vec<_>>(),
            vec![("t.beta", 5), ("t.alpha", 1)],
            "counters keep first-increment order"
        );
        assert_eq!(report.samples.len(), 1);
        let s = &report.samples[0];
        assert_eq!((s.count, s.min, s.max, s.sum), (3, 4, 10, 21));
    }

    #[test]
    fn json_is_balanced_and_carries_every_name() {
        let ((), events) = capture(|| {
            let _s = span("t.stage");
            add("t.count", 1);
            record("t.dist", 9);
        });
        let json = TraceReport::from_events(&events).to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "balanced brackets"
        );
        for name in ["t.stage", "t.count", "t.dist"] {
            assert!(json.contains(name), "missing {name}");
        }
        let table = TraceReport::from_events(&events).render_table();
        assert!(table.contains("t.stage") && table.contains("t.count"));
    }

    #[test]
    fn worker_threads_do_not_pollute_the_calling_stream() {
        // The contract behind the per-thread sink: an event emitted on
        // another thread lands in that thread's sink, not ours.
        let ((), events) = capture(|| {
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    set_trace_override(Some(true));
                    add("t.worker", 1);
                    drop(take_events());
                });
            });
            add("t.main", 1);
        });
        assert_eq!(structure(&events), vec!["count t.main +1"]);
    }
}
