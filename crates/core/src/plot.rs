//! Plot emitters: portable-anymap (PGM/PPM) renderings of connection
//! matrices, clusterings, placements and congestion maps.
//!
//! The paper's figures are MATLAB scatter/heat plots; this module produces
//! the same visual artifacts as simple binary-format image files that any
//! viewer opens, with no plotting dependency. The `repro` harness writes
//! them next to its CSV output.

use std::io::{self, Write};

use ncs_cluster::HybridMapping;
use ncs_net::ConnectionMatrix;
use ncs_phys::{CongestionMap, Netlist, Placement};
use ncs_tech::CellKind;

/// An RGB raster that serializes as binary PPM (P6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Raster {
    width: usize,
    height: usize,
    pixels: Vec<[u8; 3]>,
}

impl Raster {
    /// Creates a raster filled with `background`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize, background: [u8; 3]) -> Self {
        assert!(
            width > 0 && height > 0,
            "raster dimensions must be positive"
        );
        Raster {
            width,
            height,
            pixels: vec![background; width * height],
        }
    }

    /// Raster width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Raster height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Reads a pixel (out-of-range coordinates return black).
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x]
        } else {
            [0, 0, 0]
        }
    }

    /// Sets a pixel; out-of-range coordinates are ignored.
    pub fn set(&mut self, x: usize, y: usize, color: [u8; 3]) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = color;
        }
    }

    /// Fills an axis-aligned rectangle (clipped to the raster).
    pub fn fill_rect(&mut self, x0: usize, y0: usize, x1: usize, y1: usize, color: [u8; 3]) {
        for y in y0..y1.min(self.height) {
            for x in x0..x1.min(self.width) {
                self.pixels[y * self.width + x] = color;
            }
        }
    }

    /// Draws a 1-pixel rectangle outline (clipped).
    pub fn outline_rect(&mut self, x0: usize, y0: usize, x1: usize, y1: usize, color: [u8; 3]) {
        if x1 == 0 || y1 == 0 {
            return;
        }
        for x in x0..x1.min(self.width) {
            self.set(x, y0, color);
            self.set(x, y1 - 1, color);
        }
        for y in y0..y1.min(self.height) {
            self.set(x0, y, color);
            self.set(x1 - 1, y, color);
        }
    }

    /// Writes the raster as binary PPM (P6).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer (a `&mut` reference can be
    /// passed for writers the caller wants to keep).
    pub fn write_ppm<W: Write>(&self, mut w: W) -> io::Result<()> {
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        for p in &self.pixels {
            w.write_all(p)?;
        }
        Ok(())
    }
}

/// White background, black connection dots — Figure 3(a)-style rendering
/// of a raw connection matrix.
pub fn connection_matrix(net: &ConnectionMatrix) -> Raster {
    let n = net.neurons();
    let mut raster = Raster::new(n, n, [255, 255, 255]);
    for (i, j) in net.iter() {
        raster.set(j, i, [0, 0, 0]);
    }
    raster
}

/// Figure 3(b)/4-style rendering: neurons reordered so each cluster is
/// contiguous, connections drawn black, cluster extents outlined in red.
///
/// `clusters` is a list of neuron groups (as produced by
/// [`Clustering::iter`](ncs_cluster::Clustering)); neurons missing from
/// every cluster are appended at the end of the ordering.
pub fn clustered_matrix<'a, I>(net: &ConnectionMatrix, clusters: I) -> Raster
where
    I: IntoIterator<Item = &'a [usize]>,
{
    let n = net.neurons();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut bounds = Vec::new();
    for members in clusters {
        let start = order.len();
        order.extend_from_slice(members);
        bounds.push((start, order.len()));
    }
    let mut seen = vec![false; n];
    for &m in &order {
        seen[m] = true;
    }
    for (m, &was_seen) in seen.iter().enumerate() {
        if !was_seen {
            order.push(m);
        }
    }
    let mut position = vec![0usize; n];
    for (pos, &m) in order.iter().enumerate() {
        position[m] = pos;
    }
    let mut raster = Raster::new(n, n, [255, 255, 255]);
    // Outlines first so connection pixels stay visible on top of them.
    for &(s, e) in &bounds {
        raster.outline_rect(s, s, e, e, [220, 30, 30]);
    }
    for (i, j) in net.iter() {
        raster.set(position[j], position[i], [0, 0, 0]);
    }
    raster
}

/// Figure 6-style rendering of an ISC mapping: connections inside each
/// crossbar in black with red cluster outlines, outliers in light gray.
pub fn mapping_matrix(net: &ConnectionMatrix, mapping: &HybridMapping) -> Raster {
    let n = net.neurons();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut bounds = Vec::new();
    let mut seen = vec![false; n];
    for xbar in mapping.crossbars() {
        let start = order.len();
        for &m in &xbar.inputs {
            if !seen[m] {
                seen[m] = true;
                order.push(m);
            }
        }
        bounds.push((start, order.len()));
    }
    for (m, &was_seen) in seen.clone().iter().enumerate() {
        if !was_seen {
            order.push(m);
        }
    }
    let mut position = vec![0usize; n];
    for (pos, &m) in order.iter().enumerate() {
        position[m] = pos;
    }
    let mut raster = Raster::new(n, n, [255, 255, 255]);
    // Outlines first so connection pixels stay visible on top of them.
    for &(s, e) in &bounds {
        raster.outline_rect(s, s, e, e, [220, 30, 30]);
    }
    for &(f, t) in mapping.outliers() {
        raster.set(position[t], position[f], [170, 170, 170]);
    }
    for xbar in mapping.crossbars() {
        for &(f, t) in &xbar.connections {
            raster.set(position[t], position[f], [0, 0, 0]);
        }
    }
    raster
}

/// Figure 10(a)/(c)-style placement plot: crossbars as blue squares
/// (darker = larger), neurons green, synapses gray, on a white die.
pub fn placement_plot(netlist: &Netlist, placement: &Placement, pixels_per_um: f64) -> Raster {
    let (x0, y0, x1, y1) = placement.bounding_box(netlist);
    let width = (((x1 - x0) * pixels_per_um).ceil() as usize + 2).max(2);
    let height = (((y1 - y0) * pixels_per_um).ceil() as usize + 2).max(2);
    let mut raster = Raster::new(width, height, [255, 255, 255]);
    let to_px = |x: f64, y: f64| -> (usize, usize) {
        (
            (((x - x0) * pixels_per_um).round().max(0.0)) as usize,
            (((y - y0) * pixels_per_um).round().max(0.0)) as usize,
        )
    };
    for cell in &netlist.cells {
        let cx = placement.x[cell.id];
        let cy = placement.y[cell.id];
        let (px0, py0) = to_px(cx - cell.dims.width / 2.0, cy - cell.dims.height / 2.0);
        let (px1, py1) = to_px(cx + cell.dims.width / 2.0, cy + cell.dims.height / 2.0);
        let color = match cell.kind {
            CellKind::Crossbar(s) => {
                let shade = 200u8.saturating_sub((s as u8).saturating_mul(2));
                [shade, shade, 255]
            }
            CellKind::Neuron => [40, 170, 60],
            CellKind::Synapse => [150, 150, 150],
        };
        raster.fill_rect(px0, py0, px1.max(px0 + 1), py1.max(py0 + 1), color);
    }
    raster
}

/// Figure 10(b)/(d)-style congestion heatmap: white (no wires) through
/// yellow to red (the most congested bin).
pub fn congestion_heatmap(map: &CongestionMap) -> Raster {
    let mut raster = Raster::new(map.cols.max(1), map.rows.max(1), [255, 255, 255]);
    let max = map.max_usage().max(1) as f64;
    for row in 0..map.rows {
        for col in 0..map.cols {
            let u = map.at(col, row);
            if u == 0 {
                continue;
            }
            let t = (u as f64 / max).clamp(0.0, 1.0);
            // White -> yellow -> red ramp.
            let (r, g, b) = if t < 0.5 {
                (255.0, 255.0 - 60.0 * (t * 2.0), 240.0 * (1.0 - t * 2.0))
            } else {
                (255.0, 195.0 * (1.0 - (t - 0.5) * 2.0), 0.0)
            };
            raster.set(col, row, [r as u8, g as u8, b as u8]);
        }
    }
    raster
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_cluster::{CrossbarAssignment, HybridMapping};

    #[test]
    fn raster_roundtrip_and_bounds() {
        let mut r = Raster::new(4, 3, [255, 255, 255]);
        r.set(1, 2, [1, 2, 3]);
        assert_eq!(r.get(1, 2), [1, 2, 3]);
        assert_eq!(r.get(99, 0), [0, 0, 0]);
        r.set(99, 99, [9, 9, 9]); // ignored
        let mut buf = Vec::new();
        r.write_ppm(&mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(buf.len(), 11 + 4 * 3 * 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_raster_panics() {
        Raster::new(0, 4, [0, 0, 0]);
    }

    #[test]
    fn placement_plot_renders_every_cell_class() {
        use ncs_phys::{place, Netlist, PlacerOptions};
        use ncs_tech::TechnologyModel;
        let xbar = CrossbarAssignment::new(vec![0], vec![0], 16, vec![(0, 0)]);
        let mapping = HybridMapping::new(2, vec![xbar], vec![(0, 1)]);
        let nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        let p = place(&nl, &PlacerOptions::fast()).unwrap();
        let r = placement_plot(&nl, &p, 2.0);
        assert!(r.width() > 1 && r.height() > 1);
        // Count pixels of each class: crossbar (bluish), neuron (green),
        // synapse (gray) must all appear.
        let mut blue = 0;
        let mut green = 0;
        let mut gray = 0;
        for y in 0..r.height() {
            for x in 0..r.width() {
                match r.get(x, y) {
                    [_, _, 255] => blue += 1,
                    [40, 170, 60] => green += 1,
                    [150, 150, 150] => gray += 1,
                    _ => {}
                }
            }
        }
        assert!(blue > 0, "crossbar pixels missing");
        assert!(green > 0, "neuron pixels missing");
        assert!(gray > 0, "synapse pixels missing");
        // The big crossbar covers more pixels than the tiny synapse.
        assert!(blue > gray);
    }

    #[test]
    fn fill_and_outline_clip_to_bounds() {
        let mut r = Raster::new(5, 5, [255, 255, 255]);
        r.fill_rect(3, 3, 100, 100, [1, 1, 1]);
        assert_eq!(r.get(4, 4), [1, 1, 1]);
        r.outline_rect(0, 0, 100, 100, [2, 2, 2]);
        assert_eq!(r.get(0, 3), [2, 2, 2]);
        // Degenerate outlines are no-ops.
        let before = r.clone();
        r.outline_rect(2, 2, 0, 0, [9, 9, 9]);
        assert_eq!(r, before);
    }

    #[test]
    fn connection_matrix_marks_connections() {
        let net = ConnectionMatrix::from_pairs(5, [(1, 3)]).unwrap();
        let r = connection_matrix(&net);
        assert_eq!(r.get(3, 1), [0, 0, 0]);
        assert_eq!(r.get(1, 3), [255, 255, 255]);
    }

    #[test]
    fn clustered_matrix_reorders_members_contiguously() {
        let net = ConnectionMatrix::from_pairs(4, [(0, 2), (2, 0)]).unwrap();
        // Cluster {0, 2} occupies positions 0..2 after reordering.
        let clusters: Vec<&[usize]> = vec![&[0, 2][..]];
        let r = clustered_matrix(&net, clusters);
        // The (0,2) connection lands inside the top-left 2x2 block.
        let found = (0..2).any(|y| (0..2).any(|x| r.get(x, y) == [0, 0, 0]));
        assert!(found);
        // Outline pixels are red.
        assert_eq!(r.get(0, 0), [220, 30, 30]);
    }

    #[test]
    fn mapping_matrix_separates_outliers() {
        let net = ConnectionMatrix::from_pairs(4, [(0, 1), (2, 3)]).unwrap();
        let xbar = CrossbarAssignment::new(vec![0, 1], vec![0, 1], 16, vec![(0, 1)]);
        let mapping = HybridMapping::new(4, vec![xbar], vec![(2, 3)]);
        let r = mapping_matrix(&net, &mapping);
        let mut black = 0;
        let mut gray = 0;
        for y in 0..4 {
            for x in 0..4 {
                match r.get(x, y) {
                    [0, 0, 0] => black += 1,
                    [170, 170, 170] => gray += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(black, 1);
        assert_eq!(gray, 1);
    }

    #[test]
    fn congestion_colors_scale_with_usage() {
        let map = CongestionMap {
            cols: 2,
            rows: 1,
            theta: 1.0,
            usage: vec![0, 10],
        };
        let r = congestion_heatmap(&map);
        assert_eq!(r.get(0, 0), [255, 255, 255]);
        let hot = r.get(1, 0);
        assert_eq!(hot[0], 255);
        assert!(hot[1] < 50, "max-usage bin should be red, got {hot:?}");
    }
}
