//! **AutoNCS** — an EDA framework for large-scale hybrid neuromorphic
//! computing systems (reproduction of the DAC 2015 paper).
//!
//! Given a sparse neural network (a binary connection matrix), AutoNCS:
//!
//! 1. iteratively clusters the connections with spectral clustering
//!    (MSC + GCP + ISC) so that dense groups map onto fixed-size memristor
//!    crossbars while stragglers become discrete synapses,
//! 2. generates a mixed-size netlist (crossbars, neurons, synapses) with
//!    RC-weighted wires,
//! 3. places it analytically (weighted-average wirelength + density
//!    penalty, conjugate gradient) and routes it with virtual-capacity
//!    maze routing, and
//! 4. reports wirelength, area and delay against the brute-force
//!    max-size-crossbar baseline ("FullCro").
//!
//! # Quickstart
//!
//! ```
//! use autoncs::AutoNcs;
//! use ncs_net::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small sparse network with hidden cluster structure.
//! let net = generators::planted_clusters(96, 4, 0.4, 0.01, 7)?.0;
//!
//! // Run the full flow (clustering + physical design) and compare with
//! // the FullCro baseline.
//! let report = AutoNcs::fast().compare(&net)?;
//! assert!(report.autoncs.mapping.verify_covers(&net).is_ok());
//! println!("wirelength reduction: {:.1}%", report.wirelength_reduction() * 100.0);
//! # Ok(())
//! # }
//! ```
//!
//! The crate re-exports the substrate crates under short names so most
//! users only need `autoncs`:
//! [`net`] (networks, Hopfield testbenches), [`cluster`] (MSC/GCP/ISC),
//! [`tech`] (technology models), [`phys`] (placement & routing),
//! [`linalg`] (numeric kernels).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow;
pub mod hw;
pub mod plot;
mod report;

pub use flow::{AutoNcs, AutoNcsBuilder, FlowError, FlowResult};
pub use report::{ComparisonReport, CostTable, CostTableRow};

/// Re-export of [`ncs_cluster`].
pub use ncs_cluster as cluster;
/// Re-export of [`ncs_linalg`].
pub use ncs_linalg as linalg;
/// Re-export of [`ncs_net`].
pub use ncs_net as net;
/// Re-export of [`ncs_phys`].
pub use ncs_phys as phys;
/// Re-export of [`ncs_serve`] (the batched flow service).
pub use ncs_serve as serve;
/// Re-export of [`ncs_tech`].
pub use ncs_tech as tech;
/// Re-export of [`ncs_xbar`].
pub use ncs_xbar as xbar;
