use std::error::Error;
use std::fmt;

use ncs_cluster::{full_crossbar, ClusterError, HybridMapping, Isc, IscOptions, IscTrace};
use ncs_net::ConnectionMatrix;
use ncs_phys::{implement_mapping, ImplementOptions, PhysError, PhysicalDesign};
use ncs_tech::TechnologyModel;

use crate::ComparisonReport;

/// Errors from the end-to-end AutoNCS flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// The clustering stage failed.
    Cluster(ClusterError),
    /// The physical-design stage failed.
    Phys(PhysError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Cluster(e) => write!(f, "clustering stage failed: {e}"),
            FlowError::Phys(e) => write!(f, "physical design stage failed: {e}"),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Cluster(e) => Some(e),
            FlowError::Phys(e) => Some(e),
        }
    }
}

impl From<ClusterError> for FlowError {
    fn from(e: ClusterError) -> Self {
        FlowError::Cluster(e)
    }
}

impl From<PhysError> for FlowError {
    fn from(e: PhysError) -> Self {
        FlowError::Phys(e)
    }
}

/// Result of running a flow (AutoNCS or baseline) on one network.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The hybrid crossbar/synapse mapping.
    pub mapping: HybridMapping,
    /// The ISC iteration trace (empty for the baseline flow).
    pub trace: Option<IscTrace>,
    /// The placed-and-routed physical design with its cost.
    pub design: PhysicalDesign,
}

/// The AutoNCS framework: configuration plus the Figure 2 flow.
///
/// Construct with [`AutoNcs::new`] (paper defaults), [`AutoNcs::fast`]
/// (reduced effort for tests/examples) or [`AutoNcs::builder`].
#[derive(Debug, Clone)]
pub struct AutoNcs {
    isc: IscOptions,
    implement: ImplementOptions,
    tech: TechnologyModel,
}

impl AutoNcs {
    /// Paper-default configuration: crossbar sizes 16..=64 step 4,
    /// baseline-derived utilization threshold, top-25 % CP selection,
    /// 45 nm technology model, α = β = δ = 1.
    pub fn new() -> Self {
        AutoNcs {
            isc: IscOptions::default(),
            implement: ImplementOptions::default(),
            tech: TechnologyModel::nm45(),
        }
    }

    /// Reduced-effort configuration (fewer placer iterations) for tests
    /// and doc examples.
    pub fn fast() -> Self {
        AutoNcs {
            implement: ImplementOptions::fast(),
            ..Self::new()
        }
    }

    /// Starts a builder for custom configurations.
    pub fn builder() -> AutoNcsBuilder {
        AutoNcsBuilder::default()
    }

    /// The ISC options in effect.
    pub fn isc_options(&self) -> &IscOptions {
        &self.isc
    }

    /// The physical-design options in effect.
    pub fn implement_options(&self) -> &ImplementOptions {
        &self.implement
    }

    /// The technology model in effect.
    pub fn technology(&self) -> &TechnologyModel {
        &self.tech
    }

    /// Stage 1 only: cluster the network into a hybrid mapping (with the
    /// per-iteration ISC trace).
    ///
    /// # Errors
    ///
    /// Propagates clustering failures.
    pub fn map(&self, net: &ConnectionMatrix) -> Result<(HybridMapping, IscTrace), FlowError> {
        let _span = ncs_trace::span("flow.map");
        Ok(Isc::new(self.isc.clone()).run_traced(net)?)
    }

    /// Stage 2 only: place, route and cost a hybrid mapping. Factored
    /// out of [`AutoNcs::run`] so the stage is callable (and cacheable)
    /// on its own — the `ncs-serve` daemon keys its content-addressed
    /// cache per stage.
    ///
    /// # Errors
    ///
    /// Propagates physical-design failures.
    pub fn implement(&self, mapping: &HybridMapping) -> Result<PhysicalDesign, FlowError> {
        let _span = ncs_trace::span("flow.implement");
        Ok(implement_mapping(mapping, &self.tech, &self.implement)?)
    }

    /// The full AutoNCS flow: ISC clustering followed by placement,
    /// routing and cost evaluation.
    ///
    /// # Errors
    ///
    /// Propagates failures from either stage.
    pub fn run(&self, net: &ConnectionMatrix) -> Result<FlowResult, FlowError> {
        let _span = ncs_trace::span("flow.run");
        let (mapping, trace) = self.map(net)?;
        let design = self.implement(&mapping)?;
        Ok(FlowResult {
            mapping,
            trace: Some(trace),
            design,
        })
    }

    /// The FullCro baseline flow: map everything onto maximum-size
    /// crossbars, then place and route.
    ///
    /// # Errors
    ///
    /// Propagates failures from either stage.
    pub fn baseline(&self, net: &ConnectionMatrix) -> Result<FlowResult, FlowError> {
        let _span = ncs_trace::span("flow.baseline");
        let mapping = full_crossbar(net, self.isc.sizes.max())?;
        let design = self.implement(&mapping)?;
        Ok(FlowResult {
            mapping,
            trace: None,
            design,
        })
    }

    /// Runs both flows and assembles the Table 1-style comparison.
    ///
    /// # Errors
    ///
    /// Propagates failures from either flow.
    pub fn compare(&self, net: &ConnectionMatrix) -> Result<ComparisonReport, FlowError> {
        let autoncs = self.run(net)?;
        let baseline = self.baseline(net)?;
        Ok(ComparisonReport { autoncs, baseline })
    }
}

impl Default for AutoNcs {
    fn default() -> Self {
        Self::new()
    }
}

/// Builder for [`AutoNcs`] configurations.
///
/// # Examples
///
/// ```
/// use autoncs::AutoNcs;
/// use ncs_cluster::{CrossbarSizeSet, IscOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let framework = AutoNcs::builder()
///     .isc_options(IscOptions {
///         sizes: CrossbarSizeSet::new([16, 32, 64])?,
///         seed: 7,
///         ..IscOptions::default()
///     })
///     .build();
/// assert_eq!(framework.isc_options().sizes.max(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct AutoNcsBuilder {
    isc: Option<IscOptions>,
    implement: Option<ImplementOptions>,
    tech: Option<TechnologyModel>,
}

impl AutoNcsBuilder {
    /// Overrides the ISC clustering options.
    pub fn isc_options(mut self, isc: IscOptions) -> Self {
        self.isc = Some(isc);
        self
    }

    /// Overrides the placement/routing/cost options.
    pub fn implement_options(mut self, implement: ImplementOptions) -> Self {
        self.implement = Some(implement);
        self
    }

    /// Overrides the technology model.
    pub fn technology(mut self, tech: TechnologyModel) -> Self {
        self.tech = Some(tech);
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> AutoNcs {
        AutoNcs {
            isc: self.isc.unwrap_or_default(),
            implement: self.implement.unwrap_or_default(),
            tech: self.tech.unwrap_or_else(TechnologyModel::nm45),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_net::generators;

    #[test]
    fn fast_flow_end_to_end() {
        let net = generators::planted_clusters(64, 4, 0.4, 0.02, 5).unwrap().0;
        let result = AutoNcs::fast().run(&net).unwrap();
        result.mapping.verify_covers(&net).unwrap();
        assert!(result.trace.is_some());
        assert!(result.design.cost.wirelength_um > 0.0);
    }

    #[test]
    fn baseline_flow_has_no_trace() {
        let net = generators::uniform_random(40, 0.06, 3).unwrap();
        let result = AutoNcs::fast().baseline(&net).unwrap();
        assert!(result.trace.is_none());
        assert!(result.mapping.outliers().is_empty());
    }

    #[test]
    fn factored_implement_stage_matches_the_composed_run() {
        let net = generators::planted_clusters(48, 3, 0.4, 0.02, 7).unwrap().0;
        let framework = AutoNcs::fast();
        let (mapping, _) = framework.map(&net).unwrap();
        let staged = framework.implement(&mapping).unwrap();
        let composed = framework.run(&net).unwrap().design;
        assert_eq!(staged.placement, composed.placement);
        assert_eq!(staged.cost.total(), composed.cost.total());
    }

    #[test]
    fn builder_overrides_options() {
        let framework = AutoNcs::builder()
            .isc_options(IscOptions {
                seed: 99,
                ..IscOptions::default()
            })
            .build();
        assert_eq!(framework.isc_options().seed, 99);
        assert_eq!(AutoNcs::default().isc_options().seed, 0);
    }

    #[test]
    fn flow_error_wraps_sources() {
        let e: FlowError = ClusterError::EmptySizeSet.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("clustering"));
        let e: FlowError = PhysError::EmptyNetlist.into();
        assert!(e.to_string().contains("physical"));
    }
}
