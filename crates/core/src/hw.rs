//! Hardware-in-the-loop recall: runs Hopfield dynamics *through* the
//! hybrid crossbar/synapse implementation produced by ISC, using the
//! analog device model from [`ncs_xbar`].
//!
//! The paper maps networks to hardware but reports functionality only via
//! the software recognition rate (Section 4.1). This module closes the
//! loop: every crossbar's contribution to the neuron input field is
//! computed by a programmed [`SignedCrossbar`] (optionally with IR-drop
//! and process variation), discrete synapses are ideal point-to-point
//! weights, and recall proceeds with the usual sign dynamics. The
//! recognition rate measured this way validates that the *mapping*
//! preserves network function, not just topology.
//!
//! # Examples
//!
//! ```
//! use autoncs::hw::{HardwareModel, EvaluationMode};
//! use autoncs::AutoNcs;
//! use ncs_net::{Testbench, TestbenchSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = TestbenchSpec { id: 50, patterns: 3, neurons: 80, sparsity: 0.85 };
//! let tb = Testbench::from_spec(spec, 7)?;
//! let (mapping, _) = AutoNcs::new().map(tb.network())?;
//! let hardware = HardwareModel::build(
//!     tb.hopfield(),
//!     &mapping,
//!     &ncs_xbar::DeviceModel::default(),
//!     EvaluationMode::Ideal,
//! )?;
//! let report = hardware.recognition_rate(tb.patterns(), 0.02, 0.9, 99)?;
//! assert!(report.rate() > 0.5);
//! # Ok(())
//! # }
//! ```

use ncs_cluster::HybridMapping;
use ncs_net::{HopfieldNetwork, NetError, PatternSet, RecallOutcome, RecognitionReport};
use ncs_xbar::{DeviceModel, SignedCrossbar, XbarError};

use std::error::Error;
use std::fmt;

/// How crossbar outputs are computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvaluationMode {
    /// Ideal analog dot products (fast; still honours programmed
    /// conductance quantization and any variation applied).
    Ideal,
    /// Full IR-drop nodal analysis per crossbar per step (slow; use on
    /// small networks).
    IrDrop,
    /// Ideal evaluation on conductances perturbed by lognormal process
    /// variation with the given sigma and seed.
    IdealWithVariation {
        /// Lognormal sigma.
        sigma: f64,
        /// Variation seed.
        seed: u64,
    },
}

/// Errors from hardware-model construction or recall.
#[derive(Debug)]
#[non_exhaustive]
pub enum HwError {
    /// Device-model or evaluation failure.
    Xbar(XbarError),
    /// Network-substrate failure.
    Net(NetError),
    /// The mapping and the Hopfield network disagree on the neuron count.
    DimensionMismatch {
        /// Neurons in the Hopfield network.
        network: usize,
        /// Neurons in the mapping.
        mapping: usize,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::Xbar(e) => write!(f, "crossbar failure: {e}"),
            HwError::Net(e) => write!(f, "network failure: {e}"),
            HwError::DimensionMismatch { network, mapping } => write!(
                f,
                "hopfield network has {network} neurons but the mapping covers {mapping}"
            ),
        }
    }
}

impl Error for HwError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HwError::Xbar(e) => Some(e),
            HwError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XbarError> for HwError {
    fn from(e: XbarError) -> Self {
        HwError::Xbar(e)
    }
}

impl From<NetError> for HwError {
    fn from(e: NetError) -> Self {
        HwError::Net(e)
    }
}

/// One programmed crossbar plus the index maps into the global neuron
/// space.
#[derive(Debug, Clone)]
struct MappedCrossbar {
    inputs: Vec<usize>,
    outputs: Vec<usize>,
    array: SignedCrossbar,
}

/// The hybrid implementation as analog hardware: programmed crossbars plus
/// ideal discrete synapses.
#[derive(Debug, Clone)]
pub struct HardwareModel {
    neurons: usize,
    crossbars: Vec<MappedCrossbar>,
    synapses: Vec<(usize, usize, f64)>,
    mode: EvaluationMode,
    /// Converts crossbar output current back into the weight domain:
    /// `w_max / (v_read · (g_on − g_off))`.
    current_to_weight: f64,
    weight_scale: f64,
}

impl HardwareModel {
    /// Programs every crossbar of `mapping` with the corresponding
    /// Hopfield weights (normalized to the maximum weight magnitude) and
    /// registers outliers as ideal discrete synapses.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::DimensionMismatch`] if mapping and network
    /// disagree, and propagates device errors.
    pub fn build(
        hopfield: &HopfieldNetwork,
        mapping: &HybridMapping,
        device: &DeviceModel,
        mode: EvaluationMode,
    ) -> Result<Self, HwError> {
        let n = hopfield.neurons();
        if mapping.neurons() != n {
            return Err(HwError::DimensionMismatch {
                network: n,
                mapping: mapping.neurons(),
            });
        }
        let weights = hopfield.weights();
        let w_max = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .map(|(i, j)| weights[(i, j)].abs())
            .fold(0.0_f64, f64::max)
            .max(1e-12);
        let mut crossbars = Vec::with_capacity(mapping.crossbars().len());
        for assignment in mapping.crossbars() {
            let inputs = assignment.inputs.clone();
            let outputs = assignment.outputs.clone();
            let mut sub = vec![vec![0.0; outputs.len()]; inputs.len()];
            let col_of = |t: usize| outputs.iter().position(|&o| o == t);
            let row_of = |f: usize| inputs.iter().position(|&i| i == f);
            for &(f, t) in &assignment.connections {
                let (Some(r), Some(c)) = (row_of(f), col_of(t)) else {
                    continue;
                };
                sub[r][c] = weights[(f, t)] / w_max;
            }
            let mut array = SignedCrossbar::program(&sub, device)?;
            if let EvaluationMode::IdealWithVariation { sigma, seed } = mode {
                array = array.with_variation(
                    sigma,
                    seed ^ (crossbars.len() as u64).wrapping_mul(0x2545f4914f6cdd1d),
                );
            }
            crossbars.push(MappedCrossbar {
                inputs,
                outputs,
                array,
            });
        }
        let synapses = mapping
            .outliers()
            .iter()
            .map(|&(f, t)| (f, t, weights[(f, t)]))
            .collect();
        let span = device.g_on() - device.g_off();
        Ok(HardwareModel {
            neurons: n,
            crossbars,
            synapses,
            mode,
            current_to_weight: w_max / (device.v_read * span),
            weight_scale: w_max,
        })
    }

    /// Number of neurons.
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Number of programmed crossbars.
    pub fn crossbar_count(&self) -> usize {
        self.crossbars.len()
    }

    /// Computes the neuron input field `h` for a bipolar state through
    /// the hardware.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::Net`] for a wrong-length state, or propagates
    /// solver failures in IR-drop mode.
    pub fn field(&self, state: &[f64]) -> Result<Vec<f64>, HwError> {
        if state.len() != self.neurons {
            return Err(NetError::PatternDimensionMismatch {
                expected: self.neurons,
                found: state.len(),
            }
            .into());
        }
        let mut field = vec![0.0; self.neurons];
        for xbar in &self.crossbars {
            let inputs: Vec<f64> = xbar.inputs.iter().map(|&i| state[i]).collect();
            let currents = match self.mode {
                EvaluationMode::IrDrop => xbar.array.evaluate_ir_drop(&inputs)?,
                _ => xbar.array.evaluate_ideal(&inputs)?,
            };
            for (&t, current) in xbar.outputs.iter().zip(currents) {
                field[t] += current * self.current_to_weight;
            }
        }
        for &(f, t, w) in &self.synapses {
            field[t] += w * state[f];
        }
        let _ = self.weight_scale;
        Ok(field)
    }

    /// Synchronous sign-dynamics recall through the hardware, up to
    /// `max_steps` steps or a fixed point.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HardwareModel::field`].
    pub fn recall(&self, initial: &[f64], max_steps: usize) -> Result<RecallOutcome, HwError> {
        let mut state = initial.to_vec();
        for step in 0..max_steps {
            let field = self.field(&state)?;
            let next: Vec<f64> = field
                .iter()
                .zip(&state)
                .map(|(&h, &s)| {
                    if h > 0.0 {
                        1.0
                    } else if h < 0.0 {
                        -1.0
                    } else {
                        s
                    }
                })
                .collect();
            if next == state {
                return Ok(RecallOutcome {
                    state,
                    steps: step,
                    converged: true,
                });
            }
            state = next;
        }
        Ok(RecallOutcome {
            state,
            steps: max_steps,
            converged: false,
        })
    }

    /// Recognition rate through the hardware, mirroring
    /// [`HopfieldNetwork::recognition_rate`].
    ///
    /// # Errors
    ///
    /// Propagates noise-injection and recall errors.
    pub fn recognition_rate(
        &self,
        patterns: &PatternSet,
        noise_fraction: f64,
        accept_overlap: f64,
        seed: u64,
    ) -> Result<RecognitionReport, HwError> {
        let mut recognized = 0;
        for idx in 0..patterns.len() {
            let noisy = patterns.noisy_pattern(idx, noise_fraction, seed ^ (idx as u64))?;
            let outcome = self.recall(&noisy, 25)?;
            if PatternSet::overlap(&outcome.state, patterns.pattern(idx)) >= accept_overlap {
                recognized += 1;
            }
        }
        Ok(RecognitionReport {
            recognized,
            total: patterns.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AutoNcs;
    use ncs_net::{Testbench, TestbenchSpec};

    fn mini() -> (Testbench, HybridMapping) {
        let spec = TestbenchSpec {
            id: 51,
            patterns: 3,
            neurons: 90,
            sparsity: 0.85,
        };
        let tb = Testbench::from_spec(spec, 11).unwrap();
        let (mapping, _) = AutoNcs::new().map(tb.network()).unwrap();
        (tb, mapping)
    }

    #[test]
    fn hardware_field_matches_software_field_in_ideal_mode() {
        let (tb, mapping) = mini();
        let hw = HardwareModel::build(
            tb.hopfield(),
            &mapping,
            &DeviceModel::default(),
            EvaluationMode::Ideal,
        )
        .unwrap();
        // Software field: masked weight matrix times state.
        let state = tb.patterns().pattern(0);
        let field = hw.field(state).unwrap();
        let weights = tb.hopfield().weights();
        let mask = tb.network();
        for t in 0..tb.network().neurons() {
            let expect: f64 = (0..tb.network().neurons())
                .filter(|&f| mask.is_connected(f, t))
                .map(|f| weights[(f, t)] * state[f])
                .sum();
            assert!(
                (field[t] - expect).abs() < 1e-6 * (1.0 + expect.abs()),
                "neuron {t}: hw {} vs sw {}",
                field[t],
                expect
            );
        }
    }

    #[test]
    fn hardware_recall_matches_software_recognition() {
        let (tb, mapping) = mini();
        let hw = HardwareModel::build(
            tb.hopfield(),
            &mapping,
            &DeviceModel::default(),
            EvaluationMode::Ideal,
        )
        .unwrap();
        let sw = tb.recognition_rate(0.02, 77).unwrap();
        let hw_rep = hw.recognition_rate(tb.patterns(), 0.02, 0.9, 77).unwrap();
        assert_eq!(sw.total, hw_rep.total);
        // The ideal hardware model is numerically equivalent, so rates
        // must agree exactly.
        assert_eq!(sw.recognized, hw_rep.recognized);
    }

    #[test]
    fn variation_degrades_gracefully() {
        let (tb, mapping) = mini();
        let clean = HardwareModel::build(
            tb.hopfield(),
            &mapping,
            &DeviceModel::default(),
            EvaluationMode::Ideal,
        )
        .unwrap();
        let noisy = HardwareModel::build(
            tb.hopfield(),
            &mapping,
            &DeviceModel::default(),
            EvaluationMode::IdealWithVariation {
                sigma: 0.05,
                seed: 3,
            },
        )
        .unwrap();
        let state = tb.patterns().pattern(1);
        let f_clean = clean.field(state).unwrap();
        let f_noisy = noisy.field(state).unwrap();
        assert_ne!(f_clean, f_noisy);
        // Small variation keeps the field close.
        let diff: f64 = f_clean
            .iter()
            .zip(&f_noisy)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / f_clean.len() as f64;
        let scale: f64 = f_clean.iter().map(|v| v.abs()).sum::<f64>() / f_clean.len() as f64;
        assert!(diff < 0.5 * scale.max(1e-9), "diff {diff} vs scale {scale}");
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let (tb, _) = mini();
        let wrong = HybridMapping::new(10, vec![], vec![]);
        assert!(matches!(
            HardwareModel::build(
                tb.hopfield(),
                &wrong,
                &DeviceModel::default(),
                EvaluationMode::Ideal
            ),
            Err(HwError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn field_rejects_wrong_state_length() {
        let (tb, mapping) = mini();
        let hw = HardwareModel::build(
            tb.hopfield(),
            &mapping,
            &DeviceModel::default(),
            EvaluationMode::Ideal,
        )
        .unwrap();
        assert!(hw.field(&[1.0; 3]).is_err());
    }
}
