use std::fmt;

use crate::FlowResult;

/// Table 1-style comparison of an AutoNCS run against the FullCro
/// baseline on the same network.
#[derive(Debug, Clone)]
pub struct ComparisonReport {
    /// The AutoNCS flow result.
    pub autoncs: FlowResult,
    /// The FullCro baseline flow result.
    pub baseline: FlowResult,
}

impl ComparisonReport {
    /// Fractional wirelength reduction (positive means AutoNCS is better).
    pub fn wirelength_reduction(&self) -> f64 {
        reduction(
            self.baseline.design.cost.wirelength_um,
            self.autoncs.design.cost.wirelength_um,
        )
    }

    /// Fractional placement-area reduction.
    pub fn area_reduction(&self) -> f64 {
        reduction(
            self.baseline.design.cost.area_um2,
            self.autoncs.design.cost.area_um2,
        )
    }

    /// Fractional average-wire-delay reduction.
    pub fn delay_reduction(&self) -> f64 {
        reduction(
            self.baseline.design.cost.average_delay_ns,
            self.autoncs.design.cost.average_delay_ns,
        )
    }

    /// Renders one [`CostTableRow`] for this comparison.
    pub fn to_row(&self, label: impl Into<String>) -> CostTableRow {
        CostTableRow {
            label: label.into(),
            autoncs_wirelength_um: self.autoncs.design.cost.wirelength_um,
            baseline_wirelength_um: self.baseline.design.cost.wirelength_um,
            autoncs_area_um2: self.autoncs.design.cost.area_um2,
            baseline_area_um2: self.baseline.design.cost.area_um2,
            autoncs_delay_ns: self.autoncs.design.cost.average_delay_ns,
            baseline_delay_ns: self.baseline.design.cost.average_delay_ns,
        }
    }
}

fn reduction(baseline: f64, ours: f64) -> f64 {
    // ncs-lint: allow(float-eq) — exact-zero baseline guards the division
    if baseline == 0.0 {
        0.0
    } else {
        1.0 - ours / baseline
    }
}

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTableRow {
    /// Row label (e.g. "testbench 1").
    pub label: String,
    /// AutoNCS total wirelength, µm.
    pub autoncs_wirelength_um: f64,
    /// Baseline total wirelength, µm.
    pub baseline_wirelength_um: f64,
    /// AutoNCS placement area, µm².
    pub autoncs_area_um2: f64,
    /// Baseline placement area, µm².
    pub baseline_area_um2: f64,
    /// AutoNCS average wire delay, ns.
    pub autoncs_delay_ns: f64,
    /// Baseline average wire delay, ns.
    pub baseline_delay_ns: f64,
}

impl CostTableRow {
    /// `(wirelength, area, delay)` reductions as fractions.
    pub fn reductions(&self) -> (f64, f64, f64) {
        (
            reduction(self.baseline_wirelength_um, self.autoncs_wirelength_um),
            reduction(self.baseline_area_um2, self.autoncs_area_um2),
            reduction(self.baseline_delay_ns, self.autoncs_delay_ns),
        )
    }
}

/// A Table 1 reproduction: one row per testbench plus averages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostTable {
    /// Rows, one per workload.
    pub rows: Vec<CostTableRow>,
}

impl CostTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row.
    pub fn push(&mut self, row: CostTableRow) {
        self.rows.push(row);
    }

    /// Average `(wirelength, area, delay)` reductions across rows.
    pub fn average_reductions(&self) -> (f64, f64, f64) {
        if self.rows.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mut acc = (0.0, 0.0, 0.0);
        for row in &self.rows {
            let r = row.reductions();
            acc.0 += r.0;
            acc.1 += r.1;
            acc.2 += r.2;
        }
        let n = self.rows.len() as f64;
        (acc.0 / n, acc.1 / n, acc.2 / n)
    }

    /// Renders the table as CSV (same columns as Table 1 in the paper).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "testbench,design,total_wirelength_um,area_um2,delay_ns,wl_reduction_pct,area_reduction_pct,delay_reduction_pct\n",
        );
        for row in &self.rows {
            let (rw, ra, rd) = row.reductions();
            out.push_str(&format!(
                "{},AutoNCS,{:.1},{:.2},{:.3},{:.2},{:.2},{:.2}\n",
                row.label,
                row.autoncs_wirelength_um,
                row.autoncs_area_um2,
                row.autoncs_delay_ns,
                rw * 100.0,
                ra * 100.0,
                rd * 100.0
            ));
            out.push_str(&format!(
                "{},FullCro,{:.1},{:.2},{:.3},,,\n",
                row.label, row.baseline_wirelength_um, row.baseline_area_um2, row.baseline_delay_ns
            ));
        }
        out
    }
}

impl fmt::Display for CostTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>14} {:>14} {:>9}  (reduction vs FullCro)",
            "testbench", "wirelength/um", "area/um2", "delay/ns"
        )?;
        for row in &self.rows {
            let (rw, ra, rd) = row.reductions();
            writeln!(
                f,
                "{:<14} {:>14.1} {:>14.1} {:>9.3}",
                format!("{} AutoNCS", row.label),
                row.autoncs_wirelength_um,
                row.autoncs_area_um2,
                row.autoncs_delay_ns
            )?;
            writeln!(
                f,
                "{:<14} {:>14.1} {:>14.1} {:>9.3}",
                format!("{} FullCro", row.label),
                row.baseline_wirelength_um,
                row.baseline_area_um2,
                row.baseline_delay_ns
            )?;
            writeln!(
                f,
                "{:<14} {:>13.2}% {:>13.2}% {:>8.2}%",
                format!("{} Reduc.", row.label),
                rw * 100.0,
                ra * 100.0,
                rd * 100.0
            )?;
        }
        let (aw, aa, ad) = self.average_reductions();
        writeln!(
            f,
            "{:<14} {:>13.2}% {:>13.2}% {:>8.2}%",
            "average",
            aw * 100.0,
            aa * 100.0,
            ad * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(label: &str) -> CostTableRow {
        CostTableRow {
            label: label.to_string(),
            autoncs_wirelength_um: 50.0,
            baseline_wirelength_um: 100.0,
            autoncs_area_um2: 75.0,
            baseline_area_um2: 100.0,
            autoncs_delay_ns: 1.0,
            baseline_delay_ns: 2.0,
        }
    }

    #[test]
    fn reductions_are_fractions() {
        let (w, a, d) = row("tb").reductions();
        assert!((w - 0.5).abs() < 1e-12);
        assert!((a - 0.25).abs() < 1e-12);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn averages_over_rows() {
        let mut t = CostTable::new();
        t.push(row("a"));
        t.push(row("b"));
        let (w, a, d) = t.average_reductions();
        assert!((w - 0.5).abs() < 1e-12);
        assert!((a - 0.25).abs() < 1e-12);
        assert!((d - 0.5).abs() < 1e-12);
        assert_eq!(CostTable::new().average_reductions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn csv_has_two_lines_per_row_plus_header() {
        let mut t = CostTable::new();
        t.push(row("tb1"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("testbench,design"));
        assert!(csv.contains("tb1,AutoNCS"));
        assert!(csv.contains("tb1,FullCro"));
    }

    #[test]
    fn display_contains_percentages() {
        let mut t = CostTable::new();
        t.push(row("tb1"));
        let s = t.to_string();
        assert!(s.contains("50.00%"));
        assert!(s.contains("average"));
    }

    #[test]
    fn zero_baseline_reduction_is_zero() {
        let mut r = row("z");
        r.baseline_wirelength_um = 0.0;
        assert_eq!(r.reductions().0, 0.0);
    }
}
