//! `autoncs` — command-line front end for the AutoNCS flow.
//!
//! ```text
//! autoncs gen --kind <random|clusters|ldpc> --neurons N [--density D]
//!             [--clusters K] [--seed S] --out net.txt
//! autoncs map <net.txt> [--seed S] [--max-size M] [--trace trace.csv]
//! autoncs compare <net.txt> [--seed S]
//! autoncs implement <net.txt> [--seed S] [--placer <reference|nesterov>]
//!                   [--out-prefix results/design]
//! ```
//!
//! Networks are plain-text edge lists (see [`ncs_net::io`]). `gen` creates
//! synthetic workloads; `map` runs ISC clustering and prints mapping
//! statistics; `compare` runs the full AutoNCS and FullCro flows and
//! prints a Table 1-style row; `implement` additionally writes placement
//! and congestion plots.

use std::fs::File;
use std::process::ExitCode;

use autoncs::{plot, AutoNcs, CostTable};
use ncs_cluster::{CrossbarSizeSet, IscOptions};
use ncs_net::{generators, io as netio, ConnectionMatrix};
use ncs_phys::{ImplementOptions, PlaceAlgorithm, PlacerOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("usage: autoncs <gen|map|compare|implement> ... (see --help)".to_string());
    };
    let rest = &args[1..];
    match command.as_str() {
        "gen" => cmd_gen(rest),
        "map" => cmd_map(rest),
        "compare" => cmd_compare(rest),
        "implement" => cmd_implement(rest),
        "serve" => cmd_serve(rest),
        "--help" | "-h" | "help" => {
            println!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try --help")),
    }
}

const HELP: &str = "autoncs — EDA flow for hybrid memristor neuromorphic systems

commands:
  gen --kind <random|clusters|ldpc> --neurons N [--density D]
      [--clusters K] [--seed S] --out net.txt     generate a workload
  map <net.txt> [--seed S] [--max-size M]
      [--trace trace.csv]                         cluster to crossbars
  compare <net.txt> [--seed S]                    AutoNCS vs FullCro costs
  implement <net.txt> [--seed S]
      [--placer <reference|nesterov>]
      [--out-prefix PREFIX]                       full flow + plot artifacts
  serve [--addr HOST:PORT] [--batch N]
      [--cache-capacity N] [--max-conns N]
      [--addr-file PATH]                          run the batched flow service";

/// Minimal flag parser: positional arguments plus `--key value` pairs.
#[derive(Debug)]
struct Flags<'a> {
    positional: Vec<&'a str>,
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Flags<'a> {
    fn parse(args: &'a [String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} expects a value"))?;
                pairs.push((key, value.as_str()));
            } else {
                positional.push(arg.as_str());
            }
        }
        Ok(Flags { positional, pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|e| format!("bad --{key} {raw:?}: {e}")),
        }
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }
}

/// Drains this thread's trace stream into a per-stage summary table plus a
/// `results/TRACE_<flow>.json` artifact. A no-op unless `NCS_TRACE` is on.
fn emit_trace_summary(flow: &str) -> Result<(), String> {
    if !ncs_trace::enabled() {
        return Ok(());
    }
    let report = ncs_trace::TraceReport::from_events(&ncs_trace::take_events());
    print!("{}", report.render_table());
    let path = report
        .export(flow)
        .map_err(|e| format!("cannot write trace artifact: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}

fn load_net(path: &str) -> Result<ConnectionMatrix, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    netio::read_edge_list(file).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn placer_algorithm(flags: &Flags) -> Result<PlaceAlgorithm, String> {
    match flags.get("placer").unwrap_or("reference") {
        "reference" | "cg" => Ok(PlaceAlgorithm::CgReference),
        "nesterov" => Ok(PlaceAlgorithm::Nesterov),
        other => Err(format!(
            "unknown --placer {other:?} (expected reference|nesterov)"
        )),
    }
}

fn framework(flags: &Flags) -> Result<AutoNcs, String> {
    let seed: u64 = flags.get_parsed("seed", 42)?;
    let max_size: usize = flags.get_parsed("max-size", 64)?;
    let sizes =
        CrossbarSizeSet::new((16..=max_size.max(16)).step_by(4)).map_err(|e| e.to_string())?;
    let implement = ImplementOptions {
        placer: PlacerOptions {
            algorithm: placer_algorithm(flags)?,
            ..PlacerOptions::default()
        },
        ..ImplementOptions::default()
    };
    Ok(AutoNcs::builder()
        .isc_options(IscOptions {
            sizes,
            seed,
            ..IscOptions::default()
        })
        .implement_options(implement)
        .build())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let kind = flags.require("kind")?.to_string();
    let neurons: usize = flags.get_parsed("neurons", 128)?;
    let seed: u64 = flags.get_parsed("seed", 42)?;
    let out = flags.require("out")?;
    let net = match kind.as_str() {
        "random" => {
            let density: f64 = flags.get_parsed("density", 0.05)?;
            generators::uniform_random(neurons, density, seed).map_err(|e| e.to_string())?
        }
        "clusters" => {
            let clusters: usize = flags.get_parsed("clusters", 4)?;
            let density: f64 = flags.get_parsed("density", 0.4)?;
            generators::planted_clusters(neurons, clusters, density, 0.01, seed)
                .map_err(|e| e.to_string())?
                .0
        }
        "ldpc" => {
            let checks = neurons / 3;
            generators::ldpc_like(neurons - checks, checks, 4, seed).map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown --kind {other:?} (random|clusters|ldpc)")),
    };
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    netio::write_edge_list(&net, file).map_err(|e| e.to_string())?;
    println!("wrote {out}: {net}");
    Ok(())
}

fn cmd_map(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or("map expects a network file")?;
    let net = load_net(path)?;
    let (mapping, trace) = framework(&flags)?.map(&net).map_err(|e| e.to_string())?;
    mapping
        .verify_covers(&net)
        .map_err(|e| format!("internal invariant violated: {e}"))?;
    println!("network: {net}");
    println!(
        "mapping: {} crossbars ({} connections), {} discrete synapses, outlier ratio {:.2}%",
        mapping.crossbars().len(),
        mapping.realized_connections(),
        mapping.outliers().len(),
        mapping.outlier_ratio() * 100.0
    );
    println!(
        "average crossbar utilization: {:.2}%",
        mapping.average_utilization() * 100.0
    );
    println!("size histogram: {:?}", mapping.size_histogram());
    println!(
        "isc: {} iterations, stop {:?}",
        trace.iterations.len(),
        trace.stop_reason
    );
    if let Some(trace_path) = flags.get("trace") {
        let mut csv = String::from("iteration,clusters,selected,removed,outlier_ratio\n");
        for it in &trace.iterations {
            csv.push_str(&format!(
                "{},{},{},{},{:.4}\n",
                it.iteration,
                it.clusters_formed,
                it.clusters_selected,
                it.connections_removed,
                it.outlier_ratio
            ));
        }
        std::fs::write(trace_path, csv).map_err(|e| format!("cannot write {trace_path}: {e}"))?;
        println!("wrote {trace_path}");
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or("compare expects a network file")?;
    let net = load_net(path)?;
    let report = framework(&flags)?
        .compare(&net)
        .map_err(|e| e.to_string())?;
    let mut table = CostTable::new();
    table.push(report.to_row(path.rsplit('/').next().unwrap_or(path)));
    print!("{table}");
    emit_trace_summary("compare")?;
    Ok(())
}

fn cmd_implement(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .positional
        .first()
        .ok_or("implement expects a network file")?;
    let prefix = flags
        .get("out-prefix")
        .unwrap_or("autoncs_design")
        .to_string();
    let net = load_net(path)?;
    let result = framework(&flags)?.run(&net).map_err(|e| e.to_string())?;
    println!(
        "cost: wirelength {:.1} um, area {:.1} um2, delay {:.3} ns, total {:.1}",
        result.design.cost.wirelength_um,
        result.design.cost.area_um2,
        result.design.cost.average_delay_ns,
        result.design.cost.total()
    );
    let placement_path = format!("{prefix}_placement.ppm");
    plot::placement_plot(&result.design.netlist, &result.design.placement, 4.0)
        .write_ppm(File::create(&placement_path).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    println!("wrote {placement_path}");
    let congestion_path = format!("{prefix}_congestion.ppm");
    plot::congestion_heatmap(&result.design.routing.congestion)
        .write_ppm(File::create(&congestion_path).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    println!("wrote {congestion_path}");
    emit_trace_summary("implement")?;
    Ok(())
}

/// Parses `serve` flags and binds the daemon (split from [`cmd_serve`]
/// so tests can start and stop a server without blocking forever).
fn serve_bind(flags: &Flags) -> Result<autoncs::serve::Server, String> {
    let addr = flags.get("addr").unwrap_or("127.0.0.1:0");
    let batch_limit: usize = flags.get_parsed("batch", 16)?;
    let cache_capacity: usize = flags.get_parsed("cache-capacity", 256)?;
    let max_connections: usize = flags.get_parsed("max-conns", 0)?;
    let options = autoncs::serve::ServeOptions {
        batch_limit,
        cache_capacity,
        max_connections: (max_connections > 0).then_some(max_connections),
        ..autoncs::serve::ServeOptions::default()
    };
    let server = autoncs::serve::Server::bind(addr, options).map_err(|e| e.to_string())?;
    println!("serving on {}", server.local_addr());
    if let Some(addr_file) = flags.get("addr-file") {
        std::fs::write(addr_file, format!("{}\n", server.local_addr()))
            .map_err(|e| format!("cannot write {addr_file}: {e}"))?;
        println!("wrote {addr_file}");
    }
    Ok(server)
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let _server = serve_bind(&flags)?;
    // The daemon runs until the process is killed; the Server's Drop
    // performs an orderly shutdown if this loop is ever left.
    loop {
        std::thread::park();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_pairs_and_positionals() {
        let args = strings(&["net.txt", "--seed", "7", "--max-size", "32"]);
        let flags = Flags::parse(&args).unwrap();
        assert_eq!(flags.positional, vec!["net.txt"]);
        assert_eq!(flags.get("seed"), Some("7"));
        assert_eq!(flags.get_parsed::<usize>("max-size", 64).unwrap(), 32);
        assert_eq!(flags.get_parsed::<usize>("absent", 64).unwrap(), 64);
    }

    #[test]
    fn flags_report_missing_values() {
        let args = strings(&["--seed"]);
        assert!(Flags::parse(&args).unwrap_err().contains("--seed"));
    }

    #[test]
    fn repeated_flags_take_the_last_value() {
        let args = strings(&["--seed", "1", "--seed", "2"]);
        let flags = Flags::parse(&args).unwrap();
        assert_eq!(flags.get("seed"), Some("2"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&strings(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn gen_map_compare_roundtrip() {
        let dir = std::env::temp_dir().join("autoncs_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let net_path = dir.join("net.txt");
        let net_str = net_path.to_str().unwrap().to_string();
        run(&strings(&[
            "gen",
            "--kind",
            "clusters",
            "--neurons",
            "48",
            "--out",
            &net_str,
        ]))
        .unwrap();
        run(&strings(&["map", &net_str, "--max-size", "24"])).unwrap();
        let trace_path = dir.join("trace.csv");
        run(&strings(&[
            "map",
            &net_str,
            "--max-size",
            "24",
            "--trace",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.starts_with("iteration,"));
        assert!(trace.lines().count() > 1);
    }

    #[test]
    fn compare_and_implement_run_end_to_end() {
        let dir = std::env::temp_dir().join("autoncs_cli_impl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let net_path = dir.join("net.txt");
        let net_str = net_path.to_str().unwrap().to_string();
        run(&strings(&[
            "gen",
            "--kind",
            "clusters",
            "--neurons",
            "40",
            "--out",
            &net_str,
        ]))
        .unwrap();
        run(&strings(&["compare", &net_str, "--max-size", "16"])).unwrap();
        let prefix = dir.join("design");
        let prefix_str = prefix.to_str().unwrap().to_string();
        run(&strings(&[
            "implement",
            &net_str,
            "--max-size",
            "16",
            "--out-prefix",
            &prefix_str,
        ]))
        .unwrap();
        let placement = std::fs::read(format!("{prefix_str}_placement.ppm")).unwrap();
        assert!(placement.starts_with(b"P6\n"));
        let congestion = std::fs::read(format!("{prefix_str}_congestion.ppm")).unwrap();
        assert!(congestion.starts_with(b"P6\n"));
    }

    #[test]
    fn implement_accepts_the_nesterov_placer() {
        let dir = std::env::temp_dir().join("autoncs_cli_placer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let net_path = dir.join("net.txt");
        let net_str = net_path.to_str().unwrap().to_string();
        run(&strings(&[
            "gen",
            "--kind",
            "clusters",
            "--neurons",
            "40",
            "--out",
            &net_str,
        ]))
        .unwrap();
        let prefix = dir.join("design");
        let prefix_str = prefix.to_str().unwrap().to_string();
        run(&strings(&[
            "implement",
            &net_str,
            "--max-size",
            "16",
            "--placer",
            "nesterov",
            "--out-prefix",
            &prefix_str,
        ]))
        .unwrap();
        let placement = std::fs::read(format!("{prefix_str}_placement.ppm")).unwrap();
        assert!(placement.starts_with(b"P6\n"));
    }

    #[test]
    fn placer_flag_selects_the_algorithm() {
        let args = strings(&["net.txt", "--placer", "nesterov"]);
        let flags = Flags::parse(&args).unwrap();
        assert_eq!(placer_algorithm(&flags).unwrap(), PlaceAlgorithm::Nesterov);
        let args = strings(&["net.txt"]);
        let flags = Flags::parse(&args).unwrap();
        assert_eq!(
            placer_algorithm(&flags).unwrap(),
            PlaceAlgorithm::CgReference
        );
        let args = strings(&["net.txt", "--placer", "simulated-annealing"]);
        let flags = Flags::parse(&args).unwrap();
        let err = placer_algorithm(&flags).unwrap_err();
        assert!(err.contains("simulated-annealing"), "{err}");
    }

    #[test]
    fn help_prints_without_error() {
        run(&strings(&["--help"])).unwrap();
        run(&strings(&["help"])).unwrap();
        assert!(HELP.contains("serve"));
    }

    #[test]
    fn serve_binds_and_answers_a_stats_request() {
        let dir = std::env::temp_dir().join("autoncs_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let addr_file = dir.join("addr.txt");
        let addr_str = addr_file.to_str().unwrap().to_string();
        let args = strings(&["--cache-capacity", "8", "--addr-file", &addr_str]);
        let flags = Flags::parse(&args).unwrap();
        let mut server = serve_bind(&flags).unwrap();
        let written = std::fs::read_to_string(&addr_file).unwrap();
        assert_eq!(written.trim(), server.local_addr().to_string());
        let mut client = autoncs::serve::ServeClient::connect(server.local_addr()).unwrap();
        let stats = client.stats().unwrap();
        assert!(stats.contains("\"cache\""));
        server.shutdown();
    }

    #[test]
    fn serve_rejects_bad_flag_values() {
        let args = strings(&["--batch", "not-a-number"]);
        let flags = Flags::parse(&args).unwrap();
        match serve_bind(&flags) {
            Err(message) => assert!(message.contains("--batch"), "{message}"),
            Ok(_) => panic!("a malformed --batch value must be rejected"),
        }
    }

    #[test]
    fn gen_rejects_unknown_kind() {
        let err = run(&strings(&[
            "gen",
            "--kind",
            "nope",
            "--neurons",
            "10",
            "--out",
            "/tmp/x.txt",
        ]))
        .unwrap_err();
        assert!(err.contains("nope"));
    }

    #[test]
    fn map_reports_missing_file() {
        let err = run(&strings(&["map", "/definitely/not/there.txt"])).unwrap_err();
        assert!(err.contains("cannot open"));
    }
}
