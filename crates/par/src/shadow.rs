//! The shadow-access checker: an in-house race detector for the
//! deterministic parallel layer.
//!
//! Every mutable-split primitive in this crate (`par_chunks_mut`,
//! `team_split_mut`) rests on one invariant: the element ranges handed
//! to the workers are **pairwise disjoint and cover the input exactly**.
//! The borrow checker enforces this for the `split_at_mut` calls
//! themselves, but not for the *claim arithmetic* that feeds them — an
//! off-by-one in the worker-run computation would silently skip or
//! double-visit elements, which is exactly the bug class that breaks
//! bit-identity across thread counts. [`SharedF64Buf`] writes are the
//! other race surface: the barrier protocol only orders writes in
//! *different* phases, so two workers storing the same slot between the
//! same pair of barriers is an unordered (racy) publication even though
//! each store is atomic.
//!
//! When the checker is enabled (`NCS_SHADOW=1` or
//! [`set_shadow_override`]), launches verify their claim tables before
//! spawning and every [`SharedF64Buf`] write is recorded against the
//! writer's `(worker, barrier phase)` so same-phase same-slot conflicts
//! are detected. It is a debug/test facility: the checker is off by
//! default and costs one branch per launch when disabled.
//!
//! [`SharedF64Buf`]: crate::SharedF64Buf

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Shadow-checker override: 0 unset, 1 forced off, 2 forced on.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `NCS_SHADOW`, resolved once per process.
static ENV_ENABLED: OnceLock<bool> = OnceLock::new();

/// Process-wide count of shadow violations observed on the dynamic
/// (slot-write) side. Monotonic; see [`violation_count`].
static VIOLATIONS: AtomicUsize = AtomicUsize::new(0);

/// Whether the shadow-access checker is active.
///
/// Priority: [`set_shadow_override`] > the `NCS_SHADOW` environment
/// variable (`1` / `true` enable; read once per process) > off.
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *ENV_ENABLED
            .get_or_init(|| resolve_enabled(std::env::var("NCS_SHADOW").ok().as_deref())),
    }
}

/// Pure resolution of the `NCS_SHADOW` value, separated from process
/// state so it can be unit-tested without touching the environment.
pub fn resolve_enabled(env_value: Option<&str>) -> bool {
    matches!(env_value.map(str::trim), Some("1") | Some("true"))
}

/// Installs (`Some(v)`) or removes (`None`) an in-process override for
/// the shadow checker, taking priority over `NCS_SHADOW`. Tests use
/// this to enable checking without racy environment mutation.
pub fn set_shadow_override(v: Option<bool>) {
    let raw = match v {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    OVERRIDE.store(raw, Ordering::Relaxed);
}

/// Total shadow violations recorded on the dynamic (slot-write) side
/// since process start. Monotonic: tests snapshot it before a checked
/// region and assert it is unchanged after.
pub fn violation_count() -> usize {
    VIOLATIONS.load(Ordering::Relaxed)
}

/// A violated claim-table invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShadowError {
    /// Two claims share at least one element index.
    Overlap {
        /// The earlier claim (after sorting by start).
        first: Range<usize>,
        /// The claim that re-enters `first` before it ends.
        second: Range<usize>,
    },
    /// The claim table leaves a hole: no claim starts at `expected`.
    Gap {
        /// First unclaimed element index.
        expected: usize,
        /// Start of the next claim after the hole (`total` if none).
        found: usize,
    },
    /// A claim reaches past the end of the data.
    OutOfBounds {
        /// The offending claim.
        claim: Range<usize>,
        /// Total number of elements in the launch.
        total: usize,
    },
}

impl fmt::Display for ShadowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShadowError::Overlap { first, second } => write!(
                f,
                "claims {}..{} and {}..{} overlap: an element has two writers",
                first.start, first.end, second.start, second.end
            ),
            ShadowError::Gap { expected, found } => write!(
                f,
                "claims leave elements {expected}..{found} unclaimed: they would never be visited"
            ),
            ShadowError::OutOfBounds { claim, total } => write!(
                f,
                "claim {}..{} reaches past the data (len {total})",
                claim.start, claim.end
            ),
        }
    }
}

/// Verifies that `claims` are pairwise disjoint and cover `0..total`
/// exactly — the contract every mutable-split launch must satisfy.
///
/// Empty claims are permitted (a worker run can be empty when there are
/// more workers than chunks). The check is order-independent: claims
/// are sorted by start before scanning, so a buggy split that produced
/// out-of-order ranges is still diagnosed precisely.
///
/// # Errors
///
/// Returns the first [`ShadowError`] found, scanning left to right.
pub fn verify_claims(total: usize, claims: &[Range<usize>]) -> Result<(), ShadowError> {
    let mut sorted: Vec<Range<usize>> =
        claims.iter().filter(|r| r.start < r.end).cloned().collect();
    sorted.sort_by_key(|r| (r.start, r.end));
    let mut prev: Option<Range<usize>> = None;
    for claim in &sorted {
        if claim.end > total {
            return Err(ShadowError::OutOfBounds {
                claim: claim.clone(),
                total,
            });
        }
        let covered = prev.as_ref().map_or(0, |p| p.end);
        match claim.start.cmp(&covered) {
            std::cmp::Ordering::Less => {
                return Err(ShadowError::Overlap {
                    first: prev.clone().unwrap_or(0..0),
                    second: claim.clone(),
                });
            }
            std::cmp::Ordering::Greater => {
                return Err(ShadowError::Gap {
                    expected: covered,
                    found: claim.start,
                });
            }
            std::cmp::Ordering::Equal => prev = Some(claim.clone()),
        }
    }
    let covered = prev.map_or(0, |p| p.end);
    if covered != total {
        return Err(ShadowError::Gap {
            expected: covered,
            found: total,
        });
    }
    Ok(())
}

/// Launch-side assertion used by `par_chunks_mut` / `team_split_mut`
/// before any worker spawns (so a violation can never deadlock a
/// barrier).
///
/// # Panics
///
/// Panics with the primitive name and the precise claim defect when the
/// table violates the disjoint-cover contract.
pub(crate) fn check_launch(primitive: &str, total: usize, claims: &[Range<usize>]) {
    if let Err(e) = verify_claims(total, claims) {
        panic!("ncs-par shadow-access checker: {primitive} claim table is invalid: {e}");
    }
}

thread_local! {
    /// The `(worker, barrier phase)` identity of the current thread
    /// while it runs inside a shadow-checked team body.
    static TEAM_IDENTITY: Cell<Option<(usize, u32)>> = const { Cell::new(None) };
}

/// RAII guard installing this thread's team identity for the duration
/// of a team body. A disabled checker installs nothing.
pub(crate) struct TeamIdentityGuard {
    installed: bool,
}

/// Marks the current thread as `worker` in barrier phase 0.
pub(crate) fn enter_team(worker: usize) -> TeamIdentityGuard {
    if !enabled() {
        return TeamIdentityGuard { installed: false };
    }
    TEAM_IDENTITY.with(|c| c.set(Some((worker, 0))));
    TeamIdentityGuard { installed: true }
}

impl Drop for TeamIdentityGuard {
    fn drop(&mut self) {
        if self.installed {
            TEAM_IDENTITY.with(|c| c.set(None));
        }
    }
}

/// Advances this worker's barrier phase. Called by [`TeamCtx::sync`]
/// after the barrier: all workers pass a barrier together, so their
/// phase counters agree on both sides of it.
///
/// [`TeamCtx::sync`]: crate::TeamCtx::sync
pub(crate) fn bump_phase() {
    TEAM_IDENTITY.with(|c| {
        if let Some((worker, phase)) = c.get() {
            c.set(Some((worker, phase.saturating_add(1))));
        }
    });
}

/// Per-buffer shadow state for [`SharedF64Buf`]: which `(phase, slot)`
/// pairs have been written, and by whom.
///
/// [`SharedF64Buf`]: crate::SharedF64Buf
#[derive(Debug)]
pub(crate) struct ShadowSlots {
    /// `(phase, slot)` → first writer observed.
    writes: Mutex<BTreeMap<(u32, usize), usize>>,
    /// Human-readable descriptions of conflicts seen on this buffer.
    violations: Mutex<Vec<String>>,
}

impl ShadowSlots {
    pub(crate) fn new() -> Self {
        ShadowSlots {
            writes: Mutex::new(BTreeMap::new()),
            violations: Mutex::new(Vec::new()),
        }
    }

    /// Records a write to `slot` by the current team worker. Writes
    /// from outside a team body (single-threaded setup by the caller)
    /// are not tracked — they are ordered by the spawn itself.
    ///
    /// A same-phase same-slot write by a *different* worker is a
    /// violation: the barrier protocol provides no ordering between the
    /// two stores. Violations are recorded (never panicked) so a
    /// detected race cannot strand the other workers at a barrier.
    pub(crate) fn record(&self, slot: usize) {
        let Some((worker, phase)) = TEAM_IDENTITY.with(Cell::get) else {
            return;
        };
        let mut writes = self.writes.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&prev) = writes.get(&(phase, slot)) {
            if prev != worker {
                let msg = format!(
                    "SharedF64Buf slot {slot} written by worker {prev} and worker {worker} in \
                     barrier phase {phase}: same-phase writes to one slot are unordered; separate \
                     them with TeamCtx::sync"
                );
                VIOLATIONS.fetch_add(1, Ordering::Relaxed);
                self.violations
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(msg);
            }
        } else {
            writes.insert((phase, slot), worker);
        }
    }

    /// Drains and returns the conflicts recorded on this buffer.
    pub(crate) fn take_violations(&self) -> Vec<String> {
        std::mem::take(&mut *self.violations.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_enabled_parses_truthy_values() {
        assert!(resolve_enabled(Some("1")));
        assert!(resolve_enabled(Some("true")));
        assert!(resolve_enabled(Some(" 1 ")));
        assert!(!resolve_enabled(Some("0")));
        assert!(!resolve_enabled(Some("yes")));
        assert!(!resolve_enabled(None));
    }

    #[test]
    fn disjoint_cover_passes() {
        assert_eq!(verify_claims(10, &[0..4, 4..7, 7..10]), Ok(()));
        assert_eq!(verify_claims(0, &[]), Ok(()));
        // Empty worker runs (more workers than chunks) are fine.
        assert_eq!(verify_claims(3, &[0..3, 3..3, 3..3]), Ok(()));
        // Order independence: a permuted-but-valid table still passes.
        assert_eq!(verify_claims(10, &[7..10, 0..4, 4..7]), Ok(()));
    }

    #[test]
    fn overlap_is_diagnosed() {
        let err = verify_claims(10, &[0..6, 4..10]).unwrap_err();
        assert!(matches!(err, ShadowError::Overlap { .. }), "{err}");
        assert!(err.to_string().contains("overlap"));
    }

    #[test]
    fn gap_is_diagnosed() {
        let err = verify_claims(10, &[0..4, 6..10]).unwrap_err();
        assert_eq!(
            err,
            ShadowError::Gap {
                expected: 4,
                found: 6
            }
        );
        // A short table is a trailing gap.
        #[allow(clippy::single_range_in_vec_init)]
        let err = verify_claims(10, &[0..4]).unwrap_err();
        assert_eq!(
            err,
            ShadowError::Gap {
                expected: 4,
                found: 10
            }
        );
    }

    #[test]
    fn out_of_bounds_is_diagnosed() {
        let err = verify_claims(10, &[0..4, 4..12]).unwrap_err();
        assert_eq!(
            err,
            ShadowError::OutOfBounds {
                claim: 4..12,
                total: 10
            }
        );
    }

    #[test]
    fn slot_writes_conflict_only_across_workers_in_one_phase() {
        let slots = ShadowSlots::new();
        // Worker 0, phase 0 writes slot 3 twice: no conflict.
        let g = {
            TEAM_IDENTITY.with(|c| c.set(Some((0, 0))));
            TeamIdentityGuard { installed: true }
        };
        slots.record(3);
        slots.record(3);
        assert!(slots.take_violations().is_empty());
        drop(g);
        // Worker 1, same phase, same slot: conflict.
        let g = {
            TEAM_IDENTITY.with(|c| c.set(Some((1, 0))));
            TeamIdentityGuard { installed: true }
        };
        slots.record(3);
        let v = slots.take_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("slot 3"));
        // Worker 1 in a *later* phase: ordered by the barrier, fine.
        bump_phase();
        slots.record(3);
        assert!(slots.take_violations().is_empty());
        drop(g);
        // Outside any team body, writes are untracked.
        slots.record(3);
        assert!(slots.take_violations().is_empty());
    }
}
