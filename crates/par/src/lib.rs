//! Deterministic scoped parallelism for the AutoNCS workspace.
//!
//! Every primitive in this crate obeys one contract: **the chunk layout
//! is a function of the problem size only, never of the thread count or
//! of scheduling**. Workers fill pre-indexed output slots (or return
//! per-chunk partials that are folded sequentially in chunk order), so a
//! kernel built on these primitives produces bit-identical floating
//! point results at `NCS_THREADS=1`, `NCS_THREADS=4`, or any other
//! setting. The single-thread case never spawns: it runs the identical
//! chunk/fold structure inline on the calling thread.
//!
//! # Serial cutoffs
//!
//! Pool dispatch costs tens of microseconds; a small kernel loses more
//! to spawning than it gains from extra cores. Every primitive
//! therefore takes a [`Cutoff`]: a calibrated minimum amount of work
//! below which the launch runs inline on the calling thread, with the
//! **same chunk grid and fold order**, so results are bit-identical on
//! both sides of the cutoff. The engage/fallback decision is a pure
//! function of the problem size — never of the thread count — and is
//! surfaced through two trace counters, `par.pool_dispatches` and
//! `par.inline_fallbacks`, which therefore also stay bit-identical
//! across thread counts.
//!
//! # Thread-count resolution
//!
//! The *requested* count, [`threads`], resolves in priority order:
//!
//! 1. an in-process override installed with [`set_thread_override`]
//!    (used by benches and determinism tests — no racy env mutation),
//! 2. the `NCS_THREADS` environment variable (read once per process;
//!    `0` or unparseable values fall back to the hardware default),
//! 3. [`std::thread::available_parallelism`].
//!
//! `0` uniformly means "hardware default" for both the environment
//! variable and the override. The count a launch actually spawns,
//! [`pool_threads`], additionally caps environment-resolved requests at
//! [`hardware_threads`]: this crate's workers are CPU-bound spinners,
//! so oversubscribing a core only adds barrier latency — and because
//! the chunk grid ignores the worker count, capping it cannot change a
//! single result bit. An explicit override is exempt from the cap so
//! determinism tests can still force genuinely oversubscribed teams.
//!
//! # Shadow-access checking
//!
//! `NCS_SHADOW=1` (or [`set_shadow_override`]) arms an in-house race
//! detector for the two invariants bit-identity rests on: mutable-split
//! launches ([`par_chunks_mut`], [`team_split_mut`]) verify their
//! worker claim tables — pairwise disjoint, covering the input exactly
//! — before any worker spawns, and every [`SharedF64Buf`] store is
//! recorded against the writer's `(worker, barrier phase)` so two
//! workers publishing one slot between the same pair of barriers is
//! reported as the unordered (racy) write it is. Off by default; see
//! [`shadow`] for the contract.
//!
//! # Example
//!
//! ```
//! // A chunked sum: same bits at any thread count, because the chunk
//! // grid depends only on (len, grain) and partials fold in order.
//! let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
//! let total = ncs_par::par_map_reduce(
//!     xs.len(),
//!     128,
//!     ncs_par::Cutoff::NONE,
//!     |r| xs[r].iter().sum::<f64>(),
//!     0.0,
//!     |acc, part| acc + part,
//! );
//! let serial: f64 = ncs_par::chunk_ranges(xs.len(), 128)
//!     .map(|r| xs[r].iter().sum::<f64>())
//!     .sum();
//! assert_eq!(total.to_bits(), serial.to_bits());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod shadow;

pub use shadow::set_shadow_override;

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// Upper bound on the worker count, to keep a typo'd `NCS_THREADS`
/// from spawning thousands of threads.
pub const MAX_THREADS: usize = 64;

/// In-process override: 0 means "no override".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `NCS_THREADS` / hardware default, resolved once per process.
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// Hardware parallelism, resolved once per process.
static HW_THREADS: OnceLock<usize> = OnceLock::new();

/// The machine's available parallelism, clamped to
/// `1..=`[`MAX_THREADS`] and sampled once per process.
pub fn hardware_threads() -> usize {
    *HW_THREADS.get_or_init(|| {
        thread::available_parallelism()
            .map_or(1, |n| n.get())
            .clamp(1, MAX_THREADS)
    })
}

/// Resolves the *requested* worker count.
///
/// Priority: [`set_thread_override`] > `NCS_THREADS` > hardware
/// parallelism. Always in `1..=`[`MAX_THREADS`]. Note the environment
/// variable is sampled once per process, on first use. Launches spawn
/// [`pool_threads`] workers, which may be fewer.
pub fn threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    *ENV_THREADS.get_or_init(|| {
        let hw = thread::available_parallelism().map_or(1, |n| n.get());
        resolve_threads(std::env::var("NCS_THREADS").ok().as_deref(), hw)
    })
}

/// The worker count a launch actually spawns: the requested count,
/// capped at [`hardware_threads`] unless it came from an explicit
/// [`set_thread_override`].
///
/// The cap exists because these pools are CPU-bound spin-barrier
/// workers — on a 1-core host, `NCS_THREADS=4` used to mean four
/// workers time-sharing one core, which made the eigensolver up to 23×
/// *slower* than serial. The chunk grid is a function of the problem
/// size only, so capping the worker count cannot change any result
/// bit. Overrides bypass the cap so determinism tests can force real
/// oversubscribed teams.
pub fn pool_threads() -> usize {
    match thread_override() {
        Some(n) => n,
        None => threads().min(hardware_threads()),
    }
}

/// Pure thread-count resolution, separated from process state so it can
/// be unit-tested without touching the environment.
///
/// `None`, an unparseable string, or `0` yield the hardware default;
/// everything is clamped to `1..=`[`MAX_THREADS`].
pub fn resolve_threads(env_value: Option<&str>, hardware: usize) -> usize {
    let requested = env_value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(hardware);
    requested.clamp(1, MAX_THREADS)
}

/// Installs (`Some(n)`) or removes (`None`) an in-process thread-count
/// override that takes priority over `NCS_THREADS`.
///
/// Determinism tests and benches use this to compare thread counts
/// within one process. `Some(0)` means "hardware default", matching
/// the `NCS_THREADS=0` environment semantics, and is resolved to
/// [`hardware_threads`] at install time (so [`thread_override`]
/// reports the resolved count).
pub fn set_thread_override(n: Option<usize>) {
    let v = n.map_or(0, |x| {
        if x == 0 {
            hardware_threads()
        } else {
            x.clamp(1, MAX_THREADS)
        }
    });
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// Returns the current override installed by [`set_thread_override`].
pub fn thread_override() -> Option<usize> {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// A size-aware serial cutoff: the minimum amount of work a launch must
/// carry before it is worth dispatching to the worker pool.
///
/// A launch over `items` items engages the pool when
/// `items * work_per_item >= min_work`; below that it runs inline on
/// the calling thread **with the identical chunk grid and fold order**,
/// so the cutoff can never change result bits — only where the work
/// runs. `work_per_item` lets callers express per-item cost in
/// whatever unit they calibrated `min_work` in (flops, touched
/// entries, grid cells), defaulting to 1.
///
/// The decision is a pure function of the problem size, which keeps
/// the `par.pool_dispatches` / `par.inline_fallbacks` trace counters —
/// and therefore whole trace streams — bit-identical across thread
/// counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cutoff {
    min_work: usize,
    work_per_item: usize,
}

impl Cutoff {
    /// No cutoff: every non-trivial launch engages the pool.
    pub const NONE: Cutoff = Cutoff {
        min_work: 0,
        work_per_item: 1,
    };

    /// A cutoff that engages once total work reaches `min_work` units.
    pub const fn min_work(min_work: usize) -> Cutoff {
        Cutoff {
            min_work,
            work_per_item: 1,
        }
    }

    /// Sets the per-item work estimate (clamped to ≥ 1) used to convert
    /// an item count into total work units.
    pub const fn work_per_item(self, work: usize) -> Cutoff {
        Cutoff {
            min_work: self.min_work,
            work_per_item: if work == 0 { 1 } else { work },
        }
    }

    /// Whether a launch over `items` items carries enough total work to
    /// engage the pool.
    pub fn engages(&self, items: usize) -> bool {
        items.saturating_mul(self.work_per_item) >= self.min_work
    }
}

/// Decides the worker count for a launch over `items` items split into
/// `chunks` chunks, recording the decision as a trace counter.
///
/// Both inputs are functions of the problem size only, so the counter
/// stream is identical at any thread count; only the returned worker
/// count (never observable in results) depends on [`pool_threads`].
fn launch_workers(items: usize, chunks: usize, cutoff: Cutoff) -> usize {
    if chunks <= 1 || !cutoff.engages(items) {
        ncs_trace::add("par.inline_fallbacks", 1);
        1
    } else {
        ncs_trace::add("par.pool_dispatches", 1);
        pool_threads().min(chunks)
    }
}

/// Number of fixed-size chunks covering `len` items at `grain` items
/// per chunk (the last chunk may be short). `grain` is clamped to ≥ 1.
pub fn chunk_count(len: usize, grain: usize) -> usize {
    len.div_ceil(grain.max(1))
}

/// The fixed chunk grid: disjoint, ascending ranges covering `0..len`.
///
/// This grid — a function of `(len, grain)` only — is the unit of work
/// distribution everywhere in this crate, which is what makes results
/// independent of the thread count.
pub fn chunk_ranges(len: usize, grain: usize) -> impl Iterator<Item = Range<usize>> {
    let grain = grain.max(1);
    (0..chunk_count(len, grain)).map(move |c| (c * grain)..((c + 1) * grain).min(len))
}

/// Joins a scoped worker, propagating any panic to the caller.
fn join<R>(handle: thread::ScopedJoinHandle<'_, R>) -> R {
    match handle.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Splits `0..chunks` into `workers` contiguous, ascending runs.
fn worker_runs(chunks: usize, workers: usize) -> impl Iterator<Item = Range<usize>> {
    (0..workers).map(move |w| (w * chunks / workers)..((w + 1) * chunks / workers))
}

/// The element-range claim table of a launch: worker `w` owns
/// `claims[w]`. This single table both feeds the `split_at_mut` loop
/// and is what the shadow-access checker verifies, so the ranges the
/// checker approves are exactly the ranges the workers receive.
fn worker_elem_claims(
    chunks: usize,
    workers: usize,
    grain: usize,
    len: usize,
) -> Vec<Range<usize>> {
    worker_runs(chunks, workers)
        .map(|run| (run.start * grain).min(len)..(run.end * grain).min(len))
        .collect()
}

/// Applies `f` to every chunk of `data` (mutably), returning the
/// per-chunk results in chunk order.
///
/// `f` receives the global element offset of the chunk plus the chunk
/// slice. Chunks are assigned to workers as contiguous runs, so the
/// returned `Vec` is always in ascending chunk order regardless of the
/// thread count; below the `cutoff` (measured in elements of `data`),
/// or with one thread, the chunks run inline, in order.
pub fn par_chunks_mut<T, A, F>(data: &mut [T], grain: usize, cutoff: Cutoff, f: F) -> Vec<A>
where
    T: Send,
    A: Send,
    F: Fn(usize, &mut [T]) -> A + Sync,
{
    let len = data.len();
    let grain = grain.max(1);
    let chunks = chunk_count(len, grain);
    let workers = launch_workers(len, chunks, cutoff);
    if workers <= 1 {
        if shadow::enabled() {
            let grid: Vec<Range<usize>> = chunk_ranges(len, grain).collect();
            shadow::check_launch("par_chunks_mut", len, &grid);
        }
        let mut out = Vec::with_capacity(chunks);
        let mut start = 0;
        for chunk in data.chunks_mut(grain) {
            out.push(f(start, chunk));
            start += chunk.len();
        }
        return out;
    }
    let claims = worker_elem_claims(chunks, workers, grain, len);
    if shadow::enabled() {
        // Verified before any worker spawns: a bad claim table panics on
        // the launching thread, never stranding workers at a barrier.
        shadow::check_launch("par_chunks_mut", len, &claims);
    }
    let mut per_worker: Vec<Vec<A>> = Vec::with_capacity(workers);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut rest = data;
        for claim in &claims {
            let (mine, tail) = rest.split_at_mut(claim.end - claim.start);
            rest = tail;
            let base = claim.start;
            let fref = &f;
            handles.push(scope.spawn(move || {
                let mut out = Vec::with_capacity(chunk_count(mine.len(), grain));
                let mut start = base;
                for chunk in mine.chunks_mut(grain) {
                    out.push(fref(start, chunk));
                    start += chunk.len();
                }
                out
            }));
        }
        for h in handles {
            per_worker.push(join(h));
        }
    });
    per_worker.into_iter().flatten().collect()
}

/// Maps every chunk range of `0..len` through `map` and folds the
/// per-chunk partials **sequentially, in ascending chunk order**.
///
/// Because `map` sees only the chunk range (whose layout is a function
/// of `(len, grain)`) and the fold is an ordered serial pass on the
/// calling thread, the result is bit-identical at any thread count and
/// on either side of the `cutoff` (measured in items of `0..len`) —
/// the inline path maps the same chunks in the same order.
pub fn par_map_reduce<A, B, M, F>(
    len: usize,
    grain: usize,
    cutoff: Cutoff,
    map: M,
    init: B,
    mut fold: F,
) -> B
where
    A: Send,
    M: Fn(Range<usize>) -> A + Sync,
    F: FnMut(B, A) -> B,
{
    let grain = grain.max(1);
    let chunks = chunk_count(len, grain);
    let workers = launch_workers(len, chunks, cutoff);
    if workers <= 1 {
        let mut acc = init;
        for r in chunk_ranges(len, grain) {
            acc = fold(acc, map(r));
        }
        return acc;
    }
    let mut per_worker: Vec<Vec<A>> = Vec::with_capacity(workers);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for run in worker_runs(chunks, workers) {
            let mref = &map;
            handles.push(scope.spawn(move || {
                run.map(|c| mref((c * grain)..((c + 1) * grain).min(len)))
                    .collect::<Vec<A>>()
            }));
        }
        for h in handles {
            per_worker.push(join(h));
        }
    });
    let mut acc = init;
    for a in per_worker.into_iter().flatten() {
        acc = fold(acc, a);
    }
    acc
}

/// Maps every item of `items` through `f`, returning results in item
/// order (slot `i` always holds `f(i, &items[i])`).
///
/// `grain` controls load balance only: each worker takes a contiguous
/// run of chunks. Results never depend on the thread count (or on
/// which side of the `cutoff` the launch lands) as long as `f` is a
/// pure function of its arguments.
pub fn par_map<T, R, F>(items: &[T], grain: usize, cutoff: Cutoff, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_reduce(
        items.len(),
        grain,
        cutoff,
        |r| r.map(|i| f(i, &items[i])).collect::<Vec<R>>(),
        Vec::with_capacity(items.len()),
        |mut acc, mut part| {
            acc.append(&mut part);
            acc
        },
    )
}

/// Work-queue variant of [`par_map`]: workers claim items one at a
/// time from an atomic next-item counter instead of taking fixed
/// contiguous runs, then results are reassembled in item order.
///
/// This is the right shape when per-item cost varies wildly (the
/// router's speculative net plans: one net may search a huge window
/// while seven are trivial) — a straggler item no longer delays claims
/// of the items after it. The *claim order* is scheduling-dependent,
/// but each result is keyed by its item index and sorted before
/// returning, so as long as `f` is a pure function of `(i, &items[i])`
/// the output is identical to the serial `items.iter().map(...)` pass
/// — which is exactly what runs below the `cutoff` or with one worker.
pub fn par_map_queue<T, R, F>(items: &[T], cutoff: Cutoff, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = launch_workers(n, n, cutoff);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let fref = &f;
            let nref = &next;
            handles.push(scope.spawn(move || {
                let mut got = Vec::new();
                loop {
                    let i = nref.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    got.push((i, fref(i, &items[i])));
                }
                got
            }));
        }
        for h in handles {
            per_worker.push(join(h));
        }
    });
    let mut all: Vec<(usize, R)> = per_worker.into_iter().flatten().collect();
    all.sort_by_key(|&(i, _)| i);
    all.into_iter().map(|(_, r)| r).collect()
}

/// A sense-reversing spin barrier: orders of magnitude cheaper than
/// `std::sync::Barrier` for the tight per-iteration synchronisation the
/// eigensolver team needs (thousands of waits per call).
struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(parties: usize) -> Self {
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until all `parties` workers arrive. The last arrival
    /// resets the count *before* bumping the generation, so the barrier
    /// is immediately reusable.
    fn wait(&self) {
        if self.parties <= 1 {
            return;
        }
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins = spins.saturating_add(1);
                if spins > 1 << 14 {
                    // Oversubscribed (e.g. a 1-core container): yield so
                    // the straggler can actually run.
                    thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// Per-worker context handed to a [`team_split_mut`] body.
pub struct TeamCtx<'a> {
    /// This worker's index in `0..workers`.
    pub worker: usize,
    /// Total workers in the team (1 on the serial path).
    pub workers: usize,
    /// First item (row) owned by this worker.
    pub first_item: usize,
    /// Number of items owned by this worker.
    pub items: usize,
    /// Total items across the whole team.
    pub total_items: usize,
    barrier: &'a SpinBarrier,
}

impl TeamCtx<'_> {
    /// Barrier: blocks until every worker in the team has called it.
    /// A no-op for a one-worker team. All data published to a
    /// [`SharedF64Buf`] before the barrier is visible after it.
    pub fn sync(&self) {
        self.barrier.wait();
        // Barriers are collective, so every worker's shadow phase
        // counter advances in lockstep (a no-op outside shadow mode).
        shadow::bump_phase();
    }

    /// Whether `item` falls in this worker's owned range.
    pub fn owns(&self, item: usize) -> bool {
        item >= self.first_item && item < self.first_item + self.items
    }

    /// This worker's owned item range.
    pub fn range(&self) -> Range<usize> {
        self.first_item..self.first_item + self.items
    }
}

/// SPMD team over `data` viewed as `data.len() / item_len` fixed-size
/// items (e.g. matrix rows): each worker owns a contiguous run of items
/// and runs `body` to completion, synchronising via [`TeamCtx::sync`].
///
/// Worker boundaries are aligned to multiples of `grain` items, so a
/// chunk grid built with [`chunk_ranges`]`(n_items, grain)` is never
/// split across workers — each chunk has exactly one owner. Returns the
/// per-worker results in worker order. Below the `cutoff` (measured in
/// items), with one worker, or when [`pool_threads`] is 1, `body` runs
/// inline on the calling thread with the full slice, executing the
/// same code path.
///
/// # Panics
///
/// Panics if `item_len == 0` or `data.len()` is not a multiple of
/// `item_len`.
pub fn team_split_mut<T, R, F>(
    data: &mut [T],
    item_len: usize,
    grain: usize,
    cutoff: Cutoff,
    body: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(TeamCtx<'_>, &mut [T]) -> R + Sync,
{
    assert!(item_len > 0, "team_split_mut: item_len must be positive");
    assert_eq!(
        data.len() % item_len,
        0,
        "team_split_mut: data must hold whole items"
    );
    let total_items = data.len() / item_len;
    let grain = grain.max(1);
    let blocks = chunk_count(total_items, grain);
    let workers = launch_workers(total_items, blocks, cutoff);
    if workers <= 1 {
        let barrier = SpinBarrier::new(1);
        let ctx = TeamCtx {
            worker: 0,
            workers: 1,
            first_item: 0,
            items: total_items,
            total_items,
            barrier: &barrier,
        };
        let _identity = shadow::enter_team(0);
        return vec![body(ctx, data)];
    }
    let claims = worker_elem_claims(blocks, workers, grain, total_items);
    if shadow::enabled() {
        // Verified before any worker spawns: a bad claim table panics on
        // the launching thread, never stranding workers at a barrier.
        shadow::check_launch("team_split_mut", total_items, &claims);
    }
    let barrier = SpinBarrier::new(workers);
    let mut results: Vec<R> = Vec::with_capacity(workers);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut rest = data;
        for (w, claim) in claims.iter().enumerate() {
            let (mine, tail) = rest.split_at_mut((claim.end - claim.start) * item_len);
            rest = tail;
            let ctx = TeamCtx {
                worker: w,
                workers,
                first_item: claim.start,
                items: claim.end - claim.start,
                total_items,
                barrier: &barrier,
            };
            let bref = &body;
            handles.push(scope.spawn(move || {
                let _identity = shadow::enter_team(ctx.worker);
                bref(ctx, mine)
            }));
        }
        for h in handles {
            results.push(join(h));
        }
    });
    results
}

/// A shared `f64` exchange buffer for [`team_split_mut`] bodies, backed
/// by `AtomicU64` bit patterns so no `unsafe` is needed.
///
/// Loads and stores are `Relaxed`: the intended protocol is
/// write → [`TeamCtx::sync`] → read, with the barrier providing the
/// ordering. Values written outside that protocol may be observed torn
/// across *different* slots but never within one (each slot is a single
/// atomic word).
pub struct SharedF64Buf {
    bits: Vec<AtomicU64>,
    /// Shadow-access tracking, snapshotted from [`shadow::enabled`] at
    /// construction; `None` (the default) costs one branch per store.
    shadow: Option<shadow::ShadowSlots>,
}

impl SharedF64Buf {
    /// A buffer of `len` slots, all initialised to `0.0`.
    pub fn new(len: usize) -> Self {
        SharedF64Buf {
            bits: (0..len).map(|_| AtomicU64::new(0)).collect(),
            shadow: shadow::enabled().then(shadow::ShadowSlots::new),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the buffer has no slots.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Stores `value` into slot `i` (bit-exact).
    pub fn set(&self, i: usize, value: f64) {
        if let Some(slots) = &self.shadow {
            slots.record(i);
        }
        self.bits[i].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Loads slot `i` (bit-exact).
    pub fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.bits[i].load(Ordering::Relaxed))
    }

    /// Drains the shadow-access violations recorded on this buffer:
    /// same-slot writes by different workers within one barrier phase.
    /// Always empty when the buffer was created with the shadow checker
    /// disabled (writes are then untracked).
    pub fn shadow_violations(&self) -> Vec<String> {
        self.shadow
            .as_ref()
            .map_or_else(Vec::new, shadow::ShadowSlots::take_violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises tests that mutate the process-wide thread override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn with_override<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_thread_override(Some(n));
        let out = f();
        set_thread_override(None);
        out
    }

    #[test]
    fn resolve_threads_parses_and_clamps() {
        assert_eq!(resolve_threads(None, 8), 8);
        assert_eq!(resolve_threads(Some("3"), 8), 3);
        assert_eq!(resolve_threads(Some(" 2 "), 8), 2);
        assert_eq!(resolve_threads(Some("0"), 8), 8, "0 means auto");
        assert_eq!(resolve_threads(Some("nope"), 8), 8);
        assert_eq!(resolve_threads(Some("9999"), 8), MAX_THREADS);
        assert_eq!(resolve_threads(None, 0), 1, "hardware floor is 1");
    }

    #[test]
    fn override_round_trips() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_thread_override(Some(5));
        assert_eq!(thread_override(), Some(5));
        assert_eq!(threads(), 5);
        set_thread_override(None);
        assert_eq!(thread_override(), None);
    }

    #[test]
    fn override_zero_means_hardware_default() {
        // Unified with the NCS_THREADS=0 env semantics: 0 is "auto",
        // resolved against the machine, never a clamp to 1.
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_thread_override(Some(0));
        assert_eq!(thread_override(), Some(hardware_threads()));
        assert_eq!(threads(), hardware_threads());
        set_thread_override(None);
        assert_eq!(thread_override(), None);
    }

    #[test]
    fn pool_threads_caps_env_but_not_override() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_thread_override(None);
        assert!(pool_threads() <= hardware_threads());
        // An explicit override is exact, even when oversubscribed.
        set_thread_override(Some(hardware_threads() + 3));
        assert_eq!(pool_threads(), hardware_threads() + 3);
        set_thread_override(None);
    }

    #[test]
    fn hardware_threads_is_sane() {
        let hw = hardware_threads();
        assert!((1..=MAX_THREADS).contains(&hw));
        assert_eq!(hw, hardware_threads(), "cached value is stable");
    }

    #[test]
    fn cutoff_engages_by_total_work() {
        assert!(Cutoff::NONE.engages(0), "no cutoff engages everything");
        let c = Cutoff::min_work(1000);
        assert!(!c.engages(999));
        assert!(c.engages(1000));
        let weighted = Cutoff::min_work(1000).work_per_item(250);
        assert!(!weighted.engages(3));
        assert!(weighted.engages(4));
        // A zero per-item weight clamps to 1 instead of dividing by zero.
        assert!(!Cutoff::min_work(2).work_per_item(0).engages(1));
        assert!(Cutoff::min_work(2).work_per_item(0).engages(2));
    }

    #[test]
    fn chunk_grid_covers_len_exactly() {
        for (len, grain) in [(0, 4), (1, 4), (7, 3), (12, 3), (12, 100), (5, 0)] {
            let ranges: Vec<_> = chunk_ranges(len, grain).collect();
            assert_eq!(ranges.len(), chunk_count(len, grain));
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "ranges must be ascending and disjoint");
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, len, "ranges must cover 0..len");
        }
    }

    #[test]
    fn par_chunks_mut_matches_serial_at_any_thread_count() {
        let expect: Vec<f64> = (0..103).map(|i| (i as f64) * 2.0).collect();
        for t in [1, 2, 5] {
            let mut data: Vec<f64> = (0..103).map(|i| i as f64).collect();
            let sums = with_override(t, || {
                par_chunks_mut(&mut data, 10, Cutoff::NONE, |start, chunk| {
                    for (k, x) in chunk.iter_mut().enumerate() {
                        assert_eq!(*x, (start + k) as f64, "offsets must be global");
                        *x *= 2.0;
                    }
                    chunk.iter().sum::<f64>()
                })
            });
            assert_eq!(data, expect);
            assert_eq!(sums.len(), chunk_count(103, 10));
            let flat: f64 = sums.iter().sum();
            assert_eq!(flat, expect.iter().sum::<f64>());
        }
    }

    #[test]
    fn par_map_reduce_is_bit_identical_across_thread_counts() {
        let xs: Vec<f64> = (0..997).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let sum_at = |t: usize| {
            with_override(t, || {
                par_map_reduce(
                    xs.len(),
                    64,
                    Cutoff::NONE,
                    |r| xs[r].iter().sum::<f64>(),
                    0.0f64,
                    |acc, p| acc + p,
                )
            })
        };
        let reference = sum_at(1);
        for t in [2, 3, 7] {
            assert_eq!(sum_at(t).to_bits(), reference.to_bits());
        }
        // And the serial path is exactly the ordered chunk fold.
        let by_hand: f64 = chunk_ranges(xs.len(), 64)
            .map(|r| xs[r].iter().sum::<f64>())
            .sum();
        assert_eq!(reference.to_bits(), by_hand.to_bits());
    }

    #[test]
    fn cutoff_sides_are_bit_identical() {
        // The same launch, forced inline by a huge cutoff vs dispatched
        // with none, must agree to the bit at an oversubscribed count.
        let xs: Vec<f64> = (0..2048).map(|i| (i as f64).cos() / 3.0).collect();
        let run = |cutoff: Cutoff| {
            with_override(4, || {
                par_map_reduce(
                    xs.len(),
                    32,
                    cutoff,
                    |r| xs[r].iter().sum::<f64>(),
                    0.0f64,
                    |acc, p| acc + p,
                )
            })
        };
        let inline = run(Cutoff::min_work(usize::MAX));
        let pooled = run(Cutoff::NONE);
        assert_eq!(inline.to_bits(), pooled.to_bits());
    }

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..57).collect();
        for t in [1, 4] {
            let out = with_override(t, || par_map(&items, 5, Cutoff::NONE, |i, &x| (i, x * x)));
            assert_eq!(out.len(), items.len());
            for (i, (slot, sq)) in out.iter().enumerate() {
                assert_eq!(*slot, i);
                assert_eq!(*sq, i * i);
            }
        }
    }

    #[test]
    fn par_map_queue_preserves_item_order() {
        // Claim order is scheduling-dependent; the output must not be.
        let items: Vec<usize> = (0..201).collect();
        let expect: Vec<(usize, usize)> = items.iter().map(|&x| (x, x * 3)).collect();
        for t in [1, 2, 4, 7] {
            let out = with_override(t, || {
                par_map_queue(&items, Cutoff::NONE, |i, &x| {
                    // Uneven per-item cost to scramble the claim order.
                    if x % 13 == 0 {
                        std::thread::yield_now();
                    }
                    (i, x * 3)
                })
            });
            assert_eq!(out, expect);
        }
        // Below the cutoff the serial pass produces the same output.
        let inline = with_override(4, || {
            par_map_queue(&items, Cutoff::min_work(usize::MAX), |i, &x| (i, x * 3))
        });
        assert_eq!(inline, expect);
    }

    #[test]
    fn launch_decisions_are_trace_visible_and_size_only() {
        // The dispatch/fallback counters must be a pure function of the
        // problem size: identical event streams at 1 and 4 threads.
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let run = |t: usize| {
            set_thread_override(Some(t));
            let ((), events) = ncs_trace::capture(|| {
                // Engages: plenty of work, no cutoff.
                par_map_reduce(
                    4096,
                    64,
                    Cutoff::NONE,
                    |r| r.len() as f64,
                    0.0f64,
                    |a, p| a + p,
                );
                // Falls back: below a huge cutoff.
                par_map_reduce(
                    4096,
                    64,
                    Cutoff::min_work(usize::MAX),
                    |r| r.len() as f64,
                    0.0f64,
                    |a, p| a + p,
                );
                // Falls back: a single chunk can't use a pool.
                let mut one = [0.0f64; 3];
                par_chunks_mut(&mut one, 8, Cutoff::NONE, |_, _| ());
            });
            set_thread_override(None);
            events
        };
        let at1 = run(1);
        let at4 = run(4);
        assert_eq!(ncs_trace::structure(&at1), ncs_trace::structure(&at4));
        let count = |events: &[ncs_trace::TraceEvent], which: &str| {
            events
                .iter()
                .filter(
                    |e| matches!(e, ncs_trace::TraceEvent::Count { name, .. } if *name == which),
                )
                .count()
        };
        assert_eq!(count(&at1, "par.pool_dispatches"), 1);
        assert_eq!(count(&at1, "par.inline_fallbacks"), 2);
    }

    #[test]
    fn team_split_covers_items_and_aligns_to_grain() {
        for t in [1, 3, 4] {
            let mut rows = vec![0u32; 11 * 4]; // 11 items of length 4
            let infos = with_override(t, || {
                team_split_mut(&mut rows, 4, 2, Cutoff::NONE, |ctx, mine| {
                    assert_eq!(mine.len(), ctx.items * 4);
                    assert_eq!(ctx.first_item % 2, 0, "grain-aligned boundaries");
                    for x in mine.iter_mut() {
                        *x += 1;
                    }
                    (ctx.worker, ctx.first_item, ctx.items)
                })
            });
            assert!(rows.iter().all(|&x| x == 1), "every item visited once");
            let mut next = 0;
            for (w, first, items) in &infos {
                assert_eq!(*w, infos[*w].0);
                assert_eq!(*first, next);
                next += items;
            }
            assert_eq!(next, 11);
        }
    }

    #[test]
    fn team_barrier_publishes_shared_values() {
        // Classic SPMD round trip: worker 0 publishes, everyone reads
        // after the barrier, everyone publishes partials, worker 0 folds
        // in index order. Must give the same answer at any team size.
        let run_at = |t: usize| {
            with_override(t, || {
                let mut rows = vec![0.0f64; 16 * 2];
                for (i, x) in rows.iter_mut().enumerate() {
                    *x = i as f64;
                }
                let buf = SharedF64Buf::new(16);
                let seedbuf = SharedF64Buf::new(1);
                let folds = team_split_mut(&mut rows, 2, 1, Cutoff::NONE, |ctx, mine| {
                    if ctx.worker == 0 {
                        seedbuf.set(0, 0.5);
                    }
                    ctx.sync();
                    let seed = seedbuf.get(0);
                    for (k, item) in mine.chunks(2).enumerate() {
                        buf.set(ctx.first_item + k, seed * (item[0] + item[1]));
                    }
                    ctx.sync();
                    // Every worker folds the full buffer in index order:
                    // identical bits on all workers.
                    let mut acc = 0.0;
                    for i in 0..buf.len() {
                        acc += buf.get(i);
                    }
                    acc
                });
                for w in &folds {
                    assert_eq!(w.to_bits(), folds[0].to_bits());
                }
                folds[0]
            })
        };
        let reference = run_at(1);
        for t in [2, 4] {
            assert_eq!(run_at(t).to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn shared_buf_round_trips_exact_bits() {
        let buf = SharedF64Buf::new(3);
        assert_eq!(buf.len(), 3);
        assert!(!buf.is_empty());
        for v in [0.0, -0.0, 1.5e-300, f64::INFINITY, f64::MIN_POSITIVE] {
            buf.set(1, v);
            assert_eq!(buf.get(1).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn shadow_checker_passes_clean_launches() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_shadow_override(Some(true));
        set_thread_override(Some(3));
        let before = shadow::violation_count();
        let mut data = vec![0u32; 37];
        par_chunks_mut(&mut data, 4, Cutoff::NONE, |_, c| {
            for x in c.iter_mut() {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
        let buf = SharedF64Buf::new(8);
        let mut rows = vec![0.0f64; 8];
        team_split_mut(&mut rows, 1, 1, Cutoff::NONE, |ctx, mine| {
            // Each worker publishes only its own slots: disjoint by
            // construction, so the checker must stay silent.
            for k in 0..mine.len() {
                buf.set(ctx.first_item + k, ctx.worker as f64);
            }
            ctx.sync();
        });
        assert!(buf.shadow_violations().is_empty());
        assert_eq!(shadow::violation_count(), before);
        set_thread_override(None);
        set_shadow_override(None);
    }

    #[test]
    fn shadow_checker_catches_same_phase_slot_conflict() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_shadow_override(Some(true));
        set_thread_override(Some(2));
        let before = shadow::violation_count();
        let buf = SharedF64Buf::new(4);
        let mut rows = vec![0.0f64; 8]; // 2 grain-4 blocks => 2 workers
        team_split_mut(&mut rows, 1, 4, Cutoff::NONE, |ctx, _mine| {
            // Both workers store slot 0 between the same barrier pair:
            // an unordered publication the barrier cannot sequence.
            buf.set(0, ctx.worker as f64);
            ctx.sync();
        });
        let v = buf.shadow_violations();
        assert_eq!(v.len(), 1, "expected exactly one conflict: {v:?}");
        assert!(v[0].contains("slot 0"), "{}", v[0]);
        assert_eq!(shadow::violation_count(), before + 1);
        set_thread_override(None);
        set_shadow_override(None);
    }

    #[test]
    fn deliberately_overlapping_chunk_claims_are_caught() {
        // The claim table a buggy worker-run split would hand to
        // par_chunks_mut: each worker's end rounds up one extra chunk,
        // so every boundary chunk gains a second writer.
        let (len, grain, workers) = (100usize, 10usize, 4usize);
        let chunks = chunk_count(len, grain);
        let buggy: Vec<Range<usize>> = (0..workers)
            .map(|w| {
                let start = w * chunks / workers * grain;
                let end = ((w + 1) * chunks / workers * grain + grain).min(len);
                start..end
            })
            .collect();
        let err = shadow::verify_claims(len, &buggy).unwrap_err();
        assert!(matches!(err, shadow::ShadowError::Overlap { .. }), "{err}");
        // The exact table the real split computes passes.
        assert_eq!(
            shadow::verify_claims(len, &worker_elem_claims(chunks, workers, grain, len)),
            Ok(())
        );
    }

    #[test]
    #[should_panic(expected = "shadow-access checker")]
    fn launch_assertion_panics_on_bad_claims() {
        shadow::check_launch("par_chunks_mut", 10, &[0..6, 4..10]);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut empty: [f64; 0] = [];
        assert!(par_chunks_mut(&mut empty, 4, Cutoff::NONE, |_, _| 0).is_empty());
        assert_eq!(
            par_map_reduce(0, 4, Cutoff::NONE, |_| 1.0f64, 7.0f64, |a, b| a + b).to_bits(),
            7.0f64.to_bits()
        );
        let none: [u8; 0] = [];
        assert!(par_map(&none, 4, Cutoff::NONE, |_, &x| x).is_empty());
        let empty_q: [u8; 0] = [];
        assert!(par_map_queue(&empty_q, Cutoff::NONE, |_, &x| x).is_empty());
    }
}
