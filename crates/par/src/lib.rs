//! Deterministic scoped parallelism for the AutoNCS workspace.
//!
//! Every primitive in this crate obeys one contract: **the chunk layout
//! is a function of the problem size only, never of the thread count or
//! of scheduling**. Workers fill pre-indexed output slots (or return
//! per-chunk partials that are folded sequentially in chunk order), so a
//! kernel built on these primitives produces bit-identical floating
//! point results at `NCS_THREADS=1`, `NCS_THREADS=4`, or any other
//! setting. The single-thread case never spawns: it runs the identical
//! chunk/fold structure inline on the calling thread.
//!
//! Thread-count resolution, in priority order:
//!
//! 1. an in-process override installed with [`set_thread_override`]
//!    (used by benches and determinism tests — no racy env mutation),
//! 2. the `NCS_THREADS` environment variable (read once per process;
//!    `0` or unparseable values fall back to the hardware default),
//! 3. [`std::thread::available_parallelism`].
//!
//! # Example
//!
//! ```
//! // A chunked sum: same bits at any thread count, because the chunk
//! // grid depends only on (len, grain) and partials fold in order.
//! let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
//! let total = ncs_par::par_map_reduce(
//!     xs.len(),
//!     128,
//!     |r| xs[r].iter().sum::<f64>(),
//!     0.0,
//!     |acc, part| acc + part,
//! );
//! let serial: f64 = ncs_par::chunk_ranges(xs.len(), 128)
//!     .map(|r| xs[r].iter().sum::<f64>())
//!     .sum();
//! assert_eq!(total.to_bits(), serial.to_bits());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// Upper bound on the worker count, to keep a typo'd `NCS_THREADS`
/// from spawning thousands of threads.
pub const MAX_THREADS: usize = 64;

/// In-process override: 0 means "no override".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `NCS_THREADS` / hardware default, resolved once per process.
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// Resolves the worker count used by every primitive in this crate.
///
/// Priority: [`set_thread_override`] > `NCS_THREADS` > hardware
/// parallelism. Always in `1..=`[`MAX_THREADS`]. Note the environment
/// variable is sampled once per process, on first use.
pub fn threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    *ENV_THREADS.get_or_init(|| {
        let hw = thread::available_parallelism().map_or(1, |n| n.get());
        resolve_threads(std::env::var("NCS_THREADS").ok().as_deref(), hw)
    })
}

/// Pure thread-count resolution, separated from process state so it can
/// be unit-tested without touching the environment.
///
/// `None`, an unparseable string, or `0` yield the hardware default;
/// everything is clamped to `1..=`[`MAX_THREADS`].
pub fn resolve_threads(env_value: Option<&str>, hardware: usize) -> usize {
    let requested = env_value
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(hardware);
    requested.clamp(1, MAX_THREADS)
}

/// Installs (`Some(n)`) or removes (`None`) an in-process thread-count
/// override that takes priority over `NCS_THREADS`.
///
/// Determinism tests and benches use this to compare thread counts
/// within one process. `Some(0)` is treated as `Some(1)`.
pub fn set_thread_override(n: Option<usize>) {
    let v = n.map_or(0, |x| x.clamp(1, MAX_THREADS));
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// Returns the current override installed by [`set_thread_override`].
pub fn thread_override() -> Option<usize> {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Number of fixed-size chunks covering `len` items at `grain` items
/// per chunk (the last chunk may be short). `grain` is clamped to ≥ 1.
pub fn chunk_count(len: usize, grain: usize) -> usize {
    len.div_ceil(grain.max(1))
}

/// The fixed chunk grid: disjoint, ascending ranges covering `0..len`.
///
/// This grid — a function of `(len, grain)` only — is the unit of work
/// distribution everywhere in this crate, which is what makes results
/// independent of the thread count.
pub fn chunk_ranges(len: usize, grain: usize) -> impl Iterator<Item = Range<usize>> {
    let grain = grain.max(1);
    (0..chunk_count(len, grain)).map(move |c| (c * grain)..((c + 1) * grain).min(len))
}

/// Joins a scoped worker, propagating any panic to the caller.
fn join<R>(handle: thread::ScopedJoinHandle<'_, R>) -> R {
    match handle.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Splits `0..chunks` into `workers` contiguous, ascending runs.
fn worker_runs(chunks: usize, workers: usize) -> impl Iterator<Item = Range<usize>> {
    (0..workers).map(move |w| (w * chunks / workers)..((w + 1) * chunks / workers))
}

/// Applies `f` to every chunk of `data` (mutably), returning the
/// per-chunk results in chunk order.
///
/// `f` receives the global element offset of the chunk plus the chunk
/// slice. Chunks are assigned to workers as contiguous runs, so the
/// returned `Vec` is always in ascending chunk order regardless of the
/// thread count; with one thread the chunks run inline, in order.
pub fn par_chunks_mut<T, A, F>(data: &mut [T], grain: usize, f: F) -> Vec<A>
where
    T: Send,
    A: Send,
    F: Fn(usize, &mut [T]) -> A + Sync,
{
    let len = data.len();
    let grain = grain.max(1);
    let chunks = chunk_count(len, grain);
    let workers = threads().min(chunks.max(1));
    if workers <= 1 {
        let mut out = Vec::with_capacity(chunks);
        let mut start = 0;
        for chunk in data.chunks_mut(grain) {
            out.push(f(start, chunk));
            start += chunk.len();
        }
        return out;
    }
    let mut per_worker: Vec<Vec<A>> = Vec::with_capacity(workers);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut rest = data;
        let mut elem0 = 0usize;
        for run in worker_runs(chunks, workers) {
            let elem_end = (run.end * grain).min(len);
            let (mine, tail) = rest.split_at_mut(elem_end - elem0);
            rest = tail;
            let base = elem0;
            let fref = &f;
            handles.push(scope.spawn(move || {
                let mut out = Vec::with_capacity(run.len());
                let mut start = base;
                for chunk in mine.chunks_mut(grain) {
                    out.push(fref(start, chunk));
                    start += chunk.len();
                }
                out
            }));
            elem0 = elem_end;
        }
        for h in handles {
            per_worker.push(join(h));
        }
    });
    per_worker.into_iter().flatten().collect()
}

/// Maps every chunk range of `0..len` through `map` and folds the
/// per-chunk partials **sequentially, in ascending chunk order**.
///
/// Because `map` sees only the chunk range (whose layout is a function
/// of `(len, grain)`) and the fold is an ordered serial pass on the
/// calling thread, the result is bit-identical at any thread count —
/// including 1, where the chunks are mapped inline in the same order.
pub fn par_map_reduce<A, B, M, F>(len: usize, grain: usize, map: M, init: B, mut fold: F) -> B
where
    A: Send,
    M: Fn(Range<usize>) -> A + Sync,
    F: FnMut(B, A) -> B,
{
    let grain = grain.max(1);
    let chunks = chunk_count(len, grain);
    let workers = threads().min(chunks.max(1));
    if workers <= 1 {
        let mut acc = init;
        for r in chunk_ranges(len, grain) {
            acc = fold(acc, map(r));
        }
        return acc;
    }
    let mut per_worker: Vec<Vec<A>> = Vec::with_capacity(workers);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for run in worker_runs(chunks, workers) {
            let mref = &map;
            handles.push(scope.spawn(move || {
                run.map(|c| mref((c * grain)..((c + 1) * grain).min(len)))
                    .collect::<Vec<A>>()
            }));
        }
        for h in handles {
            per_worker.push(join(h));
        }
    });
    let mut acc = init;
    for a in per_worker.into_iter().flatten() {
        acc = fold(acc, a);
    }
    acc
}

/// Maps every item of `items` through `f`, returning results in item
/// order (slot `i` always holds `f(i, &items[i])`).
///
/// `grain` controls load balance only: each worker takes a contiguous
/// run of chunks. Results never depend on the thread count as long as
/// `f` is a pure function of its arguments.
pub fn par_map<T, R, F>(items: &[T], grain: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_reduce(
        items.len(),
        grain,
        |r| r.map(|i| f(i, &items[i])).collect::<Vec<R>>(),
        Vec::with_capacity(items.len()),
        |mut acc, mut part| {
            acc.append(&mut part);
            acc
        },
    )
}

/// A sense-reversing spin barrier: orders of magnitude cheaper than
/// `std::sync::Barrier` for the tight per-iteration synchronisation the
/// eigensolver team needs (thousands of waits per call).
struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(parties: usize) -> Self {
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Blocks until all `parties` workers arrive. The last arrival
    /// resets the count *before* bumping the generation, so the barrier
    /// is immediately reusable.
    fn wait(&self) {
        if self.parties <= 1 {
            return;
        }
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins = spins.saturating_add(1);
                if spins > 1 << 14 {
                    // Oversubscribed (e.g. a 1-core container): yield so
                    // the straggler can actually run.
                    thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// Per-worker context handed to a [`team_split_mut`] body.
pub struct TeamCtx<'a> {
    /// This worker's index in `0..workers`.
    pub worker: usize,
    /// Total workers in the team (1 on the serial path).
    pub workers: usize,
    /// First item (row) owned by this worker.
    pub first_item: usize,
    /// Number of items owned by this worker.
    pub items: usize,
    /// Total items across the whole team.
    pub total_items: usize,
    barrier: &'a SpinBarrier,
}

impl TeamCtx<'_> {
    /// Barrier: blocks until every worker in the team has called it.
    /// A no-op for a one-worker team. All data published to a
    /// [`SharedF64Buf`] before the barrier is visible after it.
    pub fn sync(&self) {
        self.barrier.wait();
    }

    /// Whether `item` falls in this worker's owned range.
    pub fn owns(&self, item: usize) -> bool {
        item >= self.first_item && item < self.first_item + self.items
    }

    /// This worker's owned item range.
    pub fn range(&self) -> Range<usize> {
        self.first_item..self.first_item + self.items
    }
}

/// SPMD team over `data` viewed as `data.len() / item_len` fixed-size
/// items (e.g. matrix rows): each worker owns a contiguous run of items
/// and runs `body` to completion, synchronising via [`TeamCtx::sync`].
///
/// Worker boundaries are aligned to multiples of `grain` items, so a
/// chunk grid built with [`chunk_ranges`]`(n_items, grain)` is never
/// split across workers — each chunk has exactly one owner. Returns the
/// per-worker results in worker order. With one worker (or when
/// [`threads`] is 1) `body` runs inline on the calling thread with the
/// full slice, executing the same code path.
///
/// # Panics
///
/// Panics if `item_len == 0` or `data.len()` is not a multiple of
/// `item_len`.
pub fn team_split_mut<T, R, F>(
    data: &mut [T],
    item_len: usize,
    grain: usize,
    max_workers: usize,
    body: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(TeamCtx<'_>, &mut [T]) -> R + Sync,
{
    assert!(item_len > 0, "team_split_mut: item_len must be positive");
    assert_eq!(
        data.len() % item_len,
        0,
        "team_split_mut: data must hold whole items"
    );
    let total_items = data.len() / item_len;
    let grain = grain.max(1);
    let blocks = chunk_count(total_items, grain);
    let workers = threads().min(max_workers.max(1)).min(blocks.max(1));
    if workers <= 1 {
        let barrier = SpinBarrier::new(1);
        let ctx = TeamCtx {
            worker: 0,
            workers: 1,
            first_item: 0,
            items: total_items,
            total_items,
            barrier: &barrier,
        };
        return vec![body(ctx, data)];
    }
    let barrier = SpinBarrier::new(workers);
    let mut results: Vec<R> = Vec::with_capacity(workers);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut rest = data;
        let mut item0 = 0usize;
        for (w, run) in worker_runs(blocks, workers).enumerate() {
            let item_end = (run.end * grain).min(total_items);
            let (mine, tail) = rest.split_at_mut((item_end - item0) * item_len);
            rest = tail;
            let ctx = TeamCtx {
                worker: w,
                workers,
                first_item: item0,
                items: item_end - item0,
                total_items,
                barrier: &barrier,
            };
            let bref = &body;
            handles.push(scope.spawn(move || bref(ctx, mine)));
            item0 = item_end;
        }
        for h in handles {
            results.push(join(h));
        }
    });
    results
}

/// A shared `f64` exchange buffer for [`team_split_mut`] bodies, backed
/// by `AtomicU64` bit patterns so no `unsafe` is needed.
///
/// Loads and stores are `Relaxed`: the intended protocol is
/// write → [`TeamCtx::sync`] → read, with the barrier providing the
/// ordering. Values written outside that protocol may be observed torn
/// across *different* slots but never within one (each slot is a single
/// atomic word).
pub struct SharedF64Buf {
    bits: Vec<AtomicU64>,
}

impl SharedF64Buf {
    /// A buffer of `len` slots, all initialised to `0.0`.
    pub fn new(len: usize) -> Self {
        SharedF64Buf {
            bits: (0..len).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the buffer has no slots.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Stores `value` into slot `i` (bit-exact).
    pub fn set(&self, i: usize, value: f64) {
        self.bits[i].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Loads slot `i` (bit-exact).
    pub fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.bits[i].load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises tests that mutate the process-wide thread override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn with_override<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_thread_override(Some(n));
        let out = f();
        set_thread_override(None);
        out
    }

    #[test]
    fn resolve_threads_parses_and_clamps() {
        assert_eq!(resolve_threads(None, 8), 8);
        assert_eq!(resolve_threads(Some("3"), 8), 3);
        assert_eq!(resolve_threads(Some(" 2 "), 8), 2);
        assert_eq!(resolve_threads(Some("0"), 8), 8, "0 means auto");
        assert_eq!(resolve_threads(Some("nope"), 8), 8);
        assert_eq!(resolve_threads(Some("9999"), 8), MAX_THREADS);
        assert_eq!(resolve_threads(None, 0), 1, "hardware floor is 1");
    }

    #[test]
    fn override_round_trips() {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_thread_override(Some(5));
        assert_eq!(thread_override(), Some(5));
        assert_eq!(threads(), 5);
        set_thread_override(Some(0));
        assert_eq!(thread_override(), Some(1), "0 clamps to 1");
        set_thread_override(None);
        assert_eq!(thread_override(), None);
    }

    #[test]
    fn chunk_grid_covers_len_exactly() {
        for (len, grain) in [(0, 4), (1, 4), (7, 3), (12, 3), (12, 100), (5, 0)] {
            let ranges: Vec<_> = chunk_ranges(len, grain).collect();
            assert_eq!(ranges.len(), chunk_count(len, grain));
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "ranges must be ascending and disjoint");
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, len, "ranges must cover 0..len");
        }
    }

    #[test]
    fn par_chunks_mut_matches_serial_at_any_thread_count() {
        let expect: Vec<f64> = (0..103).map(|i| (i as f64) * 2.0).collect();
        for t in [1, 2, 5] {
            let mut data: Vec<f64> = (0..103).map(|i| i as f64).collect();
            let sums = with_override(t, || {
                par_chunks_mut(&mut data, 10, |start, chunk| {
                    for (k, x) in chunk.iter_mut().enumerate() {
                        assert_eq!(*x, (start + k) as f64, "offsets must be global");
                        *x *= 2.0;
                    }
                    chunk.iter().sum::<f64>()
                })
            });
            assert_eq!(data, expect);
            assert_eq!(sums.len(), chunk_count(103, 10));
            let flat: f64 = sums.iter().sum();
            assert_eq!(flat, expect.iter().sum::<f64>());
        }
    }

    #[test]
    fn par_map_reduce_is_bit_identical_across_thread_counts() {
        let xs: Vec<f64> = (0..997).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let sum_at = |t: usize| {
            with_override(t, || {
                par_map_reduce(
                    xs.len(),
                    64,
                    |r| xs[r].iter().sum::<f64>(),
                    0.0f64,
                    |acc, p| acc + p,
                )
            })
        };
        let reference = sum_at(1);
        for t in [2, 3, 7] {
            assert_eq!(sum_at(t).to_bits(), reference.to_bits());
        }
        // And the serial path is exactly the ordered chunk fold.
        let by_hand: f64 = chunk_ranges(xs.len(), 64)
            .map(|r| xs[r].iter().sum::<f64>())
            .sum();
        assert_eq!(reference.to_bits(), by_hand.to_bits());
    }

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..57).collect();
        for t in [1, 4] {
            let out = with_override(t, || par_map(&items, 5, |i, &x| (i, x * x)));
            assert_eq!(out.len(), items.len());
            for (i, (slot, sq)) in out.iter().enumerate() {
                assert_eq!(*slot, i);
                assert_eq!(*sq, i * i);
            }
        }
    }

    #[test]
    fn team_split_covers_items_and_aligns_to_grain() {
        for t in [1, 3, 4] {
            let mut rows = vec![0u32; 11 * 4]; // 11 items of length 4
            let infos = with_override(t, || {
                team_split_mut(&mut rows, 4, 2, usize::MAX, |ctx, mine| {
                    assert_eq!(mine.len(), ctx.items * 4);
                    assert_eq!(ctx.first_item % 2, 0, "grain-aligned boundaries");
                    for x in mine.iter_mut() {
                        *x += 1;
                    }
                    (ctx.worker, ctx.first_item, ctx.items)
                })
            });
            assert!(rows.iter().all(|&x| x == 1), "every item visited once");
            let mut next = 0;
            for (w, first, items) in &infos {
                assert_eq!(*w, infos[*w].0);
                assert_eq!(*first, next);
                next += items;
            }
            assert_eq!(next, 11);
        }
    }

    #[test]
    fn team_barrier_publishes_shared_values() {
        // Classic SPMD round trip: worker 0 publishes, everyone reads
        // after the barrier, everyone publishes partials, worker 0 folds
        // in index order. Must give the same answer at any team size.
        let run_at = |t: usize| {
            with_override(t, || {
                let mut rows = vec![0.0f64; 16 * 2];
                for (i, x) in rows.iter_mut().enumerate() {
                    *x = i as f64;
                }
                let buf = SharedF64Buf::new(16);
                let seedbuf = SharedF64Buf::new(1);
                let folds = team_split_mut(&mut rows, 2, 1, usize::MAX, |ctx, mine| {
                    if ctx.worker == 0 {
                        seedbuf.set(0, 0.5);
                    }
                    ctx.sync();
                    let seed = seedbuf.get(0);
                    for (k, item) in mine.chunks(2).enumerate() {
                        buf.set(ctx.first_item + k, seed * (item[0] + item[1]));
                    }
                    ctx.sync();
                    // Every worker folds the full buffer in index order:
                    // identical bits on all workers.
                    let mut acc = 0.0;
                    for i in 0..buf.len() {
                        acc += buf.get(i);
                    }
                    acc
                });
                for w in &folds {
                    assert_eq!(w.to_bits(), folds[0].to_bits());
                }
                folds[0]
            })
        };
        let reference = run_at(1);
        for t in [2, 4] {
            assert_eq!(run_at(t).to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn shared_buf_round_trips_exact_bits() {
        let buf = SharedF64Buf::new(3);
        assert_eq!(buf.len(), 3);
        assert!(!buf.is_empty());
        for v in [0.0, -0.0, 1.5e-300, f64::INFINITY, f64::MIN_POSITIVE] {
            buf.set(1, v);
            assert_eq!(buf.get(1).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut empty: [f64; 0] = [];
        assert!(par_chunks_mut(&mut empty, 4, |_, _| 0).is_empty());
        assert_eq!(
            par_map_reduce(0, 4, |_| 1.0f64, 7.0f64, |a, b| a + b).to_bits(),
            7.0f64.to_bits()
        );
        let none: [u8; 0] = [];
        assert!(par_map(&none, 4, |_, &x| x).is_empty());
    }
}
