//! The rule registry: every invariant `ncs-lint` enforces.
//!
//! Rules come in two layers. *Lexical* rules walk the token stream of
//! one file (plus its [`FileContext`]) and emit [`Diagnostic`]s; they
//! never see comments or string contents — the lexer already classified
//! those — so `"unwrap"` in a doc example or a format string is never a
//! finding. *Semantic* rules additionally consume the [`crate::syntax`]
//! layer (call expressions, `use` roots, loop spans, hot functions) for
//! invariants a flat stream cannot express: `Cutoff` discipline at
//! `ncs_par` call sites, the crate-layering DAG, wall-clock and
//! environment-read confinement, and allocation inside hot loops.
//!
//! A final meta-check, `stale-waiver`, flags `ncs-lint: allow(...)`
//! comments that no longer suppress anything (severity warning — fails
//! only under `--strict`).

use std::collections::BTreeSet;

use crate::lexer::{LexedFile, Token, TokenKind};
use crate::syntax::{self, Syntax};
use crate::{Diagnostic, FileContext, Severity};

/// Crates whose non-test library code must be panic-free.
pub const PANIC_FREE_CRATES: &[&str] = &[
    "linalg", "cluster", "net", "phys", "xbar", "tech", "core", "serve",
];

/// Flow-path crates where hash collections are banned (iteration order
/// would leak into mapping/placement/routing statistics).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "linalg", "cluster", "net", "phys", "xbar", "tech", "core", "serve",
];

/// Numeric-kernel crates where narrowing `as` casts need a waiver.
pub const NUMERIC_CRATES: &[&str] = &["linalg", "cluster", "xbar", "phys", "tech"];

/// Method calls that introduce panic paths.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that introduce panic paths.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// Banned hash-collection type names.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Thread-spawning entry points banned outside `crates/par`.
const THREAD_ENTRY_POINTS: &[&str] = &["spawn", "scope", "Builder"];

/// Terminal-printing macros banned in flow-crate library code.
const LOG_MACROS: &[&str] = &["println", "eprintln"];

/// Cast targets considered lossy in numeric kernels: every float/int
/// type narrower than 64 bits. (`as f64` / `as i64` / `as usize` pass:
/// index math and float widening are pervasive and reviewed case by
/// case; the narrow targets are where silent precision loss hides.)
const NARROW_TARGETS: &[&str] = &["f32", "i8", "i16", "i32", "u8", "u16", "u32"];

/// `ncs_par` entry points that take a [`Cutoff`] serial-fallback
/// threshold as an argument.
const PAR_PRIMITIVES: &[&str] = &[
    "par_map",
    "par_map_reduce",
    "par_chunks_mut",
    "team_split_mut",
    "par_map_queue",
];

/// Wall-clock types banned outside `ncs-bench` / `ncs-trace`: flow
/// kernels that read time produce timing-dependent (nondeterministic)
/// behavior or smuggle benchmarking into library code.
const WALLCLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

/// Crates allowed to read the wall clock.
const WALLCLOCK_CRATES: &[&str] = &["bench", "trace"];

/// The designated configuration modules allowed to read `std::env`.
/// Everything else must take configuration as arguments so runs stay
/// reproducible from their inputs alone (bin targets are exempt).
const ENV_ALLOWED_FILES: &[&str] = &[
    "crates/par/src/lib.rs",
    "crates/par/src/shadow.rs",
    "crates/trace/src/lib.rs",
    "crates/bench/src/harness.rs",
];

/// The crate-layering DAG: for each crate, the `ncs_*` crates it may
/// import (`use ncs_x::...`). Mirrors the workspace `Cargo.toml` reality
/// of core→flow→numerics→infrastructure; a `use` outside this list is a
/// back-edge that would let a lower layer grow an upward dependency.
/// Self-imports and `std`/`crate`/`super` roots are always allowed;
/// `autoncs` is the `core` crate's library name.
const CRATE_LAYERS: &[(&str, &[&str])] = &[
    ("rng", &[]),
    ("tech", &[]),
    ("trace", &[]),
    ("lint", &[]),
    ("par", &["trace"]),
    ("linalg", &["par", "trace", "rng"]),
    ("net", &["linalg", "rng"]),
    ("xbar", &["linalg", "rng"]),
    ("cluster", &["linalg", "net", "rng", "par", "trace"]),
    (
        "phys",
        &["par", "trace", "linalg", "tech", "cluster", "net", "rng"],
    ),
    (
        "serve",
        &[
            "par", "trace", "linalg", "tech", "cluster", "net", "rng", "phys",
        ],
    ),
    (
        "core",
        &[
            "par", "trace", "linalg", "tech", "cluster", "net", "xbar", "rng", "phys", "serve",
        ],
    ),
    (
        "bench",
        &[
            "par", "trace", "linalg", "tech", "cluster", "net", "xbar", "rng", "phys", "core",
            "serve",
        ],
    ),
];

/// Static description of one lint rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case name (used in waivers and diagnostics).
    pub name: &'static str,
    /// One-line human description.
    pub summary: &'static str,
}

/// Every rule, in evaluation order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "no-panic-paths",
        summary: "no unwrap()/expect()/panic!/todo!/unimplemented!/unreachable! in \
                  non-test library code of the flow crates",
    },
    Rule {
        name: "deterministic-iteration",
        summary: "no HashMap/HashSet in flow-path crates; use BTreeMap/BTreeSet or \
                  indexed Vec so iteration order is reproducible",
    },
    Rule {
        name: "lossy-cast-audit",
        summary: "casts to sub-64-bit numeric types (f32, i8..i32, u8..u32) in \
                  numeric kernels require an explicit waiver",
    },
    Rule {
        name: "crate-hygiene",
        summary: "crate roots must carry #![forbid(unsafe_code)] and a \
                  missing_docs lint header",
    },
    Rule {
        name: "float-eq",
        summary: "no bare ==/!= against float literals outside tests; compare \
                  with a tolerance or waive exact sentinel checks",
    },
    Rule {
        name: "no-adhoc-threads",
        summary: "thread::spawn/scope/Builder only inside ncs-par; everywhere \
                  else use the deterministic par_* primitives",
    },
    Rule {
        name: "no-adhoc-logging",
        summary: "no println!/eprintln! in non-test library code of the flow \
                  crates; record ncs-trace counters/spans instead (bin \
                  targets are exempt)",
    },
    Rule {
        name: "par-cutoff-discipline",
        summary: "every par_map/par_map_reduce/par_chunks_mut/team_split_mut/\
                  par_map_queue call site must thread a calibrated Cutoff; \
                  a literal Cutoff::NONE needs a waiver proving an outer gate",
    },
    Rule {
        name: "no-wallclock",
        summary: "Instant/SystemTime banned outside ncs-bench/ncs-trace; flow \
                  kernels must be a pure function of their inputs",
    },
    Rule {
        name: "env-read-audit",
        summary: "std::env reads confined to the designated config modules \
                  (ncs-par thread/shadow resolution, ncs-trace gating, the \
                  bench harness) and bin targets",
    },
    Rule {
        name: "crate-layering",
        summary: "use declarations must follow the crate DAG (core -> flow -> \
                  numerics -> infrastructure); no back-edges",
    },
    Rule {
        name: "alloc-in-hot-loop",
        summary: "no Vec::new/vec![]/to_vec inside loops of functions marked \
                  `// ncs-lint: hot`; hoist or reuse scratch buffers",
    },
];

/// Runs every applicable rule over one lexed file.
pub fn check_file(lexed: &LexedFile, ctx: &FileContext) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    if applies_to_crate(ctx, PANIC_FREE_CRATES) && !ctx.is_bin_target && !ctx.is_test_code {
        no_panic_paths(lexed, ctx, &mut raw);
        no_adhoc_logging(lexed, ctx, &mut raw);
    }
    if applies_to_crate(ctx, DETERMINISTIC_CRATES) && !ctx.is_test_code {
        deterministic_iteration(lexed, ctx, &mut raw);
    }
    if applies_to_crate(ctx, NUMERIC_CRATES) && !ctx.is_test_code {
        lossy_cast_audit(lexed, ctx, &mut raw);
    }
    if ctx.is_crate_root {
        crate_hygiene(lexed, ctx, &mut raw);
    }
    if !ctx.is_test_code {
        float_eq(lexed, ctx, &mut raw);
    }
    if ctx.crate_name.as_deref() != Some("par") && !ctx.is_test_code {
        no_adhoc_threads(lexed, ctx, &mut raw);
    }
    // Semantic rules: consume the syntax layer.
    let syn = syntax::analyze(lexed);
    if !ctx.is_test_code {
        if ctx.crate_name.as_deref() != Some("par") {
            par_cutoff_discipline(&syn, lexed, ctx, &mut raw);
        }
        if ctx.strict
            || !ctx
                .crate_name
                .as_deref()
                .is_some_and(|c| WALLCLOCK_CRATES.contains(&c))
        {
            no_wallclock(lexed, ctx, &mut raw);
        }
        if !ctx.is_bin_target {
            env_read_audit(lexed, ctx, &mut raw);
        }
        crate_layering(&syn, ctx, &mut raw);
        alloc_in_hot_loop(&syn, lexed, ctx, &mut raw);
    }
    // Apply waivers last so every rule shares the same mechanism.
    for d in &mut raw {
        d.waived = lexed.is_waived(d.rule, d.line);
    }
    stale_waivers(lexed, ctx, &mut raw);
    raw
}

/// Whether a crate-scoped rule applies to this file.
fn applies_to_crate(ctx: &FileContext, crates: &[&str]) -> bool {
    if ctx.strict {
        return true;
    }
    match &ctx.crate_name {
        Some(name) => crates.contains(&name.as_str()),
        None => false,
    }
}

fn diag(ctx: &FileContext, rule: &'static str, tok: &Token, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: ctx.path.clone(),
        line: tok.line,
        col: tok.col,
        message,
        waived: false,
        severity: Severity::Error,
    }
}

/// `no-panic-paths`: `.unwrap()` / `.expect(` method calls and
/// `panic!` / `todo!` / `unimplemented!` / `unreachable!` macros.
/// Slice indexing (`[]`) gets a free pass — index invariants are local
/// and `get`-chains everywhere would obscure the kernels.
fn no_panic_paths(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        if PANIC_METHODS.contains(&name)
            && i > 0
            && is_punct(&toks[i - 1], ".")
            && next_is_punct(toks, i + 1, "(")
        {
            out.push(diag(
                ctx,
                "no-panic-paths",
                t,
                format!(".{name}() can panic; return a Result (the crate has an error module) or waive a proven invariant"),
            ));
        } else if PANIC_MACROS.contains(&name) && next_is_punct(toks, i + 1, "!") {
            out.push(diag(
                ctx,
                "no-panic-paths",
                t,
                format!("{name}! aborts the flow; return an error or waive a proven invariant"),
            ));
        }
    }
}

/// `deterministic-iteration`: any mention of `HashMap` / `HashSet`.
fn deterministic_iteration(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    for t in &lexed.tokens {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        if HASH_TYPES.contains(&t.text.as_str()) {
            out.push(diag(
                ctx,
                "deterministic-iteration",
                t,
                format!(
                    "{} iteration order is nondeterministic; use BTreeMap/BTreeSet or an indexed Vec",
                    t.text
                ),
            ));
        }
    }
}

/// `lossy-cast-audit`: `as <narrow numeric type>`.
fn lossy_cast_audit(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident || t.text != "as" {
            continue;
        }
        if let Some(target) = toks.get(i + 1) {
            if target.kind == TokenKind::Ident && NARROW_TARGETS.contains(&target.text.as_str()) {
                out.push(diag(
                    ctx,
                    "lossy-cast-audit",
                    target,
                    format!(
                        "`as {}` narrows a numeric value; prove the range and waive, or widen the type",
                        target.text
                    ),
                ));
            }
        }
    }
}

/// `crate-hygiene`: crate roots need `#![forbid(unsafe_code)]` plus a
/// `missing_docs` lint header (`warn`, `deny`, or `forbid` level).
fn crate_hygiene(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let has_forbid_unsafe = has_inner_lint_attr(lexed, &["forbid"], "unsafe_code");
    let has_docs_lint = has_inner_lint_attr(lexed, &["warn", "deny", "forbid"], "missing_docs");
    let anchor = Token {
        kind: TokenKind::Punct,
        text: String::new(),
        line: 1,
        col: 1,
        in_test: false,
    };
    if !has_forbid_unsafe {
        out.push(diag(
            ctx,
            "crate-hygiene",
            &anchor,
            "crate root is missing #![forbid(unsafe_code)]".to_string(),
        ));
    }
    if !has_docs_lint {
        out.push(diag(
            ctx,
            "crate-hygiene",
            &anchor,
            "crate root is missing a missing_docs lint header (e.g. #![warn(missing_docs)])"
                .to_string(),
        ));
    }
}

/// Whether the file carries `#![<level>(<lint>)]` for one of `levels`.
fn has_inner_lint_attr(lexed: &LexedFile, levels: &[&str], lint: &str) -> bool {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if is_punct(&toks[i], "#")
            && next_is_punct(toks, i + 1, "!")
            && next_is_punct(toks, i + 2, "[")
            && toks
                .get(i + 3)
                .is_some_and(|t| t.kind == TokenKind::Ident && levels.contains(&t.text.as_str()))
            && next_is_punct(toks, i + 4, "(")
            && toks
                .get(i + 5)
                .is_some_and(|t| t.kind == TokenKind::Ident && t.text == lint)
        {
            return true;
        }
    }
    false
}

/// `float-eq`: `==` / `!=` directly adjacent to a float literal.
/// (A token-level heuristic: without type inference, literal adjacency
/// is the reliable signal — it catches the `x == 0.0` sentinel pattern
/// that dominates float comparisons in practice.)
fn float_eq(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Punct {
            continue;
        }
        if t.text != "==" && t.text != "!=" {
            continue;
        }
        let prev_float = i > 0 && toks[i - 1].kind == TokenKind::Float;
        // Allow a unary minus before the literal (`x == -1.0`).
        let next_float = match toks.get(i + 1) {
            Some(n) if n.kind == TokenKind::Float => true,
            Some(n) if is_punct(n, "-") => {
                toks.get(i + 2).is_some_and(|m| m.kind == TokenKind::Float)
            }
            _ => false,
        };
        if prev_float || next_float {
            out.push(diag(
                ctx,
                "float-eq",
                t,
                format!(
                    "bare `{}` on a float; compare with a tolerance, or waive an exact sentinel check",
                    t.text
                ),
            ));
        }
    }
}

/// `no-adhoc-threads`: `thread::spawn` / `thread::scope` /
/// `thread::Builder` outside the `par` crate. Ad-hoc threads bypass the
/// fixed-chunk, ordered-reduction contract that keeps every kernel
/// bit-identical across `NCS_THREADS` settings — all parallelism must go
/// through the `ncs_par` primitives. (`::` lexes as two `:` puncts.)
fn no_adhoc_threads(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident || t.text != "thread" {
            continue;
        }
        if !(next_is_punct(toks, i + 1, ":") && next_is_punct(toks, i + 2, ":")) {
            continue;
        }
        if let Some(entry) = toks.get(i + 3) {
            if entry.kind == TokenKind::Ident && THREAD_ENTRY_POINTS.contains(&entry.text.as_str())
            {
                out.push(diag(
                    ctx,
                    "no-adhoc-threads",
                    entry,
                    format!(
                        "thread::{} outside ncs-par bypasses the deterministic chunking contract; use the ncs_par primitives",
                        entry.text
                    ),
                ));
            }
        }
    }
}

/// `no-adhoc-logging`: `println!` / `eprintln!` in flow-crate library
/// code. Kernel prints are invisible to callers, interleave
/// nondeterministically across worker threads, and duplicate state the
/// flow already tracks — diagnostics belong in `ncs_trace` counters and
/// spans, and terminal output in bin targets (which are exempt, like
/// test code).
fn no_adhoc_logging(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        if LOG_MACROS.contains(&t.text.as_str()) && next_is_punct(toks, i + 1, "!") {
            out.push(diag(
                ctx,
                "no-adhoc-logging",
                t,
                format!(
                    "{}! prints ad-hoc text from library code; record an ncs_trace counter/span or move the output into a bin target",
                    t.text
                ),
            ));
        }
    }
}

/// `par-cutoff-discipline`: every `ncs_par` primitive call must thread
/// a calibrated `Cutoff`. The heuristic accepts any argument mentioning
/// the `Cutoff` type or a `*cutoff*` binding/helper; it flags a call
/// whose arguments mention neither, and flags a literal `Cutoff::NONE`
/// (the disable-the-fallback escape hatch) unless waived with the outer
/// size gate spelled out.
fn par_cutoff_discipline(
    syn: &Syntax,
    lexed: &LexedFile,
    ctx: &FileContext,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    for call in &syn.calls {
        if call.in_test {
            continue;
        }
        let callee = call.path.last().map_or("", |s| s.as_str());
        if !PAR_PRIMITIVES.contains(&callee) {
            continue;
        }
        let args = &toks[call.args.0 + 1..call.args.1];
        let has_none = args.windows(4).any(|w| {
            w[0].kind == TokenKind::Ident
                && w[0].text == "Cutoff"
                && is_punct(&w[1], ":")
                && is_punct(&w[2], ":")
                && w[3].kind == TokenKind::Ident
                && w[3].text == "NONE"
        });
        let has_cutoff = args.iter().any(|t| {
            t.kind == TokenKind::Ident
                && (t.text == "Cutoff" || t.text.to_ascii_lowercase().contains("cutoff"))
        });
        let anchor = Token {
            kind: TokenKind::Ident,
            text: callee.to_string(),
            line: call.line,
            col: call.col,
            in_test: false,
        };
        if has_none {
            out.push(diag(
                ctx,
                "par-cutoff-discipline",
                &anchor,
                format!(
                    "{callee} passes Cutoff::NONE, disabling the serial fallback; use a \
                     calibrated cutoff or waive with the outer size gate spelled out"
                ),
            ));
        } else if !has_cutoff {
            out.push(diag(
                ctx,
                "par-cutoff-discipline",
                &anchor,
                format!(
                    "{callee} does not thread a Cutoff; small inputs will pay the full \
                     parallel launch cost"
                ),
            ));
        }
    }
}

/// `no-wallclock`: `Instant` / `SystemTime` mentions outside the two
/// crates whose job is timing.
fn no_wallclock(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    for t in &lexed.tokens {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        if WALLCLOCK_TYPES.contains(&t.text.as_str()) {
            out.push(diag(
                ctx,
                "no-wallclock",
                t,
                format!(
                    "{} reads the wall clock; flow code must be a pure function of its \
                     inputs — time things in ncs-bench or ncs-trace",
                    t.text
                ),
            ));
        }
    }
}

/// `env-read-audit`: `std::env` access (`use std::env`, `env::var`,
/// `std::env::...`) outside the designated configuration modules.
fn env_read_audit(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if ENV_ALLOWED_FILES.iter().any(|f| ctx.path.ends_with(f)) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident || t.text != "env" {
            continue;
        }
        // `env!` / `option_env!` are compile-time macros, not reads.
        if next_is_punct(toks, i + 1, "!") {
            continue;
        }
        // An `env` path segment: `env::<member>` after, or `std::env`
        // before.
        let member_after = next_is_punct(toks, i + 1, ":") && next_is_punct(toks, i + 2, ":");
        let std_before = i >= 3
            && is_punct(&toks[i - 1], ":")
            && is_punct(&toks[i - 2], ":")
            && toks[i - 3].kind == TokenKind::Ident
            && toks[i - 3].text == "std";
        if member_after || std_before {
            out.push(diag(
                ctx,
                "env-read-audit",
                t,
                "std::env read outside the designated config modules; thread the \
                 setting through as an argument so runs replay from inputs alone"
                    .to_string(),
            ));
        }
    }
}

/// `crate-layering`: `use ncs_*::...` roots must respect the DAG.
fn crate_layering(syn: &Syntax, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let Some(crate_name) = ctx.crate_name.as_deref() else {
        return;
    };
    let Some(&(_, allowed)) = CRATE_LAYERS.iter().find(|(c, _)| *c == crate_name) else {
        return;
    };
    for decl in &syn.uses {
        if decl.in_test {
            continue;
        }
        let dep = match decl.root.as_str() {
            "autoncs" => "core",
            r => match r.strip_prefix("ncs_") {
                Some(d) => d,
                None => continue, // std/crate/super/external-agnostic
            },
        };
        if dep == crate_name || allowed.contains(&dep) {
            continue;
        }
        let anchor = Token {
            kind: TokenKind::Ident,
            text: decl.root.clone(),
            line: decl.line,
            col: 1,
            in_test: false,
        };
        out.push(diag(
            ctx,
            "crate-layering",
            &anchor,
            format!(
                "crate `{crate_name}` may not import `{}`: back-edge in the crate \
                 DAG (allowed: {})",
                decl.root,
                if allowed.is_empty() {
                    "none".to_string()
                } else {
                    allowed.join(", ")
                }
            ),
        ));
    }
}

/// `alloc-in-hot-loop`: `Vec::new` / `vec![...]` / `.to_vec()` inside a
/// loop body of a function marked `// ncs-lint: hot`.
fn alloc_in_hot_loop(
    syn: &Syntax,
    lexed: &LexedFile,
    ctx: &FileContext,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    for f in &syn.fns {
        if !f.is_hot || f.in_test {
            continue;
        }
        let Some((fb0, fb1)) = f.body else {
            continue;
        };
        // Union of loop-body token indices inside this fn (a token in
        // nested loops is still one site).
        let mut in_loop: BTreeSet<usize> = BTreeSet::new();
        for l in &syn.loops {
            let (lb0, lb1) = l.body;
            if lb0 > fb0 && lb1 < fb1 {
                in_loop.extend(lb0 + 1..lb1);
            }
        }
        for &i in &in_loop {
            let t = &toks[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let hit = match t.text.as_str() {
                "Vec" => {
                    next_is_punct(toks, i + 1, ":")
                        && next_is_punct(toks, i + 2, ":")
                        && toks.get(i + 3).is_some_and(|n| {
                            n.kind == TokenKind::Ident
                                && (n.text == "new" || n.text == "with_capacity")
                        })
                }
                "vec" => next_is_punct(toks, i + 1, "!"),
                "to_vec" => i > 0 && is_punct(&toks[i - 1], "."),
                _ => false,
            };
            if hit {
                out.push(diag(
                    ctx,
                    "alloc-in-hot-loop",
                    t,
                    format!(
                        "`{}` allocates inside a loop of hot kernel `{}`; hoist the \
                             buffer out of the loop or reuse a scratch allocation",
                        t.text, f.name
                    ),
                ));
            }
        }
    }
}

/// `stale-waiver` meta-check: every `ncs-lint: allow(...)` comment must
/// suppress at least one finding of the named rule on its line.
/// Emitted as warnings so a rule refinement never hard-breaks the
/// build; `--strict` (CI) promotes them.
fn stale_waivers(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if ctx.is_test_code {
        return;
    }
    // Waivers inside #[cfg(test)] regions guard nothing by construction
    // (rules skip test tokens) — ignore them rather than flag them.
    let test_lines: BTreeSet<u32> = lexed
        .tokens
        .iter()
        .filter(|t| t.in_test)
        .map(|t| t.line)
        .collect();
    let mut stale = Vec::new();
    for (&line, rules) in &lexed.waivers {
        if test_lines.contains(&line) {
            continue;
        }
        for rule in rules {
            let used = out
                .iter()
                .any(|d| d.waived && d.line == line && d.rule == rule);
            if used {
                continue;
            }
            let known = RULES.iter().any(|r| r.name == rule);
            let message = if known {
                format!("waiver for `{rule}` suppresses nothing on this line; remove it")
            } else {
                format!("waiver names unknown rule `{rule}` (see --list-rules)")
            };
            stale.push(Diagnostic {
                rule: "stale-waiver",
                path: ctx.path.clone(),
                line,
                col: 1,
                message,
                waived: false,
                severity: Severity::Warning,
            });
        }
    }
    out.extend(stale);
}

fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == text
}

fn next_is_punct(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| is_punct(t, text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn strict_ctx() -> FileContext {
        FileContext {
            path: "fixture.rs".to_string(),
            crate_name: None,
            is_crate_root: false,
            is_bin_target: false,
            is_test_code: false,
            strict: true,
        }
    }

    fn findings(src: &str) -> Vec<Diagnostic> {
        check_file(&lex(src), &strict_ctx())
            .into_iter()
            .filter(|d| !d.waived)
            .collect()
    }

    #[test]
    fn flags_unwrap_and_macros() {
        let ds = findings("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); }");
        let rules: Vec<_> = ds.iter().map(|d| d.rule).collect();
        assert_eq!(rules, ["no-panic-paths"; 3]);
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        assert!(findings("fn f() { x.unwrap_or(0); y.unwrap_or_default(); }").is_empty());
    }

    #[test]
    fn flags_hash_collections() {
        let ds = findings("use std::collections::HashMap; fn f(s: HashSet<u8>) {}");
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|d| d.rule == "deterministic-iteration"));
    }

    #[test]
    fn flags_narrowing_casts_only() {
        let ds =
            findings("fn f(x: f64) { let a = x as f32; let b = x as usize; let c = x as f64; }");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "lossy-cast-audit");
    }

    #[test]
    fn flags_float_eq_both_sides_and_negative() {
        let ds = findings("fn f(x: f64) -> bool { x == 0.0 || 1.5 != x || x == -1.0 }");
        assert_eq!(ds.len(), 3);
        assert!(ds.iter().all(|d| d.rule == "float-eq"));
    }

    #[test]
    fn int_eq_is_fine() {
        assert!(findings("fn f(x: usize) -> bool { x == 0 }").is_empty());
    }

    #[test]
    fn waived_findings_are_marked() {
        let src = "fn f() { x.unwrap() } // ncs-lint: allow(no-panic-paths)\n";
        let all = check_file(&lex(src), &strict_ctx());
        assert_eq!(all.len(), 1);
        assert!(all[0].waived);
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); let m: HashMap<u8, u8>; } }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn hygiene_checks_crate_roots() {
        let mut ctx = strict_ctx();
        ctx.is_crate_root = true;
        let clean = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nfn f() {}\n";
        assert!(check_file(&lex(clean), &ctx)
            .iter()
            .all(|d| d.rule != "crate-hygiene"));
        let dirty = "fn f() {}\n";
        let ds: Vec<_> = check_file(&lex(dirty), &ctx)
            .into_iter()
            .filter(|d| d.rule == "crate-hygiene")
            .collect();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn flags_adhoc_threads() {
        let ds = findings(
            "fn f() { std::thread::spawn(|| {}); thread::scope(|_s| {}); \
             let b = thread::Builder::new(); }",
        );
        assert_eq!(ds.len(), 3);
        assert!(ds.iter().all(|d| d.rule == "no-adhoc-threads"));
    }

    #[test]
    fn benign_thread_members_pass() {
        assert!(findings("fn f() { thread::yield_now(); let t = thread::current(); }").is_empty());
    }

    #[test]
    fn par_crate_may_spawn_threads() {
        let mut ctx = strict_ctx();
        ctx.crate_name = Some("par".to_string());
        let ds = check_file(&lex("fn f() { thread::spawn(|| {}); }"), &ctx);
        assert!(ds.iter().all(|d| d.rule != "no-adhoc-threads"));
    }

    #[test]
    fn flags_adhoc_logging() {
        let ds = findings("fn f(x: u8) { println!(\"x = {x}\"); eprintln!(\"warn\"); }");
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|d| d.rule == "no-adhoc-logging"));
    }

    #[test]
    fn structured_formatting_is_not_logging() {
        assert!(findings(
            "fn f(buf: &mut String) { let _ = writeln!(buf, \"ok\"); let _ = format!(\"ok\"); }"
        )
        .is_empty());
    }

    #[test]
    fn bin_targets_may_print() {
        let mut ctx = strict_ctx();
        ctx.is_bin_target = true;
        let ds = check_file(&lex("fn main() { println!(\"hello\"); }"), &ctx);
        assert!(ds.iter().all(|d| d.rule != "no-adhoc-logging"));
    }

    #[test]
    fn crate_scoping_gates_rules() {
        let mut ctx = strict_ctx();
        ctx.strict = false;
        ctx.crate_name = Some("bench".to_string());
        // bench is not panic-free-scoped, but float-eq still applies.
        let ds = check_file(&lex("fn f(x: f64) { x.unwrap(); if x == 0.0 {} }"), &ctx);
        let rules: Vec<_> = ds.iter().map(|d| d.rule).collect();
        assert_eq!(rules, ["float-eq"]);
    }

    #[test]
    fn cutoff_discipline_flags_none_and_missing() {
        let ds = findings(
            "fn f(xs: &[f64]) { ncs_par::par_map(xs, 4, Cutoff::NONE, |x| *x); \
             ncs_par::par_map_reduce(xs, 4, |x| *x, 0.0, |a, b| a + b); }",
        );
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|d| d.rule == "par-cutoff-discipline"));
        assert!(ds[0].message.contains("Cutoff::NONE"));
        assert!(ds[1].message.contains("does not thread a Cutoff"));
    }

    #[test]
    fn cutoff_discipline_accepts_named_cutoffs() {
        assert!(findings(
            "fn f(xs: &mut [f64], cutoff: Cutoff) { \
             ncs_par::par_chunks_mut(xs, 4, cutoff, |_, _| {}); \
             ncs_par::par_map(xs, 4, eigen_cutoff(xs.len()), |x| *x); }",
        )
        .is_empty());
    }

    #[test]
    fn par_crate_is_exempt_from_cutoff_discipline() {
        let mut ctx = strict_ctx();
        ctx.crate_name = Some("par".to_string());
        let ds = check_file(
            &lex("fn f(xs: &[f64]) { par_map(xs, 4, Cutoff::NONE, |x| *x); }"),
            &ctx,
        );
        assert!(ds.iter().all(|d| d.rule != "par-cutoff-discipline"));
    }

    #[test]
    fn wallclock_banned_outside_timing_crates() {
        let ds = findings("fn f() { let t = std::time::Instant::now(); }");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "no-wallclock");
        let mut ctx = strict_ctx();
        ctx.strict = false;
        ctx.crate_name = Some("bench".to_string());
        let ds = check_file(&lex("fn f() { let t = Instant::now(); }"), &ctx);
        assert!(ds.iter().all(|d| d.rule != "no-wallclock"));
    }

    #[test]
    fn env_reads_confined_to_config_modules() {
        let ds = findings("fn f() -> Option<String> { std::env::var(\"NCS_THREADS\").ok() }");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "env-read-audit");
        // The compile-time macro and an allowed file are both exempt.
        assert!(findings("fn v() -> &'static str { env!(\"CARGO_PKG_VERSION\") }").is_empty());
        let mut ctx = strict_ctx();
        ctx.path = "crates/par/src/lib.rs".to_string();
        let ds = check_file(&lex("fn f() { let _ = std::env::var(\"X\"); }"), &ctx);
        assert!(ds.iter().all(|d| d.rule != "env-read-audit"));
    }

    #[test]
    fn layering_flags_back_edges_only() {
        let mut ctx = strict_ctx();
        ctx.crate_name = Some("linalg".to_string());
        let src = "use ncs_par::Cutoff;\nuse ncs_phys::place;\nuse std::fmt;\n";
        let ds: Vec<_> = check_file(&lex(src), &ctx)
            .into_iter()
            .filter(|d| d.rule == "crate-layering")
            .collect();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].line, 2);
        assert!(ds[0].message.contains("`ncs_phys`"));
    }

    #[test]
    fn hot_loop_allocs_flagged_cold_ignored() {
        let hot = "// ncs-lint: hot\nfn k(xs: &[u8]) { for x in xs { let v = Vec::new(); } }\n";
        let ds = findings(hot);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "alloc-in-hot-loop");
        let cold = "fn k(xs: &[u8]) { for x in xs { let v = Vec::new(); } }\n";
        assert!(findings(cold).is_empty());
        // Allocation outside the loop body of a hot fn is fine.
        let hoisted =
            "// ncs-lint: hot\nfn k(xs: &[u8]) { let mut v = Vec::new(); for x in xs { v.push(*x); } }\n";
        assert!(findings(hoisted).is_empty());
    }

    #[test]
    fn stale_waivers_warn_but_live_ones_do_not() {
        let src = "// ncs-lint: allow(no-panic-paths) — nothing here\nfn f() -> usize { 1 }\n";
        let ds = check_file(&lex(src), &strict_ctx());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "stale-waiver");
        assert_eq!(ds[0].severity, Severity::Warning);
        let live = "fn f(x: &Option<u8>) -> u8 { *x.as_ref().unwrap() } \
                    // ncs-lint: allow(no-panic-paths) — proven Some\n";
        assert!(check_file(&lex(live), &strict_ctx())
            .iter()
            .all(|d| d.rule != "stale-waiver"));
    }
}
