//! The rule registry: every invariant `ncs-lint` enforces.
//!
//! Each rule walks the token stream of one file (plus its
//! [`FileContext`]) and emits [`Diagnostic`]s. Rules never see comments
//! or string contents — the lexer already classified those — so
//! `"unwrap"` in a doc example or a format string is never a finding.

use crate::lexer::{LexedFile, Token, TokenKind};
use crate::{Diagnostic, FileContext};

/// Crates whose non-test library code must be panic-free.
pub const PANIC_FREE_CRATES: &[&str] =
    &["linalg", "cluster", "net", "phys", "xbar", "tech", "core"];

/// Flow-path crates where hash collections are banned (iteration order
/// would leak into mapping/placement/routing statistics).
pub const DETERMINISTIC_CRATES: &[&str] =
    &["linalg", "cluster", "net", "phys", "xbar", "tech", "core"];

/// Numeric-kernel crates where narrowing `as` casts need a waiver.
pub const NUMERIC_CRATES: &[&str] = &["linalg", "cluster", "xbar", "phys", "tech"];

/// Method calls that introduce panic paths.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that introduce panic paths.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// Banned hash-collection type names.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Thread-spawning entry points banned outside `crates/par`.
const THREAD_ENTRY_POINTS: &[&str] = &["spawn", "scope", "Builder"];

/// Terminal-printing macros banned in flow-crate library code.
const LOG_MACROS: &[&str] = &["println", "eprintln"];

/// Cast targets considered lossy in numeric kernels: every float/int
/// type narrower than 64 bits. (`as f64` / `as i64` / `as usize` pass:
/// index math and float widening are pervasive and reviewed case by
/// case; the narrow targets are where silent precision loss hides.)
const NARROW_TARGETS: &[&str] = &["f32", "i8", "i16", "i32", "u8", "u16", "u32"];

/// Static description of one lint rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case name (used in waivers and diagnostics).
    pub name: &'static str,
    /// One-line human description.
    pub summary: &'static str,
}

/// Every rule, in evaluation order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "no-panic-paths",
        summary: "no unwrap()/expect()/panic!/todo!/unimplemented!/unreachable! in \
                  non-test library code of the flow crates",
    },
    Rule {
        name: "deterministic-iteration",
        summary: "no HashMap/HashSet in flow-path crates; use BTreeMap/BTreeSet or \
                  indexed Vec so iteration order is reproducible",
    },
    Rule {
        name: "lossy-cast-audit",
        summary: "casts to sub-64-bit numeric types (f32, i8..i32, u8..u32) in \
                  numeric kernels require an explicit waiver",
    },
    Rule {
        name: "crate-hygiene",
        summary: "crate roots must carry #![forbid(unsafe_code)] and a \
                  missing_docs lint header",
    },
    Rule {
        name: "float-eq",
        summary: "no bare ==/!= against float literals outside tests; compare \
                  with a tolerance or waive exact sentinel checks",
    },
    Rule {
        name: "no-adhoc-threads",
        summary: "thread::spawn/scope/Builder only inside ncs-par; everywhere \
                  else use the deterministic par_* primitives",
    },
    Rule {
        name: "no-adhoc-logging",
        summary: "no println!/eprintln! in non-test library code of the flow \
                  crates; record ncs-trace counters/spans instead (bin \
                  targets are exempt)",
    },
];

/// Runs every applicable rule over one lexed file.
pub fn check_file(lexed: &LexedFile, ctx: &FileContext) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    if applies_to_crate(ctx, PANIC_FREE_CRATES) && !ctx.is_bin_target && !ctx.is_test_code {
        no_panic_paths(lexed, ctx, &mut raw);
        no_adhoc_logging(lexed, ctx, &mut raw);
    }
    if applies_to_crate(ctx, DETERMINISTIC_CRATES) && !ctx.is_test_code {
        deterministic_iteration(lexed, ctx, &mut raw);
    }
    if applies_to_crate(ctx, NUMERIC_CRATES) && !ctx.is_test_code {
        lossy_cast_audit(lexed, ctx, &mut raw);
    }
    if ctx.is_crate_root {
        crate_hygiene(lexed, ctx, &mut raw);
    }
    if !ctx.is_test_code {
        float_eq(lexed, ctx, &mut raw);
    }
    if ctx.crate_name.as_deref() != Some("par") && !ctx.is_test_code {
        no_adhoc_threads(lexed, ctx, &mut raw);
    }
    // Apply waivers last so every rule shares the same mechanism.
    for d in &mut raw {
        d.waived = lexed.is_waived(d.rule, d.line);
    }
    raw
}

/// Whether a crate-scoped rule applies to this file.
fn applies_to_crate(ctx: &FileContext, crates: &[&str]) -> bool {
    if ctx.strict {
        return true;
    }
    match &ctx.crate_name {
        Some(name) => crates.contains(&name.as_str()),
        None => false,
    }
}

fn diag(ctx: &FileContext, rule: &'static str, tok: &Token, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: ctx.path.clone(),
        line: tok.line,
        col: tok.col,
        message,
        waived: false,
    }
}

/// `no-panic-paths`: `.unwrap()` / `.expect(` method calls and
/// `panic!` / `todo!` / `unimplemented!` / `unreachable!` macros.
/// Slice indexing (`[]`) gets a free pass — index invariants are local
/// and `get`-chains everywhere would obscure the kernels.
fn no_panic_paths(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        if PANIC_METHODS.contains(&name)
            && i > 0
            && is_punct(&toks[i - 1], ".")
            && next_is_punct(toks, i + 1, "(")
        {
            out.push(diag(
                ctx,
                "no-panic-paths",
                t,
                format!(".{name}() can panic; return a Result (the crate has an error module) or waive a proven invariant"),
            ));
        } else if PANIC_MACROS.contains(&name) && next_is_punct(toks, i + 1, "!") {
            out.push(diag(
                ctx,
                "no-panic-paths",
                t,
                format!("{name}! aborts the flow; return an error or waive a proven invariant"),
            ));
        }
    }
}

/// `deterministic-iteration`: any mention of `HashMap` / `HashSet`.
fn deterministic_iteration(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    for t in &lexed.tokens {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        if HASH_TYPES.contains(&t.text.as_str()) {
            out.push(diag(
                ctx,
                "deterministic-iteration",
                t,
                format!(
                    "{} iteration order is nondeterministic; use BTreeMap/BTreeSet or an indexed Vec",
                    t.text
                ),
            ));
        }
    }
}

/// `lossy-cast-audit`: `as <narrow numeric type>`.
fn lossy_cast_audit(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident || t.text != "as" {
            continue;
        }
        if let Some(target) = toks.get(i + 1) {
            if target.kind == TokenKind::Ident && NARROW_TARGETS.contains(&target.text.as_str()) {
                out.push(diag(
                    ctx,
                    "lossy-cast-audit",
                    target,
                    format!(
                        "`as {}` narrows a numeric value; prove the range and waive, or widen the type",
                        target.text
                    ),
                ));
            }
        }
    }
}

/// `crate-hygiene`: crate roots need `#![forbid(unsafe_code)]` plus a
/// `missing_docs` lint header (`warn`, `deny`, or `forbid` level).
fn crate_hygiene(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let has_forbid_unsafe = has_inner_lint_attr(lexed, &["forbid"], "unsafe_code");
    let has_docs_lint = has_inner_lint_attr(lexed, &["warn", "deny", "forbid"], "missing_docs");
    let anchor = Token {
        kind: TokenKind::Punct,
        text: String::new(),
        line: 1,
        col: 1,
        in_test: false,
    };
    if !has_forbid_unsafe {
        out.push(diag(
            ctx,
            "crate-hygiene",
            &anchor,
            "crate root is missing #![forbid(unsafe_code)]".to_string(),
        ));
    }
    if !has_docs_lint {
        out.push(diag(
            ctx,
            "crate-hygiene",
            &anchor,
            "crate root is missing a missing_docs lint header (e.g. #![warn(missing_docs)])"
                .to_string(),
        ));
    }
}

/// Whether the file carries `#![<level>(<lint>)]` for one of `levels`.
fn has_inner_lint_attr(lexed: &LexedFile, levels: &[&str], lint: &str) -> bool {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if is_punct(&toks[i], "#")
            && next_is_punct(toks, i + 1, "!")
            && next_is_punct(toks, i + 2, "[")
            && toks
                .get(i + 3)
                .is_some_and(|t| t.kind == TokenKind::Ident && levels.contains(&t.text.as_str()))
            && next_is_punct(toks, i + 4, "(")
            && toks
                .get(i + 5)
                .is_some_and(|t| t.kind == TokenKind::Ident && t.text == lint)
        {
            return true;
        }
    }
    false
}

/// `float-eq`: `==` / `!=` directly adjacent to a float literal.
/// (A token-level heuristic: without type inference, literal adjacency
/// is the reliable signal — it catches the `x == 0.0` sentinel pattern
/// that dominates float comparisons in practice.)
fn float_eq(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Punct {
            continue;
        }
        if t.text != "==" && t.text != "!=" {
            continue;
        }
        let prev_float = i > 0 && toks[i - 1].kind == TokenKind::Float;
        // Allow a unary minus before the literal (`x == -1.0`).
        let next_float = match toks.get(i + 1) {
            Some(n) if n.kind == TokenKind::Float => true,
            Some(n) if is_punct(n, "-") => {
                toks.get(i + 2).is_some_and(|m| m.kind == TokenKind::Float)
            }
            _ => false,
        };
        if prev_float || next_float {
            out.push(diag(
                ctx,
                "float-eq",
                t,
                format!(
                    "bare `{}` on a float; compare with a tolerance, or waive an exact sentinel check",
                    t.text
                ),
            ));
        }
    }
}

/// `no-adhoc-threads`: `thread::spawn` / `thread::scope` /
/// `thread::Builder` outside the `par` crate. Ad-hoc threads bypass the
/// fixed-chunk, ordered-reduction contract that keeps every kernel
/// bit-identical across `NCS_THREADS` settings — all parallelism must go
/// through the `ncs_par` primitives. (`::` lexes as two `:` puncts.)
fn no_adhoc_threads(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident || t.text != "thread" {
            continue;
        }
        if !(next_is_punct(toks, i + 1, ":") && next_is_punct(toks, i + 2, ":")) {
            continue;
        }
        if let Some(entry) = toks.get(i + 3) {
            if entry.kind == TokenKind::Ident && THREAD_ENTRY_POINTS.contains(&entry.text.as_str())
            {
                out.push(diag(
                    ctx,
                    "no-adhoc-threads",
                    entry,
                    format!(
                        "thread::{} outside ncs-par bypasses the deterministic chunking contract; use the ncs_par primitives",
                        entry.text
                    ),
                ));
            }
        }
    }
}

/// `no-adhoc-logging`: `println!` / `eprintln!` in flow-crate library
/// code. Kernel prints are invisible to callers, interleave
/// nondeterministically across worker threads, and duplicate state the
/// flow already tracks — diagnostics belong in `ncs_trace` counters and
/// spans, and terminal output in bin targets (which are exempt, like
/// test code).
fn no_adhoc_logging(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        if LOG_MACROS.contains(&t.text.as_str()) && next_is_punct(toks, i + 1, "!") {
            out.push(diag(
                ctx,
                "no-adhoc-logging",
                t,
                format!(
                    "{}! prints ad-hoc text from library code; record an ncs_trace counter/span or move the output into a bin target",
                    t.text
                ),
            ));
        }
    }
}

fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == text
}

fn next_is_punct(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| is_punct(t, text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn strict_ctx() -> FileContext {
        FileContext {
            path: "fixture.rs".to_string(),
            crate_name: None,
            is_crate_root: false,
            is_bin_target: false,
            is_test_code: false,
            strict: true,
        }
    }

    fn findings(src: &str) -> Vec<Diagnostic> {
        check_file(&lex(src), &strict_ctx())
            .into_iter()
            .filter(|d| !d.waived)
            .collect()
    }

    #[test]
    fn flags_unwrap_and_macros() {
        let ds = findings("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); }");
        let rules: Vec<_> = ds.iter().map(|d| d.rule).collect();
        assert_eq!(rules, ["no-panic-paths"; 3]);
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        assert!(findings("fn f() { x.unwrap_or(0); y.unwrap_or_default(); }").is_empty());
    }

    #[test]
    fn flags_hash_collections() {
        let ds = findings("use std::collections::HashMap; fn f(s: HashSet<u8>) {}");
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|d| d.rule == "deterministic-iteration"));
    }

    #[test]
    fn flags_narrowing_casts_only() {
        let ds =
            findings("fn f(x: f64) { let a = x as f32; let b = x as usize; let c = x as f64; }");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rule, "lossy-cast-audit");
    }

    #[test]
    fn flags_float_eq_both_sides_and_negative() {
        let ds = findings("fn f(x: f64) -> bool { x == 0.0 || 1.5 != x || x == -1.0 }");
        assert_eq!(ds.len(), 3);
        assert!(ds.iter().all(|d| d.rule == "float-eq"));
    }

    #[test]
    fn int_eq_is_fine() {
        assert!(findings("fn f(x: usize) -> bool { x == 0 }").is_empty());
    }

    #[test]
    fn waived_findings_are_marked() {
        let src = "fn f() { x.unwrap() } // ncs-lint: allow(no-panic-paths)\n";
        let all = check_file(&lex(src), &strict_ctx());
        assert_eq!(all.len(), 1);
        assert!(all[0].waived);
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); let m: HashMap<u8, u8>; } }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn hygiene_checks_crate_roots() {
        let mut ctx = strict_ctx();
        ctx.is_crate_root = true;
        let clean = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nfn f() {}\n";
        assert!(check_file(&lex(clean), &ctx)
            .iter()
            .all(|d| d.rule != "crate-hygiene"));
        let dirty = "fn f() {}\n";
        let ds: Vec<_> = check_file(&lex(dirty), &ctx)
            .into_iter()
            .filter(|d| d.rule == "crate-hygiene")
            .collect();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn flags_adhoc_threads() {
        let ds = findings(
            "fn f() { std::thread::spawn(|| {}); thread::scope(|_s| {}); \
             let b = thread::Builder::new(); }",
        );
        assert_eq!(ds.len(), 3);
        assert!(ds.iter().all(|d| d.rule == "no-adhoc-threads"));
    }

    #[test]
    fn benign_thread_members_pass() {
        assert!(findings("fn f() { thread::yield_now(); let t = thread::current(); }").is_empty());
    }

    #[test]
    fn par_crate_may_spawn_threads() {
        let mut ctx = strict_ctx();
        ctx.crate_name = Some("par".to_string());
        let ds = check_file(&lex("fn f() { thread::spawn(|| {}); }"), &ctx);
        assert!(ds.iter().all(|d| d.rule != "no-adhoc-threads"));
    }

    #[test]
    fn flags_adhoc_logging() {
        let ds = findings("fn f(x: u8) { println!(\"x = {x}\"); eprintln!(\"warn\"); }");
        assert_eq!(ds.len(), 2);
        assert!(ds.iter().all(|d| d.rule == "no-adhoc-logging"));
    }

    #[test]
    fn structured_formatting_is_not_logging() {
        assert!(findings(
            "fn f(buf: &mut String) { let _ = writeln!(buf, \"ok\"); let _ = format!(\"ok\"); }"
        )
        .is_empty());
    }

    #[test]
    fn bin_targets_may_print() {
        let mut ctx = strict_ctx();
        ctx.is_bin_target = true;
        let ds = check_file(&lex("fn main() { println!(\"hello\"); }"), &ctx);
        assert!(ds.iter().all(|d| d.rule != "no-adhoc-logging"));
    }

    #[test]
    fn crate_scoping_gates_rules() {
        let mut ctx = strict_ctx();
        ctx.strict = false;
        ctx.crate_name = Some("bench".to_string());
        // bench is not panic-free-scoped, but float-eq still applies.
        let ds = check_file(&lex("fn f(x: f64) { x.unwrap(); if x == 0.0 {} }"), &ctx);
        let rules: Vec<_> = ds.iter().map(|d| d.rule).collect();
        assert_eq!(rules, ["float-eq"]);
    }
}
