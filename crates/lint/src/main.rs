//! CLI for `ncs-lint`.
//!
//! ```text
//! ncs-lint --workspace              lint every crates/*/src file (crate-scoped rules)
//! ncs-lint <path>...                lint files/dirs in strict mode (all rules)
//!   --format text|json              diagnostic output format (default text)
//!   --show-waived                   also print findings silenced by waivers
//!   --list-rules                    print the rule registry and exit
//! ```
//!
//! Exit codes: 0 clean, 1 unwaivered findings, 2 usage or I/O error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use ncs_lint::{
    collect_rust_files, find_workspace_root, lint_file, lint_workspace, rules, Diagnostic,
    FileContext,
};

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut workspace = false;
    let mut format = Format::Text;
    let mut show_waived = false;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--show-waived" => show_waived = true,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("ncs-lint: --format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for rule in rules::RULES {
                    println!("{:<24} {}", rule.name, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: ncs-lint [--workspace] [--format text|json] [--show-waived] \
                     [--list-rules] [paths...]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("ncs-lint: unknown flag {other}");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    if !workspace && paths.is_empty() {
        eprintln!("ncs-lint: pass --workspace or at least one path (see --help)");
        return ExitCode::from(2);
    }

    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    if workspace {
        let cwd = match env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("ncs-lint: cannot determine working directory: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!("ncs-lint: no workspace root (Cargo.toml with [workspace]) above {cwd:?}");
            return ExitCode::from(2);
        };
        match lint_workspace(&root) {
            Ok(ds) => diagnostics.extend(ds),
            Err(e) => {
                eprintln!("ncs-lint: workspace scan failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // Explicit paths run in strict mode: every rule applies, so fixture
    // files and one-off audits see the full registry.
    for path in &paths {
        let files = if path.is_dir() {
            match collect_rust_files(path) {
                Ok(fs) => fs,
                Err(e) => {
                    eprintln!("ncs-lint: cannot walk {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        } else {
            vec![path.clone()]
        };
        for file in files {
            let ctx = FileContext::strict(file.display().to_string());
            match lint_file(&file, &ctx) {
                Ok(ds) => diagnostics.extend(ds),
                Err(e) => {
                    eprintln!("ncs-lint: cannot read {}: {e}", file.display());
                    return ExitCode::from(2);
                }
            }
        }
    }

    let total = diagnostics.len();
    let active: Vec<&Diagnostic> = diagnostics.iter().filter(|d| !d.waived).collect();
    let waived = total - active.len();

    match format {
        Format::Text => {
            for d in &diagnostics {
                if !d.waived || show_waived {
                    println!("{d}");
                }
            }
            eprintln!(
                "ncs-lint: {} finding(s), {} waived, {} active",
                total,
                waived,
                active.len()
            );
        }
        Format::Json => {
            let body: Vec<String> = diagnostics
                .iter()
                .filter(|d| !d.waived || show_waived)
                .map(|d| d.to_json())
                .collect();
            println!("[{}]", body.join(","));
        }
    }

    if active.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
