//! CLI for `ncs-lint`.
//!
//! ```text
//! ncs-lint [--workspace]            lint every crates/*/src file (crate-scoped
//!                                   rules); this is the default with no paths
//! ncs-lint <path>...                lint files/dirs in strict mode (all rules)
//!   --format text|json|github      diagnostic output format (default text;
//!                                   github emits ::error/::warning annotations)
//!   --strict                        warnings (e.g. stale-waiver) also fail
//!   --show-waived                   also print findings silenced by waivers
//!   --list-rules                    print the rule registry and exit
//! ```
//!
//! Exit codes: 0 clean, 1 unwaivered findings (errors always; warnings
//! under `--strict`), 2 usage or I/O error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use ncs_lint::{
    collect_rust_files, find_workspace_root, lint_file, lint_workspace, rules, Diagnostic,
    FileContext, Severity,
};

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

fn main() -> ExitCode {
    let mut workspace = false;
    let mut strict = false;
    let mut format = Format::Text;
    let mut show_waived = false;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--strict" => strict = true,
            "--show-waived" => show_waived = true,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                other => {
                    eprintln!(
                        "ncs-lint: --format expects `text`, `json`, or `github`, got {other:?}"
                    );
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for rule in rules::RULES {
                    println!("{:<24} {}", rule.name, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: ncs-lint [--workspace] [--strict] [--format text|json|github] \
                     [--show-waived] [--list-rules] [paths...]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("ncs-lint: unknown flag {other}");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    // Bare invocation (`cargo run -p ncs-lint`) means the workspace.
    if !workspace && paths.is_empty() {
        workspace = true;
    }

    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    if workspace {
        let cwd = match env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("ncs-lint: cannot determine working directory: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!("ncs-lint: no workspace root (Cargo.toml with [workspace]) above {cwd:?}");
            return ExitCode::from(2);
        };
        match lint_workspace(&root) {
            Ok(ds) => diagnostics.extend(ds),
            Err(e) => {
                eprintln!("ncs-lint: workspace scan failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // Explicit paths run in strict mode: every rule applies, so fixture
    // files and one-off audits see the full registry.
    for path in &paths {
        let files = if path.is_dir() {
            match collect_rust_files(path) {
                Ok(fs) => fs,
                Err(e) => {
                    eprintln!("ncs-lint: cannot walk {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        } else {
            vec![path.clone()]
        };
        for file in files {
            let ctx = FileContext::strict(file.display().to_string());
            match lint_file(&file, &ctx) {
                Ok(ds) => diagnostics.extend(ds),
                Err(e) => {
                    eprintln!("ncs-lint: cannot read {}: {e}", file.display());
                    return ExitCode::from(2);
                }
            }
        }
    }

    let total = diagnostics.len();
    let active: Vec<&Diagnostic> = diagnostics.iter().filter(|d| !d.waived).collect();
    let waived = total - active.len();
    let errors = active
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = active.len() - errors;

    match format {
        Format::Text => {
            for d in &diagnostics {
                if !d.waived || show_waived {
                    println!("{d}");
                }
            }
            eprintln!(
                "ncs-lint: {} finding(s), {} waived, {} active ({} error(s), {} warning(s))",
                total,
                waived,
                active.len(),
                errors,
                warnings
            );
        }
        Format::Json => {
            let body: Vec<String> = diagnostics
                .iter()
                .filter(|d| !d.waived || show_waived)
                .map(|d| d.to_json())
                .collect();
            println!("[{}]", body.join(","));
        }
        Format::Github => {
            for d in &diagnostics {
                if !d.waived || show_waived {
                    println!("{}", d.to_github());
                }
            }
            eprintln!(
                "ncs-lint: {} finding(s), {} waived, {} active ({} error(s), {} warning(s))",
                total,
                waived,
                active.len(),
                errors,
                warnings
            );
        }
    }

    if errors > 0 || (strict && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
