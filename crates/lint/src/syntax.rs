//! A lightweight syntax layer over the token stream.
//!
//! The lexer gives rules a flat token list; this module recovers just
//! enough structure for the semantic rules that a flat stream cannot
//! express:
//!
//! - **Token trees** — `()`/`[]`/`{}` groups nested into a forest, with
//!   a matched-delimiter table so any rule can jump from an opener to
//!   its closer in O(1).
//! - **Item outline** — `mod`/`impl`/`trait`/`fn`/`struct`/… nesting
//!   with names and lines, recursing through module and impl bodies.
//! - **Functions** — every `fn` with its body span, test flag, and
//!   whether a `// ncs-lint: hot` marker decorates it.
//! - **Call expressions** — `path::to::callee(args)` with the full
//!   segment path and the argument group's token span.
//! - **`use` declarations** — the root crate segment of every import,
//!   feeding the `crate-layering` DAG check.
//! - **Loop bodies** — the token span of every `for`/`while`/`loop`
//!   body, feeding `alloc-in-hot-loop`.
//!
//! This is deliberately not a parser: it never builds expressions and
//! survives arbitrary token soup (macro bodies, unbalanced fixtures) by
//! treating anything unrecognized as skippable. Rules that consume it
//! are heuristics with waiver escape hatches, not a compiler.

use crate::lexer::{LexedFile, Token, TokenKind};

/// One node of the token-tree forest.
#[derive(Debug)]
pub enum Tree {
    /// A non-delimiter token (index into the token list).
    Leaf(usize),
    /// A delimited group. `close` is `None` when the opener is
    /// unbalanced (possible in fixtures or macro fragments).
    Group {
        /// Opening delimiter: `(`, `[`, or `{`.
        delim: char,
        /// Token index of the opener.
        open: usize,
        /// Token index of the matching closer, if balanced.
        close: Option<usize>,
        /// Nested trees between the delimiters.
        children: Vec<Tree>,
    },
}

/// Kind of an [`Item`] in the outline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { ... }` (or `mod name;`).
    Mod,
    /// `impl Type { ... }` / `impl Trait for Type { ... }`.
    Impl,
    /// `trait Name { ... }`.
    Trait,
    /// `fn name(...)`.
    Fn,
    /// `struct Name ...`.
    Struct,
    /// `enum Name { ... }`.
    Enum,
    /// `use path::to::thing;`.
    Use,
    /// `const NAME: T = ...;`.
    Const,
    /// `static NAME: T = ...;`.
    Static,
    /// `type Alias = ...;`.
    TypeAlias,
    /// `macro_rules! name { ... }`.
    MacroDef,
}

impl ItemKind {
    /// Lower-case label used by [`render_outline`].
    pub fn label(self) -> &'static str {
        match self {
            ItemKind::Mod => "mod",
            ItemKind::Impl => "impl",
            ItemKind::Trait => "trait",
            ItemKind::Fn => "fn",
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Use => "use",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
            ItemKind::TypeAlias => "type",
            ItemKind::MacroDef => "macro",
        }
    }
}

/// One item in the nested outline.
#[derive(Debug)]
pub struct Item {
    /// What kind of item this is.
    pub kind: ItemKind,
    /// Item name (`impl` uses the type path, `use` the root segment).
    pub name: String,
    /// 1-indexed line of the introducing keyword.
    pub line: u32,
    /// Child items, for `mod`/`impl`/`trait` (and nested `fn`s).
    pub children: Vec<Item>,
}

/// One `fn`, flattened out of the outline in source order.
#[derive(Debug)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Token indices of the body's `{` and `}` (absent for trait
    /// method declarations ending in `;`).
    pub body: Option<(usize, usize)>,
    /// Whether a `// ncs-lint: hot` marker decorates the signature.
    pub is_hot: bool,
    /// Whether the `fn` keyword sits inside a test region.
    pub in_test: bool,
}

/// One call expression `path::to::callee(...)`.
#[derive(Debug)]
pub struct Call {
    /// Path segments, e.g. `["ncs_par", "par_map"]` or `["par_map"]`.
    pub path: Vec<String>,
    /// 1-indexed line of the callee segment.
    pub line: u32,
    /// 1-indexed column of the callee segment.
    pub col: u32,
    /// Token indices of the argument group's `(` and `)`.
    pub args: (usize, usize),
    /// Whether the call sits inside a test region.
    pub in_test: bool,
}

/// One `use` declaration, reduced to its root segment.
#[derive(Debug)]
pub struct UseDecl {
    /// First path segment: a crate name, `std`, `crate`, `super`, ….
    pub root: String,
    /// 1-indexed line of the `use` keyword.
    pub line: u32,
    /// Whether the declaration sits inside a test region.
    pub in_test: bool,
}

/// The token span of one `for`/`while`/`loop` body.
#[derive(Debug)]
pub struct LoopSpan {
    /// 1-indexed line of the loop keyword.
    pub line: u32,
    /// Token indices of the body's `{` and `}`.
    pub body: (usize, usize),
}

/// Everything the syntax layer extracts from one lexed file.
#[derive(Debug)]
pub struct Syntax {
    /// Nested item outline.
    pub items: Vec<Item>,
    /// Every `fn`, in source order.
    pub fns: Vec<FnInfo>,
    /// Every call expression, in source order.
    pub calls: Vec<Call>,
    /// Every `use` declaration, in source order.
    pub uses: Vec<UseDecl>,
    /// Every loop body span, in source order.
    pub loops: Vec<LoopSpan>,
    /// `matched[i]` is the partner index when token `i` is a delimiter.
    pub matched: Vec<Option<usize>>,
}

/// Builds the matched-delimiter table: for every `(`/`[`/`{` the index
/// of its closer and vice versa. Mismatched closers unwind the stack to
/// the nearest same-kind opener (tolerant of token soup).
fn match_delims(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut matched = vec![None; tokens.len()];
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => stack.push((t.text.chars().next().unwrap_or('('), i)),
            ")" | "]" | "}" => {
                let want = match t.text.as_str() {
                    ")" => '(',
                    "]" => '[',
                    _ => '{',
                };
                if let Some(pos) = stack.iter().rposition(|&(d, _)| d == want) {
                    let (_, open) = stack[pos];
                    stack.truncate(pos);
                    matched[open] = Some(i);
                    matched[i] = Some(open);
                }
            }
            _ => {}
        }
    }
    matched
}

/// Builds the token-tree forest for `tokens`.
pub fn token_trees(tokens: &[Token]) -> Vec<Tree> {
    let matched = match_delims(tokens);
    let mut i = 0usize;
    build_trees(tokens, &matched, &mut i, None)
}

fn build_trees(
    tokens: &[Token],
    matched: &[Option<usize>],
    i: &mut usize,
    stop: Option<usize>,
) -> Vec<Tree> {
    let mut out = Vec::new();
    while *i < tokens.len() {
        if stop == Some(*i) {
            break;
        }
        let t = &tokens[*i];
        let open = *i;
        if t.kind == TokenKind::Punct && matches!(t.text.as_str(), "(" | "[" | "{") {
            let close = matched[open];
            *i += 1;
            let children = build_trees(tokens, matched, i, close);
            if close.is_some() && *i < tokens.len() {
                *i += 1; // consume the closer
            }
            out.push(Tree::Group {
                delim: t.text.chars().next().unwrap_or('('),
                open,
                close,
                children,
            });
        } else if t.kind == TokenKind::Punct && matches!(t.text.as_str(), ")" | "]" | "}") {
            // A closer reached here is either unbalanced or orphaned
            // token soup — keep it as a leaf and move on.
            out.push(Tree::Leaf(open));
            *i += 1;
        } else {
            out.push(Tree::Leaf(open));
            *i += 1;
        }
    }
    out
}

/// Keywords that look like `name(` call sites but are control flow.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "in", "as", "move", "let",
    "pub", "use", "mod", "impl", "where", "unsafe", "ref", "mut", "break", "continue", "dyn",
];

/// Tokens that may legally precede a statement-position loop keyword.
fn can_precede_loop(prev: Option<&Token>) -> bool {
    match prev {
        None => true,
        Some(t) if t.kind == TokenKind::Punct => {
            // `>` admits match arms (`_ => loop { ... }`).
            matches!(
                t.text.as_str(),
                "{" | "}" | ";" | ":" | "=" | "(" | "," | "|" | ">"
            )
        }
        Some(t) if t.kind == TokenKind::Ident => t.text == "else",
        _ => false,
    }
}

/// Analyzes one lexed file into its [`Syntax`].
pub fn analyze(lexed: &LexedFile) -> Syntax {
    let tokens = &lexed.tokens;
    let matched = match_delims(tokens);
    let mut fns = Vec::new();
    let items = parse_items(tokens, &matched, lexed, 0, tokens.len(), &mut fns);
    let calls = extract_calls(tokens, &matched);
    let uses = extract_uses(tokens);
    let loops = extract_loops(tokens, &matched);
    Syntax {
        items,
        fns,
        calls,
        uses,
        loops,
        matched,
    }
}

/// Parses the item outline in `tokens[start..end]`, appending every
/// `fn` found (at any depth) to `fns`.
fn parse_items(
    tokens: &[Token],
    matched: &[Option<usize>],
    lexed: &LexedFile,
    start: usize,
    end: usize,
    fns: &mut Vec<FnInfo>,
) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        // Skip attributes wholesale: `#[...]` / `#![...]`.
        if t.kind == TokenKind::Punct && t.text == "#" {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.text == "!") {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.text == "[") {
                i = matched[j].map_or(j + 1, |c| c + 1);
                continue;
            }
            i += 1;
            continue;
        }
        if t.kind != TokenKind::Ident {
            // Unrecognized structure (expression soup, stray braces):
            // step over whole groups so we never descend into them.
            if t.kind == TokenKind::Punct && matches!(t.text.as_str(), "(" | "[" | "{") {
                i = matched[i].map_or(i + 1, |c| c + 1);
            } else {
                i += 1;
            }
            continue;
        }
        match t.text.as_str() {
            "fn" => {
                let name = tokens
                    .get(i + 1)
                    .filter(|n| n.kind == TokenKind::Ident)
                    .map_or_else(String::new, |n| n.text.clone());
                let (body, next) = item_body(tokens, matched, i + 1, end);
                if let Some((open, close)) = body {
                    // Recurse for nested fns; their items are children.
                    let children = parse_items(tokens, matched, lexed, open + 1, close, fns);
                    // Insertion order: parent fn before its children.
                    let at = fns.len() - count_fns(&children);
                    fns.insert(
                        at,
                        FnInfo {
                            name: name.clone(),
                            line: t.line,
                            body: Some((open, close)),
                            is_hot: lexed.is_hot(t.line),
                            in_test: t.in_test,
                        },
                    );
                    items.push(Item {
                        kind: ItemKind::Fn,
                        name,
                        line: t.line,
                        children,
                    });
                } else {
                    fns.push(FnInfo {
                        name: name.clone(),
                        line: t.line,
                        body: None,
                        is_hot: lexed.is_hot(t.line),
                        in_test: t.in_test,
                    });
                    items.push(Item {
                        kind: ItemKind::Fn,
                        name,
                        line: t.line,
                        children: Vec::new(),
                    });
                }
                i = next;
            }
            "mod" | "trait" | "impl" => {
                let kind = match t.text.as_str() {
                    "mod" => ItemKind::Mod,
                    "trait" => ItemKind::Trait,
                    _ => ItemKind::Impl,
                };
                let name = if kind == ItemKind::Impl {
                    impl_name(tokens, matched, i + 1, end)
                } else {
                    tokens
                        .get(i + 1)
                        .filter(|n| n.kind == TokenKind::Ident)
                        .map_or_else(String::new, |n| n.text.clone())
                };
                let (body, next) = item_body(tokens, matched, i + 1, end);
                let children = body.map_or_else(Vec::new, |(open, close)| {
                    parse_items(tokens, matched, lexed, open + 1, close, fns)
                });
                items.push(Item {
                    kind,
                    name,
                    line: t.line,
                    children,
                });
                i = next;
            }
            "struct" | "enum" | "use" | "const" | "static" | "type" => {
                // `const fn` / `const unsafe fn`: the modifier is not an
                // item — let the `fn` arm claim it.
                if t.text == "const"
                    && tokens
                        .get(i + 1)
                        .is_some_and(|n| n.text == "fn" || n.text == "unsafe")
                {
                    i += 1;
                    continue;
                }
                let kind = match t.text.as_str() {
                    "struct" => ItemKind::Struct,
                    "enum" => ItemKind::Enum,
                    "use" => ItemKind::Use,
                    "const" => ItemKind::Const,
                    "static" => ItemKind::Static,
                    _ => ItemKind::TypeAlias,
                };
                let name = tokens
                    .get(i + 1)
                    .filter(|n| n.kind == TokenKind::Ident)
                    .map_or_else(String::new, |n| n.text.clone());
                let (_, next) = item_body(tokens, matched, i + 1, end);
                items.push(Item {
                    kind,
                    name,
                    line: t.line,
                    children: Vec::new(),
                });
                i = next;
            }
            "macro_rules" => {
                let name = tokens
                    .get(i + 2)
                    .filter(|n| n.kind == TokenKind::Ident)
                    .map_or_else(String::new, |n| n.text.clone());
                let (_, next) = item_body(tokens, matched, i + 1, end);
                items.push(Item {
                    kind: ItemKind::MacroDef,
                    name,
                    line: t.line,
                    children: Vec::new(),
                });
                i = next;
            }
            _ => i += 1,
        }
    }
    items
}

fn count_fns(items: &[Item]) -> usize {
    items
        .iter()
        .map(|it| usize::from(it.kind == ItemKind::Fn) + count_fns(&it.children))
        .sum()
}

/// Scans from `from` for an item's extent: the first `{` outside any
/// `()`/`[]` group opens the body; a `;` at that level ends a braceless
/// item. Returns `(body_span, index_after_item)`.
fn item_body(
    tokens: &[Token],
    matched: &[Option<usize>],
    from: usize,
    end: usize,
) -> (Option<(usize, usize)>, usize) {
    let mut j = from;
    while j < end {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => {
                    j = matched[j].map_or(j + 1, |c| c + 1);
                    continue;
                }
                "{" => {
                    let close = matched[j].unwrap_or(end.saturating_sub(1));
                    return (Some((j, close)), close + 1);
                }
                ";" => return (None, j + 1),
                "}" => return (None, j), // end of enclosing body
                _ => {}
            }
        }
        j += 1;
    }
    (None, end)
}

/// Renders an `impl` header's type path up to the body or `for`.
fn impl_name(tokens: &[Token], matched: &[Option<usize>], from: usize, end: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut j = from;
    while j < end {
        let t = &tokens[j];
        match t.kind {
            TokenKind::Punct if t.text == "{" => break,
            TokenKind::Punct if t.text == "<" => {
                // Skip generic params: scan to the matching `>` naively.
                let mut depth = 1i64;
                j += 1;
                while j < end && depth > 0 {
                    match tokens[j].text.as_str() {
                        "<" => depth += 1,
                        ">" => depth -= 1,
                        "(" | "[" => {
                            j = matched[j].unwrap_or(j);
                        }
                        _ => {}
                    }
                    j += 1;
                }
                continue;
            }
            TokenKind::Ident if t.text == "for" => {
                parts.clear(); // keep the implemented-on type, not the trait
                j += 1;
                continue;
            }
            TokenKind::Ident => parts.push(t.text.clone()),
            TokenKind::Punct if t.text == ":" => parts.push(":".into()),
            _ => {}
        }
        j += 1;
    }
    parts.concat()
}

/// Extracts every call expression `seg::seg::callee(args)`.
fn extract_calls(tokens: &[Token], matched: &[Option<usize>]) -> Vec<Call> {
    let mut calls = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let Some(open) = tokens.get(i + 1) else {
            continue;
        };
        if open.kind != TokenKind::Punct || open.text != "(" {
            continue;
        }
        // `name!(...)` is a macro, `fn name(...)` a definition.
        if tokens.get(i.wrapping_sub(1)).is_some_and(|p| {
            p.kind == TokenKind::Ident && (p.text == "fn" || p.text == "macro_rules")
        }) {
            continue;
        }
        let Some(close) = matched[i + 1] else {
            continue;
        };
        // Walk the `seg ::` chain backwards from the callee.
        let mut path = vec![t.text.clone()];
        let mut j = i;
        while j >= 3
            && tokens[j - 1].text == ":"
            && tokens[j - 2].text == ":"
            && tokens[j - 3].kind == TokenKind::Ident
        {
            path.insert(0, tokens[j - 3].text.clone());
            j -= 3;
        }
        calls.push(Call {
            path,
            line: t.line,
            col: t.col,
            args: (i + 1, close),
            in_test: t.in_test,
        });
    }
    calls
}

/// Extracts the root segment of every `use` declaration.
fn extract_uses(tokens: &[Token]) -> Vec<UseDecl> {
    let mut uses = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || t.text != "use" {
            continue;
        }
        let mut j = i + 1;
        // `use ::std::...` — skip a leading `::`.
        while tokens
            .get(j)
            .is_some_and(|p| p.kind == TokenKind::Punct && p.text == ":")
        {
            j += 1;
        }
        if let Some(root) = tokens.get(j).filter(|r| r.kind == TokenKind::Ident) {
            uses.push(UseDecl {
                root: root.text.clone(),
                line: t.line,
                in_test: t.in_test,
            });
        }
    }
    uses
}

/// Extracts the body span of every statement-position loop.
fn extract_loops(tokens: &[Token], matched: &[Option<usize>]) -> Vec<LoopSpan> {
    let mut loops = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || !matches!(t.text.as_str(), "for" | "while" | "loop") {
            continue;
        }
        if !can_precede_loop(if i == 0 { None } else { tokens.get(i - 1) }) {
            continue;
        }
        // `for<'a>` higher-ranked bounds are not loops.
        if tokens.get(i + 1).is_some_and(|n| n.text == "<") {
            continue;
        }
        // The body is the first `{` after the keyword outside `()`/`[]`.
        let mut j = i + 1;
        let mut body = None;
        while j < tokens.len() {
            let u = &tokens[j];
            if u.kind == TokenKind::Punct {
                match u.text.as_str() {
                    "(" | "[" => {
                        j = matched[j].map_or(j + 1, |c| c + 1);
                        continue;
                    }
                    "{" => {
                        if let Some(close) = matched[j] {
                            body = Some((j, close));
                        }
                        break;
                    }
                    ";" | "}" => break,
                    _ => {}
                }
            }
            j += 1;
        }
        if let Some(span) = body {
            loops.push(LoopSpan {
                line: t.line,
                body: span,
            });
        }
    }
    loops
}

/// Renders the item outline as an indented text dump (for goldens).
pub fn render_outline(items: &[Item]) -> String {
    fn walk(items: &[Item], depth: usize, out: &mut String) {
        for it in items {
            out.push_str(&"  ".repeat(depth));
            out.push_str(it.kind.label());
            if !it.name.is_empty() {
                out.push(' ');
                out.push_str(&it.name);
            }
            out.push_str(&format!(" @{}\n", it.line));
            walk(&it.children, depth + 1, out);
        }
    }
    let mut out = String::new();
    walk(items, 0, &mut out);
    out
}

/// Renders the token-tree forest as an indented text dump (for goldens).
pub fn render_token_trees(tokens: &[Token]) -> String {
    fn walk(trees: &[Tree], tokens: &[Token], depth: usize, out: &mut String) {
        for tree in trees {
            out.push_str(&"  ".repeat(depth));
            match tree {
                Tree::Leaf(i) => {
                    let t = &tokens[*i];
                    out.push_str(&format!("{:?} `{}` @{}\n", t.kind, t.text, t.line));
                }
                Tree::Group {
                    delim,
                    open,
                    close,
                    children,
                } => {
                    let closed = if close.is_some() { "" } else { " (unclosed)" };
                    out.push_str(&format!("group {delim} @{}{closed}\n", tokens[*open].line));
                    walk(children, tokens, depth + 1, out);
                }
            }
        }
    }
    let mut out = String::new();
    walk(&token_trees(tokens), tokens, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn syn(src: &str) -> Syntax {
        analyze(&lex(src))
    }

    #[test]
    fn outline_nests_mod_impl_fn() {
        let s = syn(concat!(
            "mod inner {\n",
            "    struct S;\n",
            "    impl S {\n",
            "        fn method(&self) {}\n",
            "    }\n",
            "}\n",
            "fn top() {}\n",
        ));
        let dump = render_outline(&s.items);
        assert_eq!(
            dump,
            concat!(
                "mod inner @1\n",
                "  struct S @2\n",
                "  impl S @3\n",
                "    fn method @4\n",
                "fn top @7\n",
            )
        );
    }

    #[test]
    fn impl_trait_for_type_names_the_type() {
        let s = syn("impl Display for Wire { fn fmt(&self) {} }");
        assert_eq!(s.items[0].name, "Wire");
    }

    #[test]
    fn fns_carry_hot_flag_and_body_span() {
        let s = syn(concat!(
            "// ncs-lint: hot\n",
            "fn kernel(xs: &mut [f64]) { xs.sort(); }\n",
            "fn cold() {}\n",
        ));
        assert_eq!(s.fns.len(), 2);
        assert!(s.fns[0].is_hot);
        assert_eq!(s.fns[0].name, "kernel");
        assert!(s.fns[0].body.is_some());
        assert!(!s.fns[1].is_hot);
    }

    #[test]
    fn calls_capture_full_paths() {
        let s = syn("fn f() { ncs_par::par_map(xs, cutoff, g); plain(1); x.method(2); }");
        let paths: Vec<String> = s.calls.iter().map(|c| c.path.join("::")).collect();
        assert!(paths.contains(&"ncs_par::par_map".into()));
        assert!(paths.contains(&"plain".into()));
        assert!(paths.contains(&"method".into()));
        // Definitions are not calls.
        assert!(!paths.contains(&"f".into()));
    }

    #[test]
    fn use_roots_are_extracted() {
        let s = syn("use ncs_par::{par_map, Cutoff};\npub use std::fmt;\nuse crate::x;\n");
        let roots: Vec<&str> = s.uses.iter().map(|u| u.root.as_str()).collect();
        assert_eq!(roots, ["ncs_par", "std", "crate"]);
    }

    #[test]
    fn loops_found_impl_for_excluded() {
        let s = syn(concat!(
            "impl Display for Wire { fn fmt(&self) {} }\n",
            "fn f() { for x in xs { g(x); } while t() { h(); } loop { break; } }\n",
        ));
        assert_eq!(s.loops.len(), 3);
        assert!(s.loops.iter().all(|l| l.line == 2));
    }

    #[test]
    fn token_trees_nest_and_survive_imbalance() {
        let lexed = lex("f(a, [b, c]) }");
        let dump = render_token_trees(&lexed.tokens);
        assert!(dump.contains("group ("));
        assert!(dump.contains("group ["));
        assert!(dump.contains("Punct `}`")); // unbalanced closer is a leaf
    }

    #[test]
    fn labeled_loop_is_still_a_loop() {
        let s = syn("fn f() { 'outer: loop { break 'outer; } }");
        assert_eq!(s.loops.len(), 1);
    }
}
