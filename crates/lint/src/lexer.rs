//! A small Rust source tokenizer, just deep enough for lint rules.
//!
//! The lexer understands comments (line, nested block), string/char/byte
//! literals (including raw strings), lifetimes, numbers (with `_`
//! separators, hex/octal/binary prefixes, exponents, and type suffixes),
//! identifiers, and punctuation. Two things make it more than a toy:
//!
//! 1. **Waiver harvesting** — `// ncs-lint: allow(rule-a, rule-b)`
//!    comments are collected while lexing, so rules never see them and
//!    the waiver table is exact about which lines they cover. Doc
//!    comments (`///`, `//!`, `/**`, `/*!`) are prose *about* markers,
//!    never markers, and are excluded from harvesting.
//! 2. **Test-region marking** — tokens inside `#[cfg(test)]` / `#[test]`
//!    items are flagged `in_test`, so rules that only police production
//!    code can skip them without a full parse.
//! 3. **Hot-marker harvesting** — `// ncs-lint: hot` comments flag the
//!    function they precede (or share a line with) as a hot kernel for
//!    the `alloc-in-hot-loop` rule.

use std::collections::{BTreeMap, BTreeSet};

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `as`, `fn`, ...).
    Ident,
    /// Integer literal (`42`, `0xff_u32`).
    Int,
    /// Float literal (`1.0`, `1e-4`, `2.5f32`).
    Float,
    /// String or byte-string literal (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation. Single characters, except `==` and `!=` which are
    /// lexed as one token so the `float-eq` rule can match them directly.
    Punct,
}

/// One lexed token with its source position (1-indexed line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Verbatim token text.
    pub text: String,
    /// 1-indexed source line.
    pub line: u32,
    /// 1-indexed source column (in characters).
    pub col: u32,
    /// Whether the token sits inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
}

/// Result of lexing one file: tokens plus the per-line waiver table.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// Tokens in source order, with `in_test` regions already marked.
    pub tokens: Vec<Token>,
    /// Waived rule names per 1-indexed line. A waiver comment covers its
    /// own line; if the comment stands alone on a line, it also covers
    /// the next line that carries code.
    pub waivers: BTreeMap<u32, BTreeSet<String>>,
    /// 1-indexed lines flagged `// ncs-lint: hot`, normalized the same
    /// way as waivers (a standalone marker attaches to the next code
    /// line — typically the `fn` it decorates).
    pub hot_lines: BTreeSet<u32>,
}

impl LexedFile {
    /// Whether `rule` is waived on `line`.
    pub fn is_waived(&self, rule: &str, line: u32) -> bool {
        self.waivers
            .get(&line)
            .is_some_and(|rules| rules.contains(rule))
    }

    /// Whether `line` carries a `// ncs-lint: hot` marker.
    pub fn is_hot(&self, line: u32) -> bool {
        self.hot_lines.contains(&line)
    }
}

/// The marker every waiver comment must contain.
const WAIVER_MARKER: &str = "ncs-lint: allow(";

/// The marker that flags the following function as a hot kernel.
const HOT_MARKER: &str = "ncs-lint: hot";

/// Whether a `//` comment is a doc comment (`///` or `//!`, but not
/// `////`, which rustdoc treats as plain).
fn is_doc_line_comment(text: &str) -> bool {
    (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!")
}

/// Whether a `/* */` comment is a doc comment (`/**` or `/*!`, but not
/// the empty `/**/` or `/***`).
fn is_doc_block_comment(text: &str) -> bool {
    (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4)
        || text.starts_with("/*!")
}

/// Lexes `source` into tokens and waivers.
pub fn lex(source: &str) -> LexedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    // (line, rules, standalone-so-far) for each waiver comment found.
    let mut raw_waivers: Vec<(u32, Vec<String>)> = Vec::new();
    // Lines carrying a `// ncs-lint: hot` marker, pre-normalization.
    let mut raw_hot: Vec<u32> = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut i = 0usize;

    macro_rules! advance {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        if c == '\n' || c.is_whitespace() {
            advance!();
        } else if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
            // Line comment: collect text for waiver harvesting.
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                advance!();
            }
            if !is_doc_line_comment(&text) {
                for rules in parse_waiver(&text) {
                    raw_waivers.push((tline, rules));
                }
                if text.contains(HOT_MARKER) {
                    raw_hot.push(tline);
                }
            }
        } else if c == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
            // Block comment, possibly nested.
            let mut depth = 0usize;
            let mut text = String::new();
            while i < chars.len() {
                if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                    depth += 1;
                    text.push(chars[i]);
                    advance!();
                    text.push(chars[i]);
                    advance!();
                } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                    depth -= 1;
                    text.push(chars[i]);
                    advance!();
                    text.push(chars[i]);
                    advance!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(chars[i]);
                    advance!();
                }
            }
            if !is_doc_block_comment(&text) {
                for rules in parse_waiver(&text) {
                    raw_waivers.push((tline, rules));
                }
                if text.contains(HOT_MARKER) {
                    raw_hot.push(tline);
                }
            }
        } else if c == '"' {
            let text = lex_string(&chars, &mut i, &mut line, &mut col);
            push(&mut tokens, TokenKind::Str, text, tline, tcol);
        } else if (c == 'r' || c == 'b') && matches!(peek_raw_string(&chars, i), Some(_hashes)) {
            let text = lex_raw_string(&chars, &mut i, &mut line, &mut col);
            push(&mut tokens, TokenKind::Str, text, tline, tcol);
        } else if c == 'r'
            && chars.get(i + 1) == Some(&'#')
            && chars.get(i + 2).is_some_and(|&n| is_ident_start(n))
        {
            // Raw identifier (`r#fn`, `r#loop`). Keep the `r#` prefix in
            // the text so the escaped name never matches a keyword.
            let mut text = String::from("r#");
            advance!();
            advance!();
            while i < chars.len() && is_ident_continue(chars[i]) {
                text.push(chars[i]);
                advance!();
            }
            push(&mut tokens, TokenKind::Ident, text, tline, tcol);
        } else if c == 'b' && i + 1 < chars.len() && chars[i + 1] == '"' {
            advance!(); // consume the `b`
            let mut text = lex_string(&chars, &mut i, &mut line, &mut col);
            text.insert(0, 'b');
            push(&mut tokens, TokenKind::Str, text, tline, tcol);
        } else if c == 'b' && i + 1 < chars.len() && chars[i + 1] == '\'' {
            advance!(); // consume the `b`
            let mut text = lex_char(&chars, &mut i, &mut line, &mut col);
            text.insert(0, 'b');
            push(&mut tokens, TokenKind::Char, text, tline, tcol);
        } else if c == '\'' {
            // Lifetime or char literal.
            if is_lifetime_start(&chars, i) {
                let mut text = String::from('\'');
                advance!();
                while i < chars.len() && is_ident_continue(chars[i]) {
                    text.push(chars[i]);
                    advance!();
                }
                push(&mut tokens, TokenKind::Lifetime, text, tline, tcol);
            } else {
                let text = lex_char(&chars, &mut i, &mut line, &mut col);
                push(&mut tokens, TokenKind::Char, text, tline, tcol);
            }
        } else if is_ident_start(c) {
            let mut text = String::new();
            while i < chars.len() && is_ident_continue(chars[i]) {
                text.push(chars[i]);
                advance!();
            }
            push(&mut tokens, TokenKind::Ident, text, tline, tcol);
        } else if c.is_ascii_digit() {
            let (text, kind) = lex_number(&chars, &mut i, &mut line, &mut col);
            push(&mut tokens, kind, text, tline, tcol);
        } else {
            // Punctuation; fuse `==` and `!=`.
            let mut text = String::from(c);
            advance!();
            if (c == '=' || c == '!') && i < chars.len() && chars[i] == '=' {
                // `!=` always fuses; `==` must not eat the tail of `<==`
                // (not valid Rust anyway) — fuse unconditionally.
                text.push('=');
                advance!();
            }
            push(&mut tokens, TokenKind::Punct, text, tline, tcol);
        }
    }

    mark_test_regions(&mut tokens);

    // Build the waiver table: a waiver covers its own line, and — when no
    // code token shares that line — the next line that carries code. Hot
    // markers attach the same way, landing on the `fn` they decorate.
    let code_lines: BTreeSet<u32> = tokens.iter().map(|t| t.line).collect();
    let attach = |mline: u32| -> u32 {
        if code_lines.contains(&mline) {
            mline
        } else {
            // Standalone comment: attach to the next code line (if any).
            match code_lines.range(mline..).next() {
                Some(&next) => next,
                None => mline,
            }
        }
    };
    let mut waivers: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for (wline, rules) in raw_waivers {
        waivers.entry(attach(wline)).or_default().extend(rules);
    }
    let hot_lines: BTreeSet<u32> = raw_hot.into_iter().map(attach).collect();
    LexedFile {
        tokens,
        waivers,
        hot_lines,
    }
}

fn push(tokens: &mut Vec<Token>, kind: TokenKind, text: String, line: u32, col: u32) {
    tokens.push(Token {
        kind,
        text,
        line,
        col,
        in_test: false,
    });
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether the `'` at `i` starts a lifetime (rather than a char literal).
fn is_lifetime_start(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some(&c) if is_ident_start(c) => chars.get(i + 2) != Some(&'\''),
        _ => false,
    }
}

/// Detects `r"`, `r#...#"`, `br"`, `br#...#"` at position `i`.
fn peek_raw_string(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

fn lex_string(chars: &[char], i: &mut usize, line: &mut u32, col: &mut u32) -> String {
    let mut text = String::new();
    let step = |i: &mut usize, line: &mut u32, col: &mut u32| {
        if chars[*i] == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *i += 1;
    };
    text.push(chars[*i]); // opening quote
    step(i, line, col);
    while *i < chars.len() {
        let c = chars[*i];
        text.push(c);
        if c == '\\' && *i + 1 < chars.len() {
            step(i, line, col);
            text.push(chars[*i]);
            step(i, line, col);
        } else {
            step(i, line, col);
            if c == '"' {
                break;
            }
        }
    }
    text
}

fn lex_raw_string(chars: &[char], i: &mut usize, line: &mut u32, col: &mut u32) -> String {
    let mut text = String::new();
    let step = |i: &mut usize, line: &mut u32, col: &mut u32| {
        if chars[*i] == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
        *i += 1;
    };
    if chars[*i] == 'b' {
        text.push('b');
        step(i, line, col);
    }
    text.push('r');
    step(i, line, col);
    let mut hashes = 0usize;
    while *i < chars.len() && chars[*i] == '#' {
        hashes += 1;
        text.push('#');
        step(i, line, col);
    }
    text.push('"');
    step(i, line, col); // opening quote
    while *i < chars.len() {
        let c = chars[*i];
        text.push(c);
        step(i, line, col);
        if c == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(*i + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                for _ in 0..hashes {
                    text.push('#');
                    step(i, line, col);
                }
                break;
            }
        }
    }
    text
}

fn lex_char(chars: &[char], i: &mut usize, line: &mut u32, col: &mut u32) -> String {
    let mut text = String::new();
    let step = |i: &mut usize, col: &mut u32| {
        *col += 1;
        *i += 1;
    };
    text.push(chars[*i]); // opening quote
    step(i, col);
    while *i < chars.len() {
        let c = chars[*i];
        text.push(c);
        if c == '\\' && *i + 1 < chars.len() {
            step(i, col);
            text.push(chars[*i]);
            step(i, col);
        } else {
            step(i, col);
            if c == '\'' {
                break;
            }
        }
    }
    let _ = line;
    text
}

fn lex_number(chars: &[char], i: &mut usize, line: &mut u32, col: &mut u32) -> (String, TokenKind) {
    let mut text = String::new();
    let mut kind = TokenKind::Int;
    let step = |i: &mut usize, col: &mut u32| {
        *col += 1;
        *i += 1;
    };
    // Radix prefixes consume alphanumerics wholesale (covers `0xff_u32`).
    if chars[*i] == '0' && matches!(chars.get(*i + 1), Some(&'x') | Some(&'o') | Some(&'b')) {
        text.push(chars[*i]);
        step(i, col);
        text.push(chars[*i]);
        step(i, col);
        while *i < chars.len() && (chars[*i].is_ascii_alphanumeric() || chars[*i] == '_') {
            text.push(chars[*i]);
            step(i, col);
        }
        let _ = line;
        return (text, kind);
    }
    while *i < chars.len() && (chars[*i].is_ascii_digit() || chars[*i] == '_') {
        text.push(chars[*i]);
        step(i, col);
    }
    // Fractional part: `.` followed by a digit (so `1..2` and `x.0.abs()`
    // stay integers); a trailing `1.` also lexes as a float.
    if chars.get(*i) == Some(&'.') {
        let after = chars.get(*i + 1);
        let is_fraction = match after {
            Some(&c) => c.is_ascii_digit(),
            None => true,
        };
        let is_method_or_range = match after {
            Some(&c) => is_ident_start(c) || c == '.',
            None => false,
        };
        if is_fraction || (!is_method_or_range && after.is_some()) {
            kind = TokenKind::Float;
            text.push('.');
            step(i, col);
            while *i < chars.len() && (chars[*i].is_ascii_digit() || chars[*i] == '_') {
                text.push(chars[*i]);
                step(i, col);
            }
        }
    }
    // Exponent.
    if matches!(chars.get(*i), Some(&'e') | Some(&'E')) {
        let mut j = *i + 1;
        if matches!(chars.get(j), Some(&'+') | Some(&'-')) {
            j += 1;
        }
        if chars.get(j).is_some_and(|c| c.is_ascii_digit()) {
            kind = TokenKind::Float;
            while *i < j {
                text.push(chars[*i]);
                step(i, col);
            }
            while *i < chars.len() && (chars[*i].is_ascii_digit() || chars[*i] == '_') {
                text.push(chars[*i]);
                step(i, col);
            }
        }
    }
    // Type suffix (`1.0f64`, `42usize`).
    if chars.get(*i).is_some_and(|&c| is_ident_start(c)) {
        let mut suffix = String::new();
        let mut j = *i;
        while j < chars.len() && is_ident_continue(chars[j]) {
            suffix.push(chars[j]);
            j += 1;
        }
        if suffix.starts_with('f') {
            kind = TokenKind::Float;
        }
        while *i < j {
            text.push(chars[*i]);
            step(i, col);
        }
    }
    (text, kind)
}

/// Parses every `ncs-lint: allow(a, b)` group out of a comment's text.
fn parse_waiver(comment: &str) -> Vec<Vec<String>> {
    let mut found = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find(WAIVER_MARKER) {
        rest = &rest[pos + WAIVER_MARKER.len()..];
        if let Some(end) = rest.find(')') {
            let rules: Vec<String> = rest[..end]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            if !rules.is_empty() {
                found.push(rules);
            }
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    found
}

/// Marks tokens inside `#[cfg(test)]` / `#[test]` items as test code.
///
/// On seeing a test attribute, the scanner walks forward past any further
/// attributes to the item's first `{` at bracket depth 0 and marks
/// through its matching `}`. An attribute on a braceless item (e.g.
/// `#[cfg(test)] use ...;`) stops at the terminating `;` instead.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(attr_end) = test_attribute_at(tokens, i) {
            // Find the extent of the item the attribute decorates.
            let mut j = attr_end;
            let mut depth = 0i64;
            let mut body_start = None;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => {
                            body_start = Some(j);
                            break;
                        }
                        ";" if depth == 0 => {
                            body_start = None;
                            break;
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            let region_end = match body_start {
                Some(open) => matching_brace(tokens, open).unwrap_or(tokens.len() - 1),
                None => j.min(tokens.len() - 1),
            };
            for t in tokens.iter_mut().take(region_end + 1).skip(i) {
                t.in_test = true;
            }
            i = region_end + 1;
        } else {
            i += 1;
        }
    }
}

/// If a `#[cfg(test)]` or `#[test]` attribute starts at `i`, returns the
/// index one past its closing `]`.
fn test_attribute_at(tokens: &[Token], i: usize) -> Option<usize> {
    let tok = |k: usize| tokens.get(k);
    let is = |k: usize, kind: TokenKind, text: &str| {
        tok(k).is_some_and(|t| t.kind == kind && t.text == text)
    };
    if !is(i, TokenKind::Punct, "#") || !is(i + 1, TokenKind::Punct, "[") {
        return None;
    }
    // `#[test]`
    if is(i + 2, TokenKind::Ident, "test") && is(i + 3, TokenKind::Punct, "]") {
        return Some(i + 4);
    }
    // `#[cfg(test)]`
    if is(i + 2, TokenKind::Ident, "cfg")
        && is(i + 3, TokenKind::Punct, "(")
        && is(i + 4, TokenKind::Ident, "test")
        && is(i + 5, TokenKind::Punct, ")")
        && is(i + 6, TokenKind::Punct, "]")
    {
        return Some(i + 7);
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn lexes_floats_ints_and_ranges() {
        let toks = kinds("let x = 1.0 + 2; let r = 0..10; let e = 1e-4;");
        assert!(toks.contains(&(TokenKind::Float, "1.0".into())));
        assert!(toks.contains(&(TokenKind::Int, "2".into())));
        assert!(toks.contains(&(TokenKind::Int, "0".into())));
        assert!(toks.contains(&(TokenKind::Int, "10".into())));
        assert!(toks.contains(&(TokenKind::Float, "1e-4".into())));
    }

    #[test]
    fn float_range_does_not_glue_dots() {
        let toks = kinds("(0.0..1.0).contains(&x)");
        assert!(toks.contains(&(TokenKind::Float, "0.0".into())));
        assert!(toks.contains(&(TokenKind::Float, "1.0".into())));
    }

    #[test]
    fn method_call_on_int_stays_int() {
        let toks = kinds("2u32.pow(3)");
        assert_eq!(toks[0], (TokenKind::Int, "2u32".into()));
    }

    #[test]
    fn suffixed_float_detected() {
        let toks = kinds("let x = 1f32;");
        assert!(toks.contains(&(TokenKind::Float, "1f32".into())));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn comments_and_strings_hide_violations() {
        let toks = kinds("// x.unwrap()\n/* y.expect(\"no\") */ let s = \"z.unwrap()\";");
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "expect"));
    }

    #[test]
    fn raw_strings_lex_whole() {
        let toks = kinds("let s = r#\"a \" b\"#; let t = 1;");
        assert!(toks.contains(&(TokenKind::Int, "1".into())));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn equality_operators_fuse() {
        let toks = kinds("a == b; c != d; e <= f; g = h;");
        assert!(toks.contains(&(TokenKind::Punct, "==".into())));
        assert!(toks.contains(&(TokenKind::Punct, "!=".into())));
        assert!(toks.contains(&(TokenKind::Punct, "<".into())));
        assert!(toks.contains(&(TokenKind::Punct, "=".into())));
    }

    #[test]
    fn waiver_on_same_line_and_standalone() {
        let lexed = lex(concat!(
            "let a = x.unwrap(); // ncs-lint: allow(no-panic-paths)\n",
            "// ncs-lint: allow(float-eq) — sentinel compare\n",
            "if v == 0.0 {}\n",
        ));
        assert!(lexed.is_waived("no-panic-paths", 1));
        assert!(lexed.is_waived("float-eq", 3));
        assert!(!lexed.is_waived("float-eq", 1));
    }

    #[test]
    fn waiver_list_splits_on_commas() {
        let lexed = lex("let a = 1; // ncs-lint: allow(rule-a, rule-b)\n");
        assert!(lexed.is_waived("rule-a", 1));
        assert!(lexed.is_waived("rule-b", 1));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let lexed = lex(concat!(
            "fn prod() { let x = 1; }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { x.unwrap(); }\n",
            "}\n",
            "fn prod2() { let y = 2; }\n",
        ));
        let unwrap_tok = lexed
            .tokens
            .iter()
            .find(|t| t.text == "unwrap")
            .expect("unwrap token exists");
        assert!(unwrap_tok.in_test);
        let prod2 = lexed
            .tokens
            .iter()
            .find(|t| t.text == "prod2")
            .expect("prod2 token exists");
        assert!(!prod2.in_test);
    }

    #[test]
    fn char_literal_lifetime_battery() {
        // Every `'` disambiguation the workspace exercises: labeled
        // loops, `'_` vs `'_'`, escapes, unicode escapes, and a
        // lifetime at end-of-input.
        let toks = kinds(concat!(
            "'outer: loop { break 'outer; }\n",
            "fn f(x: &'_ str) -> char { '_' }\n",
            "let q = '\\''; let u = '\\u{1F600}'; let z = '\\\\';\n",
        ));
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, ["'outer", "'outer", "'_"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, ["'_'", "'\\''", "'\\u{1F600}'", "'\\\\'"]);
        let eof = kinds("&'a");
        assert!(eof.contains(&(TokenKind::Lifetime, "'a".into())));
    }

    #[test]
    fn nested_raw_strings_inside_macros() {
        // A raw string inside a macro invocation whose body quotes both
        // plain strings and a shallower raw string must lex as one Str
        // token ending at the matching hash depth.
        let toks = kinds(concat!(
            "assert_eq!(render(), r##\"outer \"quoted\" and r#\"inner\"# end\"##);\n",
            "let after = 7;\n",
        ));
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, ["r##\"outer \"quoted\" and r#\"inner\"# end\"##"]);
        assert!(toks.contains(&(TokenKind::Int, "7".into())));
    }

    #[test]
    fn raw_identifiers_lex_as_single_idents() {
        let toks = kinds("let r#fn = r#loop + 1; call(r#fn);");
        assert!(toks.contains(&(TokenKind::Ident, "r#fn".into())));
        assert!(toks.contains(&(TokenKind::Ident, "r#loop".into())));
        // The escaped name must not surface as the bare keyword.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "fn"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "loop"));
    }

    #[test]
    fn doc_comments_do_not_harvest_markers() {
        let lexed = lex(concat!(
            "/// Docs quoting `// ncs-lint: allow(no-panic-paths)` syntax.\n",
            "//! And `// ncs-lint: hot` prose.\n",
            "/** block doc ncs-lint: allow(float-eq) */\n",
            "fn f() { let x = 1; }\n",
        ));
        assert!(lexed.waivers.is_empty());
        assert!(lexed.hot_lines.is_empty());
    }

    #[test]
    fn hot_marker_attaches_to_next_code_line() {
        let lexed = lex(concat!(
            "// ncs-lint: hot\n",
            "fn kernel(xs: &mut [f64]) {\n",
            "    inline_hot(); // ncs-lint: hot\n",
            "}\n",
        ));
        assert!(lexed.is_hot(2));
        assert!(lexed.is_hot(3));
        assert!(!lexed.is_hot(4));
    }

    #[test]
    fn cfg_test_on_braceless_item_stops_at_semicolon() {
        let lexed = lex("#[cfg(test)]\nuse std::collections::HashMap;\nfn f() {}\n");
        let f_tok = lexed
            .tokens
            .iter()
            .find(|t| t.text == "f")
            .expect("f token exists");
        assert!(!f_tok.in_test);
        let hm = lexed
            .tokens
            .iter()
            .find(|t| t.text == "HashMap")
            .expect("HashMap token exists");
        assert!(hm.in_test);
    }
}
