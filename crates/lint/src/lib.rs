//! `ncs-lint` — in-tree static analysis for the AutoNCS workspace.
//!
//! The AutoNCS reproduction pins its headline numbers to bit-identical
//! seeded runs (`tests/determinism.rs`), but end-to-end tests only catch
//! nondeterminism and panics *after* they land. This crate enforces the
//! underlying invariants statically, with zero dependencies (the
//! workspace builds offline against an empty registry):
//!
//! * **no-panic-paths** — no `unwrap()` / `expect()` / `panic!` /
//!   `todo!` / `unimplemented!` / `unreachable!` in non-test library
//!   code of the flow crates. Indexing (`[]`) gets a free pass.
//! * **deterministic-iteration** — no `HashMap` / `HashSet` in
//!   flow-path crates; `BTreeMap` / `BTreeSet` / indexed `Vec` only.
//! * **lossy-cast-audit** — `as` casts to sub-64-bit numeric types in
//!   numeric kernels need a waiver proving the range.
//! * **crate-hygiene** — every crate root carries
//!   `#![forbid(unsafe_code)]` and a `missing_docs` lint header.
//! * **float-eq** — no bare `==` / `!=` against float literals outside
//!   tests.
//! * **no-adhoc-threads** — `thread::spawn` / `thread::scope` /
//!   `thread::Builder` only inside `ncs-par`; everywhere else the
//!   deterministic `par_*` primitives.
//! * **no-adhoc-logging** — no `println!` / `eprintln!` in non-test
//!   library code of the flow crates; diagnostics go through the
//!   structured `ncs-trace` counters and spans (bin targets exempt).
//!
//! Findings are suppressed per-site with a waiver comment naming the
//! rule, on the same line or alone on the line above:
//!
//! ```text
//! // ncs-lint: allow(float-eq) — exact zero is the disabled sentinel
//! if stuck_on == 0.0 { ... }
//! ```
//!
//! # Examples
//!
//! ```
//! use ncs_lint::{lint_source, FileContext};
//!
//! let ctx = FileContext::strict("demo.rs");
//! let findings = lint_source("fn f(x: Option<u8>) { x.unwrap(); }", &ctx);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "no-panic-paths");
//! assert_eq!(findings[0].line, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod syntax;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// How serious a finding is, driving exit-code policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Invariant violation: always fails the run.
    Error,
    /// Hygiene problem (e.g. a stale waiver): fails only under
    /// `--strict`.
    Warning,
}

impl Severity {
    /// Lower-case label used in JSON and GitHub-annotation output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One lint finding with a `file:line:col` span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule name (stable, kebab-case; used in waivers).
    pub rule: &'static str,
    /// Display path of the offending file.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Whether an `ncs-lint: allow(...)` waiver covers this finding.
    pub waived: bool,
    /// Error or warning.
    pub severity: Severity,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}] {}{}",
            self.path,
            self.line,
            self.col,
            if self.severity == Severity::Warning {
                "warning: "
            } else {
                ""
            },
            self.rule,
            self.message,
            if self.waived { " (waived)" } else { "" }
        )
    }
}

impl Diagnostic {
    /// Renders the finding as one JSON object (machine-readable output).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"waived\":{}}}",
            json_escape(&self.path),
            self.line,
            self.col,
            self.rule,
            self.severity.label(),
            json_escape(&self.message),
            self.waived
        )
    }

    /// Renders the finding as a GitHub workflow annotation
    /// (`::error file=…,line=…,col=…::message`), so findings surface
    /// inline on pull requests.
    pub fn to_github(&self) -> String {
        let kind = if self.waived {
            "notice"
        } else {
            self.severity.label()
        };
        format!(
            "::{} file={},line={},col={}::[{}] {}",
            kind, self.path, self.line, self.col, self.rule, self.message
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// How a file is classified for rule scoping.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Display path used in diagnostics.
    pub path: String,
    /// Directory name under `crates/` this file belongs to, if any.
    pub crate_name: Option<String>,
    /// Whether this is a crate root (`src/lib.rs`) subject to hygiene.
    pub is_crate_root: bool,
    /// Whether this is a binary target (`src/bin/*` or `src/main.rs`):
    /// CLI glue, exempt from the library panic-freedom rule.
    pub is_bin_target: bool,
    /// Whether the path itself is test code (`tests/`, `benches/`,
    /// `examples/`): token rules skip the whole file.
    pub is_test_code: bool,
    /// Strict mode (explicit CLI paths, fixtures): every rule applies
    /// regardless of crate scoping.
    pub strict: bool,
}

impl FileContext {
    /// Classifies `path` for a workspace scan (crate-scoped rules).
    pub fn for_workspace_file(path: &Path) -> Self {
        let display = path.display().to_string().replace('\\', "/");
        let components: Vec<&str> = display.split('/').collect();
        let crate_name = components
            .iter()
            .position(|c| *c == "crates")
            .and_then(|i| components.get(i + 1))
            .map(|s| s.to_string());
        let file_name = components.last().copied().unwrap_or("");
        let parent = components.len().checked_sub(2).map(|i| components[i]);
        let is_crate_root = file_name == "lib.rs" && parent == Some("src");
        let is_bin_target = file_name == "main.rs" || parent == Some("bin");
        let is_test_code = components
            .iter()
            .any(|c| *c == "tests" || *c == "benches" || *c == "examples");
        FileContext {
            path: display,
            crate_name,
            is_crate_root,
            is_bin_target,
            is_test_code,
            strict: false,
        }
    }

    /// Strict classification (explicit paths / fixtures): all rules
    /// apply; hygiene applies to any file named `lib.rs`. The crate
    /// name — which scopes the `crate-layering` DAG — is taken from the
    /// component after the *last* `crates/` in the path, so layering
    /// fixtures under `fixtures/crates/<name>/src/` classify as crate
    /// `<name>` even though the fixture itself lives inside
    /// `crates/lint`.
    pub fn strict(path: impl Into<String>) -> Self {
        let display = path.into().replace('\\', "/");
        let is_crate_root = display.ends_with("lib.rs");
        let components: Vec<&str> = display.split('/').collect();
        let crate_name = components
            .iter()
            .rposition(|c| *c == "crates")
            .and_then(|i| components.get(i + 1))
            .map(|s| (*s).to_string());
        FileContext {
            path: display,
            crate_name,
            is_crate_root,
            is_bin_target: false,
            is_test_code: false,
            strict: true,
        }
    }
}

/// Lints one source string under the given context.
pub fn lint_source(source: &str, ctx: &FileContext) -> Vec<Diagnostic> {
    rules::check_file(&lexer::lex(source), ctx)
}

/// Lints one file on disk.
///
/// # Errors
///
/// Returns the underlying [`io::Error`] if the file cannot be read.
pub fn lint_file(path: &Path, ctx: &FileContext) -> io::Result<Vec<Diagnostic>> {
    let source = fs::read_to_string(path)?;
    Ok(lint_source(&source, ctx))
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic output.
///
/// # Errors
///
/// Returns the underlying [`io::Error`] on unreadable directories.
pub fn collect_rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Finds the workspace root by walking up from `start` until a
/// `Cargo.toml` containing `[workspace]` appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(contents) = fs::read_to_string(&manifest) {
            if contents.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Lints every `crates/*/src/**/*.rs` file under `root` with
/// crate-scoped rules. Diagnostics use paths relative to `root`.
///
/// # Errors
///
/// Returns the underlying [`io::Error`] on unreadable files.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let crates_dir = root.join("crates");
    let mut diagnostics = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        for file in collect_rust_files(&src)? {
            let rel = file.strip_prefix(root).unwrap_or(&file);
            let ctx = FileContext::for_workspace_file(rel);
            diagnostics.extend(lint_file(&file, &ctx)?);
        }
    }
    Ok(diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_classification() {
        let ctx = FileContext::for_workspace_file(Path::new("crates/phys/src/place.rs"));
        assert_eq!(ctx.crate_name.as_deref(), Some("phys"));
        assert!(!ctx.is_crate_root && !ctx.is_bin_target && !ctx.is_test_code);

        let root = FileContext::for_workspace_file(Path::new("crates/net/src/lib.rs"));
        assert!(root.is_crate_root);

        let bin = FileContext::for_workspace_file(Path::new("crates/core/src/bin/autoncs.rs"));
        assert!(bin.is_bin_target);

        let test = FileContext::for_workspace_file(Path::new("crates/net/tests/proptests.rs"));
        assert!(test.is_test_code);
    }

    #[test]
    fn strict_classification_marks_lib_roots() {
        assert!(FileContext::strict("fixtures/bad_root/src/lib.rs").is_crate_root);
        assert!(!FileContext::strict("fixtures/clean.rs").is_crate_root);
    }

    #[test]
    fn diagnostics_render_text_json_and_github() {
        let d = Diagnostic {
            rule: "float-eq",
            path: "a.rs".to_string(),
            line: 3,
            col: 7,
            message: "bare `==` on a float".to_string(),
            waived: false,
            severity: Severity::Error,
        };
        assert_eq!(d.to_string(), "a.rs:3:7: [float-eq] bare `==` on a float");
        assert_eq!(
            d.to_json(),
            "{\"file\":\"a.rs\",\"line\":3,\"col\":7,\"rule\":\"float-eq\",\
             \"severity\":\"error\",\
             \"message\":\"bare `==` on a float\",\"waived\":false}"
        );
        assert_eq!(
            d.to_github(),
            "::error file=a.rs,line=3,col=7::[float-eq] bare `==` on a float"
        );
        let w = Diagnostic {
            severity: Severity::Warning,
            ..d
        };
        assert_eq!(
            w.to_string(),
            "a.rs:3:7: warning: [float-eq] bare `==` on a float"
        );
        assert!(w.to_github().starts_with("::warning "));
    }

    #[test]
    fn strict_derives_crate_name_from_last_crates_component() {
        let ctx = FileContext::strict("crates/lint/tests/fixtures/crates/net/src/bad.rs");
        assert_eq!(ctx.crate_name.as_deref(), Some("net"));
        assert!(FileContext::strict("fixtures/clean.rs")
            .crate_name
            .is_none());
    }
}
