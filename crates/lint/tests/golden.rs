//! Golden-diagnostics tests for `ncs-lint`: every rule is pinned to the
//! exact findings (file:line:col + message) it produces on the seeded
//! fixture files, and the CLI is exercised end to end — including the
//! workspace self-check that makes linting part of the tier-1 suite.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use ncs_lint::{lint_source, FileContext};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lints a fixture with a short display name so expected strings stay
/// path-independent.
fn rendered(fixture: &str) -> Vec<String> {
    let source = fs::read_to_string(fixture_dir().join(fixture)).expect("fixture readable");
    let ctx = FileContext::strict(fixture);
    lint_source(&source, &ctx)
        .iter()
        .map(ToString::to_string)
        .collect()
}

#[test]
fn golden_no_panic_paths() {
    assert_eq!(
        rendered("violations_panic.rs"),
        [
            "violations_panic.rs:4:15: [no-panic-paths] .unwrap() can panic; return a Result \
             (the crate has an error module) or waive a proven invariant",
            "violations_panic.rs:5:15: [no-panic-paths] .expect() can panic; return a Result \
             (the crate has an error module) or waive a proven invariant",
            "violations_panic.rs:7:9: [no-panic-paths] panic! aborts the flow; return an \
             error or waive a proven invariant",
            "violations_panic.rs:9:5: [no-panic-paths] todo! aborts the flow; return an \
             error or waive a proven invariant",
        ]
    );
}

#[test]
fn golden_deterministic_iteration() {
    assert_eq!(
        rendered("violations_hash.rs"),
        [
            "violations_hash.rs:3:23: [deterministic-iteration] HashMap iteration order is \
             nondeterministic; use BTreeMap/BTreeSet or an indexed Vec",
            "violations_hash.rs:4:23: [deterministic-iteration] HashSet iteration order is \
             nondeterministic; use BTreeMap/BTreeSet or an indexed Vec",
            "violations_hash.rs:7:14: [deterministic-iteration] HashSet iteration order is \
             nondeterministic; use BTreeMap/BTreeSet or an indexed Vec",
        ]
    );
}

#[test]
fn golden_lossy_cast_audit() {
    // `as f64` / `as usize` on lines 6-7 must NOT appear.
    assert_eq!(
        rendered("violations_cast.rs"),
        [
            "violations_cast.rs:4:23: [lossy-cast-audit] `as f32` narrows a numeric value; \
             prove the range and waive, or widen the type",
            "violations_cast.rs:5:22: [lossy-cast-audit] `as u16` narrows a numeric value; \
             prove the range and waive, or widen the type",
            "violations_cast.rs:8:23: [lossy-cast-audit] `as f32` narrows a numeric value; \
             prove the range and waive, or widen the type",
        ]
    );
}

#[test]
fn golden_float_eq() {
    assert_eq!(
        rendered("violations_float_eq.rs"),
        [
            "violations_float_eq.rs:4:7: [float-eq] bare `==` on a float; compare with a \
             tolerance, or waive an exact sentinel check",
            "violations_float_eq.rs:8:9: [float-eq] bare `!=` on a float; compare with a \
             tolerance, or waive an exact sentinel check",
            "violations_float_eq.rs:8:19: [float-eq] bare `==` on a float; compare with a \
             tolerance, or waive an exact sentinel check",
        ]
    );
}

#[test]
fn golden_no_adhoc_threads() {
    assert_eq!(
        rendered("violations_threads.rs"),
        [
            "violations_threads.rs:6:26: [no-adhoc-threads] thread::spawn outside ncs-par \
             bypasses the deterministic chunking contract; use the ncs_par primitives",
            "violations_threads.rs:7:32: [no-adhoc-threads] thread::Builder outside ncs-par \
             bypasses the deterministic chunking contract; use the ncs_par primitives",
            "violations_threads.rs:9:13: [no-adhoc-threads] thread::scope outside ncs-par \
             bypasses the deterministic chunking contract; use the ncs_par primitives",
        ]
    );
}

#[test]
fn golden_no_adhoc_logging() {
    // `writeln!` into a buffer and `format!` on lines 10-11 must NOT
    // appear — only the terminal-stream macros are ad-hoc logging.
    assert_eq!(
        rendered("violations_logging.rs"),
        [
            "violations_logging.rs:4:5: [no-adhoc-logging] println! prints ad-hoc text from \
             library code; record an ncs_trace counter/span or move the output into a bin \
             target",
            "violations_logging.rs:5:5: [no-adhoc-logging] eprintln! prints ad-hoc text from \
             library code; record an ncs_trace counter/span or move the output into a bin \
             target",
        ]
    );
}

#[test]
fn golden_crate_hygiene() {
    assert_eq!(
        rendered("bad_root/src/lib.rs"),
        [
            "bad_root/src/lib.rs:1:1: [crate-hygiene] crate root is missing \
             #![forbid(unsafe_code)]",
            "bad_root/src/lib.rs:1:1: [crate-hygiene] crate root is missing a missing_docs \
             lint header (e.g. #![warn(missing_docs)])",
        ]
    );
}

#[test]
fn golden_par_cutoff_discipline() {
    assert_eq!(
        rendered("violations_cutoff.rs"),
        [
            "violations_cutoff.rs:4:14: [par-cutoff-discipline] par_chunks_mut passes \
             Cutoff::NONE, disabling the serial fallback; use a calibrated cutoff or waive \
             with the outer size gate spelled out",
            "violations_cutoff.rs:8:14: [par-cutoff-discipline] par_map_reduce does not \
             thread a Cutoff; small inputs will pay the full parallel launch cost",
        ]
    );
}

#[test]
fn golden_no_wallclock() {
    assert_eq!(
        rendered("violations_wallclock.rs"),
        [
            "violations_wallclock.rs:3:16: [no-wallclock] Instant reads the wall clock; \
             flow code must be a pure function of its inputs — time things in ncs-bench \
             or ncs-trace",
            "violations_wallclock.rs:6:14: [no-wallclock] Instant reads the wall clock; \
             flow code must be a pure function of its inputs — time things in ncs-bench \
             or ncs-trace",
            "violations_wallclock.rs:10:28: [no-wallclock] SystemTime reads the wall clock; \
             flow code must be a pure function of its inputs — time things in ncs-bench \
             or ncs-trace",
            "violations_wallclock.rs:11:16: [no-wallclock] SystemTime reads the wall clock; \
             flow code must be a pure function of its inputs — time things in ncs-bench \
             or ncs-trace",
        ]
    );
}

#[test]
fn golden_env_read_audit() {
    // `env!("...")` and the local binding named `env` must NOT appear.
    assert_eq!(
        rendered("violations_env.rs"),
        [
            "violations_env.rs:4:10: [env-read-audit] std::env read outside the designated \
             config modules; thread the setting through as an argument so runs replay from \
             inputs alone",
            "violations_env.rs:7:11: [env-read-audit] std::env read outside the designated \
             config modules; thread the setting through as an argument so runs replay from \
             inputs alone",
        ]
    );
}

#[test]
fn golden_crate_layering() {
    // `use ncs_linalg` (a forward edge) and `use std` must NOT appear.
    assert_eq!(
        rendered("crates/net/src/bad_layering.rs"),
        [
            "crates/net/src/bad_layering.rs:4:1: [crate-layering] crate `net` may not \
             import `ncs_phys`: back-edge in the crate DAG (allowed: linalg, rng)",
        ]
    );
}

#[test]
fn golden_alloc_in_hot_loop() {
    // The identical loop in unmarked `cold` must NOT appear.
    assert_eq!(
        rendered("violations_hot_alloc.rs"),
        [
            "violations_hot_alloc.rs:8:27: [alloc-in-hot-loop] `to_vec` allocates inside a \
             loop of hot kernel `kernel`; hoist the buffer out of the loop or reuse a \
             scratch allocation",
            "violations_hot_alloc.rs:9:25: [alloc-in-hot-loop] `Vec` allocates inside a \
             loop of hot kernel `kernel`; hoist the buffer out of the loop or reuse a \
             scratch allocation",
            "violations_hot_alloc.rs:11:18: [alloc-in-hot-loop] `vec` allocates inside a \
             loop of hot kernel `kernel`; hoist the buffer out of the loop or reuse a \
             scratch allocation",
        ]
    );
}

#[test]
fn golden_stale_waiver() {
    // The live float-eq waiver on line 10 must NOT be reported stale;
    // stale/typo'd waivers come out as warnings, not errors.
    assert_eq!(
        rendered("violations_stale_waiver.rs"),
        [
            "violations_stale_waiver.rs:11:10: [float-eq] bare `==` on a float; compare \
             with a tolerance, or waive an exact sentinel check (waived)",
            "violations_stale_waiver.rs:4:1: warning: [stale-waiver] waiver for \
             `no-panic-paths` suppresses nothing on this line; remove it",
            "violations_stale_waiver.rs:5:1: warning: [stale-waiver] waiver names unknown \
             rule `flaot-eq` (see --list-rules)",
        ]
    );
}

// ---------------------------------------------------------------------
// Structure dumps: token trees and the item outline
// ---------------------------------------------------------------------

#[test]
fn golden_item_outline_dump() {
    let source =
        fs::read_to_string(fixture_dir().join("outline_demo.rs")).expect("fixture readable");
    let syn = ncs_lint::syntax::analyze(&ncs_lint::lexer::lex(&source));
    assert_eq!(
        ncs_lint::syntax::render_outline(&syn.items),
        concat!(
            "use std @3\n",
            "struct Wire @5\n",
            "impl Wire @9\n",
            "  fn fmt @10\n",
            "mod inner @15\n",
            "  const LIMIT @16\n",
            "  fn helper @18\n",
            "fn top @23\n",
        )
    );
}

#[test]
fn golden_token_tree_dump() {
    let source = fs::read_to_string(fixture_dir().join("tree_demo.rs")).expect("fixture readable");
    let lexed = ncs_lint::lexer::lex(&source);
    assert_eq!(
        ncs_lint::syntax::render_token_trees(&lexed.tokens),
        concat!(
            "Ident `fn` @1\n",
            "Ident `f` @1\n",
            "group ( @1\n",
            "  Ident `a` @1\n",
            "  Punct `:` @1\n",
            "  Ident `usize` @1\n",
            "Punct `-` @1\n",
            "Punct `>` @1\n",
            "Ident `usize` @1\n",
            "group { @1\n",
            "  Ident `g` @2\n",
            "  group ( @2\n",
            "    Ident `a` @2\n",
            "    Punct `,` @2\n",
            "    group [ @2\n",
            "      Int `1` @2\n",
            "      Punct `,` @2\n",
            "      Int `2` @2\n",
        )
    );
}

#[test]
fn golden_waived_fixture_is_fully_waived() {
    let all = rendered("waived.rs");
    assert_eq!(all.len(), 5, "expected 5 waived findings, got: {all:#?}");
    assert!(
        all.iter().all(|d| d.ends_with(" (waived)")),
        "unwaived finding in waived.rs: {all:#?}"
    );
}

#[test]
fn golden_clean_fixture_has_no_findings() {
    assert_eq!(rendered("clean.rs"), [] as [&str; 0]);
}

// ---------------------------------------------------------------------
// CLI end-to-end
// ---------------------------------------------------------------------

fn lint_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ncs-lint"))
}

#[test]
fn cli_violation_fixtures_exit_nonzero() {
    for fixture in [
        "violations_panic.rs",
        "violations_hash.rs",
        "violations_cast.rs",
        "violations_float_eq.rs",
        "violations_threads.rs",
        "violations_logging.rs",
        "bad_root/src/lib.rs",
        "violations_cutoff.rs",
        "violations_wallclock.rs",
        "violations_env.rs",
        "violations_hot_alloc.rs",
        "crates/net/src/bad_layering.rs",
    ] {
        let out = lint_cmd()
            .arg(fixture_dir().join(fixture))
            .output()
            .expect("ncs-lint runs");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{fixture} should exit 1; stdout: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn cli_clean_and_waived_fixtures_exit_zero() {
    for fixture in ["clean.rs", "waived.rs"] {
        let out = lint_cmd()
            .arg(fixture_dir().join(fixture))
            .output()
            .expect("ncs-lint runs");
        assert_eq!(
            out.status.code(),
            Some(0),
            "{fixture} should exit 0; stdout: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn cli_json_output_is_machine_readable() {
    let out = lint_cmd()
        .args(["--format", "json"])
        .arg(fixture_dir().join("violations_float_eq.rs"))
        .output()
        .expect("ncs-lint runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim().starts_with('[') && stdout.trim().ends_with(']'));
    assert_eq!(stdout.matches("\"rule\":\"float-eq\"").count(), 3);
    assert_eq!(stdout.matches("\"waived\":false").count(), 3);
}

#[test]
fn cli_show_waived_reveals_suppressed_findings() {
    let target = fixture_dir().join("waived.rs");
    let quiet = lint_cmd().arg(&target).output().expect("ncs-lint runs");
    assert_eq!(String::from_utf8_lossy(&quiet.stdout).lines().count(), 0);
    let verbose = lint_cmd()
        .arg("--show-waived")
        .arg(&target)
        .output()
        .expect("ncs-lint runs");
    let shown = String::from_utf8_lossy(&verbose.stdout);
    assert_eq!(shown.lines().count(), 5, "stdout: {shown}");
    assert!(shown.lines().all(|l| l.ends_with(" (waived)")));
}

#[test]
fn cli_github_format_emits_annotations() {
    let out = lint_cmd()
        .args(["--format", "github"])
        .arg(fixture_dir().join("violations_float_eq.rs"))
        .output()
        .expect("ncs-lint runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let annotations: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with("::error file="))
        .collect();
    assert_eq!(annotations.len(), 3, "stdout: {stdout}");
    assert!(
        annotations[0].contains(",line=4,col=7::[float-eq]"),
        "stdout: {stdout}"
    );
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn cli_stale_waivers_are_warnings_gated_by_strict() {
    let target = fixture_dir().join("violations_stale_waiver.rs");
    let lenient = lint_cmd().arg(&target).output().expect("ncs-lint runs");
    assert_eq!(
        lenient.status.code(),
        Some(0),
        "warnings alone must not fail without --strict; stdout: {}",
        String::from_utf8_lossy(&lenient.stdout)
    );
    let strict = lint_cmd()
        .arg("--strict")
        .arg(&target)
        .output()
        .expect("ncs-lint runs");
    assert_eq!(strict.status.code(), Some(1));
    let github = lint_cmd()
        .args(["--format", "github", "--strict"])
        .arg(&target)
        .output()
        .expect("ncs-lint runs");
    let stdout = String::from_utf8_lossy(&github.stdout);
    assert_eq!(
        stdout
            .lines()
            .filter(|l| l.starts_with("::warning file="))
            .count(),
        2,
        "stdout: {stdout}"
    );
}

#[test]
fn cli_usage_error_exits_two() {
    let unknown = lint_cmd().arg("--bogus").output().expect("ncs-lint runs");
    assert_eq!(unknown.status.code(), Some(2));
    let bad_format = lint_cmd()
        .args(["--format", "yaml"])
        .output()
        .expect("ncs-lint runs");
    assert_eq!(bad_format.status.code(), Some(2));
}

/// The workspace self-check: the tree this test runs in must itself be
/// lint-clean. This is what turns `ncs-lint` into a tier-1 gate —
/// `cargo test` fails if anyone lands an unwaivered violation.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let out = lint_cmd()
        .args(["--workspace", "--strict"])
        .current_dir(root)
        .output()
        .expect("ncs-lint runs");
    assert!(
        out.status.success(),
        "workspace lint failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
