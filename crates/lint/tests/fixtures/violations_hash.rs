//! Fixture: banned hash collections.

use std::collections::HashMap;
use std::collections::HashSet;

fn unique(values: &[u64]) -> usize {
    let set: HashSet<u64> = values.iter().copied().collect();
    set.len()
}
