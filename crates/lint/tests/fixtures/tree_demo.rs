fn f(a: usize) -> usize {
    g(a, [1, 2])
}
