//! Fixture: strict-clean file; the test module below may panic freely.

/// Midpoint of `a` and `b`.
pub fn midpoint(a: f64, b: f64) -> f64 {
    0.5 * (a + b)
}

/// Doc examples are comments to the lexer, so this `unwrap()` is fine:
///
/// ```
/// let x: Option<u8> = Some(1);
/// x.unwrap();
/// ```
pub fn documented() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_regions_are_exempt() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert!(*m.get(&1).unwrap() == 2);
        let x = 0.25_f64;
        assert!(x == 0.25);
    }
}
