//! Fixture: `crate-layering` back-edge — `net` may not import `phys`.

use ncs_linalg::sparse;
use ncs_phys::place;
use std::fmt;

fn f() {}
