//! Fixture: `no-wallclock` violations.

use std::time::Instant;

fn timed() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}

fn stamped() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
