//! Fixture: `env-read-audit` violations; `env!` compile-time macro and
//! an `env`-named local stay clean.

use std::env;

fn threads() -> usize {
    match env::var("NCS_THREADS") {
        Ok(v) => v.parse().unwrap_or(1),
        Err(_) => 1,
    }
}

fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

fn local_named_env() -> usize {
    let env = 3;
    env + 1
}
