//! Fixture: ad-hoc terminal logging in flow-crate library code.

fn report(progress: usize) {
    println!("progress: {progress}");
    eprintln!("warning: slow convergence");
}

fn harmless(buf: &mut String) {
    use std::fmt::Write as _;
    let _ = writeln!(buf, "structured: {}", 1);
    let _ = format!("also fine: {}", report as usize);
}
