//! Fixture: item-outline golden dump.

use std::fmt;

pub struct Wire {
    pub id: usize,
}

impl fmt::Display for Wire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.id)
    }
}

mod inner {
    pub const LIMIT: usize = 8;

    pub fn helper(x: usize) -> usize {
        x.min(LIMIT)
    }
}

fn top(w: &Wire) -> usize {
    w.id
}
