//! Fixture: `par-cutoff-discipline` violations and a compliant call.

fn bad_none(xs: &mut [f64]) {
    ncs_par::par_chunks_mut(xs, 64, ncs_par::Cutoff::NONE, |_, c| c.reverse());
}

fn bad_missing(xs: &[f64]) -> f64 {
    ncs_par::par_map_reduce(xs, 8, |x| *x, 0.0, |a, b| a + b)
}

fn good_named(xs: &[f64], cutoff: ncs_par::Cutoff) -> Vec<f64> {
    ncs_par::par_map(xs, 8, cutoff, |x| x + 1.0)
}

fn good_helper(xs: &[f64]) -> Vec<f64> {
    ncs_par::par_map(xs, 8, eigen_cutoff(xs.len()), |x| x + 1.0)
}
