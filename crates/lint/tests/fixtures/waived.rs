//! Fixture: every violation carries a waiver, so ncs-lint must exit 0.

use std::collections::HashMap; // ncs-lint: allow(deterministic-iteration)

// A standalone waiver comment covers the next code line.
// ncs-lint: allow(deterministic-iteration)
fn lookup(table: &HashMap<u32, f64>, key: u32) -> f32 {
    // ncs-lint: allow(no-panic-paths) — the fixture key is always present
    let v = table.get(&key).copied().unwrap();
    let single = v as f32; // ncs-lint: allow(lossy-cast-audit)
    // ncs-lint: allow(float-eq) — exact zero is the disabled sentinel
    if v == 0.0 {
        return 0.0;
    }
    single
}
