//! Fixture: a crate root missing both hygiene headers.

pub fn noop() {}
