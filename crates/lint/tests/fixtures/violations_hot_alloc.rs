//! Fixture: `alloc-in-hot-loop` violations in a marked kernel; the
//! same pattern in an unmarked function stays clean.

// ncs-lint: hot
fn kernel(rows: &[f64], width: usize) -> usize {
    let mut total = 0;
    for row in rows.chunks(width) {
        let scratch = row.to_vec();
        let mut extra = Vec::new();
        extra.extend_from_slice(&scratch);
        total += vec![0u8; extra.len()].len();
    }
    total
}

fn cold(rows: &[f64], width: usize) -> usize {
    let mut total = 0;
    for row in rows.chunks(width) {
        total += row.to_vec().len();
    }
    total
}
