//! Fixture: stale and typo'd waivers (warnings; fail under --strict).

// ncs-lint: allow(no-panic-paths) — suppresses nothing below
fn fine() -> usize {
    1 + 1 // ncs-lint: allow(flaot-eq) — typo'd rule name
}

fn used() -> f64 {
    let x = 0.5;
    // ncs-lint: allow(float-eq) — exact sentinel, legitimately waived
    if x == 0.5 {
        x
    } else {
        0.0
    }
}
