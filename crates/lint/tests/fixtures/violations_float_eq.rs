//! Fixture: bare float comparisons.

pub fn near_zero(x: f64) -> bool {
    x == 0.0
}

pub fn not_half(x: f64) -> bool {
    0.5 != x || x == -1.0
}
