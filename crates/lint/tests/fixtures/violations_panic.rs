//! Fixture: every no-panic-paths trigger, one per line.

fn fallible(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a > b {
        panic!("never: a <= b by construction");
    }
    todo!()
}
