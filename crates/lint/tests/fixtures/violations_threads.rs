//! Fixture: ad-hoc threading outside ncs-par.

use std::thread;

fn fan_out(jobs: Vec<u64>) -> u64 {
    let handle = thread::spawn(move || jobs.iter().sum::<u64>());
    let builder = std::thread::Builder::new();
    let _ = builder;
    thread::scope(|_s| {});
    handle.join().unwrap_or(0)
}

fn harmless() {
    thread::yield_now();
    let _ = thread::current();
}
