//! Fixture: narrowing casts; 64-bit casts are fine.

pub fn narrow(x: f64, n: usize) -> f32 {
    let single = x as f32;
    let small = n as u16;
    let wide = x as f64;
    let index = small as usize + wide as usize;
    single + index as f32
}
