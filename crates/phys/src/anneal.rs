//! Simulated-annealing placement — the classic pre-analytical EDA
//! baseline, provided as an ablation target for the paper's
//! conjugate-gradient placer (Algorithm 4).
//!
//! The annealer perturbs cell centers directly (random displacement or
//! pair swap), scores `weighted HPWL + penalty · overlap`, and accepts
//! uphill moves with the Metropolis criterion under a geometric cooling
//! schedule. The same mixed-size legalizer finishes both placers, so the
//! comparison isolates the global-placement strategy.

use ncs_rng::Rng;

use crate::place::finalize_placement;
use crate::{Netlist, PhysError, Placement};

/// Options for [`place_annealed`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealOptions {
    /// Geometric cooling factor per stage, in `(0, 1)`.
    pub cooling: f64,
    /// Temperature stages.
    pub stages: usize,
    /// Moves attempted per stage, as a multiple of the cell count.
    pub moves_per_cell: usize,
    /// Weight of the overlap penalty relative to wirelength (ramps up by
    /// itself as the temperature drops).
    pub overlap_weight: f64,
    /// Virtual-width factor matching the analytical placer's routing
    /// reservation.
    pub omega: f64,
    /// RNG seed.
    pub seed: u64,
    /// Legalizer passes for the shared epilogue.
    pub legalizer_passes: usize,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            cooling: 0.9,
            stages: 40,
            moves_per_cell: 20,
            overlap_weight: 4.0,
            omega: 1.2,
            seed: 0,
            legalizer_passes: 200,
        }
    }
}

impl AnnealOptions {
    /// Reduced-effort configuration for tests.
    pub fn fast() -> Self {
        AnnealOptions {
            stages: 15,
            moves_per_cell: 8,
            ..AnnealOptions::default()
        }
    }
}

/// Places a netlist with simulated annealing and the shared mixed-size
/// legalization epilogue.
///
/// # Errors
///
/// Returns [`PhysError::EmptyNetlist`] / [`PhysError::DegenerateWire`] for
/// malformed netlists and [`PhysError::InvalidOption`] for out-of-range
/// options.
pub fn place_annealed(netlist: &Netlist, options: &AnnealOptions) -> Result<Placement, PhysError> {
    let n = netlist.cells.len();
    if n == 0 {
        return Err(PhysError::EmptyNetlist);
    }
    for w in &netlist.wires {
        if w.pins.len() < 2 {
            return Err(PhysError::DegenerateWire { id: w.id });
        }
    }
    // ncs-lint: allow(float-eq) — exact zero is rejected as a degenerate schedule
    if !(0.0..1.0).contains(&options.cooling) || options.cooling == 0.0 {
        return Err(PhysError::InvalidOption {
            what: "cooling",
            value: options.cooling.to_string(),
        });
    }
    if options.omega < 1.0 {
        return Err(PhysError::InvalidOption {
            what: "omega",
            value: options.omega.to_string(),
        });
    }

    let mut rng = Rng::seed_from_u64(options.seed);
    // Initial layout: the same regular grid the analytical placer uses.
    let total = netlist.total_cell_area() * options.omega * options.omega * 2.0;
    let cols = (n as f64).sqrt().ceil() as usize;
    let pitch = (total / n as f64).sqrt().max(1.0);
    let mut xs: Vec<f64> = (0..n).map(|i| (i % cols) as f64 * pitch).collect();
    let mut ys: Vec<f64> = (0..n).map(|i| (i / cols) as f64 * pitch).collect();

    // Wires incident to each cell, for incremental HPWL updates.
    let mut wires_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for w in &netlist.wires {
        for &p in &w.pins {
            wires_of[p].push(w.id);
        }
    }
    let hpwl_of = |wid: usize, xs: &[f64], ys: &[f64]| -> f64 {
        let w = &netlist.wires[wid];
        let (mut x0, mut y0) = (f64::INFINITY, f64::INFINITY);
        let (mut x1, mut y1) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for &p in &w.pins {
            x0 = x0.min(xs[p]);
            x1 = x1.max(xs[p]);
            y0 = y0.min(ys[p]);
            y1 = y1.max(ys[p]);
        }
        w.weight * ((x1 - x0) + (y1 - y0))
    };
    // Overlap of one cell against every other (virtual widths).
    let widths: Vec<f64> = netlist
        .cells
        .iter()
        .map(|c| c.dims.width * options.omega)
        .collect();
    let heights: Vec<f64> = netlist
        .cells
        .iter()
        .map(|c| c.dims.height * options.omega)
        .collect();
    let overlap_of = |i: usize, xi: f64, yi: f64, xs: &[f64], ys: &[f64]| -> f64 {
        let mut total = 0.0;
        for j in 0..n {
            if j == i {
                continue;
            }
            let ox = (widths[i] + widths[j]) / 2.0 - (xi - xs[j]).abs();
            if ox <= 0.0 {
                continue;
            }
            let oy = (heights[i] + heights[j]) / 2.0 - (yi - ys[j]).abs();
            if oy > 0.0 {
                total += ox.min(widths[i].min(widths[j])) * oy.min(heights[i].min(heights[j]));
            }
        }
        total
    };

    let mut hpwl_total: f64 = (0..netlist.wires.len()).map(|w| hpwl_of(w, &xs, &ys)).sum();
    let mut overlap_total: f64 = (0..n)
        .map(|i| overlap_of(i, xs[i], ys[i], &xs, &ys))
        .sum::<f64>()
        / 2.0;

    // Auto temperature: accept ~everything at first.
    let mut temperature = (hpwl_total / (n as f64).max(1.0)).max(1.0);
    let mut reach = pitch * (cols as f64) / 2.0;

    for stage in 0..options.stages {
        // The overlap penalty stiffens as the schedule cools.
        let penalty =
            options.overlap_weight * (1.0 + stage as f64 / options.stages.max(1) as f64 * 8.0);
        for _ in 0..options.moves_per_cell * n {
            let i = rng.gen_range(0..n);
            let (old_x, old_y) = (xs[i], ys[i]);
            let new_x = old_x + rng.gen_range(-reach..reach);
            let new_y = old_y + rng.gen_range(-reach..reach);
            // Delta cost: wires touching i plus i's pairwise overlap.
            let old_wl: f64 = wires_of[i].iter().map(|&w| hpwl_of(w, &xs, &ys)).sum();
            let old_ov = overlap_of(i, old_x, old_y, &xs, &ys);
            xs[i] = new_x;
            ys[i] = new_y;
            let new_wl: f64 = wires_of[i].iter().map(|&w| hpwl_of(w, &xs, &ys)).sum();
            let new_ov = overlap_of(i, new_x, new_y, &xs, &ys);
            let delta = (new_wl - old_wl) + penalty * (new_ov - old_ov);
            let accept = delta <= 0.0 || rng.gen_f64() < (-delta / temperature).exp();
            if accept {
                hpwl_total += new_wl - old_wl;
                overlap_total += new_ov - old_ov;
            } else {
                xs[i] = old_x;
                ys[i] = old_y;
            }
        }
        temperature *= options.cooling;
        reach = (reach * 0.92).max(pitch * 0.1);
    }
    let _ = (hpwl_total, overlap_total);

    Ok(finalize_placement(
        netlist,
        xs,
        ys,
        options.legalizer_passes,
        options.stages,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{place, Netlist, PlacerOptions};
    use ncs_cluster::{CrossbarAssignment, HybridMapping};
    use ncs_tech::TechnologyModel;

    fn netlist() -> Netlist {
        let xbar_a = CrossbarAssignment::new(vec![0, 1], vec![0, 1], 16, vec![(0, 1), (1, 0)]);
        let xbar_b = CrossbarAssignment::new(vec![2, 3], vec![2, 3], 16, vec![(2, 3)]);
        let mapping = HybridMapping::new(6, vec![xbar_a, xbar_b], vec![(4, 5), (0, 4)]);
        Netlist::from_mapping(&mapping, &TechnologyModel::nm45())
    }

    #[test]
    fn annealed_placement_is_legal() {
        let nl = netlist();
        let p = place_annealed(&nl, &AnnealOptions::fast()).unwrap();
        assert!(p.final_overlap_um2 < 0.02 * nl.total_cell_area());
        let (x0, y0, _, _) = p.bounding_box(&nl);
        assert!(x0 > -1e-9 && y0 > -1e-9);
    }

    #[test]
    fn annealing_improves_over_the_raw_grid() {
        let nl = netlist();
        // A zero-stage anneal degenerates to grid + legalization.
        let raw = place_annealed(
            &nl,
            &AnnealOptions {
                stages: 0,
                ..AnnealOptions::fast()
            },
        )
        .unwrap();
        let cooked = place_annealed(
            &nl,
            &AnnealOptions {
                seed: 5,
                ..AnnealOptions::default()
            },
        )
        .unwrap();
        assert!(
            cooked.weighted_hpwl(&nl) <= raw.weighted_hpwl(&nl) * 1.05,
            "annealed {} vs raw {}",
            cooked.weighted_hpwl(&nl),
            raw.weighted_hpwl(&nl)
        );
    }

    #[test]
    fn comparable_to_analytical_on_small_designs() {
        let nl = netlist();
        let analytical = place(&nl, &PlacerOptions::default()).unwrap();
        let annealed = place_annealed(
            &nl,
            &AnnealOptions {
                seed: 2,
                ..AnnealOptions::default()
            },
        )
        .unwrap();
        // Same ballpark (within 2x either way) on a toy design.
        let a = analytical.weighted_hpwl(&nl).max(1e-9);
        let b = annealed.weighted_hpwl(&nl).max(1e-9);
        assert!(a / b < 2.0 && b / a < 3.0, "analytical {a} vs annealed {b}");
    }

    #[test]
    fn rejects_bad_options() {
        let nl = netlist();
        assert!(place_annealed(
            &nl,
            &AnnealOptions {
                cooling: 1.0,
                ..AnnealOptions::fast()
            }
        )
        .is_err());
        assert!(place_annealed(
            &nl,
            &AnnealOptions {
                cooling: 0.0,
                ..AnnealOptions::fast()
            }
        )
        .is_err());
        assert!(place_annealed(
            &nl,
            &AnnealOptions {
                omega: 0.5,
                ..AnnealOptions::fast()
            }
        )
        .is_err());
        let empty = Netlist {
            cells: vec![],
            wires: vec![],
        };
        assert!(place_annealed(&empty, &AnnealOptions::fast()).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let nl = netlist();
        let a = place_annealed(&nl, &AnnealOptions::fast()).unwrap();
        let b = place_annealed(&nl, &AnnealOptions::fast()).unwrap();
        assert_eq!(a, b);
    }
}
