use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use ncs_tech::TechnologyModel;

use crate::{CellId, Netlist, PhysError, Placement, WireId};

/// Wires speculatively routed per batch before the ordered commit pass.
/// Fixed — never derived from the thread count — so the batch grid, and
/// with it every routing decision, is identical at any `NCS_THREADS`.
const ROUTE_BATCH: usize = 8;

/// Initial bounding-box margin (in bins) of the windowed A* search. The
/// window doubles on every expansion, so the start value only trades the
/// cost of the first search against the odds of a second one.
const WINDOW_MARGIN: usize = 4;

/// Minimum estimated search work (grid cells × MST segments) before a
/// speculative batch fans out to the [`ncs_par`] pool. A fully-sealed
/// 8-net batch on a small grid plans in a few microseconds — less than
/// one pool dispatch — so those batches stay inline.
const ROUTE_PLAN_MIN_WORK: usize = 64 * 1024;

/// Private usage overlay for speculative routing: extra traversals per
/// grid edge, keyed by `(owning bin index, horizontal)`, layered on top
/// of a frozen congestion snapshot.
type EdgeOverlay = BTreeMap<(usize, bool), usize>;

/// A speculatively planned wire: one bin path per MST segment.
type SegPaths = Vec<Vec<(usize, usize)>>;

/// Which search backs every maze-routed segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteAlgorithm {
    /// A* with the admissible Manhattan heuristic inside an expanding
    /// bounding-box window (the default). Produces the same paths as
    /// [`RouteAlgorithm::DijkstraReference`], bit for bit — the window
    /// only commits a result when it can prove no escape path beats it,
    /// and both searches reconstruct the canonical optimal path.
    #[default]
    AStarWindow,
    /// Full-grid Dijkstra, kept as the reference implementation for the
    /// equivalence tests and the `bench route` regression gate.
    DijkstraReference,
}

/// Options for the global router.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterOptions {
    /// Bin width `θ` of the grid graph, µm (Section 3.5: "a grid graph
    /// model is constructed with bin width θ, a user-defined parameter").
    pub theta: f64,
    /// Routing tracks available per grid edge before relaxation — the
    /// FastRoute-style *virtual capacity*.
    pub virtual_capacity: usize,
    /// Extra cost added per unit of congestion overflow when a wire has to
    /// squeeze through a saturated edge during relaxed rerouting.
    pub congestion_penalty: f64,
    /// Maximum capacity-relaxation rounds before reporting
    /// [`PhysError::Unroutable`].
    pub max_relaxations: usize,
    /// Shortest-path search backing every routed segment.
    pub algorithm: RouteAlgorithm,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            theta: 4.0,
            virtual_capacity: 8,
            congestion_penalty: 2.0,
            max_relaxations: 16,
            algorithm: RouteAlgorithm::default(),
        }
    }
}

/// A single routed wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedWire {
    /// The wire this path implements.
    pub wire: WireId,
    /// Grid bins visited, as `(col, row)` pairs. For a 2-pin wire this is
    /// a single source-to-sink path; for a multi-pin wire it is the
    /// concatenation of the routed spanning-tree segments.
    pub path: Vec<(usize, usize)>,
    /// Routed length, µm (sum of segment lengths · θ).
    pub length_um: f64,
}

/// Per-bin wire congestion, for the Figure 10 heatmaps.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionMap {
    /// Grid columns.
    pub cols: usize,
    /// Grid rows.
    pub rows: usize,
    /// Bin width θ, µm.
    pub theta: f64,
    /// Wires passing through each bin, row-major.
    pub usage: Vec<usize>,
}

impl CongestionMap {
    /// Usage of bin `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if the bin is out of range.
    pub fn at(&self, col: usize, row: usize) -> usize {
        assert!(
            col < self.cols && row < self.rows,
            "bin ({col},{row}) out of range"
        );
        self.usage[row * self.cols + col]
    }

    /// Maximum bin usage.
    pub fn max_usage(&self) -> usize {
        self.usage.iter().copied().max().unwrap_or(0)
    }

    /// Mean bin usage over non-empty bins.
    pub fn mean_nonzero_usage(&self) -> f64 {
        let (mut sum, mut count) = (0usize, 0usize);
        for &u in &self.usage {
            if u > 0 {
                sum += u;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }
}

/// Result of routing a placed netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Routing {
    /// One routed path per wire (same order as the netlist wires).
    pub routed: Vec<RoutedWire>,
    /// Total routed wirelength, µm.
    pub total_wirelength_um: f64,
    /// Congestion map over the placement region.
    pub congestion: CongestionMap,
    /// Capacity-relaxation rounds that were needed.
    pub relaxations: usize,
}

/// Routes every wire of a placed netlist with maze routing (Lee-style
/// shortest path on the bin grid) under virtual edge capacities.
///
/// Per Section 3.5: wires are ordered by the distance from the center of
/// gravity of all cells to their closest pin (with wire weight as the tie
/// breaker), routed with capacity-respecting Dijkstra, and any wires that
/// fail are retried after the virtual capacity is relaxed.
///
/// Routing proceeds in fixed-size batches: each batch is planned
/// speculatively against the congestion snapshot frozen at batch start
/// (in parallel when `NCS_THREADS > 1`), then committed sequentially in
/// batch order with re-validation; plans invalidated by an earlier commit
/// re-enter the queue at the same capacity. Because the batch grid never
/// depends on the thread count, the routing is bit-identical at any
/// `NCS_THREADS` setting.
///
/// Multi-pin wires are decomposed into a Manhattan minimum spanning tree
/// over their pins and each tree edge is maze-routed independently (the
/// default netlist generator emits 2-pin wires; the shared-net model
/// produces genuine multi-pin nets).
///
/// # Errors
///
/// Returns [`PhysError::Unroutable`] if wires remain unrouted after
/// `max_relaxations` rounds, [`PhysError::InvalidOption`] for a
/// non-positive `theta`, and [`PhysError::DegenerateWire`] for wires with
/// fewer than two pins.
pub fn route(
    netlist: &Netlist,
    placement: &Placement,
    _tech: &TechnologyModel,
    options: &RouterOptions,
) -> Result<Routing, PhysError> {
    if options.theta <= 0.0 {
        return Err(PhysError::InvalidOption {
            what: "theta",
            value: options.theta.to_string(),
        });
    }
    if netlist.cells.is_empty() {
        return Err(PhysError::EmptyNetlist);
    }
    for w in &netlist.wires {
        if w.pins.len() < 2 {
            return Err(PhysError::DegenerateWire { id: w.id });
        }
    }

    // Grid over the placement bounding box plus one bin of margin.
    let (x0, y0, x1, y1) = placement.bounding_box(netlist);
    let theta = options.theta;
    let cols = (((x1 - x0) / theta).ceil() as usize + 3).max(3);
    let rows = (((y1 - y0) / theta).ceil() as usize + 3).max(3);
    let origin = (x0 - theta, y0 - theta);
    let bin_of = |cell: CellId| -> (usize, usize) {
        let bx = ((placement.x[cell] - origin.0) / theta).floor() as isize;
        let by = ((placement.y[cell] - origin.1) / theta).floor() as isize;
        (
            bx.clamp(0, cols as isize - 1) as usize,
            by.clamp(0, rows as isize - 1) as usize,
        )
    };

    // Routing order: distance from the center of gravity to the closest
    // pin, ties broken by descending wire weight. Squared distances sort
    // identically (x ↦ x² is monotone on non-negative reals), so the
    // sqrt per pin is skipped; the determinism suite pins the order.
    let cg_x: f64 = placement.x.iter().sum::<f64>() / placement.x.len() as f64;
    let cg_y: f64 = placement.y.iter().sum::<f64>() / placement.y.len() as f64;
    let mut order: Vec<WireId> = (0..netlist.wires.len()).collect();
    let closest: Vec<f64> = netlist
        .wires
        .iter()
        .map(|w| {
            w.pins
                .iter()
                .map(|&p| {
                    let dx = placement.x[p] - cg_x;
                    let dy = placement.y[p] - cg_y;
                    dx * dx + dy * dy
                })
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    order.sort_by(|&a, &b| {
        closest[a]
            .total_cmp(&closest[b])
            .then(netlist.wires[b].weight.total_cmp(&netlist.wires[a].weight))
            .then(a.cmp(&b))
    });

    let mut grid = Grid::new(cols, rows);
    let mut routed: Vec<Option<RoutedWire>> = vec![None; netlist.wires.len()];
    let mut pending: Vec<WireId> = order;
    let mut capacity = options.virtual_capacity;
    let mut relaxations = 0;
    let mut window_expansions = 0u64;

    loop {
        let mut failed = Vec::new();
        // Batched speculative routing with an ordered sequential commit.
        // Each batch is planned (via the ncs-par work queue, above its
        // size cutoff) against the grid frozen at batch start, then
        // committed one wire at a time in batch order with re-validation. Batch membership
        // depends only on the queue contents — never the thread count —
        // so the result is bit-identical at any `NCS_THREADS`; conflicts
        // surface as commit failures and re-enter the queue at the same
        // capacity.
        let mut queue: VecDeque<WireId> = pending.drain(..).collect();
        while !queue.is_empty() {
            let take = queue.len().min(ROUTE_BATCH);
            let batch: Vec<WireId> = queue.drain(..take).collect();
            let grid_ref = &grid;
            let bin_ref = &bin_of;
            // Speculative phase. A wire decomposes into a Manhattan MST
            // over its pins; its own segments see each other through a
            // private overlay so a multi-pin net respects the congestion
            // it would itself create. `None` means a segment found no
            // capacity-respecting path even on the frozen grid.
            //
            // Per-wire search cost varies wildly (one congested net may
            // expand its window repeatedly while seven are trivial), so
            // the batch runs as a work queue: workers claim wires from
            // an atomic counter, and `par_map_queue` reassembles the
            // plans in batch order — commit order below is fixed by net
            // index regardless of claim order. The cutoff keeps cheap
            // batches (estimated by grid cells × segments, both pure
            // functions of the problem) on the calling thread.
            let cells = grid.cols.saturating_mul(grid.rows);
            let segments: usize = batch
                .iter()
                .map(|&w| netlist.wires[w].pins.len().saturating_sub(1))
                .sum();
            let per_wire = cells.saturating_mul(segments.div_ceil(batch.len().max(1)));
            let cutoff = ncs_par::Cutoff::min_work(ROUTE_PLAN_MIN_WORK).work_per_item(per_wire);
            let plans: Vec<(Option<SegPaths>, u64)> =
                ncs_par::par_map_queue(&batch, cutoff, |_, &wid| {
                    let wire = &netlist.wires[wid];
                    let mut overlay = EdgeOverlay::new();
                    let mut seg_paths = Vec::new();
                    let mut expansions = 0u64;
                    for seg in mst_segments(&wire.pins, placement) {
                        let path = grid_ref.shortest_path(
                            bin_ref(seg.0),
                            bin_ref(seg.1),
                            capacity,
                            options.congestion_penalty,
                            &overlay,
                            options.algorithm,
                            &mut expansions,
                        );
                        let Some(path) = path else {
                            return (None, expansions);
                        };
                        grid_ref.accumulate(&path, &mut overlay);
                        seg_paths.push(path);
                    }
                    (Some(seg_paths), expansions)
                });
            // Commit phase: strictly in batch order. The first plannable
            // wire of every batch commits (its plan was validated against
            // the exact grid it re-validates on), so each batch makes
            // progress and the same-capacity retry queue always drains.
            // Window-expansion tallies from the (possibly parallel)
            // planning phase are summed here on the serial control path,
            // where the trace layer requires counters to be emitted.
            for (&wid, (plan, expansions)) in batch.iter().zip(plans) {
                window_expansions += expansions;
                match plan {
                    None => failed.push(wid),
                    Some(seg_paths) => {
                        if grid.try_commit(&seg_paths, capacity) {
                            ncs_trace::add("route.commits", 1);
                            let mut length = 0.0;
                            for p in &seg_paths {
                                length += (p.len().saturating_sub(1)) as f64 * theta;
                            }
                            routed[wid] = Some(RoutedWire {
                                wire: wid,
                                path: seg_paths.concat(),
                                length_um: length,
                            });
                        } else {
                            ncs_trace::add("route.requeues", 1);
                            queue.push_back(wid);
                        }
                    }
                }
            }
        }
        if failed.is_empty() {
            break;
        }
        ncs_trace::add("route.failed", failed.len() as u64);
        relaxations += 1;
        if relaxations > options.max_relaxations {
            return Err(PhysError::Unroutable {
                failed: failed.len(),
                relaxations: relaxations - 1,
            });
        }
        // Relax the virtual capacity and retry only the failed wires.
        capacity = capacity.saturating_mul(2).max(capacity + 1);
        pending = failed;
    }

    // The retry loop only exits once `pending` drains, so every slot is
    // filled — but surface a routing error rather than panic if not. The
    // same tally feeds the `route.missing` counter, so the observability
    // stream and the error path share one source of truth.
    let missing = routed.iter().filter(|r| r.is_none()).count();
    ncs_trace::add("route.missing", missing as u64);
    if missing > 0 {
        return Err(PhysError::Unroutable {
            failed: missing,
            relaxations,
        });
    }
    ncs_trace::add("route.window_expansions", window_expansions);
    ncs_trace::record("route.relaxations", relaxations as u64);
    let routed: Vec<RoutedWire> = routed.into_iter().flatten().collect();
    let total = routed.iter().map(|r| r.length_um).sum();
    let mut usage = vec![0usize; cols * rows];
    for r in &routed {
        for &(c, row) in &r.path {
            usage[row * cols + c] += 1;
        }
    }
    Ok(Routing {
        routed,
        total_wirelength_um: total,
        congestion: CongestionMap {
            cols,
            rows,
            theta,
            usage,
        },
        relaxations,
    })
}

/// Prim's minimum spanning tree over a wire's pins in the Manhattan
/// metric, returned as `(from_cell, to_cell)` segments. Multi-pin nets
/// routed along their MST use far less wire than naive pin chaining; a
/// 2-pin wire yields its single segment unchanged.
fn mst_segments(pins: &[CellId], placement: &Placement) -> Vec<(CellId, CellId)> {
    if pins.len() < 2 {
        return Vec::new();
    }
    let dist = |a: CellId, b: CellId| -> f64 {
        (placement.x[a] - placement.x[b]).abs() + (placement.y[a] - placement.y[b]).abs()
    };
    let mut in_tree = vec![false; pins.len()];
    let mut best_dist = vec![f64::INFINITY; pins.len()];
    let mut best_parent = vec![0usize; pins.len()];
    in_tree[0] = true;
    for (i, &p) in pins.iter().enumerate().skip(1) {
        best_dist[i] = dist(pins[0], p);
    }
    let mut segments = Vec::with_capacity(pins.len() - 1);
    for _ in 1..pins.len() {
        // One pin joins the tree per round, so a non-tree pin remains on
        // every iteration; stop early instead of panicking if not.
        let Some(next) = (0..pins.len())
            .filter(|&i| !in_tree[i])
            .min_by(|&a, &b| best_dist[a].total_cmp(&best_dist[b]))
        else {
            break;
        };
        in_tree[next] = true;
        segments.push((pins[best_parent[next]], pins[next]));
        for (i, &p) in pins.iter().enumerate() {
            if !in_tree[i] {
                let d = dist(pins[next], p);
                if d < best_dist[i] {
                    best_dist[i] = d;
                    best_parent[i] = next;
                }
            }
        }
    }
    segments
}

/// Persistent per-worker scratch for the maze search. The arrays cover
/// the full grid but are *epoch-stamped*: bumping `epoch` invalidates
/// every entry in O(1), so no per-segment reallocation or clearing ever
/// happens — a node's `dist`/`closed` state is only meaningful where
/// `stamp[node] == epoch`. One arena lives in a thread-local and is
/// reused across segments, wires, batches, and `route()` calls; it grows
/// monotonically to the largest grid seen by its thread.
struct RouteScratch {
    epoch: u32,
    stamp: Vec<u32>,
    dist: Vec<f64>,
    closed: Vec<bool>,
    heap: BinaryHeap<HeapNode>,
}

impl RouteScratch {
    fn new() -> Self {
        RouteScratch {
            epoch: 0,
            stamp: Vec::new(),
            dist: Vec::new(),
            closed: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Starts a fresh search over a grid of `n` bins: grows the arrays if
    /// this thread has never seen a grid this large, then invalidates all
    /// previous state by bumping the epoch (wrap-around resets stamps).
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, f64::INFINITY);
            self.closed.resize(n, false);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.fill(0);
                1
            }
        };
        self.heap.clear();
    }

    fn is_set(&self, node: usize) -> bool {
        self.stamp[node] == self.epoch
    }

    fn set_dist(&mut self, node: usize, d: f64) {
        self.stamp[node] = self.epoch;
        self.dist[node] = d;
        self.closed[node] = false;
    }
}

thread_local! {
    static ROUTE_SCRATCH: RefCell<RouteScratch> = RefCell::new(RouteScratch::new());
}

/// The routing grid: horizontal/vertical edge usage counters plus a
/// capacity-respecting shortest-path search (windowed A* by default,
/// full-grid Dijkstra as the reference).
struct Grid {
    cols: usize,
    rows: usize,
    /// Usage of the edge to the right of each bin.
    h_use: Vec<usize>,
    /// Usage of the edge above each bin.
    v_use: Vec<usize>,
}

/// Inclusive bin window `(c0, r0, c1, r1)` a search is confined to.
type Window = (usize, usize, usize, usize);

impl Grid {
    fn new(cols: usize, rows: usize) -> Self {
        Grid {
            cols,
            rows,
            h_use: vec![0; cols * rows],
            v_use: vec![0; cols * rows],
        }
    }

    fn idx(&self, c: usize, r: usize) -> usize {
        r * self.cols + c
    }

    /// Cost of traversing the usable edge `(eidx, horizontal)`, or `None`
    /// when the edge is at or over the virtual capacity (the
    /// FastRoute-style hard limit). Usable edges cost
    /// `1 + penalty · usage / capacity` so wires spread away from
    /// congested regions; effective usage is the grid counter plus the
    /// caller's private `overlay`.
    #[inline]
    fn edge_cost(
        &self,
        eidx: usize,
        horizontal: bool,
        capacity: usize,
        penalty: f64,
        overlay: &EdgeOverlay,
    ) -> Option<f64> {
        let base = if horizontal {
            self.h_use[eidx]
        } else {
            self.v_use[eidx]
        };
        let usage = base + overlay.get(&(eidx, horizontal)).copied().unwrap_or(0);
        if usage >= capacity {
            return None;
        }
        Some(1.0 + penalty * usage as f64 / capacity as f64)
    }

    /// True when every grid edge incident to `node` is saturated at the
    /// current capacity: the node can neither reach nor be reached by any
    /// other node, so a search touching it is pointless.
    fn pin_sealed(
        &self,
        node: usize,
        capacity: usize,
        penalty: f64,
        overlay: &EdgeOverlay,
    ) -> bool {
        let c = node % self.cols;
        let r = node / self.cols;
        (c + 1 >= self.cols
            || self
                .edge_cost(node, true, capacity, penalty, overlay)
                .is_none())
            && (c == 0
                || self
                    .edge_cost(node - 1, true, capacity, penalty, overlay)
                    .is_none())
            && (r + 1 >= self.rows
                || self
                    .edge_cost(node, false, capacity, penalty, overlay)
                    .is_none())
            && (r == 0
                || self
                    .edge_cost(node - self.cols, false, capacity, penalty, overlay)
                    .is_none())
    }

    /// The four candidate moves out of `node`, clipped to `window`, each
    /// carrying its edge key (index of the owning bin + horizontal flag)
    /// and destination node. The order — +x, −x, +y, −y — is fixed; the
    /// canonical path reconstruction relies on it.
    #[inline]
    fn moves(&self, node: usize, window: Window) -> ([(usize, usize, bool); 4], usize) {
        let (c0, r0, c1, r1) = window;
        let c = node % self.cols;
        let r = node / self.cols;
        let mut out = [(0usize, 0usize, false); 4];
        let mut count = 0;
        if c < c1 {
            out[count] = (node + 1, node, true);
            count += 1;
        }
        if c > c0 {
            out[count] = (node - 1, node - 1, true);
            count += 1;
        }
        if r < r1 {
            out[count] = (node + self.cols, node, false);
            count += 1;
        }
        if r > r0 {
            out[count] = (node - self.cols, node - self.cols, false);
            count += 1;
        }
        (out, count)
    }

    /// Settles the shortest-path tree from `start` towards `goal` inside
    /// `window`, writing `dist`/`closed` into `scratch`. With
    /// `heuristic = true` this is A* under the admissible and consistent
    /// Manhattan heuristic (every edge costs at least 1); with `false` it
    /// is plain Dijkstra. Either way the loop does **not** stop at the
    /// first goal pop: it keeps draining until the heap's best f-value
    /// exceeds the goal cost (plus a relative-rounding slack), so every
    /// node that could sit on *any* optimal path is settled with its
    /// final distance. That drain is what lets
    /// [`Grid::canonical_path`] reconstruct the same optimal path
    /// regardless of which search produced the tree.
    ///
    /// Returns `(goal cost, escape bound)`: the goal cost is `None` when
    /// the goal is unreachable within the window, and the escape bound is
    /// the cheapest conceivable cost of any path that *leaves* the window
    /// — for every settled node with a usable edge crossing the window
    /// boundary, `dist + crossing edge + Manhattan-from-outside` is a
    /// lower bound on every path escaping there first, and paths escaping
    /// through unsettled nodes are already costlier than the goal.
    /// `f64::INFINITY` when no usable edge leaves the window (in
    /// particular whenever the window covers the whole grid).
    #[allow(clippy::too_many_arguments)]
    // ncs-lint: hot
    fn search(
        &self,
        scratch: &mut RouteScratch,
        start: usize,
        goal: usize,
        capacity: usize,
        penalty: f64,
        overlay: &EdgeOverlay,
        window: Window,
        heuristic: bool,
    ) -> (Option<f64>, f64) {
        scratch.begin(self.cols * self.rows);
        let (gc, gr) = (goal % self.cols, goal / self.cols);
        let h = |node: usize| -> f64 {
            if heuristic {
                let c = node % self.cols;
                let r = node / self.cols;
                (c.abs_diff(gc) + r.abs_diff(gr)) as f64
            } else {
                0.0
            }
        };
        let (c0, r0, c1, r1) = window;
        scratch.set_dist(start, 0.0);
        scratch.heap.push(HeapNode {
            cost: h(start),
            node: start,
        });
        let mut best: Option<f64> = None;
        let mut escape_min = f64::INFINITY;
        while let Some(HeapNode { cost, node }) = scratch.heap.pop() {
            if let Some(g_star) = best {
                // Goal settled: keep settling ties (nodes whose f equals
                // the optimum, up to summation rounding), then stop.
                if cost > g_star + 1e-9 * (1.0 + g_star) {
                    break;
                }
            }
            if scratch.closed[node] {
                continue;
            }
            scratch.closed[node] = true;
            if node == goal {
                best = Some(scratch.dist[node]);
                continue;
            }
            let g = scratch.dist[node];
            let c = node % self.cols;
            let r = node / self.cols;
            // In-grid moves in the fixed +x, −x, +y, −y order; `inside`
            // marks the ones that stay within the window. Expanded nodes
            // are always inside, so a move is outside exactly when it
            // crosses the window boundary. Candidate coordinates ride
            // along so the heuristic needs no divisions on this hot path.
            let mut cand = [(0usize, 0usize, 0usize, 0usize, false, false); 4];
            let mut count = 0;
            if c + 1 < self.cols {
                cand[count] = (node + 1, c + 1, r, node, true, c < c1);
                count += 1;
            }
            if c > 0 {
                cand[count] = (node - 1, c - 1, r, node - 1, true, c > c0);
                count += 1;
            }
            if r + 1 < self.rows {
                cand[count] = (node + self.cols, c, r + 1, node, false, r < r1);
                count += 1;
            }
            if r > 0 {
                cand[count] = (node - self.cols, c, r - 1, node - self.cols, false, r > r0);
                count += 1;
            }
            for &(nn, nc, nr, eidx, horizontal, inside) in &cand[..count] {
                let Some(edge) = self.edge_cost(eidx, horizontal, capacity, penalty, overlay)
                else {
                    continue;
                };
                let hn = if heuristic {
                    (nc.abs_diff(gc) + nr.abs_diff(gr)) as f64
                } else {
                    0.0
                };
                if !inside {
                    // Any path escaping the window here first pays its way
                    // to this node, then the crossing edge, then at least
                    // the Manhattan distance back to the goal.
                    let esc = g + edge + hn;
                    if esc < escape_min {
                        escape_min = esc;
                    }
                    continue;
                }
                let nd = g + edge;
                if !scratch.is_set(nn) || nd < scratch.dist[nn] {
                    scratch.set_dist(nn, nd);
                    scratch.heap.push(HeapNode {
                        cost: nd + hn,
                        node: nn,
                    });
                }
            }
        }
        (best, escape_min)
    }

    /// Reconstructs the canonical optimal path from a settled search
    /// tree: walk backwards from the goal, at each node taking the first
    /// settled neighbor (in the fixed [`Grid::moves`] order) that
    /// minimizes `dist[u] + edge_cost(u, v)`. Optimal predecessors are
    /// exactly the minimizers (the minimum equals `dist[v]`), and the
    /// drain in [`Grid::search`] guarantees both A* and Dijkstra settle
    /// every optimal predecessor with identical final distances — so the
    /// reconstructed path is a pure function of the grid state, not of
    /// which search ran or in what order it settled nodes.
    #[allow(clippy::too_many_arguments)]
    fn canonical_path(
        &self,
        scratch: &RouteScratch,
        start: usize,
        goal: usize,
        capacity: usize,
        penalty: f64,
        overlay: &EdgeOverlay,
        window: Window,
    ) -> Option<Vec<(usize, usize)>> {
        let mut path = vec![(goal % self.cols, goal / self.cols)];
        let mut node = goal;
        // Every backward step strictly decreases dist (edges cost ≥ 1),
        // so the walk reaches the start in at most `bins` steps; the
        // bound is a defensive guard, not a reachable state.
        for _ in 0..self.cols * self.rows {
            if node == start {
                path.reverse();
                return Some(path);
            }
            let mut pick: Option<(f64, usize)> = None;
            let (moves, count) = self.moves(node, window);
            for &(u, eidx, horizontal) in &moves[..count] {
                if !scratch.is_set(u) || !scratch.closed[u] {
                    continue;
                }
                let Some(edge) = self.edge_cost(eidx, horizontal, capacity, penalty, overlay)
                else {
                    continue;
                };
                let through = scratch.dist[u] + edge;
                // Strict improvement only: ties keep the earlier
                // neighbor, making the fixed move order the tiebreak.
                if pick.is_none_or(|(best, _)| through < best) {
                    pick = Some((through, u));
                }
            }
            let (_, u) = pick?;
            path.push((u % self.cols, u / self.cols));
            node = u;
        }
        None
    }

    /// Capacity-aware shortest path from `src` to `dst` (see
    /// [`Grid::edge_cost`] for the cost model). Returns `None` when no
    /// capacity-respecting path exists — the caller then relaxes the
    /// virtual capacity and reroutes, per Section 3.5.
    ///
    /// With [`RouteAlgorithm::AStarWindow`] the search runs inside an
    /// expanding bounding-box window: start at the segment bbox plus
    /// [`WINDOW_MARGIN`] bins, and accept a windowed result only when its
    /// cost beats the escape bound [`Grid::search`] collects — the
    /// cheapest conceivable cost of any path leaving the window (settled
    /// distance to a boundary exit, plus the crossing edge, plus the
    /// admissible Manhattan bound home). A windowed cost strictly below
    /// that bound (minus a relative-rounding slack) is provably the
    /// global optimum *and* every globally-optimal path lies inside the
    /// window, so the canonical reconstruction matches the full-grid
    /// search bit for bit. Otherwise the margin doubles (counted into
    /// `expansions`) until the window covers the grid, so optimality is
    /// always retained. Because the bound charges escapes their real
    /// congestion-laden cost up to the boundary, uniformly congested
    /// grids — where every path is expensive but detours are pointless —
    /// accept the first window instead of widening to the full grid.
    #[allow(clippy::too_many_arguments)]
    fn shortest_path(
        &self,
        src: (usize, usize),
        dst: (usize, usize),
        capacity: usize,
        penalty: f64,
        overlay: &EdgeOverlay,
        algorithm: RouteAlgorithm,
        expansions: &mut u64,
    ) -> Option<Vec<(usize, usize)>> {
        if src == dst {
            return Some(vec![src]);
        }
        let start = self.idx(src.0, src.1);
        let goal = self.idx(dst.0, dst.1);
        let full: Window = (0, 0, self.cols - 1, self.rows - 1);
        ROUTE_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            match algorithm {
                RouteAlgorithm::DijkstraReference => {
                    self.search(
                        scratch, start, goal, capacity, penalty, overlay, full, false,
                    )
                    .0?;
                    self.canonical_path(scratch, start, goal, capacity, penalty, overlay, full)
                }
                RouteAlgorithm::AStarWindow => {
                    // O(1) unroutability check: a pin with every incident
                    // edge saturated can neither reach nor be reached
                    // (`src != dst` here), so skip the searches entirely.
                    // Congested flows hit this constantly — without it a
                    // sealed *goal* still costs a full exhaust of the
                    // start's component. The reference arm stays a pure
                    // full-grid Dijkstra.
                    if self.pin_sealed(start, capacity, penalty, overlay)
                        || self.pin_sealed(goal, capacity, penalty, overlay)
                    {
                        return None;
                    }
                    let (bc0, bc1) = (src.0.min(dst.0), src.0.max(dst.0));
                    let (br0, br1) = (src.1.min(dst.1), src.1.max(dst.1));
                    let mut margin = WINDOW_MARGIN;
                    loop {
                        let mut window: Window = (
                            bc0.saturating_sub(margin),
                            br0.saturating_sub(margin),
                            (bc1 + margin).min(self.cols - 1),
                            (br1 + margin).min(self.rows - 1),
                        );
                        // A window that already spans most of the grid
                        // buys nothing over the conclusive full-grid
                        // search but still risks paying for both (escape
                        // rejections, unroutability probes) — snap it to
                        // the whole grid instead.
                        let area = (window.2 - window.0 + 1) * (window.3 - window.1 + 1);
                        if 2 * area >= self.cols * self.rows {
                            window = full;
                        }
                        let covers_grid = window == full;
                        let (found, escape_min) = self.search(
                            scratch, start, goal, capacity, penalty, overlay, window, true,
                        );
                        if covers_grid {
                            // The window is the whole grid: the result —
                            // path or proven unreachability — is final.
                            found?;
                            return self.canonical_path(
                                scratch, start, goal, capacity, penalty, overlay, window,
                            );
                        }
                        match found {
                            // Strictly cheaper than every escaping path
                            // (by more than summation rounding): the
                            // windowed optimum is the global optimum.
                            Some(cost) if cost < escape_min - 1e-6 * (1.0 + cost) => {
                                return self.canonical_path(
                                    scratch, start, goal, capacity, penalty, overlay, window,
                                );
                            }
                            // An escape could be cheaper: the optimum is
                            // nearby, so widen geometrically.
                            Some(_) => {
                                *expansions += 1;
                                margin *= 2;
                            }
                            // The search exhausted the window without
                            // reaching the goal *and* no usable edge
                            // leaves the window: the start's reachable
                            // component is sealed inside it, so the
                            // segment is unroutable at this capacity on
                            // the full grid too.
                            None if escape_min.is_infinite() => return None,
                            // No in-window path but the start's component
                            // leaks out. Edge usability is symmetric, so
                            // exhaust the goal's side on the full grid
                            // instead: congested failures usually pocket
                            // the goal pin behind saturated edges, making
                            // its reachable component far smaller than
                            // the start's. An unreached start is then a
                            // proof of unroutability at this capacity;
                            // otherwise a path does exist and one
                            // conclusive full-grid forward search settles
                            // it canonically — no doubling ladder either
                            // way.
                            None => {
                                *expansions += 1;
                                let (back, _) = self.search(
                                    scratch, goal, start, capacity, penalty, overlay, full, true,
                                );
                                back?;
                                margin = self.cols.max(self.rows);
                            }
                        }
                    }
                }
            }
        })
    }

    /// Commits a path, incrementing the usage of every traversed edge.
    fn commit(&mut self, path: &[(usize, usize)]) {
        for seg in path.windows(2) {
            let (c0, r0) = seg[0];
            let (c1, r1) = seg[1];
            if r0 == r1 {
                let idx = self.idx(c0.min(c1), r0);
                self.h_use[idx] += 1;
            } else {
                let idx = self.idx(c0, r0.min(r1));
                self.v_use[idx] += 1;
            }
        }
    }

    /// Adds every edge of `path` to `overlay` — the speculative-routing
    /// counterpart of [`Grid::commit`], letting later segments of the
    /// same wire see earlier ones without mutating the shared grid.
    fn accumulate(&self, path: &[(usize, usize)], overlay: &mut EdgeOverlay) {
        for seg in path.windows(2) {
            let (c0, r0) = seg[0];
            let (c1, r1) = seg[1];
            let key = if r0 == r1 {
                (self.idx(c0.min(c1), r0), true)
            } else {
                (self.idx(c0, r0.min(r1)), false)
            };
            *overlay.entry(key).or_insert(0) += 1;
        }
    }

    /// Re-validates a speculatively planned wire against the *current*
    /// grid and commits it atomically. Tallies the wire's per-edge
    /// traversals (a multi-pin net can cross the same edge more than
    /// once) and commits only if every touched edge still fits under
    /// `capacity`; returns `false` — leaving the grid untouched — when a
    /// commit from earlier in the batch consumed the headroom this plan
    /// relied on.
    fn try_commit(&mut self, seg_paths: &[Vec<(usize, usize)>], capacity: usize) -> bool {
        let mut deltas = EdgeOverlay::new();
        for path in seg_paths {
            self.accumulate(path, &mut deltas);
        }
        for (&(eidx, horizontal), &delta) in &deltas {
            let base = if horizontal {
                self.h_use[eidx]
            } else {
                self.v_use[eidx]
            };
            if base + delta > capacity {
                return false;
            }
        }
        for path in seg_paths {
            self.commit(path);
        }
        true
    }
}

/// Min-heap adapter over f64 costs.
struct HeapNode {
    cost: f64,
    node: usize,
}

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap; costs are always finite.
        other
            .cost
            .total_cmp(&self.cost)
            .then(self.node.cmp(&other.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{place, Netlist, PlacerOptions};
    use ncs_cluster::{full_crossbar, HybridMapping};
    use ncs_net::generators;
    use ncs_tech::TechnologyModel;

    fn placed_netlist() -> (Netlist, Placement) {
        let net = generators::uniform_random(30, 0.06, 5).unwrap();
        let mapping = full_crossbar(&net, 16).unwrap();
        let nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        let p = place(&nl, &PlacerOptions::fast()).unwrap();
        (nl, p)
    }

    #[test]
    fn routes_every_wire() {
        let (nl, p) = placed_netlist();
        let r = route(&nl, &p, &TechnologyModel::nm45(), &RouterOptions::default()).unwrap();
        assert_eq!(r.routed.len(), nl.wires.len());
        assert!(r.total_wirelength_um >= 0.0);
        for (i, rw) in r.routed.iter().enumerate() {
            assert_eq!(rw.wire, i);
            assert!(!rw.path.is_empty());
        }
    }

    #[test]
    fn path_lengths_match_theta() {
        let (nl, p) = placed_netlist();
        let opts = RouterOptions::default();
        let r = route(&nl, &p, &TechnologyModel::nm45(), &opts).unwrap();
        for rw in &r.routed {
            assert!((rw.length_um - (rw.path.len() as f64 - 1.0) * opts.theta).abs() < 1e-9);
            // Consecutive bins are 4-neighbors.
            for seg in rw.path.windows(2) {
                let dc = seg[0].0.abs_diff(seg[1].0);
                let dr = seg[0].1.abs_diff(seg[1].1);
                assert_eq!(dc + dr, 1, "non-adjacent bins in path");
            }
        }
    }

    #[test]
    fn congestion_map_counts_paths() {
        let (nl, p) = placed_netlist();
        let r = route(&nl, &p, &TechnologyModel::nm45(), &RouterOptions::default()).unwrap();
        let total_bins: usize = r.routed.iter().map(|rw| rw.path.len()).sum();
        let total_usage: usize = r.congestion.usage.iter().sum();
        assert_eq!(total_bins, total_usage);
        assert!(r.congestion.max_usage() >= 1);
        assert!(r.congestion.mean_nonzero_usage() >= 1.0);
    }

    #[test]
    fn tight_capacity_forces_relaxation_or_detours() {
        let (nl, p) = placed_netlist();
        let tight = RouterOptions {
            virtual_capacity: 1,
            ..RouterOptions::default()
        };
        let loose = RouterOptions {
            virtual_capacity: 1000,
            ..RouterOptions::default()
        };
        let rt = route(&nl, &p, &TechnologyModel::nm45(), &tight).unwrap();
        let rl = route(&nl, &p, &TechnologyModel::nm45(), &loose).unwrap();
        // Tight capacity cannot yield shorter total wirelength.
        assert!(rt.total_wirelength_um >= rl.total_wirelength_um - 1e-9);
    }

    #[test]
    fn zero_capacity_without_relaxation_is_unroutable() {
        let (nl, p) = placed_netlist();
        let opts = RouterOptions {
            virtual_capacity: 0,
            max_relaxations: 0,
            ..RouterOptions::default()
        };
        match route(&nl, &p, &TechnologyModel::nm45(), &opts) {
            Err(PhysError::Unroutable { failed, .. }) => assert!(failed > 0),
            other => panic!("expected Unroutable, got {other:?}"),
        }
    }

    #[test]
    fn relaxation_recovers_from_zero_capacity() {
        let (nl, p) = placed_netlist();
        let opts = RouterOptions {
            virtual_capacity: 0,
            max_relaxations: 16,
            ..RouterOptions::default()
        };
        let r = route(&nl, &p, &TechnologyModel::nm45(), &opts).unwrap();
        assert!(r.relaxations >= 1, "expected at least one relaxation round");
        assert_eq!(r.routed.len(), nl.wires.len());
    }

    #[test]
    fn invalid_theta_rejected() {
        let (nl, p) = placed_netlist();
        let bad = RouterOptions {
            theta: 0.0,
            ..RouterOptions::default()
        };
        assert!(route(&nl, &p, &TechnologyModel::nm45(), &bad).is_err());
    }

    #[test]
    fn same_bin_wire_routes_trivially() {
        // Two neurons placed at the same spot (one wire between them).
        let mapping = HybridMapping::new(2, vec![], vec![(0, 1)]);
        let nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        let placement = Placement {
            x: vec![0.0, 0.1, 0.2],
            y: vec![0.0, 0.1, 0.2],
            outer_iterations: 0,
            final_overlap_um2: 0.0,
        };
        let r = route(
            &nl,
            &placement,
            &TechnologyModel::nm45(),
            &RouterOptions::default(),
        )
        .unwrap();
        assert!(r
            .routed
            .iter()
            .all(|rw| rw.length_um <= RouterOptions::default().theta * 2.0));
    }

    #[test]
    fn multi_pin_wire_routes_as_spanning_tree() {
        // A 4-pin star: center cell at origin, three satellites. MST from
        // the center is three spokes; chaining would detour through
        // satellites.
        let mapping = HybridMapping::new(4, vec![], vec![]);
        let mut nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        nl.wires.push(crate::Wire {
            id: 0,
            pins: vec![0, 1, 2, 3],
            weight: 1.0,
        });
        let placement = Placement {
            x: vec![50.0, 10.0, 90.0, 50.0],
            y: vec![50.0, 50.0, 50.0, 10.0],
            outer_iterations: 0,
            final_overlap_um2: 0.0,
        };
        let opts = RouterOptions::default();
        let r = route(&nl, &placement, &TechnologyModel::nm45(), &opts).unwrap();
        // Spokes: 40 + 40 + 40 = 120 um of Manhattan tree length; the
        // grid quantizes, so allow a band. Chaining (1->0->2->3 order
        // dependent) would cost noticeably more.
        assert!(
            r.total_wirelength_um <= 140.0,
            "tree routing should be near 120 um, got {}",
            r.total_wirelength_um
        );
    }

    #[test]
    fn mst_segments_cover_all_pins() {
        let placement = Placement {
            x: vec![0.0, 1.0, 5.0, 2.0, 9.0],
            y: vec![0.0, 4.0, 1.0, 2.0, 9.0],
            outer_iterations: 0,
            final_overlap_um2: 0.0,
        };
        let pins = vec![0usize, 1, 2, 3, 4];
        let segments = mst_segments(&pins, &placement);
        assert_eq!(segments.len(), 4, "an MST over 5 pins has 4 edges");
        let mut seen = std::collections::BTreeSet::new();
        for (a, b) in segments {
            seen.insert(a);
            seen.insert(b);
        }
        assert_eq!(seen.len(), 5, "every pin participates");
        assert!(mst_segments(&[7], &placement).is_empty());
    }

    fn astar_path(grid: &Grid, src: (usize, usize), dst: (usize, usize)) -> Vec<(usize, usize)> {
        let mut exp = 0;
        grid.shortest_path(
            src,
            dst,
            8,
            2.0,
            &EdgeOverlay::new(),
            RouteAlgorithm::AStarWindow,
            &mut exp,
        )
        .unwrap()
    }

    #[test]
    fn grid_shortest_path_is_manhattan_when_uncongested() {
        let grid = Grid::new(10, 10);
        let path = astar_path(&grid, (1, 1), (4, 5));
        assert_eq!(path.len(), 1 + 3 + 4);
        assert_eq!(path[0], (1, 1));
        assert_eq!(*path.last().unwrap(), (4, 5));
    }

    #[test]
    fn congested_edges_cause_detours() {
        let mut grid = Grid::new(5, 3);
        // Saturate the straight corridor between (0,1) and (4,1).
        for c in 0..4 {
            for _ in 0..4 {
                grid.commit(&[(c, 1), (c + 1, 1)]);
            }
        }
        let mut exp = 0;
        let path = grid
            .shortest_path(
                (0, 1),
                (4, 1),
                2,
                10.0,
                &EdgeOverlay::new(),
                RouteAlgorithm::AStarWindow,
                &mut exp,
            )
            .unwrap();
        // The detour leaves row 1.
        assert!(
            path.iter().any(|&(_, r)| r != 1),
            "expected a detour, got {path:?}"
        );
    }

    #[test]
    fn overlay_usage_blocks_edges_like_committed_usage() {
        // Saturating the straight corridor only in a private overlay must
        // force the same detour as committing it to the grid.
        let grid = Grid::new(5, 3);
        let mut overlay = EdgeOverlay::new();
        for c in 0..4 {
            grid.accumulate(&[(c, 1), (c + 1, 1)], &mut overlay);
            grid.accumulate(&[(c, 1), (c + 1, 1)], &mut overlay);
        }
        let mut exp = 0;
        let path = grid
            .shortest_path(
                (0, 1),
                (4, 1),
                2,
                10.0,
                &overlay,
                RouteAlgorithm::AStarWindow,
                &mut exp,
            )
            .unwrap();
        assert!(
            path.iter().any(|&(_, r)| r != 1),
            "expected a detour, got {path:?}"
        );
        // Without the overlay the corridor is free and the path is direct.
        let direct = astar_path(&grid, (0, 1), (4, 1));
        assert!(direct.iter().all(|&(_, r)| r == 1));
    }

    #[test]
    fn astar_and_dijkstra_agree_bit_for_bit_per_segment() {
        // Exhaustive per-segment equivalence on a grid with uneven
        // congestion: every (src, dst) pair must yield the identical
        // canonical path from both searches.
        let mut grid = Grid::new(12, 9);
        // An asymmetric congestion pattern (diagonal stripes of commits).
        for c in 0..11 {
            for r in 0..9 {
                for _ in 0..((c + 2 * r) % 4) {
                    grid.commit(&[(c, r), (c + 1, r)]);
                }
            }
        }
        for c in 0..12 {
            for r in 0..8 {
                for _ in 0..((3 * c + r) % 3) {
                    grid.commit(&[(c, r), (c, r + 1)]);
                }
            }
        }
        let overlay = EdgeOverlay::new();
        for (src, dst) in [
            ((0, 0), (11, 8)),
            ((11, 0), (0, 8)),
            ((2, 7), (9, 1)),
            ((5, 4), (6, 4)),
            ((0, 4), (11, 4)),
            ((3, 0), (3, 8)),
        ] {
            let mut exp = 0;
            let astar = grid.shortest_path(
                src,
                dst,
                4,
                5.0,
                &overlay,
                RouteAlgorithm::AStarWindow,
                &mut exp,
            );
            let mut exp_ref = 0;
            let dijkstra = grid.shortest_path(
                src,
                dst,
                4,
                5.0,
                &overlay,
                RouteAlgorithm::DijkstraReference,
                &mut exp_ref,
            );
            assert_eq!(astar, dijkstra, "paths diverged for {src:?} -> {dst:?}");
            assert_eq!(exp_ref, 0, "the reference never expands windows");
        }
    }

    #[test]
    fn window_expands_when_congestion_forces_long_detours() {
        // Wall off the direct corridor so the only path detours far
        // outside the initial window; the windowed search must widen
        // (counting expansions) and still find the same path as the
        // reference.
        let mut grid = Grid::new(30, 15);
        // Block the vertical edges of a wall at column 10 except row 14,
        // and the horizontal edges crossing column 10 except at row 14.
        for r in 0..14 {
            for _ in 0..8 {
                grid.commit(&[(10, r), (11, r)]);
            }
        }
        let src = (8, 2);
        let dst = (13, 2);
        let mut exp = 0;
        let astar = grid
            .shortest_path(
                src,
                dst,
                8,
                2.0,
                &EdgeOverlay::new(),
                RouteAlgorithm::AStarWindow,
                &mut exp,
            )
            .unwrap();
        assert!(exp > 0, "the detour must force a window expansion");
        let mut exp_ref = 0;
        let dijkstra = grid
            .shortest_path(
                src,
                dst,
                8,
                2.0,
                &EdgeOverlay::new(),
                RouteAlgorithm::DijkstraReference,
                &mut exp_ref,
            )
            .unwrap();
        assert_eq!(astar, dijkstra, "expanded window diverged from reference");
        assert!(
            astar.iter().any(|&(_, r)| r >= 13),
            "path should detour around the wall, got {astar:?}"
        );
    }

    #[test]
    fn scratch_survives_grid_size_changes() {
        // The thread-local arena is shared across searches on grids of
        // different sizes; epoch stamping must keep results correct when
        // a smaller grid follows a larger one (indices alias).
        let big = Grid::new(40, 40);
        let p1 = astar_path(&big, (0, 0), (39, 39));
        assert_eq!(p1.len(), 79);
        let small = Grid::new(4, 4);
        let p2 = astar_path(&small, (0, 0), (3, 3));
        assert_eq!(p2.len(), 7);
        for &(c, r) in &p2 {
            assert!(c < 4 && r < 4, "stale scratch leaked an out-of-grid bin");
        }
        let p3 = astar_path(&big, (39, 0), (0, 39));
        assert_eq!(p3.len(), 79);
    }

    #[test]
    fn routing_is_identical_for_both_algorithms() {
        // End-to-end equivalence under congestion and capacity
        // relaxation: the full Routing structure (paths, lengths,
        // congestion map, relaxations) must be bit-identical.
        let (nl, p) = placed_netlist();
        let mut base = RouterOptions {
            virtual_capacity: 2,
            ..RouterOptions::default()
        };
        let astar = route(&nl, &p, &TechnologyModel::nm45(), &base).unwrap();
        base.algorithm = RouteAlgorithm::DijkstraReference;
        let dijkstra = route(&nl, &p, &TechnologyModel::nm45(), &base).unwrap();
        assert_eq!(astar, dijkstra, "A* routing diverged from the reference");
    }

    #[test]
    fn try_commit_rejects_paths_that_no_longer_fit() {
        let mut grid = Grid::new(5, 3);
        let corridor: Vec<(usize, usize)> = (0..5).map(|c| (c, 1)).collect();
        // Capacity 2: the corridor fits twice, then re-validation fails.
        assert!(grid.try_commit(std::slice::from_ref(&corridor), 2));
        assert!(grid.try_commit(std::slice::from_ref(&corridor), 2));
        assert!(!grid.try_commit(std::slice::from_ref(&corridor), 2));
        // A rejected commit leaves the grid untouched.
        assert_eq!(grid.h_use.iter().sum::<usize>(), 8);
    }

    #[test]
    fn routing_is_bit_identical_across_thread_counts() {
        // The determinism contract: identical Routing (paths, lengths,
        // congestion map, relaxation count) at any NCS_THREADS.
        let (nl, p) = placed_netlist();
        let opts = RouterOptions {
            virtual_capacity: 2,
            ..RouterOptions::default()
        };
        let run_at = |t: usize| {
            ncs_par::set_thread_override(Some(t));
            let r = route(&nl, &p, &TechnologyModel::nm45(), &opts);
            ncs_par::set_thread_override(None);
            r.unwrap()
        };
        let base = run_at(1);
        for t in [2, 4] {
            assert_eq!(base, run_at(t), "routing diverged at t={t}");
        }
    }
}
