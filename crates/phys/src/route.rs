use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use ncs_tech::TechnologyModel;

use crate::{CellId, Netlist, PhysError, Placement, WireId};

/// Wires speculatively routed per batch before the ordered commit pass.
/// Fixed — never derived from the thread count — so the batch grid, and
/// with it every routing decision, is identical at any `NCS_THREADS`.
const ROUTE_BATCH: usize = 8;

/// Private usage overlay for speculative routing: extra traversals per
/// grid edge, keyed by `(owning bin index, horizontal)`, layered on top
/// of a frozen congestion snapshot.
type EdgeOverlay = BTreeMap<(usize, bool), usize>;

/// A speculatively planned wire: one bin path per MST segment.
type SegPaths = Vec<Vec<(usize, usize)>>;

/// Options for the global router.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterOptions {
    /// Bin width `θ` of the grid graph, µm (Section 3.5: "a grid graph
    /// model is constructed with bin width θ, a user-defined parameter").
    pub theta: f64,
    /// Routing tracks available per grid edge before relaxation — the
    /// FastRoute-style *virtual capacity*.
    pub virtual_capacity: usize,
    /// Extra cost added per unit of congestion overflow when a wire has to
    /// squeeze through a saturated edge during relaxed rerouting.
    pub congestion_penalty: f64,
    /// Maximum capacity-relaxation rounds before reporting
    /// [`PhysError::Unroutable`].
    pub max_relaxations: usize,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            theta: 4.0,
            virtual_capacity: 8,
            congestion_penalty: 2.0,
            max_relaxations: 16,
        }
    }
}

/// A single routed wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedWire {
    /// The wire this path implements.
    pub wire: WireId,
    /// Grid bins visited, as `(col, row)` pairs. For a 2-pin wire this is
    /// a single source-to-sink path; for a multi-pin wire it is the
    /// concatenation of the routed spanning-tree segments.
    pub path: Vec<(usize, usize)>,
    /// Routed length, µm (sum of segment lengths · θ).
    pub length_um: f64,
}

/// Per-bin wire congestion, for the Figure 10 heatmaps.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionMap {
    /// Grid columns.
    pub cols: usize,
    /// Grid rows.
    pub rows: usize,
    /// Bin width θ, µm.
    pub theta: f64,
    /// Wires passing through each bin, row-major.
    pub usage: Vec<usize>,
}

impl CongestionMap {
    /// Usage of bin `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if the bin is out of range.
    pub fn at(&self, col: usize, row: usize) -> usize {
        assert!(
            col < self.cols && row < self.rows,
            "bin ({col},{row}) out of range"
        );
        self.usage[row * self.cols + col]
    }

    /// Maximum bin usage.
    pub fn max_usage(&self) -> usize {
        self.usage.iter().copied().max().unwrap_or(0)
    }

    /// Mean bin usage over non-empty bins.
    pub fn mean_nonzero_usage(&self) -> f64 {
        let nz: Vec<usize> = self.usage.iter().copied().filter(|&u| u > 0).collect();
        if nz.is_empty() {
            0.0
        } else {
            nz.iter().sum::<usize>() as f64 / nz.len() as f64
        }
    }
}

/// Result of routing a placed netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct Routing {
    /// One routed path per wire (same order as the netlist wires).
    pub routed: Vec<RoutedWire>,
    /// Total routed wirelength, µm.
    pub total_wirelength_um: f64,
    /// Congestion map over the placement region.
    pub congestion: CongestionMap,
    /// Capacity-relaxation rounds that were needed.
    pub relaxations: usize,
}

/// Routes every wire of a placed netlist with maze routing (Lee-style
/// shortest path on the bin grid) under virtual edge capacities.
///
/// Per Section 3.5: wires are ordered by the distance from the center of
/// gravity of all cells to their closest pin (with wire weight as the tie
/// breaker), routed with capacity-respecting Dijkstra, and any wires that
/// fail are retried after the virtual capacity is relaxed.
///
/// Routing proceeds in fixed-size batches: each batch is planned
/// speculatively against the congestion snapshot frozen at batch start
/// (in parallel when `NCS_THREADS > 1`), then committed sequentially in
/// batch order with re-validation; plans invalidated by an earlier commit
/// re-enter the queue at the same capacity. Because the batch grid never
/// depends on the thread count, the routing is bit-identical at any
/// `NCS_THREADS` setting.
///
/// Multi-pin wires are decomposed into a Manhattan minimum spanning tree
/// over their pins and each tree edge is maze-routed independently (the
/// default netlist generator emits 2-pin wires; the shared-net model
/// produces genuine multi-pin nets).
///
/// # Errors
///
/// Returns [`PhysError::Unroutable`] if wires remain unrouted after
/// `max_relaxations` rounds, [`PhysError::InvalidOption`] for a
/// non-positive `theta`, and [`PhysError::DegenerateWire`] for wires with
/// fewer than two pins.
pub fn route(
    netlist: &Netlist,
    placement: &Placement,
    _tech: &TechnologyModel,
    options: &RouterOptions,
) -> Result<Routing, PhysError> {
    if options.theta <= 0.0 {
        return Err(PhysError::InvalidOption {
            what: "theta",
            value: options.theta.to_string(),
        });
    }
    if netlist.cells.is_empty() {
        return Err(PhysError::EmptyNetlist);
    }
    for w in &netlist.wires {
        if w.pins.len() < 2 {
            return Err(PhysError::DegenerateWire { id: w.id });
        }
    }

    // Grid over the placement bounding box plus one bin of margin.
    let (x0, y0, x1, y1) = placement.bounding_box(netlist);
    let theta = options.theta;
    let cols = (((x1 - x0) / theta).ceil() as usize + 3).max(3);
    let rows = (((y1 - y0) / theta).ceil() as usize + 3).max(3);
    let origin = (x0 - theta, y0 - theta);
    let bin_of = |cell: CellId| -> (usize, usize) {
        let bx = ((placement.x[cell] - origin.0) / theta).floor() as isize;
        let by = ((placement.y[cell] - origin.1) / theta).floor() as isize;
        (
            bx.clamp(0, cols as isize - 1) as usize,
            by.clamp(0, rows as isize - 1) as usize,
        )
    };

    // Routing order: distance from the center of gravity to the closest
    // pin, ties broken by descending wire weight.
    let cg_x: f64 = placement.x.iter().sum::<f64>() / placement.x.len() as f64;
    let cg_y: f64 = placement.y.iter().sum::<f64>() / placement.y.len() as f64;
    let mut order: Vec<WireId> = (0..netlist.wires.len()).collect();
    let closest: Vec<f64> = netlist
        .wires
        .iter()
        .map(|w| {
            w.pins
                .iter()
                .map(|&p| {
                    let dx = placement.x[p] - cg_x;
                    let dy = placement.y[p] - cg_y;
                    (dx * dx + dy * dy).sqrt()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    order.sort_by(|&a, &b| {
        closest[a]
            .total_cmp(&closest[b])
            .then(netlist.wires[b].weight.total_cmp(&netlist.wires[a].weight))
            .then(a.cmp(&b))
    });

    let mut grid = Grid::new(cols, rows);
    let mut routed: Vec<Option<RoutedWire>> = vec![None; netlist.wires.len()];
    let mut pending: Vec<WireId> = order;
    let mut capacity = options.virtual_capacity;
    let mut relaxations = 0;

    loop {
        let mut failed = Vec::new();
        // Batched speculative routing with an ordered sequential commit.
        // Each batch is planned (in parallel when `NCS_THREADS > 1`)
        // against the grid frozen at batch start, then committed one wire
        // at a time in batch order with re-validation. Batch membership
        // depends only on the queue contents — never the thread count —
        // so the result is bit-identical at any `NCS_THREADS`; conflicts
        // surface as commit failures and re-enter the queue at the same
        // capacity.
        let mut queue: VecDeque<WireId> = pending.drain(..).collect();
        while !queue.is_empty() {
            let take = queue.len().min(ROUTE_BATCH);
            let batch: Vec<WireId> = queue.drain(..take).collect();
            let grid_ref = &grid;
            let bin_ref = &bin_of;
            // Speculative phase. A wire decomposes into a Manhattan MST
            // over its pins; its own segments see each other through a
            // private overlay so a multi-pin net respects the congestion
            // it would itself create. `None` means a segment found no
            // capacity-respecting path even on the frozen grid.
            let plans: Vec<Option<SegPaths>> = ncs_par::par_map(&batch, 1, |_, &wid| {
                let wire = &netlist.wires[wid];
                let mut overlay = EdgeOverlay::new();
                let mut seg_paths = Vec::new();
                for seg in mst_segments(&wire.pins, placement) {
                    let path = grid_ref.shortest_path(
                        bin_ref(seg.0),
                        bin_ref(seg.1),
                        capacity,
                        options.congestion_penalty,
                        &overlay,
                    )?;
                    grid_ref.accumulate(&path, &mut overlay);
                    seg_paths.push(path);
                }
                Some(seg_paths)
            });
            // Commit phase: strictly in batch order. The first plannable
            // wire of every batch commits (its plan was validated against
            // the exact grid it re-validates on), so each batch makes
            // progress and the same-capacity retry queue always drains.
            for (&wid, plan) in batch.iter().zip(plans) {
                match plan {
                    None => failed.push(wid),
                    Some(seg_paths) => {
                        if grid.try_commit(&seg_paths, capacity) {
                            ncs_trace::add("route.commits", 1);
                            let mut length = 0.0;
                            for p in &seg_paths {
                                length += (p.len().saturating_sub(1)) as f64 * theta;
                            }
                            routed[wid] = Some(RoutedWire {
                                wire: wid,
                                path: seg_paths.concat(),
                                length_um: length,
                            });
                        } else {
                            ncs_trace::add("route.requeues", 1);
                            queue.push_back(wid);
                        }
                    }
                }
            }
        }
        if failed.is_empty() {
            break;
        }
        ncs_trace::add("route.failed", failed.len() as u64);
        relaxations += 1;
        if relaxations > options.max_relaxations {
            return Err(PhysError::Unroutable {
                failed: failed.len(),
                relaxations: relaxations - 1,
            });
        }
        // Relax the virtual capacity and retry only the failed wires.
        capacity = capacity.saturating_mul(2).max(capacity + 1);
        pending = failed;
    }

    // The retry loop only exits once `pending` drains, so every slot is
    // filled — but surface a routing error rather than panic if not. The
    // same tally feeds the `route.missing` counter, so the observability
    // stream and the error path share one source of truth.
    let missing = routed.iter().filter(|r| r.is_none()).count();
    ncs_trace::add("route.missing", missing as u64);
    if missing > 0 {
        return Err(PhysError::Unroutable {
            failed: missing,
            relaxations,
        });
    }
    ncs_trace::record("route.relaxations", relaxations as u64);
    let routed: Vec<RoutedWire> = routed.into_iter().flatten().collect();
    let total = routed.iter().map(|r| r.length_um).sum();
    let mut usage = vec![0usize; cols * rows];
    for r in &routed {
        for &(c, row) in &r.path {
            usage[row * cols + c] += 1;
        }
    }
    Ok(Routing {
        routed,
        total_wirelength_um: total,
        congestion: CongestionMap {
            cols,
            rows,
            theta,
            usage,
        },
        relaxations,
    })
}

/// Prim's minimum spanning tree over a wire's pins in the Manhattan
/// metric, returned as `(from_cell, to_cell)` segments. Multi-pin nets
/// routed along their MST use far less wire than naive pin chaining; a
/// 2-pin wire yields its single segment unchanged.
fn mst_segments(pins: &[CellId], placement: &Placement) -> Vec<(CellId, CellId)> {
    if pins.len() < 2 {
        return Vec::new();
    }
    let dist = |a: CellId, b: CellId| -> f64 {
        (placement.x[a] - placement.x[b]).abs() + (placement.y[a] - placement.y[b]).abs()
    };
    let mut in_tree = vec![false; pins.len()];
    let mut best_dist = vec![f64::INFINITY; pins.len()];
    let mut best_parent = vec![0usize; pins.len()];
    in_tree[0] = true;
    for (i, &p) in pins.iter().enumerate().skip(1) {
        best_dist[i] = dist(pins[0], p);
    }
    let mut segments = Vec::with_capacity(pins.len() - 1);
    for _ in 1..pins.len() {
        // One pin joins the tree per round, so a non-tree pin remains on
        // every iteration; stop early instead of panicking if not.
        let Some(next) = (0..pins.len())
            .filter(|&i| !in_tree[i])
            .min_by(|&a, &b| best_dist[a].total_cmp(&best_dist[b]))
        else {
            break;
        };
        in_tree[next] = true;
        segments.push((pins[best_parent[next]], pins[next]));
        for (i, &p) in pins.iter().enumerate() {
            if !in_tree[i] {
                let d = dist(pins[next], p);
                if d < best_dist[i] {
                    best_dist[i] = d;
                    best_parent[i] = next;
                }
            }
        }
    }
    segments
}

/// The routing grid: horizontal/vertical edge usage counters plus a
/// Dijkstra that respects capacities.
struct Grid {
    cols: usize,
    rows: usize,
    /// Usage of the edge to the right of each bin.
    h_use: Vec<usize>,
    /// Usage of the edge above each bin.
    v_use: Vec<usize>,
}

impl Grid {
    fn new(cols: usize, rows: usize) -> Self {
        Grid {
            cols,
            rows,
            h_use: vec![0; cols * rows],
            v_use: vec![0; cols * rows],
        }
    }

    fn idx(&self, c: usize, r: usize) -> usize {
        r * self.cols + c
    }

    /// Capacity-aware shortest path from `src` to `dst`. Edges at or over
    /// the virtual capacity are **unusable** (the FastRoute-style hard
    /// limit); edges below it cost `1 + penalty · usage / capacity` so
    /// wires spread away from congested regions. Effective edge usage is
    /// the grid counter plus the caller's `overlay` — the private
    /// traversals a speculatively routed wire has already planned (pass
    /// an empty map to route against the grid alone). Returns `None` when
    /// no capacity-respecting path exists — the caller then relaxes the
    /// virtual capacity and reroutes, per Section 3.5.
    fn shortest_path(
        &self,
        src: (usize, usize),
        dst: (usize, usize),
        capacity: usize,
        penalty: f64,
        overlay: &EdgeOverlay,
    ) -> Option<Vec<(usize, usize)>> {
        if src == dst {
            return Some(vec![src]);
        }
        let n = self.cols * self.rows;
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let start = self.idx(src.0, src.1);
        let goal = self.idx(dst.0, dst.1);
        dist[start] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapNode {
            cost: 0.0,
            node: start,
        });
        while let Some(HeapNode { cost, node }) = heap.pop() {
            if node == goal {
                break;
            }
            if cost > dist[node] {
                continue;
            }
            let c = node % self.cols;
            let r = node / self.cols;
            // Each candidate move carries its edge key: the index of the
            // bin owning the edge plus the horizontal/vertical flag.
            let mut neighbors: [(isize, isize, usize, bool); 4] = [(0, 0, 0, false); 4];
            let mut count = 0;
            if c + 1 < self.cols {
                neighbors[count] = (1, 0, node, true);
                count += 1;
            }
            if c > 0 {
                neighbors[count] = (-1, 0, node - 1, true);
                count += 1;
            }
            if r + 1 < self.rows {
                neighbors[count] = (0, 1, node, false);
                count += 1;
            }
            if r > 0 {
                neighbors[count] = (0, -1, node - self.cols, false);
                count += 1;
            }
            for &(dc, dr, eidx, horizontal) in &neighbors[..count] {
                let base = if horizontal {
                    self.h_use[eidx]
                } else {
                    self.v_use[eidx]
                };
                let usage = base + overlay.get(&(eidx, horizontal)).copied().unwrap_or(0);
                if usage >= capacity {
                    continue;
                }
                let nc = (c as isize + dc) as usize;
                let nr = (r as isize + dr) as usize;
                let nn = self.idx(nc, nr);
                let edge_cost = 1.0 + penalty * usage as f64 / capacity as f64;
                let nd = cost + edge_cost;
                if nd < dist[nn] {
                    dist[nn] = nd;
                    prev[nn] = node;
                    heap.push(HeapNode { cost: nd, node: nn });
                }
            }
        }
        if dist[goal].is_infinite() {
            // Every capacity-respecting path is blocked; let the caller
            // relax the virtual capacity.
            return None;
        }
        let mut path = Vec::new();
        let mut node = goal;
        while node != usize::MAX {
            path.push((node % self.cols, node / self.cols));
            if node == start {
                break;
            }
            node = prev[node];
        }
        path.reverse();
        Some(path)
    }

    /// Commits a path, incrementing the usage of every traversed edge.
    fn commit(&mut self, path: &[(usize, usize)]) {
        for seg in path.windows(2) {
            let (c0, r0) = seg[0];
            let (c1, r1) = seg[1];
            if r0 == r1 {
                let idx = self.idx(c0.min(c1), r0);
                self.h_use[idx] += 1;
            } else {
                let idx = self.idx(c0, r0.min(r1));
                self.v_use[idx] += 1;
            }
        }
    }

    /// Adds every edge of `path` to `overlay` — the speculative-routing
    /// counterpart of [`Grid::commit`], letting later segments of the
    /// same wire see earlier ones without mutating the shared grid.
    fn accumulate(&self, path: &[(usize, usize)], overlay: &mut EdgeOverlay) {
        for seg in path.windows(2) {
            let (c0, r0) = seg[0];
            let (c1, r1) = seg[1];
            let key = if r0 == r1 {
                (self.idx(c0.min(c1), r0), true)
            } else {
                (self.idx(c0, r0.min(r1)), false)
            };
            *overlay.entry(key).or_insert(0) += 1;
        }
    }

    /// Re-validates a speculatively planned wire against the *current*
    /// grid and commits it atomically. Tallies the wire's per-edge
    /// traversals (a multi-pin net can cross the same edge more than
    /// once) and commits only if every touched edge still fits under
    /// `capacity`; returns `false` — leaving the grid untouched — when a
    /// commit from earlier in the batch consumed the headroom this plan
    /// relied on.
    fn try_commit(&mut self, seg_paths: &[Vec<(usize, usize)>], capacity: usize) -> bool {
        let mut deltas = EdgeOverlay::new();
        for path in seg_paths {
            self.accumulate(path, &mut deltas);
        }
        for (&(eidx, horizontal), &delta) in &deltas {
            let base = if horizontal {
                self.h_use[eidx]
            } else {
                self.v_use[eidx]
            };
            if base + delta > capacity {
                return false;
            }
        }
        for path in seg_paths {
            self.commit(path);
        }
        true
    }
}

/// Min-heap adapter over f64 costs.
struct HeapNode {
    cost: f64,
    node: usize,
}

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap; costs are always finite.
        other
            .cost
            .total_cmp(&self.cost)
            .then(self.node.cmp(&other.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{place, Netlist, PlacerOptions};
    use ncs_cluster::{full_crossbar, HybridMapping};
    use ncs_net::generators;
    use ncs_tech::TechnologyModel;

    fn placed_netlist() -> (Netlist, Placement) {
        let net = generators::uniform_random(30, 0.06, 5).unwrap();
        let mapping = full_crossbar(&net, 16).unwrap();
        let nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        let p = place(&nl, &PlacerOptions::fast()).unwrap();
        (nl, p)
    }

    #[test]
    fn routes_every_wire() {
        let (nl, p) = placed_netlist();
        let r = route(&nl, &p, &TechnologyModel::nm45(), &RouterOptions::default()).unwrap();
        assert_eq!(r.routed.len(), nl.wires.len());
        assert!(r.total_wirelength_um >= 0.0);
        for (i, rw) in r.routed.iter().enumerate() {
            assert_eq!(rw.wire, i);
            assert!(!rw.path.is_empty());
        }
    }

    #[test]
    fn path_lengths_match_theta() {
        let (nl, p) = placed_netlist();
        let opts = RouterOptions::default();
        let r = route(&nl, &p, &TechnologyModel::nm45(), &opts).unwrap();
        for rw in &r.routed {
            assert!((rw.length_um - (rw.path.len() as f64 - 1.0) * opts.theta).abs() < 1e-9);
            // Consecutive bins are 4-neighbors.
            for seg in rw.path.windows(2) {
                let dc = seg[0].0.abs_diff(seg[1].0);
                let dr = seg[0].1.abs_diff(seg[1].1);
                assert_eq!(dc + dr, 1, "non-adjacent bins in path");
            }
        }
    }

    #[test]
    fn congestion_map_counts_paths() {
        let (nl, p) = placed_netlist();
        let r = route(&nl, &p, &TechnologyModel::nm45(), &RouterOptions::default()).unwrap();
        let total_bins: usize = r.routed.iter().map(|rw| rw.path.len()).sum();
        let total_usage: usize = r.congestion.usage.iter().sum();
        assert_eq!(total_bins, total_usage);
        assert!(r.congestion.max_usage() >= 1);
        assert!(r.congestion.mean_nonzero_usage() >= 1.0);
    }

    #[test]
    fn tight_capacity_forces_relaxation_or_detours() {
        let (nl, p) = placed_netlist();
        let tight = RouterOptions {
            virtual_capacity: 1,
            ..RouterOptions::default()
        };
        let loose = RouterOptions {
            virtual_capacity: 1000,
            ..RouterOptions::default()
        };
        let rt = route(&nl, &p, &TechnologyModel::nm45(), &tight).unwrap();
        let rl = route(&nl, &p, &TechnologyModel::nm45(), &loose).unwrap();
        // Tight capacity cannot yield shorter total wirelength.
        assert!(rt.total_wirelength_um >= rl.total_wirelength_um - 1e-9);
    }

    #[test]
    fn zero_capacity_without_relaxation_is_unroutable() {
        let (nl, p) = placed_netlist();
        let opts = RouterOptions {
            virtual_capacity: 0,
            max_relaxations: 0,
            ..RouterOptions::default()
        };
        match route(&nl, &p, &TechnologyModel::nm45(), &opts) {
            Err(PhysError::Unroutable { failed, .. }) => assert!(failed > 0),
            other => panic!("expected Unroutable, got {other:?}"),
        }
    }

    #[test]
    fn relaxation_recovers_from_zero_capacity() {
        let (nl, p) = placed_netlist();
        let opts = RouterOptions {
            virtual_capacity: 0,
            max_relaxations: 16,
            ..RouterOptions::default()
        };
        let r = route(&nl, &p, &TechnologyModel::nm45(), &opts).unwrap();
        assert!(r.relaxations >= 1, "expected at least one relaxation round");
        assert_eq!(r.routed.len(), nl.wires.len());
    }

    #[test]
    fn invalid_theta_rejected() {
        let (nl, p) = placed_netlist();
        let bad = RouterOptions {
            theta: 0.0,
            ..RouterOptions::default()
        };
        assert!(route(&nl, &p, &TechnologyModel::nm45(), &bad).is_err());
    }

    #[test]
    fn same_bin_wire_routes_trivially() {
        // Two neurons placed at the same spot (one wire between them).
        let mapping = HybridMapping::new(2, vec![], vec![(0, 1)]);
        let nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        let placement = Placement {
            x: vec![0.0, 0.1, 0.2],
            y: vec![0.0, 0.1, 0.2],
            outer_iterations: 0,
            final_overlap_um2: 0.0,
        };
        let r = route(
            &nl,
            &placement,
            &TechnologyModel::nm45(),
            &RouterOptions::default(),
        )
        .unwrap();
        assert!(r
            .routed
            .iter()
            .all(|rw| rw.length_um <= RouterOptions::default().theta * 2.0));
    }

    #[test]
    fn multi_pin_wire_routes_as_spanning_tree() {
        // A 4-pin star: center cell at origin, three satellites. MST from
        // the center is three spokes; chaining would detour through
        // satellites.
        let mapping = HybridMapping::new(4, vec![], vec![]);
        let mut nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        nl.wires.push(crate::Wire {
            id: 0,
            pins: vec![0, 1, 2, 3],
            weight: 1.0,
        });
        let placement = Placement {
            x: vec![50.0, 10.0, 90.0, 50.0],
            y: vec![50.0, 50.0, 50.0, 10.0],
            outer_iterations: 0,
            final_overlap_um2: 0.0,
        };
        let opts = RouterOptions::default();
        let r = route(&nl, &placement, &TechnologyModel::nm45(), &opts).unwrap();
        // Spokes: 40 + 40 + 40 = 120 um of Manhattan tree length; the
        // grid quantizes, so allow a band. Chaining (1->0->2->3 order
        // dependent) would cost noticeably more.
        assert!(
            r.total_wirelength_um <= 140.0,
            "tree routing should be near 120 um, got {}",
            r.total_wirelength_um
        );
    }

    #[test]
    fn mst_segments_cover_all_pins() {
        let placement = Placement {
            x: vec![0.0, 1.0, 5.0, 2.0, 9.0],
            y: vec![0.0, 4.0, 1.0, 2.0, 9.0],
            outer_iterations: 0,
            final_overlap_um2: 0.0,
        };
        let pins = vec![0usize, 1, 2, 3, 4];
        let segments = mst_segments(&pins, &placement);
        assert_eq!(segments.len(), 4, "an MST over 5 pins has 4 edges");
        let mut seen = std::collections::BTreeSet::new();
        for (a, b) in segments {
            seen.insert(a);
            seen.insert(b);
        }
        assert_eq!(seen.len(), 5, "every pin participates");
        assert!(mst_segments(&[7], &placement).is_empty());
    }

    #[test]
    fn grid_shortest_path_is_manhattan_when_uncongested() {
        let grid = Grid::new(10, 10);
        let path = grid
            .shortest_path((1, 1), (4, 5), 8, 2.0, &EdgeOverlay::new())
            .unwrap();
        assert_eq!(path.len(), 1 + 3 + 4);
        assert_eq!(path[0], (1, 1));
        assert_eq!(*path.last().unwrap(), (4, 5));
    }

    #[test]
    fn congested_edges_cause_detours() {
        let mut grid = Grid::new(5, 3);
        // Saturate the straight corridor between (0,1) and (4,1).
        for c in 0..4 {
            for _ in 0..4 {
                grid.commit(&[(c, 1), (c + 1, 1)]);
            }
        }
        let path = grid
            .shortest_path((0, 1), (4, 1), 2, 10.0, &EdgeOverlay::new())
            .unwrap();
        // The detour leaves row 1.
        assert!(
            path.iter().any(|&(_, r)| r != 1),
            "expected a detour, got {path:?}"
        );
    }

    #[test]
    fn overlay_usage_blocks_edges_like_committed_usage() {
        // Saturating the straight corridor only in a private overlay must
        // force the same detour as committing it to the grid.
        let grid = Grid::new(5, 3);
        let mut overlay = EdgeOverlay::new();
        for c in 0..4 {
            grid.accumulate(&[(c, 1), (c + 1, 1)], &mut overlay);
            grid.accumulate(&[(c, 1), (c + 1, 1)], &mut overlay);
        }
        let path = grid
            .shortest_path((0, 1), (4, 1), 2, 10.0, &overlay)
            .unwrap();
        assert!(
            path.iter().any(|&(_, r)| r != 1),
            "expected a detour, got {path:?}"
        );
        // Without the overlay the corridor is free and the path is direct.
        let direct = grid
            .shortest_path((0, 1), (4, 1), 2, 10.0, &EdgeOverlay::new())
            .unwrap();
        assert!(direct.iter().all(|&(_, r)| r == 1));
    }

    #[test]
    fn try_commit_rejects_paths_that_no_longer_fit() {
        let mut grid = Grid::new(5, 3);
        let corridor: Vec<(usize, usize)> = (0..5).map(|c| (c, 1)).collect();
        // Capacity 2: the corridor fits twice, then re-validation fails.
        assert!(grid.try_commit(std::slice::from_ref(&corridor), 2));
        assert!(grid.try_commit(std::slice::from_ref(&corridor), 2));
        assert!(!grid.try_commit(std::slice::from_ref(&corridor), 2));
        // A rejected commit leaves the grid untouched.
        assert_eq!(grid.h_use.iter().sum::<usize>(), 8);
    }

    #[test]
    fn routing_is_bit_identical_across_thread_counts() {
        // The determinism contract: identical Routing (paths, lengths,
        // congestion map, relaxation count) at any NCS_THREADS.
        let (nl, p) = placed_netlist();
        let opts = RouterOptions {
            virtual_capacity: 2,
            ..RouterOptions::default()
        };
        let run_at = |t: usize| {
            ncs_par::set_thread_override(Some(t));
            let r = route(&nl, &p, &TechnologyModel::nm45(), &opts);
            ncs_par::set_thread_override(None);
            r.unwrap()
        };
        let base = run_at(1);
        for t in [2, 4] {
            assert_eq!(base, run_at(t), "routing diverged at t={t}");
        }
    }
}
