use ncs_linalg::optimize::{minimize, CgOptions};

use crate::{CellId, Netlist, PhysError};

mod density;
mod legalize;
mod nesterov;

pub use nesterov::NesterovOptions;

/// Which global-placement engine to run. Mirrors
/// [`crate::RouteAlgorithm`]: the reference algorithm is bit-pinned by
/// the determinism suite and stays the default; the fast engine is
/// opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlaceAlgorithm {
    /// The paper's Algorithm 4: λ-doubling outer loop, conjugate-gradient
    /// inner solves, O(n²)-pair sigmoid density, push-apart legalization.
    /// Bit-pinned by the determinism suite.
    #[default]
    CgReference,
    /// ePlace-class engine: grid-binned density field (O(n + m²) per
    /// evaluation), a single Nesterov loop with inverse-Lipschitz steps
    /// and a Jacobi preconditioner, and a deterministic macro-Tetris +
    /// Abacus-row legalizer. Same wirelength model, same netlists,
    /// bit-identical across `NCS_THREADS` — but not bit-compatible with
    /// the reference.
    Nesterov,
}

/// Options for the analytical placer (Algorithm 4).
#[derive(Debug, Clone, PartialEq)]
pub struct PlacerOptions {
    /// Global-placement engine to use.
    pub algorithm: PlaceAlgorithm,
    /// Options for the [`PlaceAlgorithm::Nesterov`] engine (ignored by
    /// the reference).
    pub nesterov: NesterovOptions,
    /// Smoothness `γ` of the weighted-average wirelength model, µm.
    /// Smaller values track HPWL more closely but are harder to optimize.
    pub gamma: f64,
    /// Virtual-width factor `ω ≥ 1`: cells repel each other as if they were
    /// `ω×` wider/taller, reserving space for routing (Section 3.5).
    pub omega: f64,
    /// Multiplier applied to the density penalty `λ` each outer iteration
    /// (Algorithm 4 line 5 doubles it).
    pub lambda_multiplier: f64,
    /// Maximum outer (λ-escalation) iterations.
    pub max_outer_iterations: usize,
    /// Stop when the total pairwise overlap area falls below this fraction
    /// of the total cell area.
    pub overlap_stop_fraction: f64,
    /// Conjugate-gradient options for the inner solve.
    pub cg: CgOptions,
    /// Maximum pairwise push-apart passes during legalization.
    pub legalizer_passes: usize,
    /// Detailed-placement refinement passes after legalization: same-size
    /// cells are greedily swapped whenever the swap shortens the weighted
    /// HPWL of their incident wires. Legality is preserved exactly
    /// (identical footprints exchange positions). 0 disables refinement
    /// (the default, matching the paper's flow).
    pub detailed_swap_passes: usize,
}

impl Default for PlacerOptions {
    fn default() -> Self {
        PlacerOptions {
            algorithm: PlaceAlgorithm::default(),
            nesterov: NesterovOptions::default(),
            gamma: 2.0,
            omega: 1.2,
            lambda_multiplier: 2.0,
            max_outer_iterations: 10,
            overlap_stop_fraction: 0.05,
            cg: CgOptions {
                max_iterations: 120,
                gradient_tolerance: 1e-4,
                ..CgOptions::default()
            },
            legalizer_passes: 200,
            detailed_swap_passes: 0,
        }
    }
}

impl PlacerOptions {
    /// Reduced-effort configuration for tests and doc examples.
    pub fn fast() -> Self {
        PlacerOptions {
            max_outer_iterations: 5,
            cg: CgOptions {
                max_iterations: 40,
                gradient_tolerance: 1e-3,
                ..CgOptions::default()
            },
            legalizer_passes: 80,
            ..PlacerOptions::default()
        }
    }
}

/// Result of placement: legalized cell-center coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Cell-center x coordinates, µm (indexed by [`CellId`]).
    pub x: Vec<f64>,
    /// Cell-center y coordinates, µm.
    pub y: Vec<f64>,
    /// Outer λ-escalation iterations performed.
    pub outer_iterations: usize,
    /// Remaining overlap area after legalization, µm².
    pub final_overlap_um2: f64,
}

impl Placement {
    /// Center of cell `id`.
    ///
    /// # Errors
    ///
    /// Returns [`PhysError::UnknownCell`] if `id` is out of range.
    pub fn position(&self, id: CellId) -> Result<(f64, f64), PhysError> {
        if id >= self.x.len() {
            return Err(PhysError::UnknownCell { id });
        }
        Ok((self.x[id], self.y[id]))
    }

    /// Axis-aligned bounding box `(min_x, min_y, max_x, max_y)` of all
    /// placed cells including their extents.
    pub fn bounding_box(&self, netlist: &Netlist) -> (f64, f64, f64, f64) {
        let mut bb = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for cell in &netlist.cells {
            let hw = cell.dims.width / 2.0;
            let hh = cell.dims.height / 2.0;
            bb.0 = bb.0.min(self.x[cell.id] - hw);
            bb.1 = bb.1.min(self.y[cell.id] - hh);
            bb.2 = bb.2.max(self.x[cell.id] + hw);
            bb.3 = bb.3.max(self.y[cell.id] + hh);
        }
        bb
    }

    /// Chip (placement bounding-box) area, µm².
    pub fn area_um2(&self, netlist: &Netlist) -> f64 {
        let (x0, y0, x1, y1) = self.bounding_box(netlist);
        ((x1 - x0) * (y1 - y0)).max(0.0)
    }

    /// Weighted half-perimeter wirelength of the placement, µm.
    pub fn weighted_hpwl(&self, netlist: &Netlist) -> f64 {
        netlist
            .wires
            .iter()
            .map(|w| {
                let (mut x0, mut y0) = (f64::INFINITY, f64::INFINITY);
                let (mut x1, mut y1) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
                for &p in &w.pins {
                    x0 = x0.min(self.x[p]);
                    x1 = x1.max(self.x[p]);
                    y0 = y0.min(self.y[p]);
                    y1 = y1.max(self.y[p]);
                }
                w.weight * ((x1 - x0) + (y1 - y0))
            })
            .sum()
    }

    /// Exact pairwise overlap area of the placement, µm².
    pub fn overlap_area_um2(&self, netlist: &Netlist) -> f64 {
        overlap_area(netlist, &self.x, &self.y)
    }
}

/// Runs the analytical placement of Algorithm 4: starting from a regular
/// grid, repeatedly minimize `WL(x,y) + λ·D(x,y)` with conjugate gradient,
/// doubling `λ` until the overlap is small, then legalize the remainder
/// with pairwise push-apart.
///
/// # Errors
///
/// Returns [`PhysError::EmptyNetlist`] for a cell-less netlist,
/// [`PhysError::DegenerateWire`] if a wire has fewer than two pins, and
/// [`PhysError::InvalidOption`] for out-of-range options.
pub fn place(netlist: &Netlist, options: &PlacerOptions) -> Result<Placement, PhysError> {
    let n = netlist.cells.len();
    if n == 0 {
        return Err(PhysError::EmptyNetlist);
    }
    for w in &netlist.wires {
        if w.pins.len() < 2 {
            return Err(PhysError::DegenerateWire { id: w.id });
        }
    }
    if options.gamma <= 0.0 {
        return Err(PhysError::InvalidOption {
            what: "gamma",
            value: options.gamma.to_string(),
        });
    }
    if options.omega < 1.0 {
        return Err(PhysError::InvalidOption {
            what: "omega",
            value: options.omega.to_string(),
        });
    }
    if options.lambda_multiplier <= 1.0 {
        return Err(PhysError::InvalidOption {
            what: "lambda_multiplier",
            value: options.lambda_multiplier.to_string(),
        });
    }
    if options.nesterov.max_iterations == 0 {
        return Err(PhysError::InvalidOption {
            what: "nesterov.max_iterations",
            value: options.nesterov.max_iterations.to_string(),
        });
    }
    if options.nesterov.lambda_growth <= 1.0 {
        return Err(PhysError::InvalidOption {
            what: "nesterov.lambda_growth",
            value: options.nesterov.lambda_growth.to_string(),
        });
    }
    if !(options.nesterov.target_density > 0.0 && options.nesterov.target_density <= 1.0) {
        return Err(PhysError::InvalidOption {
            what: "nesterov.target_density",
            value: options.nesterov.target_density.to_string(),
        });
    }
    if options.nesterov.target_overflow.is_nan() || options.nesterov.target_overflow < 0.0 {
        return Err(PhysError::InvalidOption {
            what: "nesterov.target_overflow",
            value: options.nesterov.target_overflow.to_string(),
        });
    }

    let mut placement = match options.algorithm {
        PlaceAlgorithm::CgReference => place_cg_reference(netlist, options),
        PlaceAlgorithm::Nesterov => nesterov::place_nesterov(netlist, options),
    };
    if options.detailed_swap_passes > 0 {
        detailed_swap(netlist, &mut placement, options.detailed_swap_passes);
    }
    ncs_trace::record(
        "place.overlap_um2",
        placement.final_overlap_um2.round() as u64,
    );
    Ok(placement)
}

/// The paper's Algorithm 4 (the bit-pinned reference engine): λ-doubling
/// outer loop over conjugate-gradient inner solves of `WL + λ·D` with
/// the pairwise sigmoid density, then push-apart legalization.
fn place_cg_reference(netlist: &Netlist, options: &PlacerOptions) -> Placement {
    let n = netlist.cells.len();
    // Line 1 of Algorithm 4: initialize cells at regular grid locations.
    let (mut xs, mut ys) = initial_grid(netlist, options.omega);

    let total_area = netlist.total_cell_area().max(1e-9);
    let stop_overlap = options.overlap_stop_fraction * total_area;

    // λ0 = Σ|∂WL| / Σ|∂D| at the initial placement. A spread start can
    // have *no* density pressure at all (every pairwise potential at
    // zero): in that degenerate case the density term is skipped
    // outright (λ = 0) instead of silently pinned to a fake λ = 1, and
    // λ is re-estimated at each outer iteration until the wirelength
    // pull creates real overlap to push against.
    let mut grad_wl = vec![0.0; 2 * n];
    let mut grad_d = vec![0.0; 2 * n];
    let point: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
    wa_wirelength(netlist, &point, options.gamma, Some(&mut grad_wl[..]));
    density(netlist, &point, options.omega, Some(&mut grad_d[..]));
    let mut lambda = match initial_lambda(&grad_wl, &grad_d) {
        Some(l) => l,
        None => {
            ncs_trace::add("place.lambda_density_skips", 1);
            0.0
        }
    };

    // Lines 2-6: escalate λ until overlap is under control.
    let mut outer = 0;
    for _ in 0..options.max_outer_iterations {
        outer += 1;
        let p0: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        // ncs-lint: allow(float-eq) — λ = 0.0 is an exact sentinel for "density skipped", never a computed value
        if lambda == 0.0 {
            // Degenerate start: try again from the current placement.
            grad_wl.fill(0.0);
            grad_d.fill(0.0);
            wa_wirelength(netlist, &p0, options.gamma, Some(&mut grad_wl[..]));
            density(netlist, &p0, options.omega, Some(&mut grad_d[..]));
            if let Some(l) = initial_lambda(&grad_wl, &grad_d) {
                lambda = l;
            } else {
                ncs_trace::add("place.lambda_density_skips", 1);
            }
        }
        let gamma = options.gamma;
        let omega = options.omega;
        let lam = lambda;
        let result = minimize(
            |p, grad| {
                grad.fill(0.0);
                let wl = wa_wirelength(netlist, p, gamma, Some(grad));
                // ncs-lint: allow(float-eq) — same exact sentinel as above
                if lam == 0.0 {
                    // Density pressure known absent: pure wirelength.
                    return wl;
                }
                let mut gd = vec![0.0; p.len()];
                let d = density(netlist, p, omega, Some(&mut gd[..]));
                for (g, gd) in grad.iter_mut().zip(&gd) {
                    *g += lam * gd;
                }
                wl + lam * d
            },
            p0,
            &options.cg,
        );
        ncs_trace::add("place.cg_iterations", result.iterations as u64);
        xs.copy_from_slice(&result.x[..n]);
        ys.copy_from_slice(&result.x[n..]);
        if overlap_area(netlist, &xs, &ys) <= stop_overlap {
            break;
        }
        if lambda > 0.0 {
            lambda *= options.lambda_multiplier;
        }
    }
    ncs_trace::record("place.outer_iterations", outer as u64);

    // Line 7: process the remaining overlap, then normalize.
    finalize_placement(netlist, xs, ys, options.legalizer_passes, outer)
}

/// λ0 = Σ|∂WL| / Σ|∂D|, or `None` when there is no density gradient to
/// balance against (the structured condition for the degenerate spread
/// start — callers decide how to proceed instead of inheriting a
/// meaningless λ).
fn initial_lambda(grad_wl: &[f64], grad_d: &[f64]) -> Option<f64> {
    let sum_wl: f64 = grad_wl.iter().map(|g| g.abs()).sum();
    let sum_d: f64 = grad_d.iter().map(|g| g.abs()).sum();
    if sum_d <= 0.0 {
        return None;
    }
    let lambda = sum_wl / sum_d;
    if lambda.is_finite() && lambda > 0.0 {
        Some(lambda)
    } else {
        None
    }
}

/// Cells incident to each wire, and footprint groups of swappable cells,
/// shared by both detailed-placement implementations. A BTreeMap keeps
/// the group visit order a pure function of the netlist (footprints
/// quantized to 1e-6 µm) — hash iteration order would leak into the swap
/// sequence and break bit-identical placement.
#[allow(clippy::type_complexity)]
fn swap_structures(
    netlist: &Netlist,
) -> (
    Vec<Vec<usize>>,
    std::collections::BTreeMap<(u64, u64), Vec<usize>>,
) {
    let mut wires_of: Vec<Vec<usize>> = vec![Vec::new(); netlist.cells.len()];
    for w in &netlist.wires {
        for &p in &w.pins {
            wires_of[p].push(w.id);
        }
    }
    let mut groups: std::collections::BTreeMap<(u64, u64), Vec<usize>> =
        std::collections::BTreeMap::new();
    for cell in &netlist.cells {
        let key = (
            (cell.dims.width * 1e6) as u64,
            (cell.dims.height * 1e6) as u64,
        );
        groups.entry(key).or_default().push(cell.id);
    }
    (wires_of, groups)
}

/// Cached per-wire bounding box: per axis, the extrema, how many pins
/// attain each, and the runner-up value (the extremum of the pins with
/// one attaining occurrence removed). Together these make a candidate
/// swap O(1) per touched wire: when the moving pin is not the unique
/// extremum the new extent follows from the extrema alone, and when it
/// is — the case that would otherwise force a rescan — the cached
/// runner-up takes over. Every cached value is an exact selection from
/// the pin coordinates, so incremental results are numerically identical
/// to full recomputation. Wires with duplicated pins (two coordinates
/// moving at once) still defer to the exact-rescan fallback.
#[derive(Clone, Copy)]
struct AxisBox {
    min: f64,
    max: f64,
    /// Pins attaining min / max.
    n_min: u32,
    n_max: u32,
    /// Second-smallest / second-largest pin value (multiplicity aware).
    min2: f64,
    max2: f64,
}

impl AxisBox {
    fn build(pins: &[CellId], coord: &[f64]) -> AxisBox {
        let (mut m1, mut m2) = (f64::INFINITY, f64::INFINITY);
        let (mut h1, mut h2) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for &p in pins {
            let v = coord[p];
            if v < m1 {
                m2 = m1;
                m1 = v;
            } else {
                m2 = m2.min(v);
            }
            if v > h1 {
                h2 = h1;
                h1 = v;
            } else {
                h2 = h2.max(v);
            }
        }
        // Extrema are exact selections from the pin coordinates, so
        // equality identifies attainment exactly.
        let mut n_min = 0;
        let mut n_max = 0;
        for &p in pins {
            n_min += u32::from(coord[p] == m1);
            n_max += u32::from(coord[p] == h1);
        }
        AxisBox {
            min: m1,
            max: h1,
            n_min,
            n_max,
            min2: m2,
            max2: h2,
        }
    }

    /// Extent after a single pin moves from `u` to `v`. `u <= min` can
    /// only hold with equality (min is the exact minimum over the pins,
    /// u among them), i.e. it tests attainment; when the sole attainer
    /// departs inward, the runner-up is the surviving minimum.
    fn moved_extent(&self, u: f64, v: f64) -> f64 {
        let lo = if u <= self.min && self.n_min == 1 {
            self.min2.min(v)
        } else {
            self.min.min(v)
        };
        let hi = if u >= self.max && self.n_max == 1 {
            self.max2.max(v)
        } else {
            self.max.max(v)
        };
        hi - lo
    }
}

#[derive(Clone, Copy)]
struct WireBox {
    x: AxisBox,
    y: AxisBox,
}

impl WireBox {
    fn build(pins: &[CellId], xs: &[f64], ys: &[f64]) -> WireBox {
        WireBox {
            x: AxisBox::build(pins, xs),
            y: AxisBox::build(pins, ys),
        }
    }

    fn hpwl(&self, weight: f64) -> f64 {
        weight * ((self.x.max - self.x.min) + (self.y.max - self.y.min))
    }

    /// Weighted HPWL after the pin at `(ux, uy)` moves to `(vx, vy)`.
    fn moved_hpwl(&self, weight: f64, ux: f64, uy: f64, vx: f64, vy: f64) -> f64 {
        weight * (self.x.moved_extent(ux, vx) + self.y.moved_extent(uy, vy))
    }
}

/// Greedy detailed placement: exchange positions of same-footprint cells
/// whenever the swap shortens the weighted HPWL of their incident wires.
/// Identical footprints make every swap legality-preserving.
///
/// Candidate evaluation is **incremental**: per-wire bounding boxes,
/// extremum-attainment counts, and runner-up extrema are cached, so
/// scoring a swap costs O(1) per touched wire instead of a full pin
/// scan. When a moved pin was the unique extremum of its wire, the
/// cached runner-up supplies the surviving extremum; wires the cache
/// cannot describe (duplicated pins move two coordinates at once) take
/// an exact-rescan fallback. Accepted swaps rebuild the caches of the
/// touched wires. Every evaluated quantity is numerically identical to
/// full recomputation (extrema are exact selections and the per-wire
/// summation order matches [`detailed_swap_reference`]), so the
/// accept/reject sequence — and therefore the final placement, bit for
/// bit — cannot diverge from the reference; the determinism suite pins
/// this.
pub fn detailed_swap(netlist: &Netlist, placement: &mut Placement, passes: usize) {
    let (wires_of, groups) = swap_structures(netlist);
    let mut boxes: Vec<WireBox> = netlist
        .wires
        .iter()
        .map(|w| WireBox::build(&w.pins, &placement.x, &placement.y))
        .collect();
    // Wires with duplicated pins would move two coordinates per swap;
    // they always take the exact-rescan path (netlist generators never
    // emit them, but hand-built test wires can).
    let has_dup: Vec<bool> = netlist
        .wires
        .iter()
        .map(|w| {
            let mut pins = w.pins.clone();
            pins.sort_unstable();
            pins.windows(2).any(|p| p[0] == p[1])
        })
        .collect();
    // Weighted HPWL of wire `wid` with cells a and b exchanged — the
    // exact fallback, equivalent to recomputing after the swap.
    let swapped_hpwl = |wid: usize, a: usize, b: usize, xs: &[f64], ys: &[f64]| -> f64 {
        let w = &netlist.wires[wid];
        let (mut x0, mut y0) = (f64::INFINITY, f64::INFINITY);
        let (mut x1, mut y1) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for &p in &w.pins {
            let q = if p == a {
                b
            } else if p == b {
                a
            } else {
                p
            };
            x0 = x0.min(xs[q]);
            x1 = x1.max(xs[q]);
            y0 = y0.min(ys[q]);
            y1 = y1.max(ys[q]);
        }
        w.weight * ((x1 - x0) + (y1 - y0))
    };
    let mut incremental_hits = 0u64;
    let mut exact_fallbacks = 0u64;
    for _ in 0..passes {
        let mut improved = false;
        for members in groups.values() {
            for (ai, &a) in members.iter().enumerate() {
                for &b in &members[ai + 1..] {
                    let (xa, ya) = (placement.x[a], placement.y[a]);
                    let (xb, yb) = (placement.x[b], placement.y[b]);
                    // Sum `before` and `after` over wires_of[a] then
                    // wires_of[b] — the same order (including the double
                    // count of shared wires) as the reference's chained
                    // sums, so both sums carry identical rounding.
                    let mut before = 0.0;
                    let mut after = 0.0;
                    for mover_is_a in [true, false] {
                        let (list, other) = if mover_is_a {
                            (&wires_of[a], &wires_of[b])
                        } else {
                            (&wires_of[b], &wires_of[a])
                        };
                        for &wid in list {
                            let weight = netlist.wires[wid].weight;
                            before += boxes[wid].hpwl(weight);
                            after += if has_dup[wid] {
                                exact_fallbacks += 1;
                                swapped_hpwl(wid, a, b, &placement.x, &placement.y)
                            } else if other.binary_search(&wid).is_ok() {
                                // A wire pinned to both cells sees its
                                // coordinate multiset unchanged.
                                incremental_hits += 1;
                                boxes[wid].hpwl(weight)
                            } else {
                                let (ux, uy, vx, vy) = if mover_is_a {
                                    (xa, ya, xb, yb)
                                } else {
                                    (xb, yb, xa, ya)
                                };
                                incremental_hits += 1;
                                boxes[wid].moved_hpwl(weight, ux, uy, vx, vy)
                            };
                        }
                    }
                    if after + 1e-12 < before {
                        improved = true;
                        placement.x.swap(a, b);
                        placement.y.swap(a, b);
                        for &wid in wires_of[a].iter().chain(&wires_of[b]) {
                            boxes[wid] = WireBox::build(
                                &netlist.wires[wid].pins,
                                &placement.x,
                                &placement.y,
                            );
                        }
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    ncs_trace::add("place.incremental_hits", incremental_hits);
    ncs_trace::add("place.exact_fallbacks", exact_fallbacks);
}

/// Reference implementation of [`detailed_swap`]: identical swap order
/// and accept rule, but every candidate is scored by fully recomputing
/// the HPWL of the touched wires. Kept for the equivalence tests and the
/// `bench place` regression gate.
pub fn detailed_swap_reference(netlist: &Netlist, placement: &mut Placement, passes: usize) {
    let (wires_of, groups) = swap_structures(netlist);
    let hpwl = |wid: usize, xs: &[f64], ys: &[f64]| -> f64 {
        let w = &netlist.wires[wid];
        let (mut x0, mut y0) = (f64::INFINITY, f64::INFINITY);
        let (mut x1, mut y1) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for &p in &w.pins {
            x0 = x0.min(xs[p]);
            x1 = x1.max(xs[p]);
            y0 = y0.min(ys[p]);
            y1 = y1.max(ys[p]);
        }
        w.weight * ((x1 - x0) + (y1 - y0))
    };
    for _ in 0..passes {
        let mut improved = false;
        for members in groups.values() {
            for (ai, &a) in members.iter().enumerate() {
                for &b in &members[ai + 1..] {
                    let before: f64 = wires_of[a]
                        .iter()
                        .chain(&wires_of[b])
                        .map(|&w| hpwl(w, &placement.x, &placement.y))
                        .sum();
                    placement.x.swap(a, b);
                    placement.y.swap(a, b);
                    let after: f64 = wires_of[a]
                        .iter()
                        .chain(&wires_of[b])
                        .map(|&w| hpwl(w, &placement.x, &placement.y))
                        .sum();
                    if after + 1e-12 < before {
                        improved = true;
                    } else {
                        placement.x.swap(a, b);
                        placement.y.swap(a, b);
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
}

/// Shared epilogue of both placers (analytical and annealing): mixed-size
/// legalization (crossbar macros pushed apart and compacted, small cells
/// gap-filled — the topology of the paper's Figure 10(c)), then a shift to
/// the positive quadrant.
pub(crate) fn finalize_placement(
    netlist: &Netlist,
    mut xs: Vec<f64>,
    mut ys: Vec<f64>,
    legalizer_passes: usize,
    outer_iterations: usize,
) -> Placement {
    legalize_mixed_size(netlist, &mut xs, &mut ys, legalizer_passes);
    shift_to_positive_quadrant(netlist, &mut xs, &mut ys);
    let final_overlap = overlap_area(netlist, &xs, &ys);
    Placement {
        x: xs,
        y: ys,
        outer_iterations,
        final_overlap_um2: final_overlap,
    }
}

/// Normalizes a placement to the positive quadrant for readability
/// (shared by both engines' epilogues).
fn shift_to_positive_quadrant(netlist: &Netlist, xs: &mut [f64], ys: &mut [f64]) {
    let min_x = netlist
        .cells
        .iter()
        .map(|c| xs[c.id] - c.dims.width / 2.0)
        .fold(f64::INFINITY, f64::min);
    let min_y = netlist
        .cells
        .iter()
        .map(|c| ys[c.id] - c.dims.height / 2.0)
        .fold(f64::INFINITY, f64::min);
    for x in xs.iter_mut() {
        *x -= min_x;
    }
    for y in ys.iter_mut() {
        *y -= min_y;
    }
}

/// Regular grid initialization, roughly area-balanced.
fn initial_grid(netlist: &Netlist, omega: f64) -> (Vec<f64>, Vec<f64>) {
    let n = netlist.cells.len();
    let cols = (n as f64).sqrt().ceil() as usize;
    let total = netlist.total_cell_area() * omega * omega * 2.0;
    let pitch = (total / n as f64).sqrt().max(1.0);
    let mut xs = vec![0.0; n];
    let mut ys = vec![0.0; n];
    for cell in &netlist.cells {
        let r = cell.id / cols;
        let c = cell.id % cols;
        xs[cell.id] = c as f64 * pitch;
        ys[cell.id] = r as f64 * pitch;
    }
    (xs, ys)
}

/// Wires per chunk of the parallel wirelength evaluation. The chunk grid
/// is part of the numeric contract: partial sums and per-chunk gradient
/// scratch fold in ascending chunk order on every path, so results are
/// bit-identical at any thread count.
const WL_GRAIN: usize = 64;

/// Cells per chunk of the parallel density evaluation (same contract as
/// [`WL_GRAIN`]).
const DENSITY_GRAIN: usize = 64;

/// Minimum items (wires or cells) before a gradient evaluation fans out
/// to the [`ncs_par`] pool: below a few chunks' worth, the per-chunk
/// `2n` scratch allocations plus dispatch cost more than the math. The
/// gradient calls sit inside every CG iteration, so small placements
/// used to pay this dispatch thousands of times per anneal.
const GRAD_MIN_ITEMS: usize = 4 * WL_GRAIN;

/// Weighted-average wirelength (Eq. 1) over all wires; optionally
/// accumulates the gradient into `grad` (layout `[∂x..., ∂y...]`).
///
/// Wire chunks fan out across the ncs-par team; each chunk scatters its
/// gradient into private scratch, folded sequentially in chunk order.
fn wa_wirelength(netlist: &Netlist, p: &[f64], gamma: f64, grad: Option<&mut [f64]>) -> f64 {
    let n = netlist.cells.len();
    let (xs, ys) = p.split_at(n);
    let wires = &netlist.wires;
    let chunk = |r: std::ops::Range<usize>, scratch: Option<&mut [f64]>| -> f64 {
        let mut scratch = scratch;
        let mut total = 0.0;
        for wire in &wires[r] {
            for (coords, offset) in [(xs, 0usize), (ys, n)] {
                let (span, derivs) = wa_span(&wire.pins, coords, gamma);
                total += wire.weight * span;
                if let Some(g) = scratch.as_deref_mut() {
                    for (&pin, d) in wire.pins.iter().zip(&derivs) {
                        g[offset + pin] += wire.weight * d;
                    }
                }
            }
        }
        total
    };
    let cutoff = ncs_par::Cutoff::min_work(GRAD_MIN_ITEMS);
    match grad {
        Some(g) => ncs_par::par_map_reduce(
            wires.len(),
            WL_GRAIN,
            cutoff,
            |r| {
                let mut scratch = vec![0.0; 2 * n];
                let t = chunk(r, Some(&mut scratch));
                (t, scratch)
            },
            0.0,
            |acc, (t, scratch)| {
                for (slot, s) in g.iter_mut().zip(&scratch) {
                    *slot += s;
                }
                acc + t
            },
        ),
        None => ncs_par::par_map_reduce(
            wires.len(),
            WL_GRAIN,
            cutoff,
            |r| chunk(r, None),
            0.0,
            |a, t| a + t,
        ),
    }
}

/// WA smooth max-minus-min of one coordinate over a pin set, with per-pin
/// derivatives.
fn wa_span(pins: &[CellId], coords: &[f64], gamma: f64) -> (f64, Vec<f64>) {
    let vals: Vec<f64> = pins.iter().map(|&p| coords[p]).collect();
    let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
    // Smooth max side: weights exp((x - max)/γ).
    let ep: Vec<f64> = vals.iter().map(|&v| ((v - max) / gamma).exp()).collect();
    let sp: f64 = ep.iter().sum();
    let sxp: f64 = vals.iter().zip(&ep).map(|(v, e)| v * e).sum();
    let wa_max = sxp / sp;
    // Smooth min side: weights exp(-(x - min)/γ).
    let em: Vec<f64> = vals.iter().map(|&v| (-(v - min) / gamma).exp()).collect();
    let sm: f64 = em.iter().sum();
    let sxm: f64 = vals.iter().zip(&em).map(|(v, e)| v * e).sum();
    let wa_min = sxm / sm;
    let span = wa_max - wa_min;
    let derivs = vals
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let dmax = (ep[i] / sp) * (1.0 + (v - wa_max) / gamma);
            let dmin = (em[i] / sm) * (1.0 - (v - wa_min) / gamma);
            dmax - dmin
        })
        .collect();
    (span, derivs)
}

/// Smooth finite-support overlap potential along one axis: bell-shaped,
/// C¹, 1 at zero distance, 0 beyond the half-width sum `w`.
fn bell(t: f64, w: f64) -> (f64, f64) {
    let t = t.abs();
    if t <= w / 2.0 {
        (1.0 - 2.0 * t * t / (w * w), -4.0 * t / (w * w))
    } else if t <= w {
        (2.0 * (t - w) * (t - w) / (w * w), 4.0 * (t - w) / (w * w))
    } else {
        (0.0, 0.0)
    }
}

/// Smooth cell-density penalty (Eq. 2): sum over nearby cell pairs of
/// `a_ij · O_x · O_y` where `O` are bell potentials over virtual widths
/// `ω·w`. Uses a spatial hash so only interacting pairs are visited.
/// Optionally accumulates the gradient.
// ncs-lint: hot
fn density(netlist: &Netlist, p: &[f64], omega: f64, grad: Option<&mut [f64]>) -> f64 {
    let n = netlist.cells.len();
    let (xs, ys) = p.split_at(n);
    // Interaction radius: the largest virtual extent.
    let max_ext = netlist
        .cells
        .iter()
        .map(|c| c.dims.width.max(c.dims.height))
        .fold(0.0_f64, f64::max)
        * omega;
    let bucket = max_ext.max(1.0);
    // The spatial hash is built serially (it is cheap and order-sensitive);
    // the pair sweep below then fans out over outer-cell chunks, each
    // pair charged to the chunk owning its smaller index `i`.
    let mut hash: std::collections::BTreeMap<(i64, i64), Vec<CellId>> =
        std::collections::BTreeMap::new();
    for cell in &netlist.cells {
        let key = (
            (xs[cell.id] / bucket).floor() as i64,
            (ys[cell.id] / bucket).floor() as i64,
        );
        hash.entry(key).or_default().push(cell.id);
    }
    let hash = &hash;
    let chunk = |r: std::ops::Range<usize>, scratch: Option<&mut [f64]>| -> f64 {
        let mut scratch = scratch;
        let mut total = 0.0;
        for cell in &netlist.cells[r] {
            let i = cell.id;
            let kx = (xs[i] / bucket).floor() as i64;
            let ky = (ys[i] / bucket).floor() as i64;
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(others) = hash.get(&(kx + dx, ky + dy)) else {
                        continue;
                    };
                    for &j in others {
                        if j <= i {
                            continue;
                        }
                        let cj = &netlist.cells[j];
                        let wx = omega * (cell.dims.width + cj.dims.width) / 2.0;
                        let wy = omega * (cell.dims.height + cj.dims.height) / 2.0;
                        let tx = xs[i] - xs[j];
                        let ty = ys[i] - ys[j];
                        if tx.abs() >= wx || ty.abs() >= wy {
                            continue;
                        }
                        let (ox, dox) = bell(tx, wx);
                        let (oy, doy) = bell(ty, wy);
                        let aij = cell.dims.area().min(cj.dims.area());
                        total += aij * ox * oy;
                        if let Some(g) = scratch.as_deref_mut() {
                            let gx = aij * dox * tx.signum() * oy;
                            let gy = aij * ox * doy * ty.signum();
                            g[i] += gx;
                            g[j] -= gx;
                            g[n + i] += gy;
                            g[n + j] -= gy;
                        }
                    }
                }
            }
        }
        total
    };
    let cutoff = ncs_par::Cutoff::min_work(GRAD_MIN_ITEMS);
    match grad {
        Some(g) => ncs_par::par_map_reduce(
            n,
            DENSITY_GRAIN,
            cutoff,
            |r| {
                let mut scratch = vec![0.0; 2 * n];
                let t = chunk(r, Some(&mut scratch));
                (t, scratch)
            },
            0.0,
            |acc, (t, scratch)| {
                for (slot, s) in g.iter_mut().zip(&scratch) {
                    *slot += s;
                }
                acc + t
            },
        ),
        None => ncs_par::par_map_reduce(
            n,
            DENSITY_GRAIN,
            cutoff,
            |r| chunk(r, None),
            0.0,
            |a, t| a + t,
        ),
    }
}

/// Exact total pairwise rectangle-overlap area.
pub(crate) fn overlap_area(netlist: &Netlist, xs: &[f64], ys: &[f64]) -> f64 {
    let cells = &netlist.cells;
    let max_width = cells.iter().map(|c| c.dims.width).fold(0.0_f64, f64::max);
    // Sweep on x-sorted order to skip far-apart pairs.
    let mut order: Vec<usize> = (0..cells.len()).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut total = 0.0;
    for (oi, &i) in order.iter().enumerate() {
        let ci = &cells[i];
        for &j in &order[oi + 1..] {
            let cj = &cells[j];
            if xs[j] - xs[i] >= (ci.dims.width + max_width) / 2.0 {
                // Sorted by x: even the widest later cell cannot overlap.
                break;
            }
            let dx = (ci.dims.width + cj.dims.width) / 2.0 - (xs[j] - xs[i]);
            if dx <= 0.0 {
                continue;
            }
            let ox = dx.min(ci.dims.width.min(cj.dims.width));
            let dy = (ci.dims.height + cj.dims.height) / 2.0 - (ys[i] - ys[j]).abs();
            if dy > 0.0 {
                let oy = dy.min(ci.dims.height.min(cj.dims.height));
                total += ox * oy;
            }
        }
    }
    total
}

/// Mixed-size legalization: crossbar macros are pushed apart and
/// compacted; neurons and synapses are then slotted into the whitespace
/// between them with an occupancy grid. Netlists with only one class of
/// cell fall back to whole-netlist push-apart plus compaction.
fn legalize_mixed_size(netlist: &Netlist, xs: &mut [f64], ys: &mut [f64], passes: usize) {
    let mut macros = Vec::new();
    let mut smalls = Vec::new();
    for c in &netlist.cells {
        if matches!(c.kind, ncs_tech::CellKind::Crossbar(_)) {
            macros.push(c.id);
        } else {
            smalls.push(c.id);
        }
    }
    let widths: Vec<f64> = netlist.cells.iter().map(|c| c.dims.width).collect();
    let heights: Vec<f64> = netlist.cells.iter().map(|c| c.dims.height).collect();
    if macros.is_empty() || smalls.is_empty() {
        let all: Vec<usize> = (0..netlist.cells.len()).collect();
        legalize_subset(&all, &widths, &heights, xs, ys, passes);
        compact_subset(&all, &widths, &heights, xs, ys);
        return;
    }
    // Remember where the global placement wanted the small cells, relative
    // to the pre-legalization macro bounding box.
    let bbox_of = |ids: &[usize], xs: &[f64], ys: &[f64]| -> (f64, f64, f64, f64) {
        let mut bb = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for &i in ids {
            bb.0 = bb.0.min(xs[i] - widths[i] / 2.0);
            bb.1 = bb.1.min(ys[i] - heights[i] / 2.0);
            bb.2 = bb.2.max(xs[i] + widths[i] / 2.0);
            bb.3 = bb.3.max(ys[i] + heights[i] / 2.0);
        }
        bb
    };
    let old_bb = bbox_of(&macros, xs, ys);
    legalize_subset(&macros, &widths, &heights, xs, ys, passes);
    compact_subset(&macros, &widths, &heights, xs, ys);
    let new_bb = bbox_of(&macros, xs, ys);
    // Affine-map small-cell targets from the old frame into the new one.
    let sx = (new_bb.2 - new_bb.0) / (old_bb.2 - old_bb.0).max(1e-9);
    let sy = (new_bb.3 - new_bb.1) / (old_bb.3 - old_bb.1).max(1e-9);
    let targets: Vec<(f64, f64)> = smalls
        .iter()
        .map(|&i| {
            (
                new_bb.0 + (xs[i] - old_bb.0) * sx,
                new_bb.1 + (ys[i] - old_bb.1) * sy,
            )
        })
        .collect();
    gap_fill(
        &macros, &smalls, &targets, &widths, &heights, xs, ys, new_bb,
    );
}

/// Places small cells at the free spot nearest their target using an
/// occupancy grid over the macro region (with a margin so overflow can
/// spill to the periphery instead of failing).
#[allow(clippy::too_many_arguments)]
fn gap_fill(
    macros: &[usize],
    smalls: &[usize],
    targets: &[(f64, f64)],
    widths: &[f64],
    heights: &[f64],
    xs: &mut [f64],
    ys: &mut [f64],
    macro_bb: (f64, f64, f64, f64),
) {
    let res = smalls
        .iter()
        .map(|&i| widths[i].min(heights[i]))
        .fold(f64::INFINITY, f64::min)
        .clamp(0.25, 4.0);
    let small_area: f64 = smalls.iter().map(|&i| widths[i] * heights[i]).sum();
    let margin = (small_area.sqrt() * 1.5).max(8.0);
    let origin = (macro_bb.0 - margin, macro_bb.1 - margin);
    let cols = (((macro_bb.2 - macro_bb.0) + 2.0 * margin) / res).ceil() as usize + 1;
    let rows = (((macro_bb.3 - macro_bb.1) + 2.0 * margin) / res).ceil() as usize + 1;
    let mut occupied = vec![false; cols * rows];
    let mark = |occupied: &mut Vec<bool>, x0: f64, y0: f64, x1: f64, y1: f64| {
        let c0 = (((x0 - origin.0) / res).floor().max(0.0)) as usize;
        let r0 = (((y0 - origin.1) / res).floor().max(0.0)) as usize;
        let c1 = ((((x1 - origin.0) / res).ceil()).max(0.0) as usize).min(cols);
        let r1 = ((((y1 - origin.1) / res).ceil()).max(0.0) as usize).min(rows);
        for r in r0..r1 {
            for c in c0..c1 {
                occupied[r * cols + c] = true;
            }
        }
    };
    for &m in macros {
        mark(
            &mut occupied,
            xs[m] - widths[m] / 2.0,
            ys[m] - heights[m] / 2.0,
            xs[m] + widths[m] / 2.0,
            ys[m] + heights[m] / 2.0,
        );
    }
    // Largest small cells claim space first.
    let mut order: Vec<usize> = (0..smalls.len()).collect();
    order.sort_by(|&a, &b| {
        let aa = widths[smalls[a]] * heights[smalls[a]];
        let ab = widths[smalls[b]] * heights[smalls[b]];
        ab.total_cmp(&aa).then(a.cmp(&b))
    });
    for &si in &order {
        let id = smalls[si];
        let (tx, ty) = targets[si];
        let w_cells = ((widths[id] / res).ceil() as usize).max(1);
        let h_cells = ((heights[id] / res).ceil() as usize).max(1);
        // Spiral (ring) search for the nearest free block.
        let t_c = (((tx - origin.0) / res).round() as isize).clamp(0, cols as isize - 1);
        let t_r = (((ty - origin.1) / res).round() as isize).clamp(0, rows as isize - 1);
        let max_ring = (cols.max(rows)) as isize;
        let mut placed_at = None;
        'rings: for ring in 0..max_ring {
            let lo_c = t_c - ring;
            let hi_c = t_c + ring;
            let lo_r = t_r - ring;
            let hi_r = t_r + ring;
            for r in lo_r..=hi_r {
                for c in lo_c..=hi_c {
                    // Ring boundary only.
                    if ring > 0 && r != lo_r && r != hi_r && c != lo_c && c != hi_c {
                        continue;
                    }
                    if r < 0 || c < 0 {
                        continue;
                    }
                    let (c, r) = (c as usize, r as usize);
                    if c + w_cells > cols || r + h_cells > rows {
                        continue;
                    }
                    let free = (r..r + h_cells)
                        .all(|rr| (c..c + w_cells).all(|cc| !occupied[rr * cols + cc]));
                    if free {
                        placed_at = Some((c, r));
                        break 'rings;
                    }
                }
            }
        }
        let (c, r) = placed_at.unwrap_or((0, 0));
        let x0 = origin.0 + c as f64 * res;
        let y0 = origin.1 + r as f64 * res;
        xs[id] = x0 + w_cells as f64 * res / 2.0;
        ys[id] = y0 + h_cells as f64 * res / 2.0;
        mark(
            &mut occupied,
            x0,
            y0,
            x0 + w_cells as f64 * res,
            y0 + h_cells as f64 * res,
        );
    }
}

/// Greedy pairwise push-apart legalizer over a subset of cells:
/// repeatedly resolves overlapping pairs along the axis of least
/// penetration until no overlap remains or the pass budget is exhausted.
fn legalize_subset(
    ids: &[usize],
    widths: &[f64],
    heights: &[f64],
    xs: &mut [f64],
    ys: &mut [f64],
    passes: usize,
) {
    let max_width = ids.iter().map(|&i| widths[i]).fold(0.0_f64, f64::max);
    for _ in 0..passes {
        let mut moved = false;
        let mut order: Vec<usize> = ids.to_vec();
        order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
        for (oi, &i) in order.iter().enumerate() {
            for &j in &order[oi + 1..] {
                let dx = xs[j] - xs[i];
                if dx >= (widths[i] + max_width) / 2.0 {
                    break;
                }
                let need_x = (widths[i] + widths[j]) / 2.0;
                if dx >= need_x {
                    continue;
                }
                let need_y = (heights[i] + heights[j]) / 2.0;
                let dy = ys[j] - ys[i];
                if dy.abs() >= need_y {
                    continue;
                }
                let pen_x = need_x - dx;
                let pen_y = need_y - dy.abs();
                // Push along the cheaper axis, split between both cells.
                // A hair of slack avoids zero-distance ties cycling.
                if pen_x <= pen_y {
                    let shift = pen_x / 2.0 + 1e-6;
                    xs[i] -= shift;
                    xs[j] += shift;
                } else {
                    let dir = if dy >= 0.0 { 1.0 } else { -1.0 };
                    let shift = pen_y / 2.0 + 1e-6;
                    ys[i] -= dir * shift;
                    ys[j] += dir * shift;
                }
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

/// Compacts a subset of cells toward the origin, trying both axis orders
/// and keeping the smaller bounding box.
fn compact_subset(ids: &[usize], widths: &[f64], heights: &[f64], xs: &mut [f64], ys: &mut [f64]) {
    let bbox = |xs: &[f64], ys: &[f64]| -> f64 {
        let mut w = 0.0_f64;
        let mut h = 0.0_f64;
        for &i in ids {
            w = w.max(xs[i] + widths[i] / 2.0);
            h = h.max(ys[i] + heights[i] / 2.0);
        }
        w * h
    };
    let mut ax = xs.to_vec();
    let mut ay = ys.to_vec();
    for _ in 0..2 {
        compact_axis(ids, &mut ax, &ay, widths, heights);
        compact_axis(ids, &mut ay, &ax, heights, widths);
    }
    let mut bx = xs.to_vec();
    let mut by = ys.to_vec();
    for _ in 0..2 {
        compact_axis(ids, &mut by, &bx, heights, widths);
        compact_axis(ids, &mut bx, &by, widths, heights);
    }
    if bbox(&ax, &ay) <= bbox(&bx, &by) {
        xs.copy_from_slice(&ax);
        ys.copy_from_slice(&ay);
    } else {
        xs.copy_from_slice(&bx);
        ys.copy_from_slice(&by);
    }
}

/// Slides every subset cell toward zero along the primary axis as far as
/// the already-compacted subset cells allow (classic left-edge
/// compaction). The result is overlap-free within the subset along the
/// primary axis regardless of input.
fn compact_axis(
    ids: &[usize],
    primary: &mut [f64],
    secondary: &[f64],
    extent_p: &[f64],
    extent_s: &[f64],
) {
    let mut order: Vec<usize> = ids.to_vec();
    order.sort_by(|&a, &b| {
        (primary[a] - extent_p[a] / 2.0).total_cmp(&(primary[b] - extent_p[b] / 2.0))
    });
    let mut placed: Vec<usize> = Vec::with_capacity(order.len());
    for &i in &order {
        let mut edge = 0.0_f64;
        for &j in &placed {
            // Overlap along the secondary axis blocks sliding past j.
            let gap = (extent_s[i] + extent_s[j]) / 2.0 - (secondary[i] - secondary[j]).abs();
            if gap > 1e-9 {
                edge = edge.max(primary[j] + extent_p[j] / 2.0);
            }
        }
        primary[i] = edge + extent_p[i] / 2.0;
        placed.push(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;
    use ncs_cluster::{CrossbarAssignment, HybridMapping};
    use ncs_tech::TechnologyModel;

    fn small_netlist() -> Netlist {
        let xbar = CrossbarAssignment::new(vec![0, 1, 2], vec![0, 1, 2], 16, vec![(0, 1), (1, 2)]);
        let mapping = HybridMapping::new(5, vec![xbar], vec![(3, 4)]);
        Netlist::from_mapping(&mapping, &TechnologyModel::nm45())
    }

    #[test]
    fn placement_removes_overlap() {
        let nl = small_netlist();
        let p = place(&nl, &PlacerOptions::default()).unwrap();
        assert!(
            p.final_overlap_um2 < 0.05 * nl.total_cell_area(),
            "overlap {} vs area {}",
            p.final_overlap_um2,
            nl.total_cell_area()
        );
        assert!(p.area_um2(&nl) >= nl.total_cell_area() * 0.8);
    }

    #[test]
    fn placement_is_in_positive_quadrant() {
        let nl = small_netlist();
        let p = place(&nl, &PlacerOptions::default()).unwrap();
        let (x0, y0, _, _) = p.bounding_box(&nl);
        assert!(x0 > -1e-9 && y0 > -1e-9);
    }

    #[test]
    fn connected_cells_end_up_closer_than_random_grid() {
        let nl = small_netlist();
        let p = place(&nl, &PlacerOptions::default()).unwrap();
        let opt = p.weighted_hpwl(&nl);
        // The initial grid is a valid reference placement.
        let (gx, gy) = initial_grid(&nl, 1.2);
        let grid = Placement {
            x: gx,
            y: gy,
            outer_iterations: 0,
            final_overlap_um2: 0.0,
        };
        assert!(
            opt <= grid.weighted_hpwl(&nl) * 1.05,
            "optimized {} vs grid {}",
            opt,
            grid.weighted_hpwl(&nl)
        );
    }

    #[test]
    fn empty_netlist_rejected() {
        let nl = Netlist {
            cells: vec![],
            wires: vec![],
        };
        assert!(matches!(
            place(&nl, &PlacerOptions::default()),
            Err(PhysError::EmptyNetlist)
        ));
    }

    #[test]
    fn invalid_options_rejected() {
        let nl = small_netlist();
        let bad = PlacerOptions {
            gamma: 0.0,
            ..PlacerOptions::default()
        };
        assert!(place(&nl, &bad).is_err());
        let bad = PlacerOptions {
            omega: 0.5,
            ..PlacerOptions::default()
        };
        assert!(place(&nl, &bad).is_err());
        let bad = PlacerOptions {
            lambda_multiplier: 1.0,
            ..PlacerOptions::default()
        };
        assert!(place(&nl, &bad).is_err());
    }

    #[test]
    fn degenerate_wire_rejected() {
        let mut nl = small_netlist();
        nl.wires.push(crate::Wire {
            id: nl.wires.len(),
            pins: vec![0],
            weight: 1.0,
        });
        assert!(matches!(
            place(&nl, &PlacerOptions::default()),
            Err(PhysError::DegenerateWire { .. })
        ));
    }

    #[test]
    fn wa_span_approximates_true_span() {
        let coords = vec![0.0, 10.0, 4.0];
        let pins = vec![0, 1, 2];
        let (span, _) = wa_span(&pins, &coords, 0.5);
        assert!((span - 10.0).abs() < 0.5, "span {span}");
    }

    #[test]
    fn wa_gradient_matches_finite_difference() {
        let nl = small_netlist();
        let n = nl.cells.len();
        let mut p: Vec<f64> = (0..2 * n).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let mut grad = vec![0.0; 2 * n];
        let f0 = wa_wirelength(&nl, &p, 2.0, Some(&mut grad));
        let h = 1e-6;
        for idx in 0..2 * n {
            p[idx] += h;
            let f1 = wa_wirelength(&nl, &p, 2.0, None);
            p[idx] -= h;
            let fd = (f1 - f0) / h;
            assert!(
                (fd - grad[idx]).abs() < 1e-4 * (1.0 + fd.abs()),
                "idx {idx}: analytic {} vs fd {fd}",
                grad[idx]
            );
        }
    }

    #[test]
    fn density_gradient_matches_finite_difference() {
        let nl = small_netlist();
        let n = nl.cells.len();
        // Clump everything together so overlaps are active.
        let mut p: Vec<f64> = (0..2 * n).map(|i| (i as f64 * 0.37).cos() * 3.0).collect();
        let mut grad = vec![0.0; 2 * n];
        let f0 = density(&nl, &p, 1.2, Some(&mut grad));
        assert!(f0 > 0.0, "expected active overlaps");
        let h = 1e-6;
        for idx in 0..2 * n {
            p[idx] += h;
            let f1 = density(&nl, &p, 1.2, None);
            p[idx] -= h;
            let fd = (f1 - f0) / h;
            assert!(
                (fd - grad[idx]).abs() < 1e-3 * (1.0 + fd.abs()),
                "idx {idx}: analytic {} vs fd {fd}",
                grad[idx]
            );
        }
    }

    #[test]
    fn bell_is_continuous_and_compact() {
        let w = 4.0;
        let (v0, _) = bell(0.0, w);
        assert_eq!(v0, 1.0);
        let (vh_lo, _) = bell(w / 2.0 - 1e-9, w);
        let (vh_hi, _) = bell(w / 2.0 + 1e-9, w);
        assert!((vh_lo - vh_hi).abs() < 1e-6);
        let (vw, dw) = bell(w, w);
        assert_eq!(vw, 0.0);
        assert_eq!(dw, 0.0);
        let (beyond, _) = bell(w * 1.5, w);
        assert_eq!(beyond, 0.0);
    }

    #[test]
    fn overlap_area_of_known_configuration() {
        let nl = small_netlist();
        // Stack the first two cells (both neurons, 2x2) exactly on top of
        // each other; spread the rest far away.
        let n = nl.cells.len();
        let mut xs = vec![0.0; n];
        let ys = vec![0.0; n];
        for (i, x) in xs.iter_mut().enumerate().skip(2) {
            *x = 1000.0 + 100.0 * i as f64;
        }
        let area = overlap_area(&nl, &xs, &ys);
        assert!((area - 4.0).abs() < 1e-9, "area {area}");
    }

    #[test]
    fn legalizer_separates_stacked_cells() {
        let nl = small_netlist();
        let n = nl.cells.len();
        let mut xs = vec![0.0; n];
        let mut ys = vec![0.0; n];
        legalize_mixed_size(&nl, &mut xs, &mut ys, 500);
        assert!(overlap_area(&nl, &xs, &ys) < 1e-6);
    }

    #[test]
    fn gap_fill_places_small_cells_overlap_free() {
        // Two crossbar macros plus small cells; legalization must finish
        // with zero overlap and keep the die close to the macro area.
        let xbar_a = CrossbarAssignment::new(vec![0], vec![0], 16, vec![(0, 0)]);
        let xbar_b = CrossbarAssignment::new(vec![1], vec![1], 16, vec![(1, 1)]);
        let mapping = HybridMapping::new(4, vec![xbar_a, xbar_b], vec![(2, 3)]);
        let nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        let p = place(&nl, &PlacerOptions::fast()).unwrap();
        assert!(
            p.final_overlap_um2 < 1e-6,
            "overlap {}",
            p.final_overlap_um2
        );
    }

    #[test]
    fn pure_small_cell_netlist_still_legalizes() {
        // No crossbars at all: only synapses and neurons.
        let mapping = HybridMapping::new(6, vec![], vec![(0, 1), (2, 3), (4, 5)]);
        let nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        let p = place(&nl, &PlacerOptions::fast()).unwrap();
        assert!(p.final_overlap_um2 < 1e-6);
    }

    #[test]
    fn degenerate_lambda_start_is_skipped_not_faked() {
        // Small cells on the initial grid sit outside each other's bell
        // support: Σ|∂D| = 0 and no λ can be balanced. The placer used
        // to silently pin λ = 1; it must now skip the density term as a
        // structured condition (observable via the trace counter) and
        // re-engage it once the wirelength pull creates real overlap.
        let mapping = HybridMapping::new(6, vec![], vec![(0, 1), (2, 3), (4, 5)]);
        let nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        let (gx, gy) = initial_grid(&nl, 1.2);
        let n = nl.cells.len();
        let p0: Vec<f64> = gx.iter().chain(gy.iter()).copied().collect();
        let mut grad_d = vec![0.0; 2 * n];
        density(&nl, &p0, 1.2, Some(&mut grad_d[..]));
        assert!(
            grad_d.iter().all(|&g| g == 0.0),
            "precondition: the spread grid must have no density gradient"
        );
        assert_eq!(initial_lambda(&[1.0, 2.0], &grad_d), None);
        let ((), events) = ncs_trace::capture(|| {
            let placement = place(&nl, &PlacerOptions::fast()).unwrap();
            assert!(placement.final_overlap_um2 < 1e-6);
        });
        let report = ncs_trace::TraceReport::from_events(&events);
        let skips = report
            .counters
            .iter()
            .find(|c| c.name == "place.lambda_density_skips")
            .map_or(0, |c| c.total);
        assert!(skips > 0, "the degenerate start must be surfaced");
        // A non-degenerate start must not fire the counter.
        let ((), events) = ncs_trace::capture(|| {
            place(&small_netlist(), &PlacerOptions::fast()).unwrap();
        });
        let report = ncs_trace::TraceReport::from_events(&events);
        assert!(
            !report
                .counters
                .iter()
                .any(|c| c.name == "place.lambda_density_skips"),
            "crossbar netlists have density pressure at the start"
        );
    }

    #[test]
    fn detailed_swap_never_worsens_hpwl_and_preserves_legality() {
        let nl = small_netlist();
        let base = place(&nl, &PlacerOptions::fast()).unwrap();
        let refined = place(
            &nl,
            &PlacerOptions {
                detailed_swap_passes: 4,
                ..PlacerOptions::fast()
            },
        )
        .unwrap();
        assert!(
            refined.weighted_hpwl(&nl) <= base.weighted_hpwl(&nl) + 1e-9,
            "refined {} vs base {}",
            refined.weighted_hpwl(&nl),
            base.weighted_hpwl(&nl)
        );
        // Swapping identical footprints cannot create overlap.
        assert!(refined.final_overlap_um2 <= base.final_overlap_um2 + 1e-9);
        // The occupied positions are a permutation within each footprint
        // class, so the die area is unchanged.
        assert!((refined.area_um2(&nl) - base.area_um2(&nl)).abs() < 1e-6);
    }

    #[test]
    fn position_lookup_checks_range() {
        let nl = small_netlist();
        let p = place(&nl, &PlacerOptions::fast()).unwrap();
        assert!(p.position(0).is_ok());
        assert!(matches!(
            p.position(999),
            Err(crate::PhysError::UnknownCell { id: 999 })
        ));
    }

    #[test]
    fn single_cell_netlist_places_at_origin_quadrant() {
        let mapping = HybridMapping::new(1, vec![], vec![]);
        let nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        let p = place(&nl, &PlacerOptions::fast()).unwrap();
        let (x0, y0, x1, y1) = p.bounding_box(&nl);
        assert!(x0 >= -1e-9 && y0 >= -1e-9);
        assert!((x1 - x0) > 0.0 && (y1 - y0) > 0.0);
    }

    /// A pseudo-random mapping with several same-size crossbars (so the
    /// swap groups are non-trivial) and discrete synapses.
    fn swap_heavy_netlist(seed: u64, shared: bool) -> Netlist {
        let mut state = seed | 1;
        let mut next = move |m: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as usize) % m
        };
        let neurons = 40;
        let mut xbars = Vec::new();
        for b in 0..4 {
            let members: Vec<usize> = (0..6).map(|i| (b * 6 + i) % neurons).collect();
            let conns: Vec<(usize, usize)> = (0..8)
                .map(|_| (members[next(6)], members[next(6)]))
                .collect();
            xbars.push(CrossbarAssignment::new(members.clone(), members, 16, conns));
        }
        let outliers: Vec<(usize, usize)> = (0..30)
            .map(|_| (next(neurons), next(neurons)))
            .filter(|&(f, t)| f != t)
            .collect();
        let mapping = HybridMapping::new(neurons, xbars, outliers);
        if shared {
            Netlist::from_mapping_shared(&mapping, &TechnologyModel::nm45())
        } else {
            Netlist::from_mapping(&mapping, &TechnologyModel::nm45())
        }
    }

    #[test]
    fn incremental_swap_matches_reference_bit_for_bit() {
        // The incremental evaluator must reproduce the reference's
        // accept/reject sequence exactly, so the refined placements agree
        // to the last bit — on 2-pin netlists, genuine multi-pin shared
        // nets, and across several seeds.
        for seed in [3u64, 11, 42] {
            for shared in [false, true] {
                let nl = swap_heavy_netlist(seed, shared);
                let base = place(&nl, &PlacerOptions::fast()).unwrap();
                let mut fast = base.clone();
                detailed_swap(&nl, &mut fast, 6);
                let mut slow = base.clone();
                detailed_swap_reference(&nl, &mut slow, 6);
                let bits = |v: &[f64]| v.iter().map(|c| c.to_bits()).collect::<Vec<u64>>();
                assert_eq!(
                    bits(&fast.x),
                    bits(&slow.x),
                    "x diverged (seed {seed}, shared {shared})"
                );
                assert_eq!(
                    bits(&fast.y),
                    bits(&slow.y),
                    "y diverged (seed {seed}, shared {shared})"
                );
                assert!(
                    fast.weighted_hpwl(&nl) <= base.weighted_hpwl(&nl) + 1e-9,
                    "refinement must not worsen HPWL"
                );
            }
        }
    }

    #[test]
    fn incremental_swap_handles_duplicate_pins() {
        // Hand-built wire with a duplicated pin: the incremental path
        // must defer to the exact rescan and still match the reference.
        let mut nl = swap_heavy_netlist(7, false);
        let id = nl.wires.len();
        nl.wires.push(crate::Wire {
            id,
            pins: vec![0, 1, 1, 2],
            weight: 2.0,
        });
        let base = place(&nl, &PlacerOptions::fast()).unwrap();
        let mut fast = base.clone();
        detailed_swap(&nl, &mut fast, 4);
        let mut slow = base;
        detailed_swap_reference(&nl, &mut slow, 4);
        assert_eq!(fast, slow, "duplicate-pin wire broke the equivalence");
    }

    #[test]
    fn incremental_swap_uses_both_paths() {
        // The speedup claim rests on the O(1) path handling every
        // duplicate-free wire while the exact fallback covers the rest;
        // check both paths fire where they should.
        let counters = |nl: &Netlist| {
            let base = place(nl, &PlacerOptions::fast()).unwrap();
            let (_, events) = ncs_trace::capture(|| {
                let mut p = base.clone();
                detailed_swap(nl, &mut p, 6);
            });
            let report = ncs_trace::TraceReport::from_events(&events);
            let total = |name: &str| {
                report
                    .counters
                    .iter()
                    .find(|c| c.name == name)
                    .map_or(0, |c| c.total)
            };
            (
                total("place.incremental_hits"),
                total("place.exact_fallbacks"),
            )
        };
        let clean = swap_heavy_netlist(5, true);
        let (hits, fallbacks) = counters(&clean);
        assert!(hits > 0, "incremental path never used");
        assert_eq!(
            fallbacks, 0,
            "duplicate-free wires must never need the rescan fallback"
        );
        let mut dup = swap_heavy_netlist(5, false);
        let id = dup.wires.len();
        dup.wires.push(crate::Wire {
            id,
            pins: vec![0, 0, 1],
            weight: 1.0,
        });
        let (hits, fallbacks) = counters(&dup);
        assert!(hits > 0);
        assert!(fallbacks > 0, "duplicate-pin wires must take the fallback");
    }

    #[test]
    fn wire_box_moved_extent_agrees_with_rescan() {
        // Exhaustive micro-check of the cache math: every combination of
        // attainment multiplicity (unique extremum, tied extremum, interior
        // pin) and move direction must match a full rescan bit-for-bit —
        // the runner-up cache makes the O(1) path complete.
        let coords = [1.0, 2.0, 2.0, 5.0];
        let pins: Vec<usize> = (0..coords.len()).collect();
        for u_idx in 0..coords.len() {
            for v in [0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 6.0] {
                let xs = coords.to_vec();
                let b = AxisBox::build(&pins, &xs);
                let extent = b.moved_extent(coords[u_idx], v);
                let mut moved = xs.clone();
                moved[u_idx] = v;
                let lo = moved.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = moved.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(
                    extent.to_bits(),
                    (hi - lo).to_bits(),
                    "u={} v={v}",
                    coords[u_idx]
                );
            }
        }
    }
}
