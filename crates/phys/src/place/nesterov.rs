//! Nesterov-based global placement engine (`PlaceAlgorithm::Nesterov`).
//!
//! Replaces the reference λ-doubling CG outer loop with the modern
//! analytical-placement stack: one flat Nesterov first-order loop over
//! `WL(p) + λ·D(p)` where `D` is the grid-binned density field of
//! [`super::density`], the step length is an inverse-Lipschitz estimate
//! `|Δv| / |Δg|` with ePlace-style backtracking, and a per-cell
//! Jacobi preconditioner (incident wire weight + λ-scaled cell area per
//! bin) evens out the stiffness between heavy macros and single-wire
//! synapses. λ ramps geometrically each iteration instead of doubling
//! per outer solve, so the density pressure and the optimizer state
//! evolve together.
//!
//! Determinism: the gradient evaluations delegate to
//! [`super::wa_wirelength`] and [`DensityGrid::evaluate`] (both
//! bit-identical at any `NCS_THREADS`); everything else in the loop is
//! serial index-order vector arithmetic. The engine is therefore
//! bit-identical across thread counts — the determinism suite pins it.

use crate::{Netlist, Placement};

use super::density::DensityGrid;
use super::legalize;
use super::{initial_grid, overlap_area, shift_to_positive_quadrant, wa_wirelength, PlacerOptions};

/// Options for the Nesterov global-placement engine
/// ([`super::PlaceAlgorithm::Nesterov`]).
#[derive(Debug, Clone, PartialEq)]
pub struct NesterovOptions {
    /// Maximum Nesterov iterations (the engine has a single flat loop,
    /// unlike the reference's outer×CG nesting).
    pub max_iterations: usize,
    /// Stop once the grid-density overflow fraction (overflowing area
    /// over total cell area) falls to this level — after density
    /// pressure has actually engaged.
    pub target_overflow: f64,
    /// Geometric growth of the density weight λ per iteration. Must be
    /// > 1; ePlace-style schedules sit near 1.05.
    pub lambda_growth: f64,
    /// Density bins per axis; 0 picks `⌈√n⌉` clamped to `[4, 256]`.
    pub bins: usize,
    /// Target utilization per density bin, in (0, 1].
    pub target_density: f64,
    /// Bound on step-shrinking backtracks per iteration.
    pub max_backtracks: usize,
}

impl Default for NesterovOptions {
    fn default() -> Self {
        NesterovOptions {
            max_iterations: 150,
            target_overflow: 0.12,
            lambda_growth: 1.06,
            bins: 0,
            target_density: 0.9,
            max_backtracks: 4,
        }
    }
}

/// Shared state of one objective/gradient evaluation.
struct Eval {
    /// Preconditioned composite gradient, layout `[∂x..., ∂y...]`.
    grad: Vec<f64>,
    /// Σ|∂WL| (unpreconditioned) — for the λ estimate.
    sum_wl: f64,
    /// Σ|∂D| (unpreconditioned).
    sum_d: f64,
    /// Density overflow fraction at the evaluated point.
    overflow: f64,
}

/// Evaluates the preconditioned gradient of `WL + λ·D` at `p`.
fn evaluate(
    netlist: &Netlist,
    grid: &mut DensityGrid,
    p: &[f64],
    gamma: f64,
    lambda: f64,
    precond: &[f64],
) -> Eval {
    let n = netlist.cells.len();
    let mut grad_wl = vec![0.0; 2 * n];
    let mut grad_d = vec![0.0; 2 * n];
    wa_wirelength(netlist, p, gamma, Some(&mut grad_wl[..]));
    let density = grid.evaluate(p, Some(&mut grad_d[..]));
    let sum_wl: f64 = grad_wl.iter().map(|g| g.abs()).sum();
    let sum_d: f64 = grad_d.iter().map(|g| g.abs()).sum();
    let mut grad = vec![0.0; 2 * n];
    for i in 0..n {
        let h = precond[i];
        grad[i] = (grad_wl[i] + lambda * grad_d[i]) / h;
        grad[n + i] = (grad_wl[n + i] + lambda * grad_d[n + i]) / h;
    }
    Eval {
        grad,
        sum_wl,
        sum_d,
        overflow: density.overflow,
    }
}

/// ℓ₂ distance between two coordinate vectors.
fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Runs the Nesterov engine end to end: grid init, the momentum loop,
/// then the deterministic macro-Tetris + Abacus-row legalizer of
/// [`super::legalize`]. Option validation happens in [`super::place`].
pub(super) fn place_nesterov(netlist: &Netlist, options: &PlacerOptions) -> Placement {
    let n = netlist.cells.len();
    let nopt = &options.nesterov;
    let (xs0, ys0) = initial_grid(netlist, options.omega);
    let mut grid = DensityGrid::new(
        netlist,
        &xs0,
        &ys0,
        options.omega,
        nopt.target_density,
        nopt.bins,
    );

    // Jacobi preconditioner: the wirelength Hessian's diagonal scales
    // with the total incident wire weight; the density side with the
    // cell's virtual area per bin, amplified by λ. Clamped at 1 so
    // isolated cells don't take unbounded steps.
    let mut degree = vec![0.0; n];
    for w in &netlist.wires {
        for &p in &w.pins {
            degree[p] += w.weight;
        }
    }
    let bin_area = grid.bin_w * grid.bin_h;
    let area_scale: Vec<f64> = netlist
        .cells
        .iter()
        .map(|c| (options.omega * c.dims.width) * (options.omega * c.dims.height) / bin_area)
        .collect();
    let precond = |lambda: f64| -> Vec<f64> {
        degree
            .iter()
            .zip(&area_scale)
            .map(|(d, a)| (d + lambda * a).max(1.0))
            .collect()
    };

    // Main (u) and lookahead (v) sequences start at the spread grid.
    let mut u: Vec<f64> = xs0.iter().chain(ys0.iter()).copied().collect();
    let mut v = u.clone();
    let mut a_k = 1.0_f64;
    let mut lambda = 0.0_f64;
    let mut h = precond(lambda);
    let mut eval = evaluate(netlist, &mut grid, &v, options.gamma, lambda, &h);
    // λ0 = Σ|∂WL| / Σ|∂D| once density pressure exists; until then the
    // loop runs pure wirelength (λ stays 0 and is re-estimated each
    // iteration — the WL pull itself creates the overflow that turns
    // density on).
    if eval.sum_d > 0.0 && eval.sum_wl > 0.0 {
        lambda = eval.sum_wl / eval.sum_d;
        h = precond(lambda);
        eval = evaluate(netlist, &mut grid, &v, options.gamma, lambda, &h);
    }

    // Initial step: a conservative fraction of a bin per unit gradient;
    // the Lipschitz ratio self-corrects it from iteration 2 on.
    let g_max = eval.grad.iter().fold(0.0_f64, |m, g| m.max(g.abs()));
    let mut alpha = if g_max > 0.0 {
        0.1 * grid.bin_w / g_max
    } else {
        1.0
    };
    let mut v_prev = v.clone();
    let mut g_prev = eval.grad.clone();
    let mut pressure_engaged = eval.overflow > nopt.target_overflow;
    let mut iters = 0_usize;
    let mut backtracks = 0_u64;

    // The returned iterate is the least-overflow snapshot *of the final
    // descent*, not the last iterate: the trajectory clumps first (the
    // WL pull raises overflow over the spread start), then density
    // spreads it back out (overflow descends with the wirelength still
    // good), and finally λ — growing geometrically without bound —
    // scrambles the wirelength for no overflow gain once the bin
    // granularity floor is hit. A new overflow *peak* resets the
    // snapshot, so the clumping phase cannot freeze the spread start in
    // as "best"; afterwards every new overflow minimum is kept, and the
    // loop stops once the minimum stalls.
    let mut best_u = u.clone();
    let mut best_overflow = eval.overflow;
    let mut peak_overflow = eval.overflow;

    for k in 0..nopt.max_iterations {
        iters = k + 1;
        // Inverse-Lipschitz step estimate from the last two lookahead
        // gradients; the first iteration keeps the conservative seed.
        if k > 0 {
            let dv = dist(&v, &v_prev);
            let dg = dist(&eval.grad, &g_prev);
            if dv > 0.0 && dg > 0.0 {
                let est = dv / dg;
                if est.is_finite() && est > 0.0 {
                    alpha = est;
                }
            }
        }
        let a_next = (1.0 + (4.0 * a_k * a_k + 1.0).sqrt()) / 2.0;
        let coef = (a_k - 1.0) / a_next;
        // Backtracking (ePlace Algorithm 2): predict, re-measure the
        // local Lipschitz constant at the predicted lookahead, shrink α
        // until the prediction is consistent.
        let mut u_new = vec![0.0; 2 * n];
        let mut v_new = vec![0.0; 2 * n];
        let mut eval_new;
        let mut bt = 0_usize;
        loop {
            for i in 0..2 * n {
                u_new[i] = v[i] - alpha * eval.grad[i];
            }
            clamp_to_die(&grid, n, &mut u_new);
            for i in 0..2 * n {
                v_new[i] = u_new[i] + coef * (u_new[i] - u[i]);
            }
            clamp_to_die(&grid, n, &mut v_new);
            eval_new = evaluate(netlist, &mut grid, &v_new, options.gamma, lambda, &h);
            let dv = dist(&v_new, &v);
            let dg = dist(&eval_new.grad, &eval.grad);
            // ncs-lint: allow(float-eq) — exact-zero distances mean a stationary point; any ratio would be meaningless
            if dv == 0.0 || dg == 0.0 {
                break;
            }
            let alpha_hat = dv / dg;
            if !alpha_hat.is_finite() || alpha_hat >= 0.95 * alpha || bt >= nopt.max_backtracks {
                break;
            }
            alpha = alpha_hat;
            bt += 1;
        }
        backtracks += bt as u64;
        u.copy_from_slice(&u_new);
        v_prev.copy_from_slice(&v);
        v.copy_from_slice(&v_new);
        g_prev.copy_from_slice(&eval.grad);
        a_k = a_next;
        eval = eval_new;

        // ncs-lint: allow(float-eq) — λ = 0.0 is an exact sentinel for "density not engaged yet"
        if lambda == 0.0 {
            // Density pressure not engaged yet: keep trying to estimate.
            if eval.sum_d > 0.0 && eval.sum_wl > 0.0 {
                lambda = eval.sum_wl / eval.sum_d;
                h = precond(lambda);
            }
        } else {
            // Adaptive ramp: full geometric growth while the overflow is
            // far above target, tapering to none as it closes in — an
            // unconditionally growing λ eventually drowns the wirelength
            // term and scrambles the placement for no density gain.
            let excess = ((eval.overflow - nopt.target_overflow) / (3.0 * nopt.target_overflow))
                .clamp(0.0, 1.0);
            lambda *= 1.0 + (nopt.lambda_growth - 1.0) * excess;
            h = precond(lambda);
        }
        if eval.overflow > peak_overflow {
            // Still clumping: discard earlier snapshots, the descent
            // from this new peak is the one that matters.
            peak_overflow = eval.overflow;
            best_overflow = eval.overflow;
            best_u.copy_from_slice(&u);
        } else if eval.overflow < best_overflow {
            best_overflow = eval.overflow;
            best_u.copy_from_slice(&u);
        }
        if eval.overflow > nopt.target_overflow {
            pressure_engaged = true;
        } else if pressure_engaged {
            // Spread back under target after genuinely clumping: done.
            break;
        }
    }
    ncs_trace::record("place.nesterov_iters", iters as u64);
    ncs_trace::add("place.backtracks", backtracks);
    ncs_trace::record(
        "place.bin_overflow",
        (best_overflow * 1000.0).round().max(0.0) as u64,
    );

    // Legalize the snapshot (a main-sequence iterate; v is a lookahead
    // extrapolation).
    let mut xs = best_u[..n].to_vec();
    let mut ys = best_u[n..].to_vec();
    let moves = legalize::legalize(netlist, &mut xs, &mut ys);
    ncs_trace::record("place.legalize_moves", moves);
    shift_to_positive_quadrant(netlist, &mut xs, &mut ys);
    let final_overlap = overlap_area(netlist, &xs, &ys);
    Placement {
        x: xs,
        y: ys,
        outer_iterations: iters,
        final_overlap_um2: final_overlap,
    }
}

/// Clamps every cell of `p = [x..., y...]` into the density die.
fn clamp_to_die(grid: &DensityGrid, n: usize, p: &mut [f64]) {
    for i in 0..n {
        let (cx, cy) = grid.clamp(i, p[i], p[n + i]);
        p[i] = cx;
        p[n + i] = cy;
    }
}

#[cfg(test)]
mod tests {
    use super::super::{place, PlaceAlgorithm, PlacerOptions};
    use crate::Netlist;
    use ncs_cluster::{CrossbarAssignment, HybridMapping};
    use ncs_tech::TechnologyModel;

    fn mixed_netlist() -> Netlist {
        let xbar_a =
            CrossbarAssignment::new(vec![0, 1, 2], vec![0, 1, 2], 16, vec![(0, 1), (1, 2)]);
        let xbar_b = CrossbarAssignment::new(vec![3, 4], vec![3, 4], 16, vec![(3, 4)]);
        let mapping = HybridMapping::new(8, vec![xbar_a, xbar_b], vec![(5, 6), (6, 7), (5, 7)]);
        Netlist::from_mapping(&mapping, &TechnologyModel::nm45())
    }

    fn nesterov_options() -> PlacerOptions {
        PlacerOptions {
            algorithm: PlaceAlgorithm::Nesterov,
            ..PlacerOptions::default()
        }
    }

    #[test]
    fn nesterov_places_overlap_free() {
        let nl = mixed_netlist();
        let p = place(&nl, &nesterov_options()).unwrap();
        assert!(
            p.final_overlap_um2 < 1e-6,
            "legalized overlap {}",
            p.final_overlap_um2
        );
        assert!(p.outer_iterations > 0);
    }

    #[test]
    fn nesterov_beats_the_initial_grid_on_hpwl() {
        let nl = mixed_netlist();
        let p = place(&nl, &nesterov_options()).unwrap();
        let (gx, gy) = super::super::initial_grid(&nl, 1.2);
        let grid = crate::Placement {
            x: gx,
            y: gy,
            outer_iterations: 0,
            final_overlap_um2: 0.0,
        };
        assert!(
            p.weighted_hpwl(&nl) <= grid.weighted_hpwl(&nl) * 1.05,
            "nesterov {} vs grid {}",
            p.weighted_hpwl(&nl),
            grid.weighted_hpwl(&nl)
        );
    }

    #[test]
    fn nesterov_emits_engine_counters() {
        let nl = mixed_netlist();
        let (_, events) = ncs_trace::capture(|| {
            place(&nl, &nesterov_options()).unwrap();
        });
        let report = ncs_trace::TraceReport::from_events(&events);
        let has = |name: &str| {
            report.counters.iter().any(|c| c.name == name)
                || report.samples.iter().any(|s| s.name == name)
        };
        assert!(has("place.nesterov_iters"));
        assert!(has("place.backtracks"));
        assert!(has("place.bin_overflow"));
        assert!(has("place.legalize_moves"));
        // And none of the CG-reference counters.
        assert!(!has("place.cg_iterations"));
    }

    #[test]
    fn nesterov_handles_pure_small_cell_netlists() {
        let mapping = HybridMapping::new(6, vec![], vec![(0, 1), (2, 3), (4, 5)]);
        let nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        let p = place(&nl, &nesterov_options()).unwrap();
        assert!(p.final_overlap_um2 < 1e-6);
    }

    #[test]
    fn nesterov_handles_single_cell() {
        let mapping = HybridMapping::new(1, vec![], vec![]);
        let nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        let p = place(&nl, &nesterov_options()).unwrap();
        let (x0, y0, _, _) = p.bounding_box(&nl);
        assert!(x0 >= -1e-9 && y0 >= -1e-9);
    }

    #[test]
    fn nesterov_matches_the_reference_on_hpwl() {
        use ncs_cluster::{Isc, IscOptions};
        let net = ncs_net::generators::planted_clusters(64, 2, 0.4, 0.01, 42)
            .unwrap()
            .0;
        let hybrid = Isc::new(IscOptions {
            seed: 42,
            ..IscOptions::default()
        })
        .run(&net)
        .unwrap();
        let nl = Netlist::from_mapping(&hybrid, &TechnologyModel::nm45());
        let analytic_only = PlacerOptions {
            detailed_swap_passes: 0,
            ..PlacerOptions::default()
        };
        let reference = place(&nl, &analytic_only).unwrap();
        let nesterov = place(
            &nl,
            &PlacerOptions {
                algorithm: PlaceAlgorithm::Nesterov,
                ..analytic_only
            },
        )
        .unwrap();
        assert!(nesterov.final_overlap_um2 < 1e-6);
        // The CI bench gate holds the engine to ≤ 1.01x the reference
        // HPWL on the larger hybrid128 workload; here it comfortably
        // beats the reference outright.
        assert!(
            nesterov.weighted_hpwl(&nl) <= reference.weighted_hpwl(&nl) * 1.01,
            "nesterov {} vs reference {}",
            nesterov.weighted_hpwl(&nl),
            reference.weighted_hpwl(&nl)
        );
    }

    #[test]
    fn nesterov_options_are_validated() {
        let nl = mixed_netlist();
        for bad in [
            PlacerOptions {
                nesterov: super::NesterovOptions {
                    target_density: 0.0,
                    ..Default::default()
                },
                ..nesterov_options()
            },
            PlacerOptions {
                nesterov: super::NesterovOptions {
                    lambda_growth: 1.0,
                    ..Default::default()
                },
                ..nesterov_options()
            },
            PlacerOptions {
                nesterov: super::NesterovOptions {
                    max_iterations: 0,
                    ..Default::default()
                },
                ..nesterov_options()
            },
        ] {
            assert!(place(&nl, &bad).is_err(), "options {:?}", bad.nesterov);
        }
    }
}
