//! Deterministic legalization for the Nesterov engine: Tetris packing
//! for crossbar macros, Abacus row packing for standard cells.
//!
//! The reference placer's endgame is an iterative pairwise push-apart —
//! it converges but can take hundreds of sweeps and gives no structural
//! guarantee. This module replaces it with the classic two-stage
//! constructive flow:
//!
//! 1. **Macros (Tetris):** crossbars are processed in left-edge order;
//!    each picks, among candidate rows of y-positions abutting the
//!    already-placed macros, the legal spot minimizing `|Δx| + |Δy|`
//!    displacement. Placed macros never move again.
//! 2. **Standard cells (Abacus):** neurons and synapses pack into
//!    uniform rows (height = the tallest standard cell, bottoms
//!    aligned) whose segments exclude the x-spans blocked by macros.
//!    Within a segment, cells join clusters whose optimal position is
//!    the clamped mean of member targets; overlapping clusters merge in
//!    O(1) amortized per insertion. Rows grow upward on demand, so the
//!    pack never fails.
//!
//! The output is structurally overlap-free: macros are pairwise
//! disjoint by construction, rows partition the standard-cell area into
//! disjoint bands, segments never intersect macros, and cluster packing
//! keeps row neighbors disjoint. Every ordering (macro order, row
//! candidate order, cluster merges) is a pure function of the input
//! coordinates with explicit tie-breaks on cell id — no hash iteration,
//! no thread dependence.

use crate::Netlist;

/// Legalizes `xs`/`ys` in place; returns how many cells moved (by bit
/// comparison against the incoming coordinates).
pub(super) fn legalize(netlist: &Netlist, xs: &mut [f64], ys: &mut [f64]) -> u64 {
    let before_x: Vec<u64> = xs.iter().map(|v| v.to_bits()).collect();
    let before_y: Vec<u64> = ys.iter().map(|v| v.to_bits()).collect();
    let mut macros = Vec::new();
    let mut smalls = Vec::new();
    for c in &netlist.cells {
        if matches!(c.kind, ncs_tech::CellKind::Crossbar(_)) {
            macros.push(c.id);
        } else {
            smalls.push(c.id);
        }
    }
    let widths: Vec<f64> = netlist.cells.iter().map(|c| c.dims.width).collect();
    let heights: Vec<f64> = netlist.cells.iter().map(|c| c.dims.height).collect();
    tetris_macros(&macros, &widths, &heights, xs, ys);
    abacus_rows(&smalls, &macros, &widths, &heights, xs, ys);
    let mut moves = 0_u64;
    for i in 0..xs.len() {
        if xs[i].to_bits() != before_x[i] || ys[i].to_bits() != before_y[i] {
            moves += 1;
        }
    }
    moves
}

/// Tetris macro placement: left-edge order, minimum-displacement legal
/// position against the already-placed set.
fn tetris_macros(ids: &[usize], widths: &[f64], heights: &[f64], xs: &mut [f64], ys: &mut [f64]) {
    let mut order = ids.to_vec();
    order.sort_by(|&a, &b| {
        (xs[a] - widths[a] / 2.0)
            .total_cmp(&(xs[b] - widths[b] / 2.0))
            .then(ys[a].total_cmp(&ys[b]))
            .then(a.cmp(&b))
    });
    let mut placed: Vec<usize> = Vec::with_capacity(order.len());
    for &i in &order {
        let (tx, ty) = (xs[i], ys[i]);
        // Candidate y levels: the target itself plus positions abutting
        // each placed macro above and below, nearest-first.
        let mut cand_y = vec![ty];
        for &p in &placed {
            cand_y.push(ys[p] + (heights[p] + heights[i]) / 2.0);
            cand_y.push(ys[p] - (heights[p] + heights[i]) / 2.0);
        }
        cand_y.sort_by(|a, b| {
            (a - ty)
                .abs()
                .total_cmp(&(b - ty).abs())
                .then(a.total_cmp(b))
        });
        cand_y.dedup();
        let mut best: Option<(f64, f64, f64)> = None; // (cost, x, y)
        for &cy in &cand_y {
            let dy = (cy - ty).abs();
            if let Some((bc, _, _)) = best {
                // Candidates are sorted by |Δy| and cost ≥ |Δy|: once the
                // vertical displacement alone exceeds the best cost no
                // later candidate can win.
                if dy >= bc {
                    break;
                }
            }
            let x = nearest_free_x(tx, cy, i, &placed, widths, heights, xs, ys);
            let cost = (x - tx).abs() + dy;
            if best.is_none_or(|(bc, _, _)| cost < bc) {
                best = Some((cost, x, cy));
            }
        }
        // The candidate list always contains the unmoved target level,
        // and nearest_free_x always returns a position, so `best` is
        // Some; fall back to the target defensively anyway.
        let (_, bx, by) = best.unwrap_or((0.0, tx, ty));
        xs[i] = bx;
        ys[i] = by;
        placed.push(i);
    }
}

/// Nearest x to `tx` at level `cy` where macro `i` overlaps no placed
/// macro: forbidden open intervals are merged and the closest edge of
/// the interval containing `tx` (ties toward the left) is taken.
#[allow(clippy::too_many_arguments)]
fn nearest_free_x(
    tx: f64,
    cy: f64,
    i: usize,
    placed: &[usize],
    widths: &[f64],
    heights: &[f64],
    xs: &[f64],
    ys: &[f64],
) -> f64 {
    let mut forbidden: Vec<(f64, f64)> = placed
        .iter()
        .filter(|&&p| (cy - ys[p]).abs() < (heights[i] + heights[p]) / 2.0)
        .map(|&p| {
            let half = (widths[i] + widths[p]) / 2.0;
            (xs[p] - half, xs[p] + half)
        })
        .collect();
    forbidden.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(forbidden.len());
    for (lo, hi) in forbidden {
        match merged.last_mut() {
            Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    for &(lo, hi) in &merged {
        if tx > lo && tx < hi {
            // Strictly inside: snap to the nearer edge, left on ties.
            return if tx - lo <= hi - tx { lo } else { hi };
        }
    }
    tx
}

/// One Abacus cluster: `cells` packed side by side starting at left
/// edge `x`; the unclamped optimum is `q / e` (mean of member targets,
/// each offset by the width of the members before it).
#[derive(Debug, Clone)]
struct Cluster {
    e: f64,
    q: f64,
    w: f64,
    x: f64,
    cells: Vec<usize>,
}

/// One macro-free span of a row.
#[derive(Debug, Clone)]
struct Segment {
    x0: f64,
    x1: f64,
    used: f64,
    clusters: Vec<Cluster>,
}

impl Segment {
    /// Abacus insertion of `cell` with target left edge `tx` and width
    /// `w`, clamped to the segment. Returns the cell's resulting left
    /// edge. Mutates the cluster list (callers trial on a clone).
    fn insert(&mut self, cell: usize, tx: f64, w: f64) -> f64 {
        let tx = tx.clamp(self.x0, (self.x1 - w).max(self.x0));
        match self.clusters.last_mut() {
            Some(last) if last.x + last.w > tx => {
                last.q += tx - last.w;
                last.e += 1.0;
                last.w += w;
                last.cells.push(cell);
            }
            _ => self.clusters.push(Cluster {
                e: 1.0,
                q: tx,
                w,
                x: tx,
                cells: vec![cell],
            }),
        }
        self.used += w;
        self.collapse();
        // The inserted cell is the last member of the last cluster
        // (collapse only ever merges the tail backward), so its left
        // edge is the cluster's right edge minus its own width.
        match self.clusters.last() {
            Some(c) => {
                debug_assert_eq!(c.cells.last().copied(), Some(cell));
                c.x + c.w - w
            }
            None => tx,
        }
    }

    /// Re-clamps the last cluster and merges it into its predecessor
    /// while they overlap (standard Abacus collapse).
    fn collapse(&mut self) {
        loop {
            let k = self.clusters.len();
            let c = &mut self.clusters[k - 1];
            c.x = (c.q / c.e).clamp(self.x0, (self.x1 - c.w).max(self.x0));
            if k == 1 {
                return;
            }
            let (head, tail) = self.clusters.split_at_mut(k - 1);
            let prev = &mut head[k - 2];
            let cur = &tail[0];
            if prev.x + prev.w <= cur.x {
                return;
            }
            prev.q += cur.q - cur.e * prev.w;
            prev.e += cur.e;
            prev.w += cur.w;
            prev.cells.extend(cur.cells.iter().copied());
            self.clusters.pop();
        }
    }
}

/// Abacus row legalization of the standard cells around the (already
/// legal) macros.
fn abacus_rows(
    smalls: &[usize],
    macros: &[usize],
    widths: &[f64],
    heights: &[f64],
    xs: &mut [f64],
    ys: &mut [f64],
) {
    if smalls.is_empty() {
        return;
    }
    let h_row = smalls
        .iter()
        .map(|&i| heights[i])
        .fold(0.0_f64, f64::max)
        .max(1e-6);
    let max_w = smalls.iter().map(|&i| widths[i]).fold(0.0_f64, f64::max);
    // The row region covers every current position (macros included) —
    // widened if too narrow to hold the widest cell comfortably. The
    // row baseline comes from the standard cells alone so that
    // re-legalizing an already-rowed placement reproduces the same
    // rows (idempotence / stable order).
    let mut x0 = f64::INFINITY;
    let mut x1 = f64::NEG_INFINITY;
    let mut y0 = f64::INFINITY;
    for &i in smalls.iter().chain(macros) {
        x0 = x0.min(xs[i] - widths[i] / 2.0);
        x1 = x1.max(xs[i] + widths[i] / 2.0);
    }
    for &i in smalls {
        y0 = y0.min(ys[i] - heights[i] / 2.0);
    }
    let total_w: f64 = smalls.iter().map(|&i| widths[i]).sum();
    let min_span = (max_w * 2.0).max(total_w.sqrt() * h_row.sqrt());
    if x1 - x0 < min_span {
        let grow = (min_span - (x1 - x0)) / 2.0;
        x0 -= grow;
        x1 += grow;
    }

    // A row's segments: [x0, x1] minus the x-spans of macros whose
    // vertical extent overlaps the row band.
    let segments_for = |y_bot: f64| -> Vec<Segment> {
        let y_top = y_bot + h_row;
        let mut cuts: Vec<(f64, f64)> = macros
            .iter()
            .filter(|&&m| ys[m] - heights[m] / 2.0 < y_top && ys[m] + heights[m] / 2.0 > y_bot)
            .map(|&m| (xs[m] - widths[m] / 2.0, xs[m] + widths[m] / 2.0))
            .collect();
        cuts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut segs = Vec::new();
        let mut cursor = x0;
        for (lo, hi) in cuts {
            if lo > cursor {
                segs.push((cursor, lo.min(x1)));
            }
            cursor = cursor.max(hi);
        }
        if cursor < x1 {
            segs.push((cursor, x1));
        }
        segs.into_iter()
            .filter(|&(a, b)| b - a > 1e-9)
            .map(|(a, b)| Segment {
                x0: a,
                x1: b,
                used: 0.0,
                clusters: Vec::new(),
            })
            .collect()
    };

    let row_bot = |k: usize| y0 + k as f64 * h_row;
    // Rows must cover the whole vertical span of the targets up front —
    // otherwise every cell would fold down into the lowest row (rows
    // further grow upward on demand when capacity runs out).
    let y_top = smalls
        .iter()
        .map(|&i| ys[i] + heights[i] / 2.0)
        .fold(f64::NEG_INFINITY, f64::max);
    let k_init = (((y_top - y0) / h_row).ceil().max(1.0)) as usize;
    let mut rows: Vec<Vec<Segment>> = (0..k_init).map(|k| segments_for(row_bot(k))).collect();

    let mut order = smalls.to_vec();
    order.sort_by(|&a, &b| {
        (xs[a] - widths[a] / 2.0)
            .total_cmp(&(xs[b] - widths[b] / 2.0))
            .then(ys[a].total_cmp(&ys[b]))
            .then(a.cmp(&b))
    });

    for &i in &order {
        let w = widths[i];
        let tx = xs[i] - w / 2.0;
        loop {
            // Rows ordered by vertical displacement for this cell.
            let mut by_dy: Vec<(f64, usize)> = (0..rows.len())
                .map(|k| {
                    let cy = row_bot(k) + heights[i] / 2.0;
                    ((cy - ys[i]).abs(), k)
                })
                .collect();
            by_dy.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut best: Option<(f64, usize, usize, f64)> = None; // cost, row, seg, x
            for &(dy, k) in &by_dy {
                if let Some((bc, ..)) = best {
                    if dy >= bc {
                        break;
                    }
                }
                for (si, seg) in rows[k].iter().enumerate() {
                    if seg.used + w > seg.x1 - seg.x0 {
                        continue;
                    }
                    let mut trial = seg.clone();
                    let x_left = trial.insert(i, tx, w);
                    let cost = (x_left - tx).abs() + dy;
                    if best.is_none_or(|(bc, ..)| cost < bc) {
                        best = Some((cost, k, si, x_left));
                    }
                }
            }
            if let Some((_, k, si, _)) = best {
                rows[k][si].insert(i, tx, w);
                break;
            }
            // Every existing row is full here: grow the region upward.
            let k = rows.len();
            rows.push(segments_for(row_bot(k)));
        }
    }

    // Resolve final coordinates: clusters pack members left to right in
    // insertion order.
    for (k, row) in rows.iter().enumerate() {
        let y_bot = row_bot(k);
        for seg in row {
            for c in &seg.clusters {
                let mut x = c.x;
                for &m in &c.cells {
                    xs[m] = x + widths[m] / 2.0;
                    ys[m] = y_bot + heights[m] / 2.0;
                    x += widths[m];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::overlap_area;
    use crate::Netlist;
    use ncs_cluster::{CrossbarAssignment, HybridMapping};
    use ncs_tech::TechnologyModel;

    /// Seeded pseudo-random mixed netlist with `nx` crossbars and
    /// `extra` outlier neurons/synapses.
    fn random_netlist(nx: usize, neurons: usize, seed: u64) -> Netlist {
        let mut s = seed | 1;
        let mut next = move |m: usize| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as usize) % m
        };
        let mut xbars = Vec::new();
        for b in 0..nx {
            let members: Vec<usize> = (0..4).map(|i| (b * 4 + i) % neurons).collect();
            let conns: Vec<(usize, usize)> = (0..6)
                .map(|_| (members[next(4)], members[next(4)]))
                .collect();
            xbars.push(CrossbarAssignment::new(members.clone(), members, 16, conns));
        }
        let outliers: Vec<(usize, usize)> = (0..2 * neurons)
            .map(|_| (next(neurons), next(neurons)))
            .filter(|&(f, t)| f != t)
            .collect();
        let mapping = HybridMapping::new(neurons, xbars, outliers);
        Netlist::from_mapping(&mapping, &TechnologyModel::nm45())
    }

    /// Seeded pseudo-random starting coordinates (a worst case: heavy
    /// overlap, no structure).
    fn random_coords(n: usize, spread: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * spread
        };
        (
            (0..n).map(|_| next()).collect(),
            (0..n).map(|_| next()).collect(),
        )
    }

    #[test]
    fn legalized_result_has_zero_overlap() {
        for seed in [1u64, 9, 23, 77] {
            let nl = random_netlist(3, 24, seed);
            let n = nl.cells.len();
            let (mut xs, mut ys) = random_coords(n, 30.0, seed ^ 0x5a);
            legalize(&nl, &mut xs, &mut ys);
            let overlap = overlap_area(&nl, &xs, &ys);
            assert!(overlap < 1e-9, "seed {seed}: overlap {overlap}");
        }
    }

    #[test]
    fn standard_cells_align_to_rows() {
        let nl = random_netlist(2, 20, 5);
        let n = nl.cells.len();
        let (mut xs, mut ys) = random_coords(n, 25.0, 11);
        legalize(&nl, &mut xs, &mut ys);
        let smalls: Vec<usize> = nl
            .cells
            .iter()
            .filter(|c| !matches!(c.kind, ncs_tech::CellKind::Crossbar(_)))
            .map(|c| c.id)
            .collect();
        let h_row = smalls
            .iter()
            .map(|&i| nl.cells[i].dims.height)
            .fold(0.0_f64, f64::max);
        // Every standard cell's bottom sits on a multiple of the row
        // height above the common base line.
        let base = smalls
            .iter()
            .map(|&i| ys[i] - nl.cells[i].dims.height / 2.0)
            .fold(f64::INFINITY, f64::min);
        for &i in &smalls {
            let bot = ys[i] - nl.cells[i].dims.height / 2.0;
            let steps = (bot - base) / h_row;
            assert!(
                (steps - steps.round()).abs() < 1e-6,
                "cell {i} bottom {bot} is off-row (base {base}, h {h_row})"
            );
        }
    }

    #[test]
    fn row_capacity_is_respected() {
        // Total width packed into any single row band never exceeds the
        // region span (the capacity check plus row growth guarantee it).
        let nl = random_netlist(0, 40, 3);
        let n = nl.cells.len();
        let (mut xs, mut ys) = random_coords(n, 8.0, 17);
        legalize(&nl, &mut xs, &mut ys);
        use std::collections::BTreeMap;
        let mut row_used: BTreeMap<i64, f64> = BTreeMap::new();
        let mut row_span: BTreeMap<i64, (f64, f64)> = BTreeMap::new();
        for c in &nl.cells {
            let key = (ys[c.id] * 1e6).round() as i64;
            *row_used.entry(key).or_default() += c.dims.width;
            let e = row_span
                .entry(key)
                .or_insert((f64::INFINITY, f64::NEG_INFINITY));
            e.0 = e.0.min(xs[c.id] - c.dims.width / 2.0);
            e.1 = e.1.max(xs[c.id] + c.dims.width / 2.0);
        }
        for (key, used) in &row_used {
            let (lo, hi) = row_span[key];
            assert!(
                *used <= hi - lo + 1e-6,
                "row {key}: used {used} exceeds span {}",
                hi - lo
            );
        }
    }

    #[test]
    fn legalization_is_stable_and_deterministic() {
        let nl = random_netlist(3, 24, 41);
        let n = nl.cells.len();
        let (xs0, ys0) = random_coords(n, 30.0, 43);
        let run = |threads: Option<usize>| {
            ncs_par::set_thread_override(threads);
            let mut xs = xs0.clone();
            let mut ys = ys0.clone();
            let moves = legalize(&nl, &mut xs, &mut ys);
            ncs_par::set_thread_override(None);
            (
                moves,
                xs.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
                ys.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
            )
        };
        let a = run(Some(1));
        let b = run(Some(4));
        let c = run(None);
        assert_eq!(a, b, "thread count changed the legalization");
        assert_eq!(a, c, "default threading changed the legalization");
    }

    #[test]
    fn legalizing_a_legal_placement_moves_nothing() {
        // Macros already disjoint, standard cells already in rows: the
        // legalizer must keep everyone in place (stable order).
        let nl = random_netlist(2, 12, 7);
        let n = nl.cells.len();
        let mut xs = vec![0.0; n];
        let mut ys = vec![0.0; n];
        // First legalization establishes a legal configuration...
        let (rx, ry) = random_coords(n, 20.0, 3);
        xs.copy_from_slice(&rx);
        ys.copy_from_slice(&ry);
        legalize(&nl, &mut xs, &mut ys);
        // ...re-legalizing it is then idempotent up to row re-basing.
        let mut xs2 = xs.clone();
        let mut ys2 = ys.clone();
        legalize(&nl, &mut xs2, &mut ys2);
        let overlap = overlap_area(&nl, &xs2, &ys2);
        assert!(overlap < 1e-9);
        for i in 0..n {
            assert!(
                (xs2[i] - xs[i]).abs() < 1e-6 && (ys2[i] - ys[i]).abs() < 1e-6,
                "cell {i} drifted: ({}, {}) -> ({}, {})",
                xs[i],
                ys[i],
                xs2[i],
                ys2[i]
            );
        }
    }

    #[test]
    fn macros_only_netlist_legalizes() {
        let nl = random_netlist(4, 16, 13);
        // Keep only crossbars by stacking everything; legalize must
        // separate the macros regardless of the standard cells.
        let n = nl.cells.len();
        let mut xs = vec![0.0; n];
        let mut ys = vec![0.0; n];
        legalize(&nl, &mut xs, &mut ys);
        assert!(overlap_area(&nl, &xs, &ys) < 1e-9);
    }
}
