//! Grid-binned density field for the Nesterov placement engine.
//!
//! The reference placer scores density with the paper's Eq. 2 — a sum
//! over *pairs* of nearby cells — which is the known-slow corner of
//! analytical placement: every gradient evaluation rebuilds a spatial
//! hash and walks O(n·neighbors) pairs. This module replaces the pairs
//! with an electrostatic-style field: cells deposit their (virtually
//! inflated) area into an m×m grid of bins over a fixed die region, the
//! per-bin overflow over a target utilization is penalized
//! quadratically, and the gradient of the penalty with respect to every
//! cell coordinate follows from the piecewise-linear cell/bin overlap
//! in a second sweep. One evaluation costs O(n·b + m²) where `b` is the
//! handful of bins a cell touches — independent of how clumped the
//! placement is.
//!
//! Cells narrower than a bin are inflated to `√2` bin widths with their
//! deposited density scaled down to conserve area (ePlace's local
//! smoothing): an uninflated cell strictly inside one bin would have a
//! zero density gradient and never feel spreading pressure.
//!
//! Determinism: the bin field is accumulated by cell chunks whose
//! partial fields fold in ascending chunk order, and the gradient sweep
//! writes only to each cell's own slots — both bit-identical at any
//! `NCS_THREADS`.

use crate::Netlist;

/// Cells per chunk of the parallel field/gradient sweeps. Fixed — part
/// of the numeric contract, never derived from the thread count.
const DENSITY_GRID_GRAIN: usize = 256;

/// Minimum cells before the density sweeps fan out to the ncs-par pool.
const DENSITY_GRID_MIN_ITEMS: usize = 4 * DENSITY_GRID_GRAIN;

/// Virtual-inflation floor in units of bin width: cells narrower than
/// this many bins are widened (density-conserving) so they always
/// straddle at least one bin boundary and keep a live gradient.
const SMOOTH_BINS: f64 = std::f64::consts::SQRT_2;

/// A fixed die region binned into `cols × rows` equal rectangles.
///
/// The region is decided once per placement run (from the total virtual
/// cell area and the target utilization) so the field does not swim
/// under the optimizer as cells spread.
#[derive(Debug, Clone)]
pub(crate) struct DensityGrid {
    /// Bins per axis.
    pub cols: usize,
    /// Bins per axis.
    pub rows: usize,
    /// Die lower-left corner.
    pub x0: f64,
    /// Die lower-left corner.
    pub y0: f64,
    /// Bin width, µm.
    pub bin_w: f64,
    /// Bin height, µm.
    pub bin_h: f64,
    /// Target utilization per bin in (0, 1].
    pub target: f64,
    /// Per-cell virtually inflated half-extents and deposit scale:
    /// `(half_w, half_h, scale)` with `scale` chosen so the deposited
    /// area equals the cell's virtual area.
    extents: Vec<(f64, f64, f64)>,
    /// Per-bin deposited area, row-major — rebuilt by [`Self::evaluate`].
    field: Vec<f64>,
    /// Per-bin penalty derivative `∂D/∂field_b`, filled after the field.
    coeff: Vec<f64>,
}

/// One density evaluation: penalty value and the overflow fraction
/// (overflowing area over total deposited area, the Nesterov engine's
/// convergence metric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct DensityEval {
    /// Σ_b max(0, ρ_b − target)² over the grid.
    pub penalty: f64,
    /// Σ_b max(0, area_b − target·bin_area) / Σ cell area, in [0, ∞).
    pub overflow: f64,
}

impl DensityGrid {
    /// Builds the grid for `netlist`: a square die sized so the virtual
    /// cell area fills `target` of it, centred on the centroid of the
    /// starting placement, with `bins` bins per axis (0 = auto,
    /// `⌈√n⌉` clamped to `[4, 256]`).
    pub fn new(
        netlist: &Netlist,
        xs: &[f64],
        ys: &[f64],
        omega: f64,
        target: f64,
        bins: usize,
    ) -> DensityGrid {
        let n = netlist.cells.len();
        let m = if bins == 0 {
            ((n as f64).sqrt().ceil() as usize).clamp(4, 256)
        } else {
            bins.max(2)
        };
        let virtual_area: f64 = netlist
            .cells
            .iter()
            .map(|c| (omega * c.dims.width) * (omega * c.dims.height))
            .sum();
        let max_w = netlist
            .cells
            .iter()
            .map(|c| c.dims.width)
            .fold(0.0_f64, f64::max);
        let max_h = netlist
            .cells
            .iter()
            .map(|c| c.dims.height)
            .fold(0.0_f64, f64::max);
        // The die must hold the virtual area at the target utilization
        // and be at least one macro wide in each direction.
        let side = (virtual_area / target.max(1e-3)).sqrt().max(1.0);
        let side = side.max(omega * max_w).max(omega * max_h);
        let cx = xs.iter().sum::<f64>() / n as f64;
        let cy = ys.iter().sum::<f64>() / n as f64;
        let x0 = cx - side / 2.0;
        let y0 = cy - side / 2.0;
        let bin_w = side / m as f64;
        let bin_h = side / m as f64;
        let extents = netlist
            .cells
            .iter()
            .map(|c| {
                let vw = omega * c.dims.width;
                let vh = omega * c.dims.height;
                let hw = vw.max(SMOOTH_BINS * bin_w) / 2.0;
                let hh = vh.max(SMOOTH_BINS * bin_h) / 2.0;
                // Conserve area: the inflated rectangle deposits the
                // cell's true virtual area.
                let scale = (vw * vh) / (4.0 * hw * hh);
                (hw, hh, scale)
            })
            .collect();
        DensityGrid {
            cols: m,
            rows: m,
            x0,
            y0,
            bin_w,
            bin_h,
            target,
            extents,
            field: vec![0.0; m * m],
            coeff: vec![0.0; m * m],
        }
    }

    /// Clamps a cell centre into the die so its inflated extent stays on
    /// the grid (lookahead points of the Nesterov solver can overshoot).
    pub fn clamp(&self, i: usize, x: f64, y: f64) -> (f64, f64) {
        let (hw, hh, _) = self.extents[i];
        let x1 = self.x0 + self.cols as f64 * self.bin_w;
        let y1 = self.y0 + self.rows as f64 * self.bin_h;
        // A macro wider than the die parks at the centre.
        let cx = if 2.0 * hw >= x1 - self.x0 {
            (self.x0 + x1) / 2.0
        } else {
            x.clamp(self.x0 + hw, x1 - hw)
        };
        let cy = if 2.0 * hh >= y1 - self.y0 {
            (self.y0 + y1) / 2.0
        } else {
            y.clamp(self.y0 + hh, y1 - hh)
        };
        (cx, cy)
    }

    /// Evaluates the density penalty at `p = [x..., y...]` and, when
    /// `grad` is given, accumulates `∂D/∂p` into it (same layout).
    ///
    /// Cost: one O(n·bins-per-cell) deposit sweep (chunk-parallel,
    /// folded in chunk order), one O(m²) coefficient pass, and — with a
    /// gradient — one more O(n·bins-per-cell) sweep writing only each
    /// cell's own slots.
    pub fn evaluate(&mut self, p: &[f64], grad: Option<&mut [f64]>) -> DensityEval {
        let n = self.extents.len();
        let (xs, ys) = p.split_at(n);
        self.deposit(xs, ys);
        let bin_area = self.bin_w * self.bin_h;
        let cap = self.target * bin_area;
        let mut penalty = 0.0;
        let mut over_area = 0.0;
        let mut total_area = 0.0;
        for (f, c) in self.field.iter().zip(self.coeff.iter_mut()) {
            total_area += f;
            let over = f - cap;
            if over > 0.0 {
                let rho = over / bin_area;
                penalty += rho * rho;
                over_area += over;
                // d(rho²)/d(field) = 2·over/bin_area².
                *c = 2.0 * over / (bin_area * bin_area);
            } else {
                *c = 0.0;
            }
        }
        if let Some(g) = grad {
            self.gradient(xs, ys, g);
        }
        DensityEval {
            penalty,
            overflow: if total_area > 0.0 {
                over_area / total_area
            } else {
                0.0
            },
        }
    }

    /// Rebuilds the per-bin deposited-area field from cell centres.
    fn deposit(&mut self, xs: &[f64], ys: &[f64]) {
        let n = self.extents.len();
        let bins = self.cols * self.rows;
        let grid = &*self;
        let cutoff = ncs_par::Cutoff::min_work(DENSITY_GRID_MIN_ITEMS);
        let partials = ncs_par::par_map_reduce(
            n,
            DENSITY_GRID_GRAIN,
            cutoff,
            // ncs-lint: hot
            |r| {
                let mut local = vec![0.0; bins];
                for i in r {
                    grid.splat(i, xs[i], ys[i], &mut local);
                }
                local
            },
            vec![0.0; bins],
            |mut acc, local| {
                for (a, l) in acc.iter_mut().zip(&local) {
                    *a += l;
                }
                acc
            },
        );
        self.field.copy_from_slice(&partials);
    }

    /// Deposits cell `i`'s inflated rectangle into `field`.
    // ncs-lint: hot
    fn splat(&self, i: usize, x: f64, y: f64, field: &mut [f64]) {
        let (hw, hh, scale) = self.extents[i];
        let (x, y) = self.clamp_raw(x, y, hw, hh);
        let (c0, c1) = self.span_cols(x - hw, x + hw);
        let (r0, r1) = self.span_rows(y - hh, y + hh);
        for r in r0..r1 {
            let oy = self.overlap_y(r, y - hh, y + hh);
            let row = r * self.cols;
            for c in c0..c1 {
                let ox = self.overlap_x(c, x - hw, x + hw);
                field[row + c] += scale * ox * oy;
            }
        }
    }

    /// Adds cell `i`'s density-gradient contribution to its own grad
    /// slots, reading the precomputed per-bin coefficients.
    // ncs-lint: hot
    fn grad_cell(&self, i: usize, x: f64, y: f64) -> (f64, f64) {
        let (hw, hh, scale) = self.extents[i];
        let (x, y) = self.clamp_raw(x, y, hw, hh);
        let (c0, c1) = self.span_cols(x - hw, x + hw);
        let (r0, r1) = self.span_rows(y - hh, y + hh);
        let mut gx = 0.0;
        let mut gy = 0.0;
        for r in r0..r1 {
            let oy = self.overlap_y(r, y - hh, y + hh);
            let doy = self.d_overlap_y(r, y - hh, y + hh);
            let row = r * self.cols;
            for c in c0..c1 {
                let coeff = self.coeff[row + c];
                // ncs-lint: allow(float-eq) — coeff is set to exactly 0.0 for non-overflowing bins; the skip is a no-op elision
                if coeff == 0.0 {
                    continue;
                }
                let ox = self.overlap_x(c, x - hw, x + hw);
                let dox = self.d_overlap_x(c, x - hw, x + hw);
                gx += coeff * scale * dox * oy;
                gy += coeff * scale * ox * doy;
            }
        }
        (gx, gy)
    }

    /// Gradient sweep: each cell's (gx, gy) computed independently and
    /// written to its own slots in `grad` (layout `[∂x..., ∂y...]`).
    fn gradient(&self, xs: &[f64], ys: &[f64], grad: &mut [f64]) {
        let n = self.extents.len();
        let cutoff = ncs_par::Cutoff::min_work(DENSITY_GRID_MIN_ITEMS);
        let parts = ncs_par::par_map(xs, DENSITY_GRID_GRAIN, cutoff, |i, &x| {
            self.grad_cell(i, x, ys[i])
        });
        for (i, (gx, gy)) in parts.into_iter().enumerate() {
            grad[i] += gx;
            grad[n + i] += gy;
        }
    }

    fn clamp_raw(&self, x: f64, y: f64, hw: f64, hh: f64) -> (f64, f64) {
        let x1 = self.x0 + self.cols as f64 * self.bin_w;
        let y1 = self.y0 + self.rows as f64 * self.bin_h;
        let cx = if 2.0 * hw >= x1 - self.x0 {
            (self.x0 + x1) / 2.0
        } else {
            x.clamp(self.x0 + hw, x1 - hw)
        };
        let cy = if 2.0 * hh >= y1 - self.y0 {
            (self.y0 + y1) / 2.0
        } else {
            y.clamp(self.y0 + hh, y1 - hh)
        };
        (cx, cy)
    }

    /// Bin columns intersecting `[lo, hi]`, as a half-open range.
    fn span_cols(&self, lo: f64, hi: f64) -> (usize, usize) {
        let c0 = (((lo - self.x0) / self.bin_w).floor().max(0.0)) as usize;
        let c1 = ((((hi - self.x0) / self.bin_w).ceil()).max(0.0) as usize).min(self.cols);
        (c0.min(self.cols), c1)
    }

    fn span_rows(&self, lo: f64, hi: f64) -> (usize, usize) {
        let r0 = (((lo - self.y0) / self.bin_h).floor().max(0.0)) as usize;
        let r1 = ((((hi - self.y0) / self.bin_h).ceil()).max(0.0) as usize).min(self.rows);
        (r0.min(self.rows), r1)
    }

    /// Overlap length of `[lo, hi]` with column `c`.
    fn overlap_x(&self, c: usize, lo: f64, hi: f64) -> f64 {
        let b0 = self.x0 + c as f64 * self.bin_w;
        let b1 = b0 + self.bin_w;
        (hi.min(b1) - lo.max(b0)).max(0.0)
    }

    fn overlap_y(&self, r: usize, lo: f64, hi: f64) -> f64 {
        let b0 = self.y0 + r as f64 * self.bin_h;
        let b1 = b0 + self.bin_h;
        (hi.min(b1) - lo.max(b0)).max(0.0)
    }

    /// `∂/∂x` of [`Self::overlap_x`]: the cell's right edge inside the
    /// bin contributes +1, its left edge −1 (both inside the same bin
    /// cannot happen once inflated past a bin width — the net is 0 and
    /// so is the true derivative of a constant full overlap).
    fn d_overlap_x(&self, c: usize, lo: f64, hi: f64) -> f64 {
        if hi.min(self.x0 + (c + 1) as f64 * self.bin_w) <= lo.max(self.x0 + c as f64 * self.bin_w)
        {
            return 0.0;
        }
        let b0 = self.x0 + c as f64 * self.bin_w;
        let b1 = b0 + self.bin_w;
        f64::from(hi < b1) - f64::from(lo > b0)
    }

    fn d_overlap_y(&self, r: usize, lo: f64, hi: f64) -> f64 {
        if hi.min(self.y0 + (r + 1) as f64 * self.bin_h) <= lo.max(self.y0 + r as f64 * self.bin_h)
        {
            return 0.0;
        }
        let b0 = self.y0 + r as f64 * self.bin_h;
        let b1 = b0 + self.bin_h;
        f64::from(hi < b1) - f64::from(lo > b0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;
    use ncs_cluster::{CrossbarAssignment, HybridMapping};
    use ncs_tech::TechnologyModel;

    fn mixed_netlist() -> Netlist {
        let xbar = CrossbarAssignment::new(vec![0, 1, 2], vec![0, 1, 2], 16, vec![(0, 1), (1, 2)]);
        let mapping = HybridMapping::new(6, vec![xbar], vec![(3, 4), (4, 5)]);
        Netlist::from_mapping(&mapping, &TechnologyModel::nm45())
    }

    /// Deterministic pseudo-random positions away from bin-boundary
    /// kinks of the piecewise-linear overlap.
    fn jittered_positions(n: usize, spread: f64, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        (0..2 * n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((s >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * spread
            })
            .collect()
    }

    #[test]
    fn field_conserves_total_area() {
        let nl = mixed_netlist();
        let n = nl.cells.len();
        let p = jittered_positions(n, 10.0, 7);
        let mut grid = DensityGrid::new(&nl, &p[..n], &p[n..], 1.2, 0.9, 8);
        grid.evaluate(&p, None);
        let deposited: f64 = grid.field.iter().sum();
        let virtual_area: f64 = nl
            .cells
            .iter()
            .map(|c| 1.2 * c.dims.width * 1.2 * c.dims.height)
            .sum();
        assert!(
            (deposited - virtual_area).abs() < 1e-6 * virtual_area,
            "deposited {deposited} vs virtual {virtual_area}"
        );
    }

    #[test]
    fn clumped_placement_overflows_and_spread_relieves_it() {
        let nl = mixed_netlist();
        let n = nl.cells.len();
        // Everyone at the origin: maximal overflow.
        let clumped = vec![0.0; 2 * n];
        let mut grid = DensityGrid::new(&nl, &clumped[..n], &clumped[n..], 1.2, 0.9, 8);
        let tight = grid.evaluate(&clumped, None);
        assert!(tight.penalty > 0.0);
        assert!(tight.overflow > 0.0);
        // Spread out: strictly better on both metrics.
        let spread = jittered_positions(n, 60.0, 3);
        let loose = grid.evaluate(&spread, None);
        assert!(loose.penalty < tight.penalty);
        assert!(loose.overflow < tight.overflow);
    }

    /// Pulls every coordinate of `p` strictly inside the die (the
    /// gradient is only meaningful away from the clamp boundary, where
    /// finite differences see the clamped — constant — objective).
    fn pull_inside(grid: &DensityGrid, p: &mut [f64]) {
        let n = p.len() / 2;
        let cx = grid.x0 + grid.cols as f64 * grid.bin_w / 2.0;
        let cy = grid.y0 + grid.rows as f64 * grid.bin_h / 2.0;
        for i in 0..n {
            let (x, y) = grid.clamp(i, p[i], p[n + i]);
            p[i] = x + 0.07 * (cx - x);
            p[n + i] = y + 0.07 * (cy - y);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let nl = mixed_netlist();
        let n = nl.cells.len();
        let mut p = jittered_positions(n, 8.0, 13);
        let mut grid = DensityGrid::new(&nl, &p[..n], &p[n..], 1.2, 0.9, 8);
        pull_inside(&grid, &mut p);
        let mut grad = vec![0.0; 2 * n];
        let e0 = grid.evaluate(&p, Some(&mut grad));
        assert!(e0.penalty > 0.0, "expected an overflowing configuration");
        let h = 1e-6;
        for idx in 0..2 * n {
            p[idx] += h;
            let f1 = grid.evaluate(&p, None).penalty;
            p[idx] -= 2.0 * h;
            let f2 = grid.evaluate(&p, None).penalty;
            p[idx] += h;
            let fd = (f1 - f2) / (2.0 * h);
            assert!(
                (fd - grad[idx]).abs() < 1e-3 * (1.0 + fd.abs()),
                "idx {idx}: analytic {} vs fd {fd}",
                grad[idx]
            );
        }
    }

    #[test]
    fn negative_gradient_is_a_descent_direction() {
        // A small step against the gradient must lower the penalty —
        // i.e. the field genuinely spreads overflowing bins apart.
        let nl = mixed_netlist();
        let n = nl.cells.len();
        let mut p = jittered_positions(n, 4.0, 17);
        let mut grid = DensityGrid::new(&nl, &p[..n], &p[n..], 1.2, 0.9, 8);
        pull_inside(&grid, &mut p);
        let mut grad = vec![0.0; 2 * n];
        let e0 = grid.evaluate(&p, Some(&mut grad));
        assert!(e0.penalty > 0.0, "expected an overflowing configuration");
        let gnorm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        assert!(gnorm > 0.0);
        let t = 1e-4 * grid.bin_w / gnorm * n as f64;
        let stepped: Vec<f64> = p.iter().zip(&grad).map(|(x, g)| x - t * g).collect();
        let e1 = grid.evaluate(&stepped, None);
        assert!(
            e1.penalty < e0.penalty,
            "descent step raised the penalty: {} -> {}",
            e0.penalty,
            e1.penalty
        );
    }

    #[test]
    fn evaluation_is_bit_identical_across_thread_counts() {
        let nl = mixed_netlist();
        let n = nl.cells.len();
        let p = jittered_positions(n, 12.0, 29);
        let run = |threads: usize| {
            ncs_par::set_thread_override(Some(threads));
            let mut grid = DensityGrid::new(&nl, &p[..n], &p[n..], 1.2, 0.9, 8);
            let mut grad = vec![0.0; 2 * n];
            let eval = grid.evaluate(&p, Some(&mut grad));
            ncs_par::set_thread_override(None);
            (
                eval.penalty.to_bits(),
                grad.iter().map(|g| g.to_bits()).collect::<Vec<u64>>(),
            )
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn auto_bin_count_scales_with_cell_count() {
        let nl = mixed_netlist();
        let n = nl.cells.len();
        let p = vec![0.0; 2 * n];
        let grid = DensityGrid::new(&nl, &p[..n], &p[n..], 1.2, 0.9, 0);
        assert!(grid.cols >= 4 && grid.cols <= 256);
        assert_eq!(grid.cols, grid.rows);
    }

    #[test]
    fn clamp_keeps_cells_on_the_die() {
        let nl = mixed_netlist();
        let n = nl.cells.len();
        let p = vec![0.0; 2 * n];
        let grid = DensityGrid::new(&nl, &p[..n], &p[n..], 1.2, 0.9, 8);
        let (x, y) = grid.clamp(0, -1e9, 1e9);
        let side = grid.cols as f64 * grid.bin_w;
        assert!(x >= grid.x0 && x <= grid.x0 + side);
        assert!(y >= grid.y0 && y <= grid.y0 + side);
    }
}
