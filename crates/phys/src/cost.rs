use ncs_tech::TechnologyModel;

use crate::{Netlist, Placement, Routing};

/// Weights `(α, β, δ)` of the physical cost function (Eq. 3):
/// `Cost = α·L + β·A + δ·T`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Weight of total wirelength `L`.
    pub alpha: f64,
    /// Weight of chip area `A`.
    pub beta: f64,
    /// Weight of average wire delay `T`.
    pub delta: f64,
}

impl Default for CostWeights {
    /// The paper sets `α = β = δ = 1`.
    fn default() -> Self {
        CostWeights {
            alpha: 1.0,
            beta: 1.0,
            delta: 1.0,
        }
    }
}

/// The evaluated physical cost of a placed-and-routed design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalCost {
    /// Total routed wirelength `L`, µm.
    pub wirelength_um: f64,
    /// Placement (bounding-box) area `A`, µm².
    pub area_um2: f64,
    /// Average wire delay `T`, ns: per-wire Elmore RC of the routed length
    /// plus the traversal delay of the slower endpoint cell (crossbar line
    /// RC dominates, so `T` tracks the crossbar size distribution as
    /// observed in Section 4.3).
    pub average_delay_ns: f64,
    /// The weights used.
    pub weights: CostWeights,
}

impl PhysicalCost {
    /// Evaluates Eq. 3 for a design.
    pub fn evaluate(
        netlist: &Netlist,
        placement: &Placement,
        routing: &Routing,
        tech: &TechnologyModel,
        weights: CostWeights,
    ) -> Self {
        let area = placement.area_um2(netlist);
        let mut delay_sum = 0.0;
        for routed in &routing.routed {
            let wire = &netlist.wires[routed.wire];
            let endpoint_delay = wire
                .pins
                .iter()
                .map(|&p| tech.cell_delay_ns(netlist.cells[p].kind))
                .fold(0.0_f64, f64::max);
            delay_sum += tech.wire_delay_ns(routed.length_um) + endpoint_delay;
        }
        let avg_delay = if routing.routed.is_empty() {
            0.0
        } else {
            delay_sum / routing.routed.len() as f64
        };
        PhysicalCost {
            wirelength_um: routing.total_wirelength_um,
            area_um2: area,
            average_delay_ns: avg_delay,
            weights,
        }
    }

    /// The scalar cost `α·L + β·A + δ·T`.
    pub fn total(&self) -> f64 {
        self.weights.alpha * self.wirelength_um
            + self.weights.beta * self.area_um2
            + self.weights.delta * self.average_delay_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{place, route, Netlist, PlacerOptions, RouterOptions};
    use ncs_cluster::full_crossbar;
    use ncs_net::generators;

    #[test]
    fn cost_components_positive_for_real_design() {
        let net = generators::uniform_random(25, 0.08, 7).unwrap();
        let mapping = full_crossbar(&net, 16).unwrap();
        let tech = TechnologyModel::nm45();
        let nl = Netlist::from_mapping(&mapping, &tech);
        let p = place(&nl, &PlacerOptions::fast()).unwrap();
        let r = route(&nl, &p, &tech, &RouterOptions::default()).unwrap();
        let cost = PhysicalCost::evaluate(&nl, &p, &r, &tech, CostWeights::default());
        assert!(cost.wirelength_um > 0.0);
        assert!(cost.area_um2 > 0.0);
        assert!(cost.average_delay_ns > 0.0);
        assert!(
            (cost.total() - (cost.wirelength_um + cost.area_um2 + cost.average_delay_ns)).abs()
                < 1e-9
        );
    }

    #[test]
    fn weights_scale_linearly() {
        let c = PhysicalCost {
            wirelength_um: 10.0,
            area_um2: 20.0,
            average_delay_ns: 3.0,
            weights: CostWeights {
                alpha: 2.0,
                beta: 0.5,
                delta: 10.0,
            },
        };
        assert!((c.total() - (20.0 + 10.0 + 30.0)).abs() < 1e-12);
    }

    #[test]
    fn crossbar_endpoints_dominate_delay() {
        // A design whose wires all touch 64x64 crossbars must have average
        // delay near the crossbar traversal delay.
        let net = generators::uniform_random(64, 0.05, 3).unwrap();
        let mapping = full_crossbar(&net, 64).unwrap();
        let tech = TechnologyModel::nm45();
        let nl = Netlist::from_mapping(&mapping, &tech);
        let p = place(&nl, &PlacerOptions::fast()).unwrap();
        let r = route(&nl, &p, &tech, &RouterOptions::default()).unwrap();
        let cost = PhysicalCost::evaluate(&nl, &p, &r, &tech, CostWeights::default());
        let d64 = tech.crossbar_delay_ns(64);
        assert!(
            cost.average_delay_ns >= d64 && cost.average_delay_ns < d64 * 1.5,
            "avg {} vs crossbar {}",
            cost.average_delay_ns,
            d64
        );
    }
}
