use std::error::Error;
use std::fmt;

/// Errors produced by the physical-design flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PhysError {
    /// The netlist has no cells to place.
    EmptyNetlist,
    /// A placement was queried for a cell it does not contain.
    UnknownCell {
        /// The offending cell id.
        id: usize,
    },
    /// An option value is outside its legal range.
    InvalidOption {
        /// Which option.
        what: &'static str,
        /// Offending value rendered as text.
        value: String,
    },
    /// The router could not complete even after relaxing virtual capacity
    /// up to its limit.
    Unroutable {
        /// Wires left unrouted.
        failed: usize,
        /// Relaxation rounds performed.
        relaxations: usize,
    },
    /// A wire references fewer than two pins.
    DegenerateWire {
        /// The offending wire id.
        id: usize,
    },
}

impl fmt::Display for PhysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysError::EmptyNetlist => write!(f, "netlist contains no cells"),
            PhysError::UnknownCell { id } => write!(f, "unknown cell id {id}"),
            PhysError::InvalidOption { what, value } => {
                write!(f, "invalid option {what} = {value}")
            }
            PhysError::Unroutable {
                failed,
                relaxations,
            } => write!(
                f,
                "{failed} wires unroutable after {relaxations} capacity relaxations"
            ),
            PhysError::DegenerateWire { id } => {
                write!(f, "wire {id} has fewer than two pins")
            }
        }
    }
}

impl Error for PhysError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PhysError::EmptyNetlist.to_string().contains("no cells"));
        assert!(PhysError::Unroutable {
            failed: 3,
            relaxations: 5
        }
        .to_string()
        .contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PhysError>();
    }
}
