//! Physical-design substrate for the AutoNCS reproduction.
//!
//! Section 3.5 of the paper describes a customized placement & routing
//! flow: crossbars, neurons and discrete synapses are mixed-size cells that
//! need not align into rows; wires carry RC-delay-derived weights; the
//! placer minimizes a weighted-average (WA) smooth wirelength plus a
//! density penalty with conjugate gradient (Algorithm 4); and routing is
//! maze routing on a grid graph with FastRoute-style *virtual capacity*
//! that is relaxed until every wire routes. The final physical cost is
//! `α·L + β·A + δ·T` (Eq. 3) over total wirelength, chip area and average
//! wire delay.
//!
//! This crate implements that flow from scratch:
//!
//! * [`Netlist`] — cells and weighted wires derived from a
//!   `HybridMapping` (ncs-cluster) and a `TechnologyModel` (ncs-tech),
//! * [`place`] — the analytical placer (WA wirelength + finite-support
//!   smooth density, λ-doubling outer loop, CG inner solver, greedy
//!   overlap legalization),
//! * [`route`] — the grid-graph maze router with virtual capacity and
//!   congestion-map output,
//! * [`PhysicalCost`] / [`CostWeights`] — the Eq. 3 evaluator,
//! * [`implement_mapping`] — the one-call flow used by the experiments.
//!
//! # Examples
//!
//! ```
//! use ncs_cluster::full_crossbar;
//! use ncs_net::generators;
//! use ncs_phys::{implement_mapping, ImplementOptions};
//! use ncs_tech::TechnologyModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = generators::uniform_random(60, 0.05, 3)?;
//! let mapping = full_crossbar(&net, 16)?;
//! let design = implement_mapping(&mapping, &TechnologyModel::nm45(),
//!                                &ImplementOptions::fast())?;
//! assert!(design.cost.wirelength_um > 0.0);
//! assert!(design.cost.area_um2 > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anneal;
mod cost;
mod error;
mod netlist;
mod place;
mod route;

pub use anneal::{place_annealed, AnnealOptions};
pub use cost::{CostWeights, PhysicalCost};
pub use error::PhysError;
pub use netlist::{Cell, CellId, Netlist, Wire, WireId};
pub use place::{
    detailed_swap, detailed_swap_reference, place, NesterovOptions, PlaceAlgorithm, Placement,
    PlacerOptions,
};
pub use route::{route, CongestionMap, RouteAlgorithm, RouterOptions, Routing};

use ncs_cluster::HybridMapping;
use ncs_tech::TechnologyModel;

/// Options for the end-to-end [`implement_mapping`] flow.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ImplementOptions {
    /// Placement options.
    pub placer: PlacerOptions,
    /// Routing options.
    pub router: RouterOptions,
    /// Cost weights (α, β, δ); the paper sets all three to 1.
    pub weights: CostWeights,
    /// Routability-driven re-placement rounds: after routing, if the peak
    /// bin congestion exceeds [`ImplementOptions::congestion_target`], the
    /// placer's virtual-width factor ω is inflated by 15 % and the design
    /// is placed and routed again (keeping the cheapest attempt). 0
    /// disables the loop (the paper's single-pass flow).
    pub routability_iterations: usize,
    /// Peak bin congestion considered acceptable by the routability loop.
    pub congestion_target: usize,
}

impl ImplementOptions {
    /// A reduced-effort configuration for tests and doc examples.
    pub fn fast() -> Self {
        ImplementOptions {
            placer: PlacerOptions::fast(),
            router: RouterOptions::default(),
            weights: CostWeights::default(),
            routability_iterations: 0,
            congestion_target: usize::MAX,
        }
    }
}

/// A complete physical design: netlist, placement, routing and cost.
#[derive(Debug, Clone)]
pub struct PhysicalDesign {
    /// The placed-and-routed netlist.
    pub netlist: Netlist,
    /// Final legalized cell locations.
    pub placement: Placement,
    /// Routed wires and congestion data.
    pub routing: Routing,
    /// The Eq. 3 cost breakdown.
    pub cost: PhysicalCost,
}

/// Runs the full physical-design flow of Section 3.5 on a hybrid mapping:
/// netlist generation, analytical placement, maze routing, and cost
/// evaluation — with optional routability-driven re-placement (see
/// [`ImplementOptions::routability_iterations`]).
///
/// # Errors
///
/// Propagates [`PhysError`] from any stage (degenerate netlists, routing
/// failures that survive capacity relaxation, invalid options).
pub fn implement_mapping(
    mapping: &HybridMapping,
    tech: &TechnologyModel,
    options: &ImplementOptions,
) -> Result<PhysicalDesign, PhysError> {
    let netlist = Netlist::from_mapping(mapping, tech);
    let mut placer = options.placer.clone();
    let mut best: Option<PhysicalDesign> = None;
    for round in 0..=options.routability_iterations {
        ncs_trace::add("phys.rounds", 1);
        let placement = {
            let _span = ncs_trace::span("phys.place");
            place(&netlist, &placer)?
        };
        let routing = {
            let _span = ncs_trace::span("phys.route");
            route(&netlist, &placement, tech, &options.router)?
        };
        let cost = PhysicalCost::evaluate(&netlist, &placement, &routing, tech, options.weights);
        let congested = routing.congestion.max_usage() > options.congestion_target;
        let candidate = PhysicalDesign {
            netlist: netlist.clone(),
            placement,
            routing,
            cost,
        };
        let improved = best
            .as_ref()
            .is_none_or(|b| candidate.cost.total() < b.cost.total());
        if improved {
            best = Some(candidate);
        }
        if !congested || round == options.routability_iterations {
            break;
        }
        // Reserve more routing space and try again.
        placer.omega *= 1.15;
    }
    // `0..=routability_iterations` is never empty, so one round always
    // ran and recorded a design (or returned its error above).
    // ncs-lint: allow(no-panic-paths)
    Ok(best.expect("at least one round always runs"))
}
