use std::collections::BTreeSet;

use ncs_cluster::HybridMapping;
use ncs_tech::{CellDims, CellKind, TechnologyModel};

/// Identifier of a cell within a [`Netlist`].
pub type CellId = usize;

/// Identifier of a wire within a [`Netlist`].
pub type WireId = usize;

/// A placeable cell: a crossbar, a neuron, or a discrete synapse.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Cell id (index into [`Netlist::cells`]).
    pub id: CellId,
    /// What the cell is.
    pub kind: CellKind,
    /// Physical footprint.
    pub dims: CellDims,
    /// For neuron cells, the neuron index in the source network; for
    /// crossbar cells, the index of the crossbar in the mapping; for
    /// synapse cells, the index of the outlier connection.
    pub source: usize,
}

/// A weighted wire connecting two or more cells.
///
/// The netlist generator only emits two-pin wires (neuron ↔ crossbar and
/// neuron ↔ synapse), but the wirelength models accept arbitrary pin
/// counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Wire {
    /// Wire id (index into [`Netlist::wires`]).
    pub id: WireId,
    /// Connected cells.
    pub pins: Vec<CellId>,
    /// RC-delay-derived weight (higher = more timing-critical, shortened
    /// preferentially by the placer).
    pub weight: f64,
}

/// The cell/wire hypergraph that the placer and router operate on.
///
/// # Examples
///
/// ```
/// use ncs_cluster::full_crossbar;
/// use ncs_net::generators;
/// use ncs_phys::Netlist;
/// use ncs_tech::TechnologyModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = generators::uniform_random(40, 0.06, 1)?;
/// let mapping = full_crossbar(&net, 16)?;
/// let netlist = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
/// // One neuron cell per network neuron plus one cell per crossbar.
/// assert_eq!(netlist.cells.len(), 40 + mapping.crossbars().len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    /// All cells; `cells[i].id == i`.
    pub cells: Vec<Cell>,
    /// All wires; `wires[i].id == i`.
    pub wires: Vec<Wire>,
}

impl Netlist {
    /// Builds the netlist of a hybrid mapping:
    ///
    /// * one **neuron** cell per network neuron,
    /// * one **crossbar** cell per crossbar assignment, wired to every
    ///   distinct neuron it touches,
    /// * one **synapse** cell per outlier connection, wired to its source
    ///   and destination neurons.
    ///
    /// Wire weights come from
    /// [`TechnologyModel::wire_weight`], i.e. RC-delay estimates of the
    /// endpoints (Section 3.5, Eq. 1: "user-defined various wire weights
    /// between memristors and crossbars").
    pub fn from_mapping(mapping: &HybridMapping, tech: &TechnologyModel) -> Self {
        let mut cells = Vec::new();
        let mut wires = Vec::new();
        // Neuron cells first: neuron i -> cell id i.
        for neuron in 0..mapping.neurons() {
            cells.push(Cell {
                id: cells.len(),
                kind: CellKind::Neuron,
                dims: tech.dims(CellKind::Neuron),
                source: neuron,
            });
        }
        for (ci, xbar) in mapping.crossbars().iter().enumerate() {
            let kind = CellKind::Crossbar(xbar.size);
            let xbar_cell = cells.len();
            cells.push(Cell {
                id: xbar_cell,
                kind,
                dims: tech.dims(kind),
                source: ci,
            });
            let touched: BTreeSet<usize> = xbar
                .inputs
                .iter()
                .chain(xbar.outputs.iter())
                .copied()
                .collect();
            for neuron in touched {
                wires.push(Wire {
                    id: wires.len(),
                    pins: vec![neuron, xbar_cell],
                    weight: tech.wire_weight(CellKind::Neuron, kind),
                });
            }
        }
        for (oi, &(from, to)) in mapping.outliers().iter().enumerate() {
            let syn_cell = cells.len();
            cells.push(Cell {
                id: syn_cell,
                kind: CellKind::Synapse,
                dims: tech.dims(CellKind::Synapse),
                source: oi,
            });
            let weight = tech.wire_weight(CellKind::Neuron, CellKind::Synapse);
            wires.push(Wire {
                id: wires.len(),
                pins: vec![from, syn_cell],
                weight,
            });
            if to != from {
                wires.push(Wire {
                    id: wires.len(),
                    pins: vec![syn_cell, to],
                    weight,
                });
            }
        }
        Netlist { cells, wires }
    }

    /// Builds a **shared-net** netlist: instead of one 2-pin wire per
    /// neuron/cell pair, each neuron gets a single multi-pin net spanning
    /// every crossbar and synapse cell it touches — the physically
    /// accurate model of a neuron's output being one electrical net. The
    /// router decomposes these nets into Manhattan spanning trees, so this
    /// model reports lower (more realistic) total wirelength; the default
    /// pairwise model matches the paper's per-connection accounting. The
    /// `repro nets` ablation compares both.
    pub fn from_mapping_shared(mapping: &HybridMapping, tech: &TechnologyModel) -> Self {
        let pairwise = Self::from_mapping(mapping, tech);
        let mut nets: Vec<(Vec<CellId>, f64)> = vec![(Vec::new(), 0.0); mapping.neurons()];
        for wire in &pairwise.wires {
            // Every generated wire is neuron ↔ device; fold it into the
            // neuron's net, keeping the heaviest weight.
            let (&neuron, &device) = match wire.pins.as_slice() {
                [a, b] if *a < mapping.neurons() => (a, b),
                [a, b] => (b, a),
                // ncs-lint: allow(no-panic-paths) — from_mapping emits only 2-pin wires
                _ => unreachable!("generator emits 2-pin wires"),
            };
            let net = &mut nets[neuron];
            if !net.0.contains(&device) {
                net.0.push(device);
            }
            net.1 = net.1.max(wire.weight);
        }
        let mut wires = Vec::new();
        for (neuron, (mut devices, weight)) in nets.into_iter().enumerate() {
            if devices.is_empty() {
                continue;
            }
            let mut pins = vec![neuron];
            pins.append(&mut devices);
            wires.push(Wire {
                id: wires.len(),
                pins,
                weight,
            });
        }
        Netlist {
            cells: pairwise.cells,
            wires,
        }
    }

    /// Total cell area, µm².
    pub fn total_cell_area(&self) -> f64 {
        self.cells.iter().map(|c| c.dims.area()).sum()
    }

    /// Number of cells of each kind: `(crossbars, synapses, neurons)`.
    pub fn kind_counts(&self) -> (usize, usize, usize) {
        let mut x = 0;
        let mut s = 0;
        let mut n = 0;
        for c in &self.cells {
            match c.kind {
                CellKind::Crossbar(_) => x += 1,
                CellKind::Synapse => s += 1,
                CellKind::Neuron => n += 1,
            }
        }
        (x, s, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_cluster::{full_crossbar, CrossbarAssignment, HybridMapping};
    use ncs_net::generators;

    #[test]
    fn cell_ids_are_indices() {
        let net = generators::uniform_random(30, 0.08, 2).unwrap();
        let mapping = full_crossbar(&net, 16).unwrap();
        let nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        for (i, c) in nl.cells.iter().enumerate() {
            assert_eq!(c.id, i);
        }
        for (i, w) in nl.wires.iter().enumerate() {
            assert_eq!(w.id, i);
            assert_eq!(w.pins.len(), 2);
            for &p in &w.pins {
                assert!(p < nl.cells.len());
            }
        }
    }

    #[test]
    fn outliers_become_synapse_cells_with_two_wires() {
        let mapping = HybridMapping::new(4, vec![], vec![(0, 1), (2, 3)]);
        let nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        let (x, s, n) = nl.kind_counts();
        assert_eq!((x, s, n), (0, 2, 4));
        assert_eq!(nl.wires.len(), 4);
    }

    #[test]
    fn self_loop_outlier_gets_single_wire() {
        let mapping = HybridMapping::new(2, vec![], vec![(1, 1)]);
        let nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        assert_eq!(nl.wires.len(), 1);
    }

    #[test]
    fn crossbar_wires_touch_each_distinct_neuron_once() {
        let xbar = CrossbarAssignment::new(
            vec![0, 1, 2],
            vec![0, 1, 2],
            16,
            vec![(0, 1), (1, 2), (2, 0)],
        );
        let mapping = HybridMapping::new(3, vec![xbar], vec![]);
        let nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        // 3 neurons + 1 crossbar, 3 neuron-to-crossbar wires.
        assert_eq!(nl.cells.len(), 4);
        assert_eq!(nl.wires.len(), 3);
    }

    #[test]
    fn crossbar_wires_are_heavier_than_synapse_wires() {
        let xbar = CrossbarAssignment::new(vec![0], vec![0], 64, vec![(0, 0)]);
        let mapping = HybridMapping::new(2, vec![xbar], vec![(0, 1)]);
        let nl = Netlist::from_mapping(&mapping, &TechnologyModel::nm45());
        let xbar_wire = nl
            .wires
            .iter()
            .find(|w| w.pins.contains(&2))
            .expect("crossbar wire exists");
        let syn_wire = nl
            .wires
            .iter()
            .find(|w| w.pins.contains(&3))
            .expect("synapse wire exists");
        assert!(xbar_wire.weight > syn_wire.weight);
    }

    #[test]
    fn shared_nets_fold_pairwise_wires_per_neuron() {
        // Neuron 0 feeds a crossbar and a synapse: one shared net with
        // three pins instead of two 2-pin wires.
        let xbar = CrossbarAssignment::new(vec![0, 1], vec![0, 1], 16, vec![(0, 1)]);
        let mapping = HybridMapping::new(3, vec![xbar], vec![(0, 2)]);
        let tech = TechnologyModel::nm45();
        let pairwise = Netlist::from_mapping(&mapping, &tech);
        let shared = Netlist::from_mapping_shared(&mapping, &tech);
        assert_eq!(pairwise.cells, shared.cells);
        assert!(shared.wires.len() < pairwise.wires.len());
        // Neuron 0's net: crossbar cell (3) + synapse cell (4) + itself.
        let net0 = shared
            .wires
            .iter()
            .find(|w| w.pins[0] == 0)
            .expect("net for neuron 0");
        assert_eq!(net0.pins.len(), 3);
        // Weight keeps the heaviest (crossbar) class.
        let xbar_weight = tech.wire_weight(CellKind::Neuron, CellKind::Crossbar(16));
        assert_eq!(net0.weight, xbar_weight);
        // Every neuron pin count is conserved as a set.
        let total_device_pins: usize = shared.wires.iter().map(|w| w.pins.len() - 1).sum();
        assert_eq!(total_device_pins, pairwise.wires.len());
    }

    #[test]
    fn shared_nets_route_and_place() {
        use crate::{place, route, PlacerOptions, RouterOptions};
        let net = generators::uniform_random(40, 0.06, 8).unwrap();
        let mapping = full_crossbar(&net, 16).unwrap();
        let tech = TechnologyModel::nm45();
        let shared = Netlist::from_mapping_shared(&mapping, &tech);
        let p = place(&shared, &PlacerOptions::fast()).unwrap();
        let r = route(&shared, &p, &tech, &RouterOptions::default()).unwrap();
        assert_eq!(r.routed.len(), shared.wires.len());
        // The shared-net model must never cost more wire than pairwise on
        // the same placement (a spanning tree reuses trunks).
        let pairwise = Netlist::from_mapping(&mapping, &tech);
        let rp = route(&pairwise, &p, &tech, &RouterOptions::default()).unwrap();
        assert!(
            r.total_wirelength_um <= rp.total_wirelength_um + 1e-9,
            "shared {} vs pairwise {}",
            r.total_wirelength_um,
            rp.total_wirelength_um
        );
    }

    #[test]
    fn total_area_sums_cells() {
        let mapping = HybridMapping::new(2, vec![], vec![(0, 1)]);
        let tech = TechnologyModel::nm45();
        let nl = Netlist::from_mapping(&mapping, &tech);
        let expect = 2.0 * tech.area(CellKind::Neuron) + tech.area(CellKind::Synapse);
        assert!((nl.total_cell_area() - expect).abs() < 1e-9);
    }
}
