//! Seeded property tests for the physical-design substrate: placement
//! legality and routing consistency over randomized mappings.
//!
//! Formerly a proptest suite; rewritten as deterministic case loops over
//! `ncs_rng`-generated inputs so the workspace builds offline with no
//! registry dependencies. The invariants are unchanged.

use ncs_cluster::full_crossbar;
use ncs_net::generators;
use ncs_phys::{
    place, place_annealed, route, AnnealOptions, Netlist, PlacerOptions, RouterOptions,
};
use ncs_rng::Rng;
use ncs_tech::TechnologyModel;

// Placement is expensive; keep case counts modest (matches the old
// ProptestConfig::with_cases(10)).
const CASES: usize = 10;

fn random_netlist(n: usize, density: f64, size: usize, seed: u64) -> Netlist {
    let net = generators::uniform_random(n, density, seed).expect("valid generator args");
    let mapping = full_crossbar(&net, size).expect("valid crossbar size");
    Netlist::from_mapping(&mapping, &TechnologyModel::nm45())
}

#[test]
fn placement_is_always_legal() {
    let mut rng = Rng::seed_from_u64(0x7031);
    for case in 0..CASES {
        let n = rng.gen_range(10usize..50);
        let density = rng.gen_range(0.02f64..0.12);
        let size = rng.gen_range(8usize..24);
        let seed = rng.gen_range(0u64..100);
        let nl = random_netlist(n, density, size, seed);
        let p = place(&nl, &PlacerOptions::fast()).unwrap();
        // Legal: negligible overlap, positive quadrant, finite coordinates.
        assert!(
            p.final_overlap_um2 < 0.02 * nl.total_cell_area().max(1.0),
            "case {case}: n={n} size={size} seed={seed}"
        );
        let (x0, y0, x1, y1) = p.bounding_box(&nl);
        assert!(x0 > -1e-9 && y0 > -1e-9, "case {case}");
        assert!(x1.is_finite() && y1.is_finite(), "case {case}");
        // The die can hold all cells.
        assert!(
            p.area_um2(&nl) >= nl.total_cell_area() * 0.99,
            "case {case}"
        );
    }
}

#[test]
fn annealed_placement_is_always_legal() {
    let mut rng = Rng::seed_from_u64(0x7032);
    for case in 0..CASES {
        let n = rng.gen_range(10usize..40);
        let seed = rng.gen_range(0u64..100);
        let nl = random_netlist(n, 0.06, 16, seed);
        let p = place_annealed(&nl, &AnnealOptions::fast()).unwrap();
        assert!(
            p.final_overlap_um2 < 0.02 * nl.total_cell_area().max(1.0),
            "case {case}: n={n} seed={seed}"
        );
    }
}

#[test]
fn routing_is_complete_and_consistent() {
    let mut rng = Rng::seed_from_u64(0x7033);
    for case in 0..CASES {
        let n = rng.gen_range(10usize..40);
        let theta = rng.gen_range(2.0f64..10.0);
        let seed = rng.gen_range(0u64..100);
        let nl = random_netlist(n, 0.06, 16, seed);
        let p = place(&nl, &PlacerOptions::fast()).unwrap();
        let opts = RouterOptions {
            theta,
            ..RouterOptions::default()
        };
        let r = route(&nl, &p, &TechnologyModel::nm45(), &opts).unwrap();
        assert_eq!(r.routed.len(), nl.wires.len(), "case {case}");
        // Lengths are non-negative multiples of theta; paths visit valid bins.
        for rw in &r.routed {
            assert!(rw.length_um >= 0.0, "case {case}");
            let steps = (rw.length_um / theta).round() as usize;
            assert!(
                (rw.length_um - steps as f64 * theta).abs() < 1e-9,
                "case {case}: length {} not a multiple of theta {theta}",
                rw.length_um
            );
            for &(c, row) in &rw.path {
                assert!(
                    c < r.congestion.cols && row < r.congestion.rows,
                    "case {case}"
                );
            }
        }
        // Usage bookkeeping matches the paths.
        let bins: usize = r.routed.iter().map(|w| w.path.len()).sum();
        assert_eq!(
            bins,
            r.congestion.usage.iter().sum::<usize>(),
            "case {case}"
        );
    }
}

#[test]
fn detailed_swap_is_monotone() {
    let mut rng = Rng::seed_from_u64(0x7034);
    for case in 0..CASES {
        let n = rng.gen_range(10usize..40);
        let seed = rng.gen_range(0u64..100);
        let nl = random_netlist(n, 0.06, 16, seed);
        let base = place(&nl, &PlacerOptions::fast()).unwrap();
        let refined = place(
            &nl,
            &PlacerOptions {
                detailed_swap_passes: 3,
                ..PlacerOptions::fast()
            },
        )
        .unwrap();
        assert!(
            refined.weighted_hpwl(&nl) <= base.weighted_hpwl(&nl) + 1e-9,
            "case {case}: n={n} seed={seed}"
        );
        assert!(
            (refined.area_um2(&nl) - base.area_um2(&nl)).abs() < 1e-6,
            "case {case}"
        );
    }
}
