//! Property-based tests for the physical-design substrate: placement
//! legality and routing consistency over randomized mappings.

use ncs_cluster::full_crossbar;
use ncs_net::generators;
use ncs_phys::{place, place_annealed, route, AnnealOptions, Netlist, PlacerOptions, RouterOptions};
use ncs_tech::TechnologyModel;
use proptest::prelude::*;

fn random_netlist(n: usize, density: f64, size: usize, seed: u64) -> Netlist {
    let net = generators::uniform_random(n, density, seed).expect("valid generator args");
    let mapping = full_crossbar(&net, size).expect("valid crossbar size");
    Netlist::from_mapping(&mapping, &TechnologyModel::nm45())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn placement_is_always_legal(
        n in 10usize..50,
        density in 0.02f64..0.12,
        size in 8usize..24,
        seed in 0u64..100
    ) {
        let nl = random_netlist(n, density, size, seed);
        let p = place(&nl, &PlacerOptions::fast()).unwrap();
        // Legal: negligible overlap, positive quadrant, finite coordinates.
        prop_assert!(p.final_overlap_um2 < 0.02 * nl.total_cell_area().max(1.0));
        let (x0, y0, x1, y1) = p.bounding_box(&nl);
        prop_assert!(x0 > -1e-9 && y0 > -1e-9);
        prop_assert!(x1.is_finite() && y1.is_finite());
        // The die can hold all cells.
        prop_assert!(p.area_um2(&nl) >= nl.total_cell_area() * 0.99);
    }

    #[test]
    fn annealed_placement_is_always_legal(
        n in 10usize..40,
        seed in 0u64..100
    ) {
        let nl = random_netlist(n, 0.06, 16, seed);
        let p = place_annealed(&nl, &AnnealOptions::fast()).unwrap();
        prop_assert!(p.final_overlap_um2 < 0.02 * nl.total_cell_area().max(1.0));
    }

    #[test]
    fn routing_is_complete_and_consistent(
        n in 10usize..40,
        theta in 2.0f64..10.0,
        seed in 0u64..100
    ) {
        let nl = random_netlist(n, 0.06, 16, seed);
        let p = place(&nl, &PlacerOptions::fast()).unwrap();
        let opts = RouterOptions { theta, ..RouterOptions::default() };
        let r = route(&nl, &p, &TechnologyModel::nm45(), &opts).unwrap();
        prop_assert_eq!(r.routed.len(), nl.wires.len());
        // Lengths are non-negative multiples of theta; paths visit valid bins.
        for rw in &r.routed {
            prop_assert!(rw.length_um >= 0.0);
            let steps = (rw.length_um / theta).round() as usize;
            prop_assert!((rw.length_um - steps as f64 * theta).abs() < 1e-9);
            for &(c, row) in &rw.path {
                prop_assert!(c < r.congestion.cols && row < r.congestion.rows);
            }
        }
        // Usage bookkeeping matches the paths.
        let bins: usize = r.routed.iter().map(|w| w.path.len()).sum();
        prop_assert_eq!(bins, r.congestion.usage.iter().sum::<usize>());
    }

    #[test]
    fn detailed_swap_is_monotone(
        n in 10usize..40,
        seed in 0u64..100
    ) {
        let nl = random_netlist(n, 0.06, 16, seed);
        let base = place(&nl, &PlacerOptions::fast()).unwrap();
        let refined = place(
            &nl,
            &PlacerOptions { detailed_swap_passes: 3, ..PlacerOptions::fast() },
        )
        .unwrap();
        prop_assert!(refined.weighted_hpwl(&nl) <= base.weighted_hpwl(&nl) + 1e-9);
        prop_assert!((refined.area_um2(&nl) - base.area_um2(&nl)).abs() < 1e-6);
    }
}
