use crate::XbarError;

/// Electrical parameters of the memristor device and the crossbar wires.
///
/// Defaults follow the TiO₂-class numbers commonly used in the
/// memristor-NCS literature (the paper's refs \[1\]\[2\]\[6\]): on/off
/// resistances of 10 kΩ / 1 MΩ and a per-cell wire segment resistance of
/// a few ohms at a 45 nm-class pitch. The wire/device resistance ratio is
/// exactly what makes large arrays unreliable: read current returning
/// through long rows loses voltage across the accumulated segment
/// resistance.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    /// Low-resistance (fully "on") state, Ω.
    pub r_on_ohm: f64,
    /// High-resistance (fully "off") state, Ω.
    pub r_off_ohm: f64,
    /// Wire resistance of one cell-to-cell segment, Ω.
    pub r_wire_ohm: f64,
    /// Read voltage applied to active rows, V (scales inputs).
    pub v_read: f64,
    /// Lognormal sigma of programmed-conductance variation (0 = ideal
    /// programming).
    pub variation_sigma: f64,
}

impl DeviceModel {
    /// Validates physical sanity.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidDevice`] for non-positive resistances,
    /// `r_on >= r_off`, or a negative variation sigma.
    pub fn validate(&self) -> Result<(), XbarError> {
        if self.r_on_ohm <= 0.0 {
            return Err(XbarError::InvalidDevice {
                what: "r_on_ohm must be positive",
            });
        }
        if self.r_off_ohm <= self.r_on_ohm {
            return Err(XbarError::InvalidDevice {
                what: "r_off_ohm must exceed r_on_ohm",
            });
        }
        if self.r_wire_ohm < 0.0 {
            return Err(XbarError::InvalidDevice {
                what: "r_wire_ohm must be non-negative",
            });
        }
        if self.variation_sigma < 0.0 {
            return Err(XbarError::InvalidDevice {
                what: "variation_sigma must be non-negative",
            });
        }
        Ok(())
    }

    /// Conductance of the fully-on state, S.
    pub fn g_on(&self) -> f64 {
        1.0 / self.r_on_ohm
    }

    /// Conductance of the fully-off state, S.
    pub fn g_off(&self) -> f64 {
        1.0 / self.r_off_ohm
    }

    /// Maps a weight in `[0, 1]` linearly onto `[g_off, g_on]`.
    pub fn weight_to_conductance(&self, weight: f64) -> f64 {
        self.g_off() + weight.clamp(0.0, 1.0) * (self.g_on() - self.g_off())
    }
}

impl Default for DeviceModel {
    fn default() -> Self {
        DeviceModel {
            r_on_ohm: 10e3,
            r_off_ohm: 1e6,
            r_wire_ohm: 2.5,
            v_read: 0.3,
            variation_sigma: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        DeviceModel::default().validate().unwrap();
    }

    #[test]
    fn validation_catches_nonsense() {
        let d = DeviceModel {
            r_on_ohm: 0.0,
            ..DeviceModel::default()
        };
        assert!(d.validate().is_err());
        let base = DeviceModel::default();
        let d = DeviceModel {
            r_off_ohm: base.r_on_ohm,
            ..base.clone()
        };
        assert!(d.validate().is_err());
        let d = DeviceModel {
            r_wire_ohm: -1.0,
            ..DeviceModel::default()
        };
        assert!(d.validate().is_err());
        let d = DeviceModel {
            variation_sigma: -0.1,
            ..DeviceModel::default()
        };
        assert!(d.validate().is_err());
    }

    #[test]
    fn conductance_mapping_is_monotone_and_bounded() {
        let d = DeviceModel::default();
        assert!((d.weight_to_conductance(0.0) - d.g_off()).abs() < 1e-15);
        assert!((d.weight_to_conductance(1.0) - d.g_on()).abs() < 1e-15);
        assert!(d.weight_to_conductance(0.3) < d.weight_to_conductance(0.7));
        // Clamped outside [0, 1].
        assert_eq!(d.weight_to_conductance(-1.0), d.g_off());
        assert_eq!(d.weight_to_conductance(2.0), d.g_on());
    }
}
