use ncs_rng::Rng;

use crate::{DeviceModel, XbarError};

/// A programmed memristor crossbar: a conductance at every row/column
/// junction plus the device/wire parameters needed to evaluate it.
///
/// Two evaluation modes are provided:
///
/// * [`CrossbarArray::evaluate_ideal`] — the textbook analog dot product
///   `I_j = Σ_i V_i · G_ij` (zero wire resistance),
/// * [`CrossbarArray::evaluate_ir_drop`] — full nodal analysis of the
///   resistive row/column wires (drivers on the row left edge, virtual
///   grounds at the column bottom edge), solved by Gauss-Seidel
///   relaxation. This is the effect that limits practical crossbars to
///   ~64×64 (paper Section 2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarArray {
    rows: usize,
    cols: usize,
    conductance: Vec<f64>,
    device: DeviceModel,
}

impl CrossbarArray {
    /// Programs an array from weights in `[0, 1]` (one row per input).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::MalformedWeights`] for empty/ragged input,
    /// [`XbarError::WeightOutOfRange`] for weights outside `[0, 1]`, and
    /// propagates device validation errors.
    pub fn program(weights: &[Vec<f64>], device: &DeviceModel) -> Result<Self, XbarError> {
        device.validate()?;
        if weights.is_empty() || weights[0].is_empty() {
            return Err(XbarError::MalformedWeights {
                message: "empty matrix".to_string(),
            });
        }
        let cols = weights[0].len();
        let rows = weights.len();
        let mut conductance = Vec::with_capacity(rows * cols);
        for (i, row) in weights.iter().enumerate() {
            if row.len() != cols {
                return Err(XbarError::MalformedWeights {
                    message: format!("row {i} has {} entries, expected {cols}", row.len()),
                });
            }
            for (j, &w) in row.iter().enumerate() {
                if !(0.0..=1.0).contains(&w) {
                    return Err(XbarError::WeightOutOfRange {
                        at: (i, j),
                        value: w,
                        limit: 1.0,
                    });
                }
                conductance.push(device.weight_to_conductance(w));
            }
        }
        Ok(CrossbarArray {
            rows,
            cols,
            conductance,
            device: device.clone(),
        })
    }

    /// Number of input rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of output columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The programmed conductance at `(row, col)`, S.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn conductance(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of range"
        );
        self.conductance[row * self.cols + col]
    }

    /// Applies seeded lognormal process variation to every junction:
    /// `g ← g · exp(σ·z)` with `z ~ N(0, 1)`, clamped back into
    /// `[g_off, g_on]`.
    pub fn with_variation(mut self, sigma: f64, seed: u64) -> Self {
        if sigma <= 0.0 {
            return self;
        }
        let mut rng = Rng::seed_from_u64(seed);
        let (g_off, g_on) = (self.device.g_off(), self.device.g_on());
        for g in &mut self.conductance {
            let z = rng.normal(0.0, 1.0);
            *g = (*g * (sigma * z).exp()).clamp(g_off, g_on);
        }
        self
    }

    /// Replaces the conductance array wholesale (used by the write-verify
    /// programming loop, which derives each value through pulses).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match `rows · cols`.
    pub(crate) fn with_conductances(mut self, conductance: Vec<f64>) -> Self {
        assert_eq!(
            conductance.len(),
            self.rows * self.cols,
            "conductance vector length must match the array"
        );
        self.conductance = conductance;
        self
    }

    /// Injects stuck-at device defects: each junction independently
    /// becomes stuck-at-on (conductance pinned to `g_on`) with probability
    /// `stuck_on`, or stuck-at-off (`g_off`) with probability `stuck_off`.
    /// Together with IR-drop and variation these are the three reliability
    /// limiters Section 2.1 of the paper names.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are negative or sum above 1.
    pub fn with_stuck_faults(mut self, stuck_on: f64, stuck_off: f64, seed: u64) -> Self {
        assert!(
            stuck_on >= 0.0 && stuck_off >= 0.0 && stuck_on + stuck_off <= 1.0,
            "defect probabilities must be non-negative and sum to at most 1"
        );
        // ncs-lint: allow(float-eq) — exact zeros mean the fault model is disabled
        if stuck_on == 0.0 && stuck_off == 0.0 {
            return self;
        }
        let mut rng = Rng::seed_from_u64(seed);
        let (g_off, g_on) = (self.device.g_off(), self.device.g_on());
        for g in &mut self.conductance {
            let roll: f64 = rng.gen_f64();
            if roll < stuck_on {
                *g = g_on;
            } else if roll < stuck_on + stuck_off {
                *g = g_off;
            }
        }
        self
    }

    fn check_inputs(&self, inputs: &[f64]) -> Result<(), XbarError> {
        if inputs.len() != self.rows {
            return Err(XbarError::InputDimensionMismatch {
                expected: self.rows,
                found: inputs.len(),
            });
        }
        Ok(())
    }

    /// Ideal analog dot product: output currents `I_j = Σ_i V_i·G_ij`,
    /// with `V_i = v_read · inputs[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InputDimensionMismatch`] for a wrong-length
    /// input vector.
    pub fn evaluate_ideal(&self, inputs: &[f64]) -> Result<Vec<f64>, XbarError> {
        self.check_inputs(inputs)?;
        let mut out = vec![0.0; self.cols];
        for (i, &input) in inputs.iter().enumerate() {
            let v = self.device.v_read * input;
            // ncs-lint: allow(float-eq) — exact-zero drive skips a no-op accumulation
            if v == 0.0 {
                continue;
            }
            let row = &self.conductance[i * self.cols..(i + 1) * self.cols];
            for (o, &g) in out.iter_mut().zip(row) {
                *o += v * g;
            }
        }
        Ok(out)
    }

    /// IR-drop-aware evaluation: solves the full resistive network — row
    /// wires driven from the left edge, column wires sensed at virtual
    /// ground on the bottom edge, one wire segment (resistance
    /// `r_wire_ohm`) between adjacent junctions — by Gauss-Seidel nodal
    /// relaxation, then returns the column sense currents.
    ///
    /// With `r_wire_ohm == 0` this reduces exactly to
    /// [`CrossbarArray::evaluate_ideal`].
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InputDimensionMismatch`] for a wrong-length
    /// input and [`XbarError::SolverDiverged`] if relaxation stalls
    /// (does not happen for physical parameter ranges).
    #[allow(clippy::needless_range_loop)] // Gauss-Seidel sweeps index
                                          // several parallel arrays by node id; iterator form would obscure it.
    pub fn evaluate_ir_drop(&self, inputs: &[f64]) -> Result<Vec<f64>, XbarError> {
        self.check_inputs(inputs)?;
        // ncs-lint: allow(float-eq) — exact zero selects the ideal (no-IR-drop) model
        if self.device.r_wire_ohm == 0.0 {
            return self.evaluate_ideal(inputs);
        }
        let (rows, cols) = (self.rows, self.cols);
        let g_w = 1.0 / self.device.r_wire_ohm;
        let v_in: Vec<f64> = inputs.iter().map(|&x| self.device.v_read * x).collect();
        // Unknowns: row-node and column-node voltages at every junction.
        let mut v_r = vec![0.0; rows * cols];
        let mut v_c = vec![0.0; rows * cols];
        // Warm start from the ideal solution: rows at drive voltage,
        // columns at ground.
        for (i, &v) in v_in.iter().enumerate() {
            for j in 0..cols {
                v_r[i * cols + j] = v;
            }
        }
        let max_iterations = 40_000;
        // Per-sweep voltage-change tolerance: 1e-8 of the read voltage is
        // far below any measurable analog effect; Gauss-Seidel convergence
        // slows quadratically with array dimension, so demanding more on
        // 128x128 arrays would burn sweeps for no physical gain.
        let tolerance = 1e-8 * self.device.v_read.max(1e-9);
        let mut residual = f64::INFINITY;
        for iteration in 0..max_iterations {
            residual = 0.0;
            for i in 0..rows {
                for j in 0..cols {
                    let idx = i * cols + j;
                    let g_dev = self.conductance[idx];
                    // Row node: neighbours along the row + device.
                    let mut num = g_dev * v_c[idx];
                    let mut den = g_dev;
                    if j == 0 {
                        num += g_w * v_in[i];
                        den += g_w;
                    } else {
                        num += g_w * v_r[idx - 1];
                        den += g_w;
                    }
                    if j + 1 < cols {
                        num += g_w * v_r[idx + 1];
                        den += g_w;
                    }
                    let new_vr = num / den;
                    residual = residual.max((new_vr - v_r[idx]).abs());
                    v_r[idx] = new_vr;
                    // Column node: neighbours along the column + device;
                    // the bottom node also sees the virtual ground.
                    let mut num = g_dev * v_r[idx];
                    let mut den = g_dev;
                    if i > 0 {
                        num += g_w * v_c[idx - cols];
                        den += g_w;
                    }
                    if i + 1 < rows {
                        num += g_w * v_c[idx + cols];
                        den += g_w;
                    } else {
                        // Ground connection: + g_w * 0.
                        den += g_w;
                    }
                    let new_vc = num / den;
                    residual = residual.max((new_vc - v_c[idx]).abs());
                    v_c[idx] = new_vc;
                }
            }
            if residual < tolerance {
                break;
            }
            if iteration + 1 == max_iterations {
                return Err(XbarError::SolverDiverged {
                    iterations: max_iterations,
                    residual,
                });
            }
        }
        let _ = residual;
        // Sense currents: bottom column node through the ground segment.
        let mut out = vec![0.0; cols];
        for (j, o) in out.iter_mut().enumerate() {
            *o = g_w * v_c[(rows - 1) * cols + j];
        }
        Ok(out)
    }

    /// The device model in effect.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }
}

/// A signed-weight crossbar built from a differential pair of arrays:
/// positive weights program the `plus` array, negative weights the
/// `minus` array, and the output is the current difference — the standard
/// technique for representing signed synapses with positive conductances.
#[derive(Debug, Clone, PartialEq)]
pub struct SignedCrossbar {
    plus: CrossbarArray,
    minus: CrossbarArray,
}

impl SignedCrossbar {
    /// Programs a signed weight matrix with entries in `[-1, 1]`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CrossbarArray::program`], with the magnitude
    /// limit at 1.
    pub fn program(weights: &[Vec<f64>], device: &DeviceModel) -> Result<Self, XbarError> {
        let mut pos = Vec::with_capacity(weights.len());
        let mut neg = Vec::with_capacity(weights.len());
        for (i, row) in weights.iter().enumerate() {
            let mut prow = Vec::with_capacity(row.len());
            let mut nrow = Vec::with_capacity(row.len());
            for (j, &w) in row.iter().enumerate() {
                if !(-1.0..=1.0).contains(&w) {
                    return Err(XbarError::WeightOutOfRange {
                        at: (i, j),
                        value: w,
                        limit: 1.0,
                    });
                }
                prow.push(w.max(0.0));
                nrow.push((-w).max(0.0));
            }
            pos.push(prow);
            neg.push(nrow);
        }
        Ok(SignedCrossbar {
            plus: CrossbarArray::program(&pos, device)?,
            minus: CrossbarArray::program(&neg, device)?,
        })
    }

    /// Applies independent process variation to both halves.
    pub fn with_variation(self, sigma: f64, seed: u64) -> Self {
        SignedCrossbar {
            plus: self.plus.with_variation(sigma, seed),
            minus: self.minus.with_variation(sigma, seed ^ 0x9e3779b97f4a7c15),
        }
    }

    /// Ideal differential evaluation `I⁺ − I⁻`.
    ///
    /// # Errors
    ///
    /// Propagates input-dimension errors.
    pub fn evaluate_ideal(&self, inputs: &[f64]) -> Result<Vec<f64>, XbarError> {
        let p = self.plus.evaluate_ideal(inputs)?;
        let n = self.minus.evaluate_ideal(inputs)?;
        Ok(p.into_iter().zip(n).map(|(a, b)| a - b).collect())
    }

    /// IR-drop-aware differential evaluation.
    ///
    /// # Errors
    ///
    /// Propagates input-dimension and solver errors.
    pub fn evaluate_ir_drop(&self, inputs: &[f64]) -> Result<Vec<f64>, XbarError> {
        let p = self.plus.evaluate_ir_drop(inputs)?;
        let n = self.minus.evaluate_ir_drop(inputs)?;
        Ok(p.into_iter().zip(n).map(|(a, b)| a - b).collect())
    }

    /// Number of input rows.
    pub fn rows(&self) -> usize {
        self.plus.rows()
    }

    /// Number of output columns.
    pub fn cols(&self) -> usize {
        self.plus.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relative_error;

    fn uniform_weights(n: usize, w: f64) -> Vec<Vec<f64>> {
        vec![vec![w; n]; n]
    }

    #[test]
    fn ideal_evaluation_matches_dot_product() {
        let device = DeviceModel::default();
        let weights = vec![vec![0.0, 1.0], vec![1.0, 0.5]];
        let array = CrossbarArray::program(&weights, &device).unwrap();
        let out = array.evaluate_ideal(&[1.0, 1.0]).unwrap();
        let v = device.v_read;
        let g = |w: f64| device.weight_to_conductance(w);
        assert!((out[0] - v * (g(0.0) + g(1.0))).abs() < 1e-12);
        assert!((out[1] - v * (g(1.0) + g(0.5))).abs() < 1e-12);
    }

    #[test]
    fn program_validates_inputs() {
        let device = DeviceModel::default();
        assert!(CrossbarArray::program(&[], &device).is_err());
        assert!(CrossbarArray::program(&[vec![0.1], vec![0.1, 0.2]], &device).is_err());
        assert!(matches!(
            CrossbarArray::program(&[vec![1.5]], &device),
            Err(XbarError::WeightOutOfRange { .. })
        ));
        assert!(array_err_on_bad_device());
    }

    fn array_err_on_bad_device() -> bool {
        let device = DeviceModel {
            r_on_ohm: -1.0,
            ..DeviceModel::default()
        };
        CrossbarArray::program(&[vec![0.5]], &device).is_err()
    }

    #[test]
    fn zero_wire_resistance_is_exactly_ideal() {
        let device = DeviceModel {
            r_wire_ohm: 0.0,
            ..DeviceModel::default()
        };
        let array = CrossbarArray::program(&uniform_weights(6, 0.7), &device).unwrap();
        let inputs: Vec<f64> = (0..6).map(|i| (i % 2) as f64).collect();
        assert_eq!(
            array.evaluate_ideal(&inputs).unwrap(),
            array.evaluate_ir_drop(&inputs).unwrap()
        );
    }

    #[test]
    fn ir_drop_only_reduces_outputs() {
        let device = DeviceModel::default();
        let array = CrossbarArray::program(&uniform_weights(16, 1.0), &device).unwrap();
        let inputs = vec![1.0; 16];
        let ideal = array.evaluate_ideal(&inputs).unwrap();
        let real = array.evaluate_ir_drop(&inputs).unwrap();
        for (a, b) in ideal.iter().zip(&real) {
            assert!(b <= a, "IR drop cannot amplify currents: {b} > {a}");
            assert!(*b > 0.0);
        }
    }

    #[test]
    fn ir_drop_error_grows_with_array_size() {
        let device = DeviceModel::default();
        let mut last = 0.0;
        for n in [8usize, 32, 64] {
            let array = CrossbarArray::program(&uniform_weights(n, 1.0), &device).unwrap();
            let inputs = vec![1.0; n];
            let ideal = array.evaluate_ideal(&inputs).unwrap();
            let real = array.evaluate_ir_drop(&inputs).unwrap();
            let err = relative_error(&ideal, &real);
            assert!(err > last, "error must grow with size: {err} at n={n}");
            last = err;
        }
        assert!(
            last > 0.05,
            "64x64 worst-case IR drop should be noticeable, got {last}"
        );
    }

    #[test]
    fn far_corner_sees_the_most_drop() {
        let device = DeviceModel::default();
        let n = 24;
        let array = CrossbarArray::program(&uniform_weights(n, 1.0), &device).unwrap();
        let real = array.evaluate_ir_drop(&vec![1.0; n]).unwrap();
        // Column currents should be monotonically... actually symmetric in
        // columns? No: all columns identical by symmetry of inputs, but the
        // drop accumulates along each row from the driver, so the LAST
        // column sees less drive than the first.
        assert!(real[n - 1] < real[0], "{} vs {}", real[n - 1], real[0]);
    }

    #[test]
    fn variation_perturbs_but_preserves_bounds() {
        let device = DeviceModel::default();
        let clean = CrossbarArray::program(&uniform_weights(8, 0.5), &device).unwrap();
        let noisy = clean.clone().with_variation(0.3, 7);
        assert_ne!(clean, noisy);
        for i in 0..8 {
            for j in 0..8 {
                let g = noisy.conductance(i, j);
                assert!(g >= device.g_off() && g <= device.g_on());
            }
        }
        // Deterministic per seed; sigma 0 is a no-op.
        assert_eq!(noisy, clean.clone().with_variation(0.3, 7));
        assert_eq!(clean.clone().with_variation(0.0, 7), clean);
    }

    #[test]
    fn signed_crossbar_computes_differential() {
        let device = DeviceModel::default();
        let weights = vec![vec![0.5, -0.5], vec![-1.0, 1.0]];
        let xbar = SignedCrossbar::program(&weights, &device).unwrap();
        let out = xbar.evaluate_ideal(&[1.0, 1.0]).unwrap();
        // Antisymmetric weights => antisymmetric outputs.
        assert!((out[0] + out[1]).abs() < 1e-12, "{out:?}");
        assert!(out[0] < 0.0 && out[1] > 0.0);
        assert!(SignedCrossbar::program(&[vec![1.5]], &device).is_err());
    }

    #[test]
    fn signed_sign_pattern_matches_weights() {
        let device = DeviceModel::default();
        // One active input, so each output's sign equals its weight's.
        let weights = vec![vec![0.8, -0.3, 0.0]];
        let xbar = SignedCrossbar::program(&weights, &device).unwrap();
        let out = xbar.evaluate_ir_drop(&[1.0]).unwrap();
        assert!(out[0] > 0.0);
        assert!(out[1] < 0.0);
        assert!(out[2].abs() < out[0].abs());
    }

    #[test]
    fn stuck_faults_pin_conductances_to_rail_values() {
        let device = DeviceModel::default();
        let clean = CrossbarArray::program(&uniform_weights(12, 0.5), &device).unwrap();
        let faulty = clean.clone().with_stuck_faults(0.3, 0.3, 9);
        assert_ne!(clean, faulty);
        let mid = device.weight_to_conductance(0.5);
        let mut on = 0;
        let mut off = 0;
        for i in 0..12 {
            for j in 0..12 {
                let g = faulty.conductance(i, j);
                if g == device.g_on() {
                    on += 1;
                } else if g == device.g_off() {
                    off += 1;
                } else {
                    assert_eq!(g, mid, "non-faulty cells keep their programming");
                }
            }
        }
        // Roughly 30% each, generously banded.
        assert!(on > 20 && on < 70, "stuck-on count {on}");
        assert!(off > 20 && off < 70, "stuck-off count {off}");
        // Zero probabilities are a no-op; determinism per seed.
        assert_eq!(clean.clone().with_stuck_faults(0.0, 0.0, 9), clean);
        assert_eq!(clean.clone().with_stuck_faults(0.3, 0.3, 9), faulty);
    }

    #[test]
    #[should_panic(expected = "defect probabilities")]
    fn invalid_fault_probabilities_panic() {
        let device = DeviceModel::default();
        let clean = CrossbarArray::program(&uniform_weights(4, 0.5), &device).unwrap();
        let _ = clean.with_stuck_faults(0.7, 0.7, 0);
    }

    #[test]
    fn input_dimension_checked() {
        let device = DeviceModel::default();
        let array = CrossbarArray::program(&uniform_weights(4, 0.5), &device).unwrap();
        assert!(array.evaluate_ideal(&[1.0; 3]).is_err());
        assert!(array.evaluate_ir_drop(&[1.0; 5]).is_err());
    }
}
