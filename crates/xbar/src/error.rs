use std::error::Error;
use std::fmt;

/// Errors from the crossbar device model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum XbarError {
    /// A weight matrix with no rows or ragged rows was supplied.
    MalformedWeights {
        /// Description of the defect.
        message: String,
    },
    /// A weight lies outside the programmable range.
    WeightOutOfRange {
        /// Position of the offending weight.
        at: (usize, usize),
        /// The offending value.
        value: f64,
        /// Allowed magnitude.
        limit: f64,
    },
    /// Input vector length does not match the array's row count.
    InputDimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Provided length.
        found: usize,
    },
    /// The IR-drop solver failed to converge.
    SolverDiverged {
        /// Iterations performed.
        iterations: usize,
        /// Residual at the last iteration.
        residual: f64,
    },
    /// A device parameter is physically meaningless (non-positive
    /// resistance, negative variation, ...).
    InvalidDevice {
        /// Which parameter.
        what: &'static str,
    },
}

impl fmt::Display for XbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XbarError::MalformedWeights { message } => {
                write!(f, "malformed weight matrix: {message}")
            }
            XbarError::WeightOutOfRange { at, value, limit } => write!(
                f,
                "weight {value} at ({}, {}) exceeds programmable magnitude {limit}",
                at.0, at.1
            ),
            XbarError::InputDimensionMismatch { expected, found } => {
                write!(f, "input length {found} does not match {expected} crossbar rows")
            }
            XbarError::SolverDiverged { iterations, residual } => write!(
                f,
                "ir-drop solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            XbarError::InvalidDevice { what } => write!(f, "invalid device parameter: {what}"),
        }
    }
}

impl Error for XbarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = XbarError::InputDimensionMismatch {
            expected: 4,
            found: 3,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XbarError>();
    }
}
