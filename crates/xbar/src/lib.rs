//! Analog memristor crossbar device model.
//!
//! The AutoNCS paper builds on two device-level facts it takes from prior
//! work: a memristor crossbar computes `T = A·F` in the analog domain
//! (Section 2.1, ref \[1\]), and — because IR-drop, defects and process
//! variation degrade large arrays — "the current technology can only
//! supply reliable memristor crossbars with a size no larger than 64×64"
//! (ref \[6\]). This crate implements that substrate so the claim is
//! *reproducible* rather than assumed:
//!
//! * [`CrossbarArray`] — a programmed conductance array, plus
//!   [`SignedCrossbar`] for differential-pair signed-weight mapping,
//! * ideal evaluation (`I_j = Σ_i V_i·G_ij`) and **IR-drop-aware**
//!   evaluation that solves the full resistive wire network with
//!   Gauss-Seidel nodal analysis,
//! * seeded lognormal **process variation** on programmed conductances,
//! * [`reliability_sweep`] — relative dot-product error versus array
//!   size, the experiment behind the 64×64 limit.
//!
//! # Examples
//!
//! A small array stays accurate under IR-drop; a large one degrades:
//!
//! ```
//! use ncs_xbar::{CrossbarArray, DeviceModel};
//!
//! # fn main() -> Result<(), ncs_xbar::XbarError> {
//! let device = DeviceModel::default();
//! let weights = vec![vec![1.0; 8]; 8];
//! let array = CrossbarArray::program(&weights, &device)?;
//! let inputs = vec![0.2; 8];
//! let ideal = array.evaluate_ideal(&inputs)?;
//! let real = array.evaluate_ir_drop(&inputs)?;
//! let err = ncs_xbar::relative_error(&ideal, &real);
//! assert!(err < 0.05, "8x8 arrays are nearly ideal, err = {err}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod device;
mod error;
mod programming;
mod reliability;

pub use array::{CrossbarArray, SignedCrossbar};
pub use device::DeviceModel;
pub use error::XbarError;
pub use programming::{program_write_verify, ProgrammingReport, ProgrammingScheme};
pub use reliability::{reliability_sweep, ReliabilityPoint};

/// Mean relative error between an ideal and an observed output vector,
/// normalized by the RMS of the ideal outputs (so near-zero ideal entries
/// do not blow the metric up).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn relative_error(ideal: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(ideal.len(), observed.len(), "output length mismatch");
    if ideal.is_empty() {
        return 0.0;
    }
    let rms = (ideal.iter().map(|v| v * v).sum::<f64>() / ideal.len() as f64).sqrt();
    // ncs-lint: allow(float-eq) — exact-zero reference switches to absolute error
    if rms == 0.0 {
        return observed.iter().map(|v| v.abs()).sum::<f64>() / observed.len() as f64;
    }
    ideal
        .iter()
        .zip(observed)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / (ideal.len() as f64 * rms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!(relative_error(&[1.0, 1.0], &[1.1, 0.9]) > 0.0);
        assert_eq!(relative_error(&[], &[]), 0.0);
        // Zero ideal falls back to mean absolute observed.
        assert!((relative_error(&[0.0, 0.0], &[0.2, 0.4]) - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn relative_error_length_mismatch_panics() {
        relative_error(&[1.0], &[1.0, 2.0]);
    }
}
