use ncs_rng::Rng;

use crate::{relative_error, CrossbarArray, DeviceModel, XbarError};

/// One point of the size-reliability sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityPoint {
    /// Array dimension `s` (the array is `s × s`).
    pub size: usize,
    /// Mean relative dot-product error from IR-drop alone.
    pub ir_drop_error: f64,
    /// Mean relative error with IR-drop plus process variation.
    pub combined_error: f64,
}

/// Sweeps crossbar size and measures how far the analog dot product drifts
/// from ideal — the experiment behind Section 2.1's statement that
/// "considering the process variations and IR-drop, the current
/// technology can only supply reliable memristor crossbars with a size no
/// larger than 64×64".
///
/// For each size, `trials` random weight matrices and input vectors are
/// generated from `seed`, evaluated ideally and with the physical model,
/// and the mean relative errors reported.
///
/// # Errors
///
/// Propagates device validation and solver errors.
///
/// # Examples
///
/// ```no_run
/// use ncs_xbar::{reliability_sweep, DeviceModel};
///
/// # fn main() -> Result<(), ncs_xbar::XbarError> {
/// let points = reliability_sweep(&DeviceModel::default(), &[16, 32, 64], 0.1, 3, 42)?;
/// assert!(points[0].ir_drop_error < points[2].ir_drop_error);
/// # Ok(())
/// # }
/// ```
pub fn reliability_sweep(
    device: &DeviceModel,
    sizes: &[usize],
    variation_sigma: f64,
    trials: usize,
    seed: u64,
) -> Result<Vec<ReliabilityPoint>, XbarError> {
    device.validate()?;
    let mut points = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let mut ir_sum = 0.0;
        let mut combined_sum = 0.0;
        for trial in 0..trials {
            let mut rng = Rng::seed_from_u64(
                seed ^ (size as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ trial as u64,
            );
            let weights: Vec<Vec<f64>> = (0..size)
                .map(|_| (0..size).map(|_| rng.gen_f64()).collect())
                .collect();
            let inputs: Vec<f64> = (0..size)
                .map(|_| if rng.gen_bool() { 1.0 } else { 0.0 })
                .collect();
            let clean = CrossbarArray::program(&weights, device)?;
            let ideal = clean.evaluate_ideal(&inputs)?;
            let ir = clean.evaluate_ir_drop(&inputs)?;
            ir_sum += relative_error(&ideal, &ir);
            let varied = clean.with_variation(variation_sigma, seed ^ (trial as u64) << 8);
            let both = varied.evaluate_ir_drop(&inputs)?;
            combined_sum += relative_error(&ideal, &both);
        }
        points.push(ReliabilityPoint {
            size,
            ir_drop_error: ir_sum / trials as f64,
            combined_error: combined_sum / trials as f64,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_grows_monotonically_with_size() {
        let points = reliability_sweep(&DeviceModel::default(), &[8, 16, 32], 0.05, 2, 1).unwrap();
        assert_eq!(points.len(), 3);
        for pair in points.windows(2) {
            assert!(
                pair[1].ir_drop_error > pair[0].ir_drop_error,
                "{:?} -> {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn variation_adds_error_on_top_of_ir_drop() {
        let points = reliability_sweep(&DeviceModel::default(), &[16], 0.3, 2, 5).unwrap();
        assert!(points[0].combined_error > points[0].ir_drop_error);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = reliability_sweep(&DeviceModel::default(), &[8], 0.1, 2, 9).unwrap();
        let b = reliability_sweep(&DeviceModel::default(), &[8], 0.1, 2, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_device_rejected() {
        let device = DeviceModel {
            r_on_ohm: -5.0,
            ..DeviceModel::default()
        };
        assert!(reliability_sweep(&device, &[8], 0.0, 1, 0).is_err());
    }
}
