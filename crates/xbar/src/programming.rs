//! Write-verify programming of crossbar conductances.
//!
//! Section 2.1 of the paper notes that crossbar peripheral circuits
//! "perform additional functions including memristor training": a
//! memristor's resistance is tuned by applying programming pulses and
//! *verified* by read-back until the target is hit. This module models
//! that closed loop — each pulse moves the conductance a stochastic
//! fraction of the remaining distance — so programming cost (pulse count)
//! and residual programming error become measurable quantities.

use ncs_rng::Rng;

use crate::{CrossbarArray, DeviceModel, XbarError};

/// Pulse-programming parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgrammingScheme {
    /// Nominal fraction of the remaining conductance gap closed per pulse.
    pub pulse_fraction: f64,
    /// Multiplicative pulse-strength noise (sigma of a zero-mean Gaussian
    /// factor).
    pub pulse_noise_sigma: f64,
    /// Acceptance tolerance as a fraction of the `g_on − g_off` span.
    pub tolerance: f64,
    /// Pulse budget per cell before giving up.
    pub max_pulses_per_cell: usize,
}

impl Default for ProgrammingScheme {
    fn default() -> Self {
        ProgrammingScheme {
            pulse_fraction: 0.3,
            pulse_noise_sigma: 0.1,
            tolerance: 0.01,
            max_pulses_per_cell: 64,
        }
    }
}

/// Outcome of a write-verify programming run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgrammingReport {
    /// Total programming pulses issued across the array.
    pub total_pulses: usize,
    /// Worst residual conductance error, as a fraction of the span.
    pub max_residual: f64,
    /// Whether every cell reached tolerance within its pulse budget.
    pub converged: bool,
}

/// Programs an array with a write-verify loop instead of the idealized
/// one-shot mapping of [`CrossbarArray::program`]. Returns the programmed
/// array (with whatever residual errors the loop left) plus a
/// [`ProgrammingReport`].
///
/// # Errors
///
/// Same validation as [`CrossbarArray::program`]; scheme parameters
/// outside sensible ranges yield [`XbarError::InvalidDevice`].
pub fn program_write_verify(
    weights: &[Vec<f64>],
    device: &DeviceModel,
    scheme: &ProgrammingScheme,
    seed: u64,
) -> Result<(CrossbarArray, ProgrammingReport), XbarError> {
    // ncs-lint: allow(float-eq) — exact zero is rejected as an invalid pulse width
    if !(0.0..=1.0).contains(&scheme.pulse_fraction) || scheme.pulse_fraction == 0.0 {
        return Err(XbarError::InvalidDevice {
            what: "pulse_fraction must lie in (0, 1]",
        });
    }
    if scheme.pulse_noise_sigma < 0.0 {
        return Err(XbarError::InvalidDevice {
            what: "pulse_noise_sigma must be non-negative",
        });
    }
    if scheme.tolerance <= 0.0 {
        return Err(XbarError::InvalidDevice {
            what: "tolerance must be positive",
        });
    }
    // Validate shape/range/device via the ideal path, then re-derive each
    // conductance through the pulse loop.
    let ideal = CrossbarArray::program(weights, device)?;
    let span = device.g_on() - device.g_off();
    let mut rng = Rng::seed_from_u64(seed);
    let mut total_pulses = 0usize;
    let mut max_residual = 0.0_f64;
    let mut converged = true;
    let mut programmed = Vec::with_capacity(ideal.rows() * ideal.cols());
    for i in 0..ideal.rows() {
        for j in 0..ideal.cols() {
            let target = ideal.conductance(i, j);
            // Fresh cells start fully reset (high resistance).
            let mut g = device.g_off();
            let mut ok = false;
            for _ in 0..scheme.max_pulses_per_cell {
                if (g - target).abs() <= scheme.tolerance * span {
                    ok = true;
                    break;
                }
                // Pulse with multiplicative strength noise.
                let z = rng.normal(0.0, 1.0);
                let strength = scheme.pulse_fraction * (1.0 + scheme.pulse_noise_sigma * z);
                g += strength.clamp(0.0, 2.0) * (target - g);
                g = g.clamp(device.g_off(), device.g_on());
                total_pulses += 1;
            }
            if !ok && (g - target).abs() <= scheme.tolerance * span {
                ok = true;
            }
            if !ok {
                converged = false;
            }
            max_residual = max_residual.max((g - target).abs() / span);
            programmed.push(g);
        }
    }
    let array = ideal.with_conductances(programmed);
    Ok((
        array,
        ProgrammingReport {
            total_pulses,
            max_residual,
            converged,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..n).map(|j| ((i + j) % 10) as f64 / 10.0).collect())
            .collect()
    }

    #[test]
    fn write_verify_converges_with_default_scheme() {
        let device = DeviceModel::default();
        let (array, report) =
            program_write_verify(&weights(8), &device, &ProgrammingScheme::default(), 7).unwrap();
        assert!(report.converged, "residual {}", report.max_residual);
        assert!(report.max_residual <= ProgrammingScheme::default().tolerance + 1e-12);
        assert!(report.total_pulses > 0);
        // The programmed array computes nearly the same dot products as an
        // ideally-programmed one.
        let ideal = CrossbarArray::program(&weights(8), &device).unwrap();
        let inputs = vec![1.0; 8];
        let a = array.evaluate_ideal(&inputs).unwrap();
        let b = ideal.evaluate_ideal(&inputs).unwrap();
        let err = crate::relative_error(&b, &a);
        assert!(err < 0.05, "err {err}");
    }

    #[test]
    fn tighter_tolerance_needs_more_pulses() {
        let device = DeviceModel::default();
        let loose = ProgrammingScheme {
            tolerance: 0.05,
            ..ProgrammingScheme::default()
        };
        let tight = ProgrammingScheme {
            tolerance: 0.002,
            ..ProgrammingScheme::default()
        };
        let (_, r_loose) = program_write_verify(&weights(6), &device, &loose, 3).unwrap();
        let (_, r_tight) = program_write_verify(&weights(6), &device, &tight, 3).unwrap();
        assert!(r_tight.total_pulses > r_loose.total_pulses);
    }

    #[test]
    fn starving_the_pulse_budget_reports_nonconvergence() {
        let device = DeviceModel::default();
        let scheme = ProgrammingScheme {
            max_pulses_per_cell: 1,
            tolerance: 0.001,
            ..ProgrammingScheme::default()
        };
        let (_, report) = program_write_verify(&weights(6), &device, &scheme, 1).unwrap();
        assert!(!report.converged);
        assert!(report.max_residual > 0.001);
    }

    #[test]
    fn invalid_scheme_parameters_rejected() {
        let device = DeviceModel::default();
        let bad = ProgrammingScheme {
            pulse_fraction: 0.0,
            ..ProgrammingScheme::default()
        };
        assert!(program_write_verify(&weights(2), &device, &bad, 0).is_err());
        let bad = ProgrammingScheme {
            pulse_noise_sigma: -1.0,
            ..ProgrammingScheme::default()
        };
        assert!(program_write_verify(&weights(2), &device, &bad, 0).is_err());
        let bad = ProgrammingScheme {
            tolerance: 0.0,
            ..ProgrammingScheme::default()
        };
        assert!(program_write_verify(&weights(2), &device, &bad, 0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let device = DeviceModel::default();
        let a =
            program_write_verify(&weights(5), &device, &ProgrammingScheme::default(), 9).unwrap();
        let b =
            program_write_verify(&weights(5), &device, &ProgrammingScheme::default(), 9).unwrap();
        assert_eq!(a, b);
    }
}
