//! Property-based tests for the crossbar device model.

use ncs_xbar::{relative_error, CrossbarArray, DeviceModel, SignedCrossbar};
use proptest::prelude::*;

fn weights(n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, n), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ideal_output_is_linear_in_inputs(n in 2usize..8, w in (2usize..8).prop_flat_map(weights)) {
        let n = w.len().min(n.max(2));
        let w: Vec<Vec<f64>> = w.into_iter().take(n).map(|r| r.into_iter().take(n).collect()).collect();
        let array = CrossbarArray::program(&w, &DeviceModel::default()).unwrap();
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let oa = array.evaluate_ideal(&a).unwrap();
        let ob = array.evaluate_ideal(&b).unwrap();
        let osum = array.evaluate_ideal(&sum).unwrap();
        for j in 0..n {
            prop_assert!((osum[j] - (oa[j] + ob[j])).abs() < 1e-9);
        }
    }

    #[test]
    fn ir_drop_never_exceeds_ideal_for_nonnegative_inputs(n in 2usize..10, seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let w: Vec<Vec<f64>> =
            (0..n).map(|_| (0..n).map(|_| rng.gen::<f64>()).collect()).collect();
        let inputs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let array = CrossbarArray::program(&w, &DeviceModel::default()).unwrap();
        let ideal = array.evaluate_ideal(&inputs).unwrap();
        let real = array.evaluate_ir_drop(&inputs).unwrap();
        for j in 0..n {
            prop_assert!(real[j] <= ideal[j] + 1e-12, "col {j}: {} > {}", real[j], ideal[j]);
            prop_assert!(real[j] >= 0.0);
        }
    }

    #[test]
    fn signed_ideal_matches_weight_dot_product_shape(n in 2usize..7, seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let w: Vec<Vec<f64>> =
            (0..n).map(|_| (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect()).collect();
        let inputs: Vec<f64> =
            (0..n).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect();
        let device = DeviceModel::default();
        let xbar = SignedCrossbar::program(&w, &device).unwrap();
        let out = xbar.evaluate_ideal(&inputs).unwrap();
        // Expected: v_read * (g_on - g_off) * (W^T x) plus a common-mode
        // term that cancels in the differential pair.
        let span = device.g_on() - device.g_off();
        for j in 0..n {
            let dot: f64 = (0..n).map(|i| w[i][j] * inputs[i]).sum();
            let expect = device.v_read * span * dot;
            prop_assert!(
                (out[j] - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                "col {j}: {} vs {}",
                out[j],
                expect
            );
        }
    }

    #[test]
    fn variation_error_grows_with_sigma(n in 3usize..8, seed in 0u64..50) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let w: Vec<Vec<f64>> =
            (0..n).map(|_| (0..n).map(|_| rng.gen::<f64>()).collect()).collect();
        let inputs = vec![1.0; n];
        let clean = CrossbarArray::program(&w, &DeviceModel::default()).unwrap();
        let ideal = clean.evaluate_ideal(&inputs).unwrap();
        let small = clean.clone().with_variation(0.02, seed).evaluate_ideal(&inputs).unwrap();
        let large = clean.clone().with_variation(0.50, seed).evaluate_ideal(&inputs).unwrap();
        let e_small = relative_error(&ideal, &small);
        let e_large = relative_error(&ideal, &large);
        prop_assert!(e_large + 1e-12 >= e_small, "{e_large} < {e_small}");
    }
}
