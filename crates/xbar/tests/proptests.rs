//! Seeded property tests for the crossbar device model.
//!
//! Formerly a proptest suite; rewritten as deterministic case loops over
//! `ncs_rng`-generated inputs so the workspace builds offline with no
//! registry dependencies. The invariants are unchanged.

use ncs_rng::Rng;
use ncs_xbar::{relative_error, CrossbarArray, DeviceModel, SignedCrossbar};

const CASES: usize = 24;

/// An `n` by `n` weight matrix with entries in [0, 1).
fn weights(rng: &mut Rng, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| (0..n).map(|_| rng.gen_f64()).collect())
        .collect()
}

#[test]
fn ideal_output_is_linear_in_inputs() {
    let mut rng = Rng::seed_from_u64(0x7831);
    for case in 0..CASES {
        let n = rng.gen_range(2usize..8);
        let w = weights(&mut rng, n);
        let array = CrossbarArray::program(&w, &DeviceModel::default()).unwrap();
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let oa = array.evaluate_ideal(&a).unwrap();
        let ob = array.evaluate_ideal(&b).unwrap();
        let osum = array.evaluate_ideal(&sum).unwrap();
        for j in 0..n {
            assert!(
                (osum[j] - (oa[j] + ob[j])).abs() < 1e-9,
                "case {case}: col {j}"
            );
        }
    }
}

#[test]
fn ir_drop_never_exceeds_ideal_for_nonnegative_inputs() {
    let mut rng = Rng::seed_from_u64(0x7832);
    for case in 0..CASES {
        let n = rng.gen_range(2usize..10);
        let w = weights(&mut rng, n);
        let inputs: Vec<f64> = (0..n).map(|_| rng.gen_f64()).collect();
        let array = CrossbarArray::program(&w, &DeviceModel::default()).unwrap();
        let ideal = array.evaluate_ideal(&inputs).unwrap();
        let real = array.evaluate_ir_drop(&inputs).unwrap();
        for j in 0..n {
            assert!(
                real[j] <= ideal[j] + 1e-12,
                "case {case}: col {j}: {} > {}",
                real[j],
                ideal[j]
            );
            assert!(real[j] >= 0.0, "case {case}: col {j}");
        }
    }
}

#[test]
fn signed_ideal_matches_weight_dot_product_shape() {
    let mut rng = Rng::seed_from_u64(0x7833);
    for case in 0..CASES {
        let n = rng.gen_range(2usize..7);
        let w: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_f64() * 2.0 - 1.0).collect())
            .collect();
        let inputs: Vec<f64> = (0..n)
            .map(|_| if rng.gen_bool() { 1.0 } else { -1.0 })
            .collect();
        let device = DeviceModel::default();
        let xbar = SignedCrossbar::program(&w, &device).unwrap();
        let out = xbar.evaluate_ideal(&inputs).unwrap();
        // Expected: v_read * (g_on - g_off) * (W^T x) plus a common-mode
        // term that cancels in the differential pair.
        let span = device.g_on() - device.g_off();
        for j in 0..n {
            let dot: f64 = (0..n).map(|i| w[i][j] * inputs[i]).sum();
            let expect = device.v_read * span * dot;
            assert!(
                (out[j] - expect).abs() < 1e-9 * (1.0 + expect.abs()),
                "case {case}: col {j}: {} vs {}",
                out[j],
                expect
            );
        }
    }
}

#[test]
fn variation_error_grows_with_sigma() {
    let mut rng = Rng::seed_from_u64(0x7834);
    for case in 0..CASES {
        let n = rng.gen_range(3usize..8);
        let seed = rng.gen_range(0u64..50);
        let w = weights(&mut rng, n);
        let inputs = vec![1.0; n];
        let clean = CrossbarArray::program(&w, &DeviceModel::default()).unwrap();
        let ideal = clean.evaluate_ideal(&inputs).unwrap();
        let small = clean
            .clone()
            .with_variation(0.02, seed)
            .evaluate_ideal(&inputs)
            .unwrap();
        let large = clean
            .clone()
            .with_variation(0.50, seed)
            .evaluate_ideal(&inputs)
            .unwrap();
        let e_small = relative_error(&ideal, &small);
        let e_large = relative_error(&ideal, &large);
        assert!(
            e_large + 1e-12 >= e_small,
            "case {case}: n={n} seed={seed}: {e_large} < {e_small}"
        );
    }
}
