//! Technology library for the AutoNCS reproduction.
//!
//! The paper extracts the delays and areas of memristor crossbars, discrete
//! synapses and neurons from its references \[15\] and \[2\], "carefully scaled
//! to \[the\] 45nm technology node" — without tabulating the numbers. This
//! crate provides a documented, parametric stand-in: geometric footprints
//! for every cell class the physical design places, and an RC-based delay
//! model in which crossbar traversal delay grows with the square of the
//! crossbar dimension (word/bit line RC) and therefore dominates the
//! average wire delay, exactly the behaviour Section 4.3 reports ("the
//! delay ... is determined by the crossbar size distribution").
//!
//! All lengths are in micrometres, areas in µm², delays in nanoseconds.
//!
//! # Examples
//!
//! ```
//! use ncs_tech::TechnologyModel;
//!
//! let tech = TechnologyModel::nm45();
//! let big = tech.crossbar_dims(64);
//! let small = tech.crossbar_dims(16);
//! assert!(big.width > small.width);
//! assert!(tech.crossbar_delay_ns(64) > tech.crossbar_delay_ns(16));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// The kind of a physical cell in the NCS layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// A square memristor crossbar of the given dimension.
    Crossbar(usize),
    /// A discrete (point-to-point) memristor synapse.
    Synapse,
    /// An integrate-and-fire neuron circuit.
    Neuron,
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellKind::Crossbar(s) => write!(f, "crossbar{s}x{s}"),
            CellKind::Synapse => write!(f, "synapse"),
            CellKind::Neuron => write!(f, "neuron"),
        }
    }
}

/// Physical footprint of a cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellDims {
    /// Width in µm.
    pub width: f64,
    /// Height in µm.
    pub height: f64,
}

impl CellDims {
    /// Cell area in µm².
    pub fn area(&self) -> f64 {
        self.width * self.height
    }
}

/// Parametric 45 nm-class technology model.
///
/// Field defaults (see [`TechnologyModel::nm45`]) are calibrated so that the
/// FullCro baseline of the paper's testbench 3 lands in the same order of
/// magnitude as Table 1; the reproduction targets relative reductions, not
/// absolute values.
#[derive(Debug, Clone, PartialEq)]
pub struct TechnologyModel {
    /// Memristor cell pitch inside a crossbar, µm.
    pub memristor_pitch_um: f64,
    /// Peripheral circuit margin added on each side of a crossbar
    /// (drivers, training support), µm.
    pub crossbar_periphery_um: f64,
    /// Edge length of a discrete synapse cell (memristor + access wiring),
    /// µm.
    pub synapse_edge_um: f64,
    /// Edge length of an integrate-and-fire neuron cell, µm.
    pub neuron_edge_um: f64,
    /// Wire unit resistance, Ω/µm.
    pub wire_resistance_ohm_per_um: f64,
    /// Wire unit capacitance, fF/µm.
    pub wire_capacitance_ff_per_um: f64,
    /// Fixed component of crossbar traversal delay, ns.
    pub crossbar_delay_base_ns: f64,
    /// Quadratic crossbar delay coefficient, ns per cell² (line RC grows
    /// with the square of the line length).
    pub crossbar_delay_quad_ns: f64,
    /// Discrete synapse traversal delay, ns.
    pub synapse_delay_ns: f64,
}

impl TechnologyModel {
    /// The default 45 nm-class calibration used by all experiments.
    pub fn nm45() -> Self {
        TechnologyModel {
            memristor_pitch_um: 0.28,
            crossbar_periphery_um: 2.0,
            synapse_edge_um: 0.5,
            neuron_edge_um: 2.0,
            wire_resistance_ohm_per_um: 2.0,
            wire_capacitance_ff_per_um: 0.2,
            crossbar_delay_base_ns: 0.05,
            crossbar_delay_quad_ns: 1.9 / (64.0 * 64.0),
            synapse_delay_ns: 0.10,
        }
    }

    /// Footprint of a cell of the given kind.
    pub fn dims(&self, kind: CellKind) -> CellDims {
        match kind {
            CellKind::Crossbar(s) => self.crossbar_dims(s),
            CellKind::Synapse => CellDims {
                width: self.synapse_edge_um,
                height: self.synapse_edge_um,
            },
            CellKind::Neuron => CellDims {
                width: self.neuron_edge_um,
                height: self.neuron_edge_um,
            },
        }
    }

    /// Footprint of an `s × s` crossbar: the memristor array plus
    /// peripheral margin on each side.
    pub fn crossbar_dims(&self, s: usize) -> CellDims {
        let edge = s as f64 * self.memristor_pitch_um + 2.0 * self.crossbar_periphery_um;
        CellDims {
            width: edge,
            height: edge,
        }
    }

    /// Area of a cell, µm².
    pub fn area(&self, kind: CellKind) -> f64 {
        self.dims(kind).area()
    }

    /// Traversal delay through a cell, ns. For crossbars this is
    /// `base + quad · s²` — the word/bit-line RC term that makes large
    /// crossbars slow and dominates the system's average wire delay.
    pub fn cell_delay_ns(&self, kind: CellKind) -> f64 {
        match kind {
            CellKind::Crossbar(s) => self.crossbar_delay_ns(s),
            CellKind::Synapse => self.synapse_delay_ns,
            // Neuron delay is not part of the wire-delay metric.
            CellKind::Neuron => 0.0,
        }
    }

    /// Crossbar traversal delay, ns.
    pub fn crossbar_delay_ns(&self, s: usize) -> f64 {
        self.crossbar_delay_base_ns + self.crossbar_delay_quad_ns * (s * s) as f64
    }

    /// Elmore delay of a distributed RC wire of the given length, ns:
    /// `½ · r · c · L²`.
    pub fn wire_delay_ns(&self, length_um: f64) -> f64 {
        // Ω/µm · fF/µm · µm² = fΩF = 1e-15 s = 1e-6 ns.
        0.5 * self.wire_resistance_ohm_per_um
            * self.wire_capacitance_ff_per_um
            * length_um
            * length_um
            * 1e-6
    }

    /// RC-delay-based *wire weight* between two cell kinds, used by the
    /// weighted-average wirelength model: wires attached to slow (large)
    /// crossbars get higher weight so the placer shortens them first.
    pub fn wire_weight(&self, a: CellKind, b: CellKind) -> f64 {
        let base = 1.0;
        base + self.cell_delay_ns(a) + self.cell_delay_ns(b)
    }
}

impl Default for TechnologyModel {
    fn default() -> Self {
        Self::nm45()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_area_grows_quadratically_with_size() {
        let tech = TechnologyModel::nm45();
        let a16 = tech.area(CellKind::Crossbar(16));
        let a32 = tech.area(CellKind::Crossbar(32));
        let a64 = tech.area(CellKind::Crossbar(64));
        assert!(a16 < a32 && a32 < a64);
        // Array part scales 4x per doubling; periphery softens the ratio.
        assert!(a64 / a32 > 2.5 && a64 / a32 < 4.0);
    }

    #[test]
    fn per_connection_area_favours_dense_use_of_small_crossbars() {
        // A 64x64 crossbar at 5% utilization costs more area per realized
        // connection than a 16x16 at 50%.
        let tech = TechnologyModel::nm45();
        let big = tech.area(CellKind::Crossbar(64)) / (0.05 * 64.0 * 64.0);
        let small = tech.area(CellKind::Crossbar(16)) / (0.5 * 16.0 * 16.0);
        assert!(small < big, "small {small} vs big {big}");
    }

    #[test]
    fn delay_calibration_matches_paper_scale() {
        let tech = TechnologyModel::nm45();
        // FullCro uses only 64x64 crossbars; its delay should sit near the
        // paper's 1.95 ns.
        let d64 = tech.crossbar_delay_ns(64);
        assert!((d64 - 1.95).abs() < 0.2, "d64 = {d64}");
        // A 32..48 mixture lands near the paper's ~1 ns AutoNCS delay.
        let d40 = tech.crossbar_delay_ns(40);
        assert!(d40 > 0.5 && d40 < 1.3, "d40 = {d40}");
    }

    #[test]
    fn wire_delay_is_quadratic_and_small_vs_crossbars() {
        let tech = TechnologyModel::nm45();
        let d100 = tech.wire_delay_ns(100.0);
        let d200 = tech.wire_delay_ns(200.0);
        assert!((d200 / d100 - 4.0).abs() < 1e-9);
        assert!(d100 < tech.crossbar_delay_ns(16));
        assert_eq!(tech.wire_delay_ns(0.0), 0.0);
    }

    #[test]
    fn synapse_and_neuron_footprints() {
        let tech = TechnologyModel::nm45();
        assert!(tech.area(CellKind::Synapse) < tech.area(CellKind::Neuron));
        assert!(tech.area(CellKind::Neuron) < tech.area(CellKind::Crossbar(16)));
        assert_eq!(tech.cell_delay_ns(CellKind::Neuron), 0.0);
        assert!(tech.cell_delay_ns(CellKind::Synapse) > 0.0);
    }

    #[test]
    fn wire_weights_prioritize_large_crossbars() {
        let tech = TechnologyModel::nm45();
        let heavy = tech.wire_weight(CellKind::Crossbar(64), CellKind::Neuron);
        let light = tech.wire_weight(CellKind::Synapse, CellKind::Neuron);
        assert!(heavy > light);
        // Weights are symmetric in their arguments.
        assert_eq!(
            tech.wire_weight(CellKind::Crossbar(32), CellKind::Synapse),
            tech.wire_weight(CellKind::Synapse, CellKind::Crossbar(32))
        );
    }

    #[test]
    fn display_of_cell_kinds() {
        assert_eq!(CellKind::Crossbar(64).to_string(), "crossbar64x64");
        assert_eq!(CellKind::Synapse.to_string(), "synapse");
        assert_eq!(CellKind::Neuron.to_string(), "neuron");
    }

    #[test]
    fn default_is_nm45() {
        assert_eq!(TechnologyModel::default(), TechnologyModel::nm45());
    }
}
