//! Seeded property tests for the clustering algorithms.
//!
//! Formerly a proptest suite; rewritten as deterministic case loops so the
//! workspace builds offline with no registry dependencies. Each test draws
//! its case parameters from a fixed-seed `ncs_rng::Rng` stream, so the
//! exact cases are reproducible run to run while still sweeping the same
//! parameter ranges the proptest strategies covered.

use ncs_cluster::{full_crossbar, gcp, msc, CpModel, CrossbarSizeSet, GcpOptions, Isc, IscOptions};
use ncs_net::generators;
use ncs_rng::Rng;

// Spectral work is expensive; keep case counts modest (matches the old
// ProptestConfig::with_cases(12)).
const CASES: usize = 12;

#[test]
fn msc_partitions_all_neurons() {
    let mut rng = Rng::seed_from_u64(0x6d7363);
    for case in 0..CASES {
        let n = rng.gen_range(8usize..40);
        let k = rng.gen_range(1usize..6).min(n);
        let seed = rng.gen_range(0u64..50);
        let net = generators::uniform_random(n, 0.15, seed).unwrap();
        let c = msc(&net, k, seed).unwrap();
        let total: usize = c.sizes().iter().sum();
        assert_eq!(total, n, "case {case}: n={n} k={k} seed={seed}");
        // Within + outliers == all connections.
        assert_eq!(
            c.within_connections(&net) + c.outlier_count(&net),
            net.connections(),
            "case {case}: n={n} k={k} seed={seed}"
        );
    }
}

#[test]
fn gcp_never_exceeds_limit() {
    let mut rng = Rng::seed_from_u64(0x676370);
    for case in 0..CASES {
        let n = rng.gen_range(10usize..60);
        let limit = rng.gen_range(4usize..20);
        let seed = rng.gen_range(0u64..50);
        let net = generators::uniform_random(n, 0.1, seed).unwrap();
        let opts = GcpOptions {
            max_cluster_size: limit,
            seed,
            ..GcpOptions::default()
        };
        let c = gcp(&net, &opts).unwrap();
        assert!(
            c.max_cluster_size() <= limit,
            "case {case}: n={n} limit={limit} seed={seed} got {}",
            c.max_cluster_size()
        );
        assert_eq!(c.sizes().iter().sum::<usize>(), n, "case {case}");
    }
}

#[test]
fn isc_covering_invariant() {
    let mut rng = Rng::seed_from_u64(0x697363);
    for case in 0..CASES {
        let n = rng.gen_range(16usize..70);
        let density = rng.gen_range(0.03f64..0.15);
        let seed = rng.gen_range(0u64..50);
        let net = generators::uniform_random(n, density, seed).unwrap();
        let opts = IscOptions {
            sizes: CrossbarSizeSet::new([8, 16, 24, 32]).unwrap(),
            seed,
            ..IscOptions::default()
        };
        let (mapping, _) = Isc::new(opts).run_traced(&net).unwrap();
        assert!(
            mapping.verify_covers(&net).is_ok(),
            "case {case}: n={n} density={density} seed={seed}"
        );
        // All crossbar sizes come from the specified set.
        for c in mapping.crossbars() {
            assert!([8usize, 16, 24, 32].contains(&c.size), "case {case}");
            assert!(c.inputs.len() <= c.size, "case {case}");
            assert!(c.outputs.len() <= c.size, "case {case}");
        }
    }
}

#[test]
fn fullcro_covers_everything() {
    let mut rng = Rng::seed_from_u64(0x666372);
    for case in 0..CASES {
        let n = rng.gen_range(10usize..80);
        let size = rng.gen_range(8usize..40);
        let seed = rng.gen_range(0u64..50);
        let net = generators::uniform_random(n, 0.08, seed).unwrap();
        let mapping = full_crossbar(&net, size).unwrap();
        assert!(
            mapping.verify_covers(&net).is_ok(),
            "case {case}: n={n} size={size} seed={seed}"
        );
        assert!(mapping.outliers().is_empty(), "case {case}");
    }
}

#[test]
fn cp_orderings_hold_for_any_m_s() {
    use ncs_cluster::crossbar_preference;
    let mut rng = Rng::seed_from_u64(0x6370);
    // Pure arithmetic, so sweep many more cases than the spectral tests.
    for case in 0..200 {
        let m = rng.gen_range(0usize..5000);
        let s = rng.gen_range(1usize..128);
        for model in [CpModel::MOverSSqrtU, CpModel::MuOverS] {
            let base = crossbar_preference(m, s, model);
            // More connections never lowers CP.
            assert!(
                crossbar_preference(m + 1, s, model) >= base,
                "case {case}: m={m} s={s} {model:?}"
            );
            // A bigger crossbar never raises CP for fixed m.
            assert!(
                crossbar_preference(m, s + 1, model) <= base,
                "case {case}: m={m} s={s} {model:?}"
            );
            assert!(base.is_finite() && base >= 0.0, "case {case}");
        }
    }
}
