//! Property-based tests for the clustering algorithms.

use ncs_cluster::{full_crossbar, gcp, msc, CpModel, CrossbarSizeSet, GcpOptions, Isc, IscOptions};
use ncs_net::generators;
use proptest::prelude::*;

proptest! {
    // Spectral work is expensive; keep case counts modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn msc_partitions_all_neurons(n in 8usize..40, k in 1usize..6, seed in 0u64..50) {
        let k = k.min(n);
        let net = generators::uniform_random(n, 0.15, seed).unwrap();
        let c = msc(&net, k, seed).unwrap();
        let total: usize = c.sizes().iter().sum();
        prop_assert_eq!(total, n);
        // Within + outliers == all connections.
        prop_assert_eq!(
            c.within_connections(&net) + c.outlier_count(&net),
            net.connections()
        );
    }

    #[test]
    fn gcp_never_exceeds_limit(n in 10usize..60, limit in 4usize..20, seed in 0u64..50) {
        let net = generators::uniform_random(n, 0.1, seed).unwrap();
        let opts = GcpOptions { max_cluster_size: limit, seed, ..GcpOptions::default() };
        let c = gcp(&net, &opts).unwrap();
        prop_assert!(c.max_cluster_size() <= limit);
        prop_assert_eq!(c.sizes().iter().sum::<usize>(), n);
    }

    #[test]
    fn isc_covering_invariant(n in 16usize..70, density in 0.03f64..0.15, seed in 0u64..50) {
        let net = generators::uniform_random(n, density, seed).unwrap();
        let opts = IscOptions {
            sizes: CrossbarSizeSet::new([8, 16, 24, 32]).unwrap(),
            seed,
            ..IscOptions::default()
        };
        let (mapping, _) = Isc::new(opts).run_traced(&net).unwrap();
        prop_assert!(mapping.verify_covers(&net).is_ok());
        // All crossbar sizes come from the specified set.
        for c in mapping.crossbars() {
            prop_assert!([8usize, 16, 24, 32].contains(&c.size));
            prop_assert!(c.inputs.len() <= c.size);
            prop_assert!(c.outputs.len() <= c.size);
        }
    }

    #[test]
    fn fullcro_covers_everything(n in 10usize..80, size in 8usize..40, seed in 0u64..50) {
        let net = generators::uniform_random(n, 0.08, seed).unwrap();
        let mapping = full_crossbar(&net, size).unwrap();
        prop_assert!(mapping.verify_covers(&net).is_ok());
        prop_assert!(mapping.outliers().is_empty());
    }

    #[test]
    fn cp_orderings_hold_for_any_m_s(m in 0usize..5000, s in 1usize..128) {
        use ncs_cluster::crossbar_preference;
        for model in [CpModel::MOverSSqrtU, CpModel::MuOverS] {
            let base = crossbar_preference(m, s, model);
            // More connections never lowers CP.
            prop_assert!(crossbar_preference(m + 1, s, model) >= base);
            // A bigger crossbar never raises CP for fixed m.
            prop_assert!(crossbar_preference(m, s + 1, model) <= base);
            prop_assert!(base.is_finite() && base >= 0.0);
        }
    }
}
