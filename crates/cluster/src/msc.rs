use ncs_linalg::{lanczos_largest_seeded, CsrMatrix, DenseMatrix, GeneralizedEigen};
use ncs_net::ConnectionMatrix;

use crate::{kmeans, ClusterError, Clustering};

/// Largest network the clustering pipeline hands to the dense QL
/// eigensolver when no backend is forced. At or below this size the dense
/// decomposition is both fast and the bit-pinned reference; above it every
/// spectral embedding goes through the sparse Lanczos path, which never
/// materializes an `n × n` matrix. The paper's Hopfield testbenches (N ≤
/// 500) all stay on the dense reference path.
pub const DENSE_EIGEN_MAX_N: usize = 512;

/// Computes the spectral embedding of a network: the generalized
/// eigendecomposition of `L u = λ D u` where the similarity `W` is the
/// symmetrized binary connection matrix, `D` its degree matrix and
/// `L = D − W` the unnormalized Laplacian (Algorithm 1, steps 1-4).
///
/// Returning the full decomposition (all `n` eigenvectors, ascending
/// eigenvalues) lets GCP and the traversing baseline reuse one expensive
/// factorization across many values of `k`, exactly as Algorithm 2 step 1
/// prescribes.
///
/// # Errors
///
/// Propagates eigensolver failures ([`ClusterError::Linalg`]).
///
/// # Examples
///
/// ```
/// use ncs_net::ConnectionMatrix;
/// use ncs_cluster::spectral_embedding;
///
/// # fn main() -> Result<(), ncs_cluster::ClusterError> {
/// let net = ConnectionMatrix::from_pairs(4, [(0, 1), (1, 0), (2, 3), (3, 2)])?;
/// let eig = spectral_embedding(&net)?;
/// // Two connected components => two (near-)zero eigenvalues.
/// assert!(eig.eigenvalues()[1].abs() < 1e-9);
/// assert!(eig.eigenvalues()[2] > 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn spectral_embedding(net: &ConnectionMatrix) -> Result<GeneralizedEigen, ClusterError> {
    let sym = net.symmetrized();
    let n = sym.neurons();
    // `sym` is symmetric by construction, so its out-degrees *are* the
    // undirected node degrees — no second symmetrized copy needed.
    let degrees: Vec<f64> = sym.out_degrees().into_iter().map(|d| d as f64).collect();
    let mut laplacian = DenseMatrix::zeros(n, n);
    // Each Laplacian row depends only on (sym, degrees), so row chunks
    // fan out across the ncs-par team; the entries are identical at any
    // thread count.
    // Items are matrix entries (n²); the cutoff engages at the
    // calibrated LAPLACIAN_MIN_N network order.
    let cutoff = ncs_par::Cutoff::min_work(LAPLACIAN_MIN_N * LAPLACIAN_MIN_N);
    ncs_par::par_chunks_mut(
        laplacian.as_mut_slice(),
        LAPLACIAN_ROW_GRAIN * n,
        cutoff,
        |start, c| {
            laplacian_rows(&sym, &degrees, start / n, c);
        },
    );
    Ok(GeneralizedEigen::new(&laplacian, &degrees)?)
}

/// Rows per parallel Laplacian-build chunk.
const LAPLACIAN_ROW_GRAIN: usize = 32;

/// Minimum network size before the Laplacian build fans out.
const LAPLACIAN_MIN_N: usize = 64;

/// Fills Laplacian rows `row0..` (`out` is a run of complete rows of
/// width `n`): diagonal = degree, minus one per neighbour — including a
/// self-loop hitting the diagonal, exactly like the serial triplet walk.
fn laplacian_rows(sym: &ConnectionMatrix, degrees: &[f64], row0: usize, out: &mut [f64]) {
    let n = sym.neurons();
    for (ri, row) in out.chunks_mut(n).enumerate() {
        let i = row0 + ri;
        row[i] = degrees[i];
        for j in sym.row_neighbors(i) {
            row[j] -= 1.0;
        }
    }
}

/// **Modified Spectral Clustering** (Algorithm 1).
///
/// Classic normalized spectral clustering with the similarity redefined as
/// the number of connections between neurons: build the Laplacian of the
/// (symmetrized) connection matrix, embed each neuron as the `i`-th row of
/// the `n × k` matrix of the `k` smallest generalized eigenvectors, and
/// k-means the rows into `k` clusters. Connections that end up inside a
/// cluster can be mapped to a crossbar; connections across clusters are
/// *outliers*.
///
/// # Errors
///
/// Returns [`ClusterError::InvalidClusterCount`] for `k` outside
/// `1..=neurons`, or propagates eigensolver failures.
///
/// # Examples
///
/// ```
/// use ncs_net::generators;
/// use ncs_cluster::msc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (net, _) = generators::planted_clusters(60, 3, 0.7, 0.01, 5)?;
/// let clustering = msc(&net, 3, 42)?;
/// // Nearly all connections land inside clusters.
/// assert!(clustering.outlier_ratio(&net) < 0.15);
/// # Ok(())
/// # }
/// ```
pub fn msc(net: &ConnectionMatrix, k: usize, seed: u64) -> Result<Clustering, ClusterError> {
    let n = net.neurons();
    if k == 0 || k > n {
        return Err(ClusterError::InvalidClusterCount { k, points: n });
    }
    if n > DENSE_EIGEN_MAX_N {
        // Sparse-first path: a k-column Lanczos embedding in O(nnz)
        // memory instead of the dense n×n factorization.
        let u = spectral_embedding_partial(net, k, seed)?;
        let result = kmeans(&u, k, seed, 200)?;
        return Ok(Clustering::from_assignment(&result.assignment, k));
    }
    let eig = spectral_embedding(net)?;
    msc_from_embedding(&eig, k, seed)
}

/// MSC step 5-6 on a precomputed embedding; shared with the traversing
/// baseline so that repeated `k` scans do not refactorize.
pub(crate) fn msc_from_embedding(
    eig: &GeneralizedEigen,
    k: usize,
    seed: u64,
) -> Result<Clustering, ClusterError> {
    let u = eig.embedding(k);
    let result = kmeans(&u, k, seed, 200)?;
    Ok(Clustering::from_assignment(&result.assignment, k))
}

/// A spectral embedding that GCP can slice by column count: either the
/// full dense decomposition (every `k` available) or a Lanczos partial
/// embedding with a fixed column budget.
#[derive(Debug, Clone)]
pub(crate) enum EmbeddingSource {
    Dense(GeneralizedEigen),
    Partial(DenseMatrix),
}

impl EmbeddingSource {
    /// First `min(k, max_k)` embedding columns.
    pub(crate) fn embedding(&self, k: usize) -> DenseMatrix {
        match self {
            EmbeddingSource::Dense(eig) => eig.embedding(k.min(self.max_k())),
            EmbeddingSource::Partial(u) => {
                let k = k.min(u.ncols());
                let mut out = DenseMatrix::zeros(u.nrows(), k);
                for i in 0..u.nrows() {
                    for j in 0..k {
                        out[(i, j)] = u[(i, j)];
                    }
                }
                out
            }
        }
    }

    /// Widest available embedding.
    pub(crate) fn max_k(&self) -> usize {
        match self {
            EmbeddingSource::Dense(eig) => eig.eigenvectors().ncols(),
            EmbeddingSource::Partial(u) => u.ncols(),
        }
    }
}

/// Sparse **partial** spectral embedding: the `k` smallest generalized
/// eigenvectors of `L u = λ D u` computed with Lanczos on the (shifted)
/// normalized Laplacian instead of a dense `O(n³)` factorization.
///
/// The normalized Laplacian's spectrum lies in `[0, 2]`, so its smallest
/// eigenvalues are the largest of `C = 2I − B`, which is what
/// [`lanczos_largest`] extracts from sparse matvecs in
/// `O(k·nnz + k²·n)`. Use this for networks with thousands of neurons —
/// the deep-network workloads the paper's introduction motivates — where
/// the dense path in [`spectral_embedding`] becomes the bottleneck.
///
/// # Errors
///
/// Returns [`ClusterError::InvalidClusterCount`] for `k` outside
/// `1..=neurons`, or propagates solver failures.
///
/// # Examples
///
/// ```
/// use ncs_net::generators;
/// use ncs_cluster::spectral_embedding_partial;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (net, _) = generators::planted_clusters(200, 4, 0.3, 0.01, 3)?;
/// let u = spectral_embedding_partial(&net, 4, 42)?;
/// assert_eq!(u.shape(), (200, 4));
/// # Ok(())
/// # }
/// ```
pub fn spectral_embedding_partial(
    net: &ConnectionMatrix,
    k: usize,
    seed: u64,
) -> Result<DenseMatrix, ClusterError> {
    spectral_embedding_partial_warm(net, k, seed, None)
}

/// [`spectral_embedding_partial`] with optional **warm-start directions**
/// from a previous embedding of a similar network.
///
/// `warm` is a prior *embedding* matrix `u` (rows = neurons, columns =
/// eigenvectors, as returned by this function). Since the embedding is the
/// un-whitened eigenvector `u = D^{-1/2}·v`, each column is re-whitened
/// against the *current* degree matrix (`v = D^{1/2}·u`, isolated neurons
/// zeroed) before seeding the Lanczos Krylov basis — see
/// [`lanczos_largest_seeded`](ncs_linalg::lanczos_largest_seeded). A warm
/// matrix whose row count does not match `net` is silently ignored (the
/// caller's network changed shape; a cold solve is the correct fallback).
///
/// The ISC loop uses this to carry each iteration's embedding into the
/// next: connection removal perturbs the normalized Laplacian only
/// mildly, so the previous Ritz vectors are near-invariant directions and
/// the solver converges in far fewer effective iterations.
///
/// # Errors
///
/// Same as [`spectral_embedding_partial`].
pub fn spectral_embedding_partial_warm(
    net: &ConnectionMatrix,
    k: usize,
    seed: u64,
    warm: Option<&DenseMatrix>,
) -> Result<DenseMatrix, ClusterError> {
    let n = net.neurons();
    if k == 0 || k > n {
        return Err(ClusterError::InvalidClusterCount { k, points: n });
    }
    // Symmetrize only when needed: the ISC loop feeds symmetric networks
    // (removal of symmetric clusters preserves symmetry), and skipping
    // the copy keeps live bitmaps to one per solve at scale.
    let sym_storage;
    let sym = if net.is_symmetric() {
        net
    } else {
        sym_storage = net.symmetrized();
        &sym_storage
    };
    let degrees: Vec<f64> = sym.out_degrees().into_iter().map(|d| d as f64).collect();
    let inv_sqrt: Vec<f64> = degrees
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 1.0 })
        .collect();
    // Normalized adjacency W̃ with entries w_ij·d_i^{-1/2}·d_j^{-1/2};
    // B = I_connected − W̃, and we feed Lanczos C = 2I − B.
    let w_norm = normalized_adjacency_csr(sym, &inv_sqrt);
    ncs_trace::record("cluster.laplacian_nnz", w_norm.nnz() as u64);
    let connected: Vec<f64> = degrees
        .iter()
        .map(|&d| if d > 0.0 { 1.0 } else { 0.0 })
        .collect();
    // Warm directions arrive in embedding space (u = D^{-1/2}·v); whiten
    // them back into eigenvector space against the current degrees. A
    // row-count mismatch means the network changed shape — drop the seed.
    let whitened = warm.filter(|w| w.nrows() == n).map(|w| {
        let mut v = DenseMatrix::zeros(n, w.ncols());
        for c in 0..w.ncols() {
            for i in 0..n {
                if degrees[i] > 0.0 {
                    v[(i, c)] = w[(i, c)] * degrees[i].sqrt();
                }
            }
        }
        v
    });
    let (_, vectors) = lanczos_largest_seeded(
        |x, y| {
            // Infallible by shape: w_norm is n×n and Lanczos hands us
            // length-n slices.
            ncs_trace::add("isc.sparse_matvecs", 1);
            w_norm.matvec_into(x, y);
            for i in 0..n {
                y[i] += (2.0 - connected[i]) * x[i];
            }
        },
        n,
        k,
        seed,
        whitened.as_ref(),
    )?;
    // Un-whiten: u = D^{-1/2} v, renormalized per column. Lanczos returns
    // columns in descending C order == ascending Laplacian order, which is
    // exactly the MSC embedding order.
    let mut u = DenseMatrix::zeros(n, k);
    for col in 0..k.min(vectors.ncols()) {
        let mut nrm = 0.0;
        for i in 0..n {
            let val = vectors[(i, col)] * inv_sqrt[i];
            u[(i, col)] = val;
            nrm += val * val;
        }
        let nrm = nrm.sqrt();
        if nrm > 0.0 {
            for i in 0..n {
                u[(i, col)] /= nrm;
            }
        }
    }
    Ok(u)
}

/// Assembles the degree-normalized adjacency `W̃` (entries
/// `w_ij·d_i^{-1/2}·d_j^{-1/2}`) of an already-symmetric connection
/// matrix straight into CSR. The bitset's word-level neighbour scan feeds
/// [`CsrBuilder`](ncs_linalg::CsrBuilder) in row-major order, so the
/// whole build is O(nnz) — no triplet buffer, no sort, and never a dense
/// `n × n` intermediate.
// ncs-lint: hot
fn normalized_adjacency_csr(sym: &ConnectionMatrix, inv_sqrt: &[f64]) -> CsrMatrix {
    let n = sym.neurons();
    let nnz: usize = sym.out_degrees().iter().sum();
    let mut b = CsrMatrix::builder(n, n, nnz);
    for i in 0..n {
        let di = inv_sqrt[i];
        for j in sym.row_neighbors(i) {
            b.push(j, di * inv_sqrt[j]);
        }
        b.finish_row();
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_net::generators;

    #[test]
    fn separates_disconnected_components() {
        // Two 3-cliques with no cross connections.
        let mut pairs = Vec::new();
        for base in [0usize, 3] {
            for a in 0..3 {
                for b in 0..3 {
                    if a != b {
                        pairs.push((base + a, base + b));
                    }
                }
            }
        }
        let net = ConnectionMatrix::from_pairs(6, pairs).unwrap();
        let c = msc(&net, 2, 1).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.outlier_count(&net), 0);
        // Each clique lands wholly in one cluster.
        let first = c.cluster_of(0).unwrap();
        assert_eq!(c.cluster_of(1), Some(first));
        assert_eq!(c.cluster_of(2), Some(first));
        let second = c.cluster_of(3).unwrap();
        assert_ne!(first, second);
        assert_eq!(c.cluster_of(4), Some(second));
    }

    #[test]
    fn recovers_planted_communities() {
        let (net, truth) = generators::planted_clusters(90, 3, 0.6, 0.005, 11).unwrap();
        let c = msc(&net, 3, 7).unwrap();
        // Measure purity: majority label per cluster.
        let mut correct = 0;
        for members in c.iter() {
            let mut counts = [0usize; 3];
            for &m in members {
                counts[truth[m]] += 1;
            }
            correct += counts.iter().max().unwrap();
        }
        assert!(
            correct as f64 / 90.0 > 0.9,
            "purity {}",
            correct as f64 / 90.0
        );
        assert!(c.outlier_ratio(&net) < 0.1);
    }

    #[test]
    fn clustering_reduces_outliers_vs_random_partition() {
        let (net, _) = generators::planted_clusters(80, 4, 0.5, 0.02, 3).unwrap();
        let spectral = msc(&net, 4, 9).unwrap();
        // A contiguous-chunks partition ignores the hidden structure.
        let naive = Clustering::new(
            (0..4)
                .map(|c| ((c * 20)..((c + 1) * 20)).collect())
                .collect(),
            80,
        );
        assert!(
            spectral.outlier_ratio(&net) < naive.outlier_ratio(&net),
            "spectral {} vs naive {}",
            spectral.outlier_ratio(&net),
            naive.outlier_ratio(&net)
        );
    }

    #[test]
    fn rejects_bad_k() {
        let net = ConnectionMatrix::from_pairs(4, [(0, 1)]).unwrap();
        assert!(msc(&net, 0, 0).is_err());
        assert!(msc(&net, 5, 0).is_err());
    }

    #[test]
    fn handles_networks_with_isolated_neurons() {
        let net = ConnectionMatrix::from_pairs(5, [(0, 1), (1, 0)]).unwrap();
        let c = msc(&net, 2, 0).unwrap();
        assert_eq!(c.outlier_count(&net) + c.within_connections(&net), 2);
    }

    #[test]
    fn partial_embedding_agrees_with_dense_on_cluster_recovery() {
        let (net, truth) = generators::planted_clusters(120, 3, 0.5, 0.005, 13).unwrap();
        let u = spectral_embedding_partial(&net, 3, 7).unwrap();
        let result = crate::kmeans(&u, 3, 7, 200).unwrap();
        let c = Clustering::from_assignment(&result.assignment, 3);
        let mut correct = 0;
        for members in c.iter() {
            let mut counts = [0usize; 3];
            for &m in members {
                counts[truth[m]] += 1;
            }
            correct += counts.iter().max().unwrap();
        }
        assert!(
            correct as f64 / 120.0 > 0.9,
            "purity {}",
            correct as f64 / 120.0
        );
    }

    #[test]
    fn warm_partial_embedding_recovers_clusters() {
        // Seeding with an earlier embedding must not hurt cluster recovery.
        let (net, truth) = generators::planted_clusters(120, 3, 0.5, 0.005, 13).unwrap();
        let cold = spectral_embedding_partial(&net, 3, 7).unwrap();
        let warm = spectral_embedding_partial_warm(&net, 3, 8, Some(&cold)).unwrap();
        let result = crate::kmeans(&warm, 3, 7, 200).unwrap();
        let c = Clustering::from_assignment(&result.assignment, 3);
        let mut correct = 0;
        for members in c.iter() {
            let mut counts = [0usize; 3];
            for &m in members {
                counts[truth[m]] += 1;
            }
            correct += counts.iter().max().unwrap();
        }
        assert!(
            correct as f64 / 120.0 > 0.9,
            "purity {}",
            correct as f64 / 120.0
        );
    }

    #[test]
    fn warm_embedding_with_wrong_shape_is_ignored() {
        // A stale warm matrix from a different-size network falls back to
        // the cold path instead of erroring — bit-identical to cold.
        let (net, _) = generators::planted_clusters(80, 4, 0.5, 0.02, 3).unwrap();
        let stale = DenseMatrix::zeros(60, 4);
        let cold = spectral_embedding_partial(&net, 4, 9).unwrap();
        let warm = spectral_embedding_partial_warm(&net, 4, 9, Some(&stale)).unwrap();
        assert_eq!(cold.shape(), warm.shape());
        for i in 0..80 {
            for j in 0..4 {
                assert_eq!(cold[(i, j)].to_bits(), warm[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn direct_csr_assembly_matches_triplet_path() {
        // The O(nnz) builder walk must produce bit-for-bit the matrix the
        // old sort-based triplet construction did.
        let (net, _) = generators::planted_clusters(130, 4, 0.4, 0.03, 21).unwrap();
        let sym = net.symmetrized();
        let degrees: Vec<f64> = sym.out_degrees().into_iter().map(|d| d as f64).collect();
        let inv_sqrt: Vec<f64> = degrees
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 1.0 })
            .collect();
        let direct = normalized_adjacency_csr(&sym, &inv_sqrt);
        let triplets: Vec<ncs_linalg::Triplet> = sym
            .iter()
            .map(|(i, j)| ncs_linalg::Triplet::new(i, j, inv_sqrt[i] * inv_sqrt[j]))
            .collect();
        let reference = CsrMatrix::from_triplets(130, 130, &triplets).unwrap();
        assert_eq!(direct, reference);
    }

    #[test]
    fn msc_routes_large_networks_through_the_sparse_path() {
        // Above DENSE_EIGEN_MAX_N the auto route must still recover
        // planted structure (and, by construction, never build a dense
        // n×n Laplacian).
        let n = DENSE_EIGEN_MAX_N + 48;
        let (net, truth) = generators::block_sparse(n, 70, 0.5, 1, 3).unwrap();
        let k = n.div_ceil(70);
        let c = msc(&net, k, 11).unwrap();
        let mut correct = 0;
        for members in c.iter() {
            let mut counts = vec![0usize; k];
            for &m in members {
                counts[truth[m]] += 1;
            }
            correct += counts.iter().max().unwrap();
        }
        assert!(
            correct as f64 / n as f64 > 0.85,
            "purity {}",
            correct as f64 / n as f64
        );
    }

    #[test]
    fn partial_embedding_validates_k() {
        let net = ConnectionMatrix::from_pairs(4, [(0, 1)]).unwrap();
        assert!(spectral_embedding_partial(&net, 0, 0).is_err());
        assert!(spectral_embedding_partial(&net, 5, 0).is_err());
    }

    #[test]
    fn k_equals_n_makes_everything_outliers() {
        let net = ConnectionMatrix::from_pairs(4, [(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
        let c = msc(&net, 4, 0).unwrap();
        // Singleton clusters cannot contain any (off-diagonal) connection.
        assert_eq!(c.within_connections(&net), 0);
        assert_eq!(c.outlier_ratio(&net), 1.0);
    }
}
