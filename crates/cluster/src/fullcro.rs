use std::collections::BTreeMap;

use ncs_net::ConnectionMatrix;

use crate::{ClusterError, CrossbarAssignment, HybridMapping};

/// The brute-force **FullCro** baseline (Section 4.2): implement the whole
/// network with maximum-size crossbars only.
///
/// Neurons are tiled into consecutive groups of `size`; every group pair
/// `(gi, gj)` that carries at least one connection gets a `size × size`
/// crossbar whose rows are `gi` and columns are `gj`. No discrete synapses
/// are used, so utilization is simply the network density seen by each
/// tile — low for sparse networks, which is exactly the inefficiency
/// AutoNCS attacks.
///
/// # Errors
///
/// Returns [`ClusterError::InvalidSizeLimit`] for `size == 0`.
///
/// # Examples
///
/// ```
/// use ncs_cluster::full_crossbar;
/// use ncs_net::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = generators::uniform_random(130, 0.05, 3)?;
/// let mapping = full_crossbar(&net, 64)?;
/// assert!(mapping.outliers().is_empty());
/// mapping.verify_covers(&net).expect("baseline covers everything");
/// // 130 neurons tile into ceil(130/64) = 3 groups => at most 9 crossbars.
/// assert!(mapping.crossbars().len() <= 9);
/// # Ok(())
/// # }
/// ```
pub fn full_crossbar(net: &ConnectionMatrix, size: usize) -> Result<HybridMapping, ClusterError> {
    if size == 0 {
        return Err(ClusterError::InvalidSizeLimit { limit: 0 });
    }
    let n = net.neurons();
    // Single pass over the connections: bucket each one by its (row group,
    // column group) tile. Rows are scanned in ascending order and fanouts
    // ascend within a row, so every bucket fills in exactly the order the
    // old O(groups² · n) rescan produced; the BTreeMap then emits tiles in
    // the same (gi, gj)-lexicographic order. Total cost is
    // O(nnz · log(tiles) + occupied tiles), independent of groups².
    let mut tiles: BTreeMap<(usize, usize), Vec<(usize, usize)>> = BTreeMap::new();
    for (f, t) in net.iter() {
        tiles.entry((f / size, t / size)).or_default().push((f, t));
    }
    let group_members = |g: usize| -> Vec<usize> { (g * size..((g + 1) * size).min(n)).collect() };
    let crossbars = tiles
        .into_iter()
        .map(|((gi, gj), connections)| {
            CrossbarAssignment::new(group_members(gi), group_members(gj), size, connections)
        })
        .collect();
    Ok(HybridMapping::new(n, crossbars, Vec::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_net::generators;

    #[test]
    fn covers_everything_with_no_outliers() {
        let net = generators::uniform_random(100, 0.06, 9).unwrap();
        let mapping = full_crossbar(&net, 64).unwrap();
        mapping.verify_covers(&net).unwrap();
        assert!(mapping.outliers().is_empty());
        assert_eq!(mapping.realized_connections(), net.connections());
    }

    #[test]
    fn utilization_matches_density_roughly() {
        let net = generators::uniform_random(128, 0.05, 2).unwrap();
        let mapping = full_crossbar(&net, 64).unwrap();
        // With 2x2 full tiles the average tile utilization approximates the
        // network density.
        assert!((mapping.average_utilization() - net.density()).abs() < 0.02);
    }

    #[test]
    fn empty_tiles_are_skipped() {
        // Connections only inside the first 10 neurons.
        let mut pairs = Vec::new();
        for a in 0..10usize {
            pairs.push((a, (a + 1) % 10));
        }
        let net = ConnectionMatrix::from_pairs(200, pairs).unwrap();
        let mapping = full_crossbar(&net, 64).unwrap();
        assert_eq!(mapping.crossbars().len(), 1);
        assert_eq!(mapping.crossbars()[0].size, 64);
    }

    #[test]
    fn zero_size_rejected() {
        let net = ConnectionMatrix::from_pairs(4, [(0, 1)]).unwrap();
        assert!(full_crossbar(&net, 0).is_err());
    }

    #[test]
    fn ragged_last_group_is_handled() {
        let net = ConnectionMatrix::from_pairs(70, [(0, 69), (69, 0)]).unwrap();
        let mapping = full_crossbar(&net, 64).unwrap();
        mapping.verify_covers(&net).unwrap();
        // Connections span groups 0 and 1 in both directions.
        assert_eq!(mapping.crossbars().len(), 2);
        // Group 1 holds only 6 neurons but the crossbar is still size 64.
        for c in mapping.crossbars() {
            assert_eq!(c.size, 64);
        }
    }
}
