use ncs_net::ConnectionMatrix;

/// A partition of a network's neurons into clusters.
///
/// Produced by [`msc`](crate::msc), [`gcp`](crate::gcp) and
/// [`traversing`](crate::traversing); consumed by ISC, the statistics
/// helpers, and the physical-design netlist builder.
///
/// # Examples
///
/// ```
/// use ncs_cluster::Clustering;
///
/// let c = Clustering::new(vec![vec![0, 1], vec![2]], 3);
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.max_cluster_size(), 2);
/// assert_eq!(c.cluster_of(2), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    clusters: Vec<Vec<usize>>,
    neurons: usize,
}

impl Clustering {
    /// Builds a clustering from explicit member lists over `neurons`
    /// neurons. Empty clusters are dropped; member lists are sorted.
    ///
    /// # Panics
    ///
    /// Panics if any member index is `>= neurons` or appears in more than
    /// one cluster.
    pub fn new(clusters: Vec<Vec<usize>>, neurons: usize) -> Self {
        let mut seen = vec![false; neurons];
        let mut kept = Vec::with_capacity(clusters.len());
        for mut members in clusters {
            members.sort_unstable();
            for &m in &members {
                assert!(m < neurons, "member {m} out of range for {neurons} neurons");
                assert!(!seen[m], "member {m} appears in two clusters");
                seen[m] = true;
            }
            if !members.is_empty() {
                kept.push(members);
            }
        }
        Clustering {
            clusters: kept,
            neurons,
        }
    }

    /// Builds a clustering from a per-neuron label vector (labels need not
    /// be contiguous).
    pub fn from_assignment(assignment: &[usize], k: usize) -> Self {
        let mut clusters = vec![Vec::new(); k];
        for (i, &a) in assignment.iter().enumerate() {
            if a < k {
                clusters[a].push(i);
            }
        }
        Clustering::new(clusters, assignment.len())
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Number of neurons in the underlying network.
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// The member list of cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= len()`.
    pub fn cluster(&self, c: usize) -> &[usize] {
        &self.clusters[c]
    }

    /// Iterator over clusters.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> {
        self.clusters.iter().map(|c| c.as_slice())
    }

    /// Which cluster a neuron belongs to, if any.
    pub fn cluster_of(&self, neuron: usize) -> Option<usize> {
        self.clusters
            .iter()
            .position(|c| c.binary_search(&neuron).is_ok())
    }

    /// Sizes of all clusters.
    pub fn sizes(&self) -> Vec<usize> {
        self.clusters.iter().map(|c| c.len()).collect()
    }

    /// Size of the largest cluster (0 if none).
    pub fn max_cluster_size(&self) -> usize {
        self.clusters.iter().map(|c| c.len()).max().unwrap_or(0)
    }

    /// Connections of `net` that fall inside some cluster (candidate
    /// crossbar connections).
    pub fn within_connections(&self, net: &ConnectionMatrix) -> usize {
        self.clusters
            .iter()
            .map(|c| net.connections_within(c))
            .sum()
    }

    /// Connections of `net` not covered by any cluster — the paper's
    /// *outliers*.
    pub fn outlier_count(&self, net: &ConnectionMatrix) -> usize {
        net.connections() - self.within_connections(net)
    }

    /// Fraction of `net`'s connections that are outliers (0.0 for an empty
    /// network).
    pub fn outlier_ratio(&self, net: &ConnectionMatrix) -> f64 {
        let total = net.connections();
        if total == 0 {
            0.0
        } else {
            self.outlier_count(net) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let c = Clustering::new(vec![vec![2, 0], vec![1], vec![]], 3);
        assert_eq!(c.len(), 2, "empty cluster dropped");
        assert_eq!(c.cluster(0), &[0, 2], "members sorted");
        assert_eq!(c.cluster_of(1), Some(1));
        assert_eq!(c.sizes(), vec![2, 1]);
        assert_eq!(c.max_cluster_size(), 2);
        assert_eq!(c.neurons(), 3);
    }

    #[test]
    fn from_assignment_groups_by_label() {
        let c = Clustering::from_assignment(&[0, 1, 0, 1, 1], 2);
        assert_eq!(c.cluster(0), &[0, 2]);
        assert_eq!(c.cluster(1), &[1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "two clusters")]
    fn overlapping_clusters_panic() {
        Clustering::new(vec![vec![0, 1], vec![1, 2]], 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_member_panics() {
        Clustering::new(vec![vec![5]], 3);
    }

    #[test]
    fn outlier_accounting() {
        let net = ConnectionMatrix::from_pairs(4, [(0, 1), (1, 0), (2, 3), (0, 3)]).unwrap();
        let c = Clustering::new(vec![vec![0, 1], vec![2, 3]], 4);
        assert_eq!(c.within_connections(&net), 3);
        assert_eq!(c.outlier_count(&net), 1);
        assert!((c.outlier_ratio(&net) - 0.25).abs() < 1e-12);
        let empty_net = ConnectionMatrix::empty(4).unwrap();
        assert_eq!(c.outlier_ratio(&empty_net), 0.0);
    }

    #[test]
    fn neuron_not_in_any_cluster() {
        let c = Clustering::new(vec![vec![0]], 3);
        assert_eq!(c.cluster_of(2), None);
    }
}
