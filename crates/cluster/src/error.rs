use std::error::Error;
use std::fmt;

use ncs_linalg::LinalgError;
use ncs_net::NetError;

/// Errors produced by the clustering algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// `k` must satisfy `1 <= k <= n`.
    InvalidClusterCount {
        /// Requested number of clusters.
        k: usize,
        /// Number of points available.
        points: usize,
    },
    /// The crossbar size set is empty or unusable.
    EmptySizeSet,
    /// A size limit smaller than 1 was requested.
    InvalidSizeLimit {
        /// The offending limit.
        limit: usize,
    },
    /// The utilization threshold must lie in `[0, 1]`.
    InvalidThreshold {
        /// The offending value.
        value: f64,
    },
    /// An underlying eigensolver failure.
    Linalg(LinalgError),
    /// An underlying network-substrate failure.
    Net(NetError),
    /// The traversing baseline exceeded its `k` scan budget.
    TraversingBudgetExceeded {
        /// Largest `k` tried.
        max_k: usize,
    },
    /// An iteration budget of zero was requested — the algorithm would
    /// produce no assignment at all.
    InvalidIterationBudget {
        /// Which option carried the zero budget.
        what: &'static str,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidClusterCount { k, points } => {
                write!(f, "cluster count {k} invalid for {points} points")
            }
            ClusterError::EmptySizeSet => write!(f, "crossbar size set is empty"),
            ClusterError::InvalidSizeLimit { limit } => {
                write!(f, "cluster size limit {limit} must be at least 1")
            }
            ClusterError::InvalidThreshold { value } => {
                write!(f, "utilization threshold {value} must lie in [0, 1]")
            }
            ClusterError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            ClusterError::Net(e) => write!(f, "network failure: {e}"),
            ClusterError::TraversingBudgetExceeded { max_k } => {
                write!(f, "traversing baseline exhausted its budget at k = {max_k}")
            }
            ClusterError::InvalidIterationBudget { what } => {
                write!(f, "iteration budget {what} must be at least 1")
            }
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Linalg(e) => Some(e),
            ClusterError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ClusterError {
    fn from(e: LinalgError) -> Self {
        ClusterError::Linalg(e)
    }
}

impl From<NetError> for ClusterError {
    fn from(e: NetError) -> Self {
        ClusterError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = ClusterError::InvalidClusterCount { k: 5, points: 3 };
        assert!(e.to_string().contains('5'));
        let e: ClusterError = LinalgError::Empty.into();
        assert!(e.source().is_some());
        let e: ClusterError = NetError::EmptyRequest { what: "x" }.into();
        assert!(e.source().is_some());
        assert!(ClusterError::EmptySizeSet.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClusterError>();
    }
}
