use std::collections::BTreeSet;

use ncs_net::ConnectionMatrix;

use crate::{crossbar_preference, CpModel};

/// One memristor crossbar in a hybrid implementation.
///
/// A crossbar of size `s` connects up to `s` input neurons to up to `s`
/// output neurons and realizes the listed `(from, to)` connections. For
/// ISC clusters the input and output sets coincide (the cluster members);
/// for FullCro tiles they are the row/column neuron groups of the tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossbarAssignment {
    /// Neurons driving the crossbar rows.
    pub inputs: Vec<usize>,
    /// Neurons reading the crossbar columns.
    pub outputs: Vec<usize>,
    /// Crossbar dimension `s` (offers `s²` connections).
    pub size: usize,
    /// Realized connections, each with `from ∈ inputs`, `to ∈ outputs`.
    pub connections: Vec<(usize, usize)>,
}

impl CrossbarAssignment {
    /// Builds and validates an assignment.
    ///
    /// # Panics
    ///
    /// Panics if the input/output sets exceed the crossbar size or a
    /// connection endpoint is not in the corresponding set — these are
    /// programming errors in the mapper, not runtime conditions.
    pub fn new(
        inputs: Vec<usize>,
        outputs: Vec<usize>,
        size: usize,
        connections: Vec<(usize, usize)>,
    ) -> Self {
        assert!(
            inputs.len() <= size,
            "{} inputs exceed crossbar size {size}",
            inputs.len()
        );
        assert!(
            outputs.len() <= size,
            "{} outputs exceed crossbar size {size}",
            outputs.len()
        );
        let in_set: BTreeSet<usize> = inputs.iter().copied().collect();
        let out_set: BTreeSet<usize> = outputs.iter().copied().collect();
        for &(f, t) in &connections {
            assert!(in_set.contains(&f), "connection from {f} not an input");
            assert!(out_set.contains(&t), "connection to {t} not an output");
        }
        CrossbarAssignment {
            inputs,
            outputs,
            size,
            connections,
        }
    }

    /// Utilized connections `m`.
    pub fn utilized(&self) -> usize {
        self.connections.len()
    }

    /// Utilization `u = m / s²`.
    pub fn utilization(&self) -> f64 {
        self.connections.len() as f64 / (self.size * self.size) as f64
    }

    /// Crossbar preference under `model`.
    pub fn cp(&self, model: CpModel) -> f64 {
        crossbar_preference(self.connections.len(), self.size, model)
    }

    /// Whether input and output sets are the same neurons (an ISC cluster
    /// crossbar as opposed to a FullCro tile).
    pub fn is_cluster_crossbar(&self) -> bool {
        self.inputs == self.outputs
    }

    /// All distinct neurons touching this crossbar.
    pub fn neurons(&self) -> Vec<usize> {
        let mut set: BTreeSet<usize> = self.inputs.iter().copied().collect();
        set.extend(self.outputs.iter().copied());
        set.into_iter().collect()
    }
}

/// A complete hybrid implementation of a network: crossbars plus discrete
/// synapses (*outliers*).
///
/// The defining invariant — every connection of the source network is
/// realized exactly once, either inside a crossbar or as a discrete
/// synapse — can be checked with [`HybridMapping::verify_covers`].
///
/// # Examples
///
/// ```
/// use ncs_cluster::{full_crossbar, CrossbarSizeSet};
/// use ncs_net::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = generators::uniform_random(100, 0.05, 1)?;
/// let mapping = full_crossbar(&net, 64)?;
/// mapping.verify_covers(&net).expect("FullCro covers every connection");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridMapping {
    neurons: usize,
    crossbars: Vec<CrossbarAssignment>,
    outliers: Vec<(usize, usize)>,
}

impl HybridMapping {
    /// Assembles a mapping from parts.
    pub fn new(
        neurons: usize,
        crossbars: Vec<CrossbarAssignment>,
        outliers: Vec<(usize, usize)>,
    ) -> Self {
        HybridMapping {
            neurons,
            crossbars,
            outliers,
        }
    }

    /// Number of neurons in the source network.
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// The crossbars.
    pub fn crossbars(&self) -> &[CrossbarAssignment] {
        &self.crossbars
    }

    /// The outlier connections realized as discrete synapses.
    pub fn outliers(&self) -> &[(usize, usize)] {
        &self.outliers
    }

    /// Total connections realized inside crossbars.
    pub fn realized_connections(&self) -> usize {
        self.crossbars.iter().map(|c| c.utilized()).sum()
    }

    /// Fraction of all connections implemented as discrete synapses.
    pub fn outlier_ratio(&self) -> f64 {
        let total = self.realized_connections() + self.outliers.len();
        if total == 0 {
            0.0
        } else {
            self.outliers.len() as f64 / total as f64
        }
    }

    /// Mean crossbar utilization (0.0 when there are no crossbars).
    pub fn average_utilization(&self) -> f64 {
        if self.crossbars.is_empty() {
            0.0
        } else {
            self.crossbars.iter().map(|c| c.utilization()).sum::<f64>()
                / self.crossbars.len() as f64
        }
    }

    /// Mean crossbar preference under `model` (0.0 when no crossbars).
    pub fn average_cp(&self, model: CpModel) -> f64 {
        if self.crossbars.is_empty() {
            0.0
        } else {
            self.crossbars.iter().map(|c| c.cp(model)).sum::<f64>() / self.crossbars.len() as f64
        }
    }

    /// Histogram of crossbar sizes as `(size, count)` pairs, ascending.
    pub fn size_histogram(&self) -> Vec<(usize, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for c in &self.crossbars {
            *map.entry(c.size).or_insert(0usize) += 1;
        }
        map.into_iter().collect()
    }

    /// Verifies the covering invariant against the source network: the
    /// crossbar connections and outliers partition the network's
    /// connections (no duplicates, no misses, no inventions).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn verify_covers(&self, net: &ConnectionMatrix) -> Result<(), String> {
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (ci, c) in self.crossbars.iter().enumerate() {
            for &(f, t) in &c.connections {
                if !net.is_connected(f, t) {
                    return Err(format!("crossbar {ci} realizes non-existent ({f},{t})"));
                }
                if !seen.insert((f, t)) {
                    return Err(format!("connection ({f},{t}) realized twice"));
                }
            }
        }
        for &(f, t) in &self.outliers {
            if !net.is_connected(f, t) {
                return Err(format!("outlier ({f},{t}) does not exist in the network"));
            }
            if !seen.insert((f, t)) {
                return Err(format!("connection ({f},{t}) realized twice (outlier)"));
            }
        }
        if seen.len() != net.connections() {
            return Err(format!(
                "mapping realizes {} of {} connections",
                seen.len(),
                net.connections()
            ));
        }
        Ok(())
    }

    /// Per-neuron `fanin + fanout` carried by crossbars, counted as
    /// **physical crossbar ports**: a neuron that drives a crossbar's rows
    /// contributes one fanout there and a neuron reading its columns one
    /// fanin, however many connections the crossbar absorbs for it. This
    /// is the paper's congestion proxy — crossbars reduce fanin+fanout
    /// precisely because many connections collapse onto one port.
    pub fn crossbar_fanin_fanout(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.neurons];
        for c in &self.crossbars {
            // Physical wiring: every row of the crossbar is driven by its
            // input neuron and every column read by its output neuron,
            // whether or not each individual junction is programmed.
            for &f in &c.inputs {
                counts[f] += 1;
            }
            for &t in &c.outputs {
                counts[t] += 1;
            }
        }
        counts
    }

    /// Per-neuron `fanin + fanout` carried by discrete synapses.
    pub fn synapse_fanin_fanout(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.neurons];
        for &(f, t) in &self.outliers {
            counts[f] += 1;
            counts[t] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mapping() -> (ConnectionMatrix, HybridMapping) {
        let net = ConnectionMatrix::from_pairs(4, [(0, 1), (1, 0), (2, 3), (0, 3)]).unwrap();
        let xbar = CrossbarAssignment::new(vec![0, 1], vec![0, 1], 16, vec![(0, 1), (1, 0)]);
        let mapping = HybridMapping::new(4, vec![xbar], vec![(2, 3), (0, 3)]);
        (net, mapping)
    }

    #[test]
    fn assignment_metrics() {
        let a = CrossbarAssignment::new(vec![0, 1], vec![0, 1], 16, vec![(0, 1)]);
        assert_eq!(a.utilized(), 1);
        assert!((a.utilization() - 1.0 / 256.0).abs() < 1e-12);
        assert!(a.cp(CpModel::default()) > 0.0);
        assert!(a.is_cluster_crossbar());
        assert_eq!(a.neurons(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "exceed crossbar size")]
    fn oversize_inputs_panic() {
        CrossbarAssignment::new(vec![0, 1, 2], vec![0], 2, vec![]);
    }

    #[test]
    #[should_panic(expected = "not an input")]
    fn stray_connection_panics() {
        CrossbarAssignment::new(vec![0], vec![0], 4, vec![(1, 0)]);
    }

    #[test]
    fn mapping_accounting() {
        let (net, mapping) = sample_mapping();
        assert_eq!(mapping.realized_connections(), 2);
        assert_eq!(mapping.outliers().len(), 2);
        assert!((mapping.outlier_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(mapping.size_histogram(), vec![(16, 1)]);
        mapping.verify_covers(&net).unwrap();
    }

    #[test]
    fn verify_detects_duplicates() {
        let net = ConnectionMatrix::from_pairs(2, [(0, 1)]).unwrap();
        let xbar = CrossbarAssignment::new(vec![0, 1], vec![0, 1], 16, vec![(0, 1)]);
        let mapping = HybridMapping::new(2, vec![xbar], vec![(0, 1)]);
        assert!(mapping.verify_covers(&net).unwrap_err().contains("twice"));
    }

    #[test]
    fn verify_detects_missing() {
        let net = ConnectionMatrix::from_pairs(2, [(0, 1), (1, 0)]).unwrap();
        let mapping = HybridMapping::new(2, vec![], vec![(0, 1)]);
        assert!(mapping.verify_covers(&net).unwrap_err().contains("1 of 2"));
    }

    #[test]
    fn verify_detects_invented() {
        let net = ConnectionMatrix::from_pairs(2, [(0, 1)]).unwrap();
        let mapping = HybridMapping::new(2, vec![], vec![(0, 1), (1, 0)]);
        assert!(mapping
            .verify_covers(&net)
            .unwrap_err()
            .contains("does not exist"));
    }

    #[test]
    fn fanin_fanout_split() {
        let (_, mapping) = sample_mapping();
        // The crossbar holds the 2-cycle (0,1),(1,0): each endpoint has
        // fanin 1 + fanout 1 = 2.
        assert_eq!(mapping.crossbar_fanin_fanout(), vec![2, 2, 0, 0]);
        assert_eq!(mapping.synapse_fanin_fanout(), vec![1, 0, 1, 2]);
    }

    #[test]
    fn empty_mapping_ratios() {
        let mapping = HybridMapping::new(3, vec![], vec![]);
        assert_eq!(mapping.outlier_ratio(), 0.0);
        assert_eq!(mapping.average_utilization(), 0.0);
        assert_eq!(mapping.average_cp(CpModel::default()), 0.0);
    }
}
