use ncs_linalg::{vector, DenseMatrix};
use ncs_rng::Rng;

use crate::ClusterError;

/// Result of a k-means run over the rows of an embedding matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Cluster index per point (row).
    pub assignment: Vec<usize>,
    /// `k × dim` centroid matrix.
    pub centroids: DenseMatrix,
    /// Sum of squared distances from points to their centroids.
    pub inertia: f64,
    /// Lloyd iterations performed.
    pub iterations: usize,
}

impl KmeansResult {
    /// Members of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == c).then_some(i))
            .collect()
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.nrows()
    }

    /// Size of each cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignment {
            sizes[a] += 1;
        }
        sizes
    }
}

/// Lloyd's k-means over the rows of `points`, seeded with k-means++.
///
/// This is the clustering primitive used inside MSC (Algorithm 1, step 6)
/// and GCP. Empty clusters are repaired by re-seeding them on the point
/// farthest from its current centroid, so the returned assignment always
/// uses exactly `k` labels when `k <= n`.
///
/// # Errors
///
/// Returns [`ClusterError::InvalidClusterCount`] unless `1 <= k <= n`.
///
/// # Examples
///
/// ```
/// use ncs_linalg::DenseMatrix;
/// use ncs_cluster::kmeans;
///
/// # fn main() -> Result<(), ncs_cluster::ClusterError> {
/// // Two obvious groups on the number line.
/// let pts = DenseMatrix::from_vec(4, 1, vec![0.0, 0.1, 10.0, 10.1]).unwrap();
/// let result = kmeans(&pts, 2, 42, 100)?;
/// assert_eq!(result.assignment[0], result.assignment[1]);
/// assert_eq!(result.assignment[2], result.assignment[3]);
/// assert_ne!(result.assignment[0], result.assignment[2]);
/// # Ok(())
/// # }
/// ```
pub fn kmeans(
    points: &DenseMatrix,
    k: usize,
    seed: u64,
    max_iterations: usize,
) -> Result<KmeansResult, ClusterError> {
    let n = points.nrows();
    if k == 0 || k > n {
        return Err(ClusterError::InvalidClusterCount { k, points: n });
    }
    let mut rng = Rng::seed_from_u64(seed);
    let centroids = plus_plus_init(points, k, &mut rng);
    lloyd(points, centroids, max_iterations)
}

/// Lloyd iteration warm-started from caller-provided centroids; used by GCP
/// where centroids evolve across outer iterations.
///
/// # Errors
///
/// Returns [`ClusterError::InvalidClusterCount`] if `centroids` is empty,
/// has more rows than points, or its column count differs from the points'.
pub(crate) fn kmeans_with_centroids(
    points: &DenseMatrix,
    centroids: DenseMatrix,
    max_iterations: usize,
) -> Result<KmeansResult, ClusterError> {
    let n = points.nrows();
    let k = centroids.nrows();
    if k == 0 || k > n || centroids.ncols() != points.ncols() {
        return Err(ClusterError::InvalidClusterCount { k, points: n });
    }
    lloyd(points, centroids, max_iterations)
}

fn plus_plus_init(points: &DenseMatrix, k: usize, rng: &mut Rng) -> DenseMatrix {
    let n = points.nrows();
    let dim = points.ncols();
    let mut centroids = DenseMatrix::zeros(k, dim);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(points.row(first));
    let mut dist_sq: Vec<f64> = (0..n)
        .map(|i| vector::distance_sq(points.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = dist_sq.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with chosen centroids; pick round-robin.
            c % n
        } else {
            let mut target = rng.gen_f64() * total;
            let mut idx = n - 1;
            for (i, &d) in dist_sq.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
            }
            idx
        };
        centroids.row_mut(c).copy_from_slice(points.row(chosen));
        for (i, slot) in dist_sq.iter_mut().enumerate() {
            let d = vector::distance_sq(points.row(i), centroids.row(c));
            if d < *slot {
                *slot = d;
            }
        }
    }
    centroids
}

/// Minimum `n * k * dim` distance-op count before the assignment step
/// fans out to the [`ncs_par`] thread team.
const ASSIGN_MIN_WORK: usize = 16 * 1024;

/// Points per parallel assignment chunk.
const ASSIGN_GRAIN: usize = 128;

/// Labels points `i0..i0 + out.len()` with their nearest centroid,
/// returning whether any label changed. Shared by the serial and
/// parallel paths of the Lloyd assignment step.
// ncs-lint: hot
fn assign_chunk(
    points: &DenseMatrix,
    centroids: &DenseMatrix,
    i0: usize,
    out: &mut [usize],
) -> bool {
    let k = centroids.nrows();
    let mut changed = false;
    for (off, slot) in out.iter_mut().enumerate() {
        let i = i0 + off;
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for c in 0..k {
            let d = vector::distance_sq(points.row(i), centroids.row(c));
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        if *slot != best {
            *slot = best;
            changed = true;
        }
    }
    changed
}

fn lloyd(
    points: &DenseMatrix,
    mut centroids: DenseMatrix,
    max_iterations: usize,
) -> Result<KmeansResult, ClusterError> {
    let n = points.nrows();
    let k = centroids.nrows();
    let dim = points.ncols();
    let mut assignment = vec![0usize; n];
    let mut iterations = 0;
    loop {
        // Assignment step: each point's label is a pure function of
        // (point, centroids), so point chunks fan out across the
        // ncs-par team with a plain OR over the per-chunk change flags;
        // the labels are identical at any thread count.
        // Each point costs k*dim distance ops, so the cutoff engages at
        // the calibrated n*k*dim work floor.
        let cutoff = ncs_par::Cutoff::min_work(ASSIGN_MIN_WORK).work_per_item(k * dim);
        let mut changed =
            ncs_par::par_chunks_mut(&mut assignment, ASSIGN_GRAIN, cutoff, |i0, chunk| {
                assign_chunk(points, &centroids, i0, chunk)
            })
            .into_iter()
            .any(|c| c);
        // Update step.
        let mut sums = DenseMatrix::zeros(k, dim);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[assignment[i]] += 1;
            let row = points.row(i);
            let target = sums.row_mut(assignment[i]);
            for (t, &v) in target.iter_mut().zip(row) {
                *t += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                let src = sums.row(c).to_vec();
                for (t, v) in centroids.row_mut(c).iter_mut().zip(src) {
                    *t = v * inv;
                }
            } else {
                // Empty-cluster repair: move the point farthest from its
                // centroid whose source cluster keeps at least one member,
                // so repairs of several empty clusters cannot steal from
                // each other (degenerate all-duplicate inputs).
                // `k <= n` guarantees a donor cluster with more than one
                // member; if that invariant ever broke, leaving the
                // cluster empty beats panicking mid-flow.
                let far = (0..n)
                    .filter(|&i| counts[assignment[i]] > 1)
                    .max_by(|&a, &b| {
                        let da = vector::distance_sq(points.row(a), centroids.row(assignment[a]));
                        let db = vector::distance_sq(points.row(b), centroids.row(assignment[b]));
                        da.total_cmp(&db)
                    });
                if let Some(far) = far {
                    counts[assignment[far]] -= 1;
                    counts[c] += 1;
                    centroids.row_mut(c).copy_from_slice(points.row(far));
                    assignment[far] = c;
                    changed = true;
                }
            }
        }
        iterations += 1;
        if !changed || iterations >= max_iterations {
            break;
        }
    }
    ncs_trace::record("kmeans.iterations", iterations as u64);
    let inertia = (0..n)
        .map(|i| vector::distance_sq(points.row(i), centroids.row(assignment[i])))
        .sum();
    Ok(KmeansResult {
        assignment,
        centroids,
        inertia,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> DenseMatrix {
        // Three tight groups in 2D.
        DenseMatrix::from_rows(&[
            &[0.0, 0.0][..],
            &[0.1, 0.0][..],
            &[0.0, 0.1][..],
            &[5.0, 5.0][..],
            &[5.1, 5.0][..],
            &[5.0, 5.1][..],
            &[-5.0, 5.0][..],
            &[-5.1, 5.0][..],
        ])
        .unwrap()
    }

    #[test]
    fn recovers_obvious_groups() {
        let r = kmeans(&grid_points(), 3, 7, 100).unwrap();
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[0], r.assignment[2]);
        assert_eq!(r.assignment[3], r.assignment[4]);
        assert_eq!(r.assignment[6], r.assignment[7]);
        assert_ne!(r.assignment[0], r.assignment[3]);
        assert_ne!(r.assignment[3], r.assignment[6]);
        assert!(r.inertia < 0.2);
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let pts = DenseMatrix::from_vec(3, 1, vec![0.0, 1.0, 2.0]).unwrap();
        let r = kmeans(&pts, 3, 0, 50).unwrap();
        assert_eq!(r.sizes(), vec![1, 1, 1]);
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn k_one_gives_single_cluster_at_mean() {
        let pts = DenseMatrix::from_vec(4, 1, vec![0.0, 2.0, 4.0, 6.0]).unwrap();
        let r = kmeans(&pts, 1, 0, 50).unwrap();
        assert!(r.assignment.iter().all(|&a| a == 0));
        assert!((r.centroids[(0, 0)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_k_rejected() {
        let pts = DenseMatrix::zeros(3, 2);
        assert!(kmeans(&pts, 0, 0, 10).is_err());
        assert!(kmeans(&pts, 4, 0, 10).is_err());
    }

    #[test]
    fn duplicate_points_do_not_crash() {
        let pts = DenseMatrix::from_vec(5, 1, vec![1.0; 5]).unwrap();
        let r = kmeans(&pts, 3, 3, 50).unwrap();
        assert_eq!(r.assignment.len(), 5);
        // All clusters non-empty thanks to repair.
        assert!(r.sizes().iter().all(|&s| s >= 1));
    }

    #[test]
    fn assignment_is_identical_across_thread_counts() {
        // Large enough that n * k * dim exceeds ASSIGN_MIN_WORK, so the
        // parallel assignment path genuinely engages.
        let n = 1024;
        let dim = 4;
        let mut data = Vec::with_capacity(n * dim);
        let mut state = 0x2545f4914f6cdd1d_u64;
        for _ in 0..n * dim {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            data.push(((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5);
        }
        let pts = DenseMatrix::from_vec(n, dim, data).unwrap();
        let at = |t: usize| {
            ncs_par::set_thread_override(Some(t));
            let r = kmeans(&pts, 8, 13, 50);
            ncs_par::set_thread_override(None);
            r.unwrap()
        };
        let base = at(1);
        for t in [2, 4] {
            assert_eq!(base, at(t), "kmeans result differs at t={t}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = kmeans(&grid_points(), 3, 11, 100).unwrap();
        let b = kmeans(&grid_points(), 3, 11, 100).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn members_and_sizes_consistent() {
        let r = kmeans(&grid_points(), 3, 7, 100).unwrap();
        let total: usize = (0..r.k()).map(|c| r.members(c).len()).sum();
        assert_eq!(total, 8);
        assert_eq!(r.sizes().iter().sum::<usize>(), 8);
    }

    #[test]
    fn warm_start_accepts_matching_centroids() {
        let pts = grid_points();
        let init = DenseMatrix::from_rows(&[&[0.0, 0.0][..], &[5.0, 5.0][..]]).unwrap();
        let r = kmeans_with_centroids(&pts, init, 100).unwrap();
        assert_eq!(r.k(), 2);
        let bad = DenseMatrix::zeros(2, 3);
        assert!(kmeans_with_centroids(&pts, bad, 100).is_err());
    }
}
