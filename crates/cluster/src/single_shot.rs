use ncs_net::ConnectionMatrix;

use crate::{
    min_satisfiable_size, ClusterError, CrossbarAssignment, CrossbarSizeSet, GcpOptions,
    HybridMapping,
};

/// The non-iterative baseline that motivates ISC: run MSC+GCP **once**,
/// realize *every* cluster (with at least one internal connection) on its
/// minimum satisfiable crossbar, and map all between-cluster connections
/// to discrete synapses.
///
/// Section 3.2 observes that a single clustering pass leaves the majority
/// of connections as outliers (57 % on the 400×400 example) and that
/// realizing sparse clusters wastes crossbar area — the two problems ISC's
/// iteration and partial selection fix. This mapper exists so that claim
/// is measurable: compare its outlier ratio and average utilization
/// against [`Isc`](crate::Isc) on the same network.
///
/// # Errors
///
/// Propagates clustering errors.
///
/// # Examples
///
/// ```
/// use ncs_cluster::{single_shot, CrossbarSizeSet, GcpOptions, Isc, IscOptions};
/// use ncs_net::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = generators::planted_clusters(96, 4, 0.4, 0.02, 5)?.0;
/// let sizes = CrossbarSizeSet::new([8, 16, 24, 32])?;
/// let once = single_shot(&net, &sizes, &GcpOptions { max_cluster_size: 32, ..GcpOptions::default() })?;
/// let iterated = Isc::new(IscOptions { sizes, ..IscOptions::default() }).run(&net)?;
/// // Iteration leaves fewer connections on discrete synapses.
/// assert!(iterated.outlier_ratio() <= once.outlier_ratio());
/// # Ok(())
/// # }
/// ```
pub fn single_shot(
    net: &ConnectionMatrix,
    sizes: &CrossbarSizeSet,
    gcp_options: &GcpOptions,
) -> Result<HybridMapping, ClusterError> {
    let options = GcpOptions {
        max_cluster_size: sizes.max(),
        ..*gcp_options
    };
    let clustering = crate::gcp(net, &options)?;
    let mut remaining = net.clone();
    let mut crossbars = Vec::new();
    for members in clustering.iter() {
        // Trim to the members that actually carry within-cluster
        // connections, exactly as ISC does.
        let mut mask = vec![false; net.neurons()];
        for &m in members {
            mask[m] = true;
        }
        let mut active_mask = vec![false; net.neurons()];
        let mut connections = Vec::new();
        for &f in members {
            for t in remaining.fanout_of(f) {
                if mask[t] {
                    connections.push((f, t));
                    active_mask[f] = true;
                    active_mask[t] = true;
                }
            }
        }
        if connections.is_empty() {
            continue;
        }
        let active: Vec<usize> = members
            .iter()
            .copied()
            .filter(|&m| active_mask[m])
            .collect();
        let size = min_satisfiable_size(sizes, active.len())?;
        remaining.remove_within(&active);
        crossbars.push(CrossbarAssignment::new(
            active.clone(),
            active,
            size,
            connections,
        ));
    }
    let outliers: Vec<(usize, usize)> = remaining.iter().collect();
    Ok(HybridMapping::new(net.neurons(), crossbars, outliers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Isc, IscOptions};
    use ncs_net::generators;

    fn sizes() -> CrossbarSizeSet {
        CrossbarSizeSet::new([8, 12, 16, 24, 32]).unwrap()
    }

    #[test]
    fn covers_the_network() {
        let net = generators::uniform_random(80, 0.08, 3).unwrap();
        let mapping = single_shot(&net, &sizes(), &GcpOptions::default()).unwrap();
        mapping.verify_covers(&net).unwrap();
    }

    #[test]
    fn isc_beats_single_shot_on_outliers() {
        let net = generators::planted_clusters(120, 4, 0.4, 0.02, 7)
            .unwrap()
            .0;
        let once = single_shot(
            &net,
            &sizes(),
            &GcpOptions {
                seed: 1,
                ..GcpOptions::default()
            },
        )
        .unwrap();
        let iterated = Isc::new(IscOptions {
            sizes: sizes(),
            seed: 1,
            ..IscOptions::default()
        })
        .run(&net)
        .unwrap();
        assert!(
            iterated.outlier_ratio() <= once.outlier_ratio() + 1e-12,
            "isc {} vs single-shot {}",
            iterated.outlier_ratio(),
            once.outlier_ratio()
        );
    }

    #[test]
    fn empty_clusters_are_skipped() {
        // A network whose connections all sit between two neurons: most
        // clusters carry nothing and must not become crossbars.
        let net = ConnectionMatrix::from_pairs(40, [(0, 1), (1, 0)]).unwrap();
        let mapping = single_shot(&net, &sizes(), &GcpOptions::default()).unwrap();
        assert!(mapping.crossbars().len() <= 1);
        mapping.verify_covers(&net).unwrap();
    }
}
