//! Connection clustering — the core contribution of the AutoNCS paper.
//!
//! Sparse neural networks map poorly onto fixed-size memristor crossbars:
//! a crossbar offers `s²` connections but a sparse network uses only a few
//! of them, so utilization craters. AutoNCS fixes this with three
//! cooperating algorithms, all implemented here:
//!
//! * [`msc`] — **Modified Spectral Clustering** (Algorithm 1): spectral
//!   clustering where similarity *is* the connection count, grouping
//!   neurons so that connections concentrate inside clusters.
//! * [`gcp`] — **Greedy Cluster size Prediction** (Algorithm 2): keeps the
//!   largest cluster below the maximum crossbar size by greedily bisecting
//!   oversize clusters inside the k-means loop instead of re-scanning `k`
//!   (the much slower [`traversing`] baseline, also provided).
//! * [`Isc`] — **Iterative Spectral Clustering** (Algorithm 3): repeatedly
//!   clusters the *remaining* network, realizes only the top-quartile
//!   clusters by [crossbar preference](CpModel) on crossbars, and leaves
//!   the rest for later rounds; leftovers become discrete synapses.
//!
//! The result of the flow is a [`HybridMapping`]: a set of
//! [`CrossbarAssignment`]s plus outlier connections, with the invariant
//! that every connection of the input network is realized exactly once.
//! The brute-force baseline the paper compares against ([`full_crossbar`],
//! "FullCro") is also implemented.
//!
//! # Examples
//!
//! Mapping a small sparse network:
//!
//! ```
//! use ncs_cluster::{Isc, IscOptions};
//! use ncs_net::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = generators::planted_clusters(96, 4, 0.5, 0.01, 7)?.0;
//! let mapping = Isc::new(IscOptions::default()).run(&net)?;
//! assert_eq!(
//!     mapping.realized_connections() + mapping.outliers().len(),
//!     net.connections()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clustering;
mod compress;
mod cp;
mod error;
mod fullcro;
mod gcp;
mod isc;
mod kmeans;
mod mapping;
mod msc;
mod single_shot;
pub mod stats;
mod traversing;

pub use clustering::Clustering;
pub use compress::{
    group_connection_deletion, CompressionOptions, GroupDeletionOptions, GroupDeletionReport,
};
pub use cp::{crossbar_preference, min_satisfiable_size, CpModel, CrossbarSizeSet};
pub use error::ClusterError;
pub use fullcro::full_crossbar;
pub use gcp::{gcp, GcpOptions};
pub use isc::{EigenBackend, Isc, IscIteration, IscOptions, IscTrace, StopReason};
pub use kmeans::{kmeans, KmeansResult};
pub use mapping::{CrossbarAssignment, HybridMapping};
pub use msc::{
    msc, spectral_embedding, spectral_embedding_partial, spectral_embedding_partial_warm,
    DENSE_EIGEN_MAX_N,
};
pub use single_shot::single_shot;
pub use traversing::traversing;
