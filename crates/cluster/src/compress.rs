//! Group-Scissor-style network compression (arxiv 1702.03443, same
//! authors as the source paper).
//!
//! Group Scissor makes DNN-scale networks crossbar-mappable with two
//! moves: **rank clipping** (bound the rank of the spectral structure the
//! mapper works with) and **group connection deletion** (zero out whole
//! sparse groups of the connection matrix so they never compete for
//! crossbar area). This module adapts both to the lossless AutoNCS
//! setting: deleted group connections are not dropped from the network —
//! they are pre-classified as discrete-synapse outliers, so the final
//! hybrid mapping still covers every connection; rank clipping caps the
//! Lanczos embedding width, bounding the O(n·m) working set of the
//! sparse-first pipeline. Both stages sit behind explicit options and are
//! **off by default** — the paper-faithful flow is unchanged unless a
//! caller opts in.

use ncs_net::ConnectionMatrix;

use crate::ClusterError;

/// Optional compression stages applied before ISC clustering.
///
/// The default has every stage disabled — constructing
/// [`IscOptions`](crate::IscOptions) without touching `compression`
/// reproduces the uncompressed flow bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompressionOptions {
    /// Hard cap on the number of Lanczos embedding columns (Group
    /// Scissor's rank clipping, applied to the spectral embedding
    /// instead of the weight matrices). `None` leaves the budget at the
    /// cluster-count-derived width.
    pub rank_clip: Option<usize>,
    /// Group connection deletion: connections inside sufficiently sparse
    /// `group_size × group_size` blocks are routed as discrete synapses
    /// up front instead of being clustered. `None` disables the stage.
    pub group_deletion: Option<GroupDeletionOptions>,
}

impl CompressionOptions {
    /// Whether any stage is enabled.
    pub fn is_enabled(&self) -> bool {
        self.rank_clip.is_some() || self.group_deletion.is_some()
    }
}

/// Parameters for the group-connection-deletion stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupDeletionOptions {
    /// Neurons per group; the matrix is tiled into consecutive
    /// `group_size`-wide row/column bands like the FullCro baseline.
    pub group_size: usize,
    /// A non-empty group block whose density (connections over block
    /// area) is at most this value is deleted wholesale. `0.0` deletes
    /// only blocks that cannot pay for crossbar area at all (impossible,
    /// so effectively nothing); small values like `0.02` prune the
    /// bridge blocks of block-sparse networks.
    pub max_group_density: f64,
}

impl Default for GroupDeletionOptions {
    /// Crossbar-aligned 64-neuron groups; blocks at or below 2 % density
    /// are deleted.
    fn default() -> Self {
        GroupDeletionOptions {
            group_size: 64,
            max_group_density: 0.02,
        }
    }
}

/// Outcome of [`group_connection_deletion`]: the compressed network plus
/// the deleted connections (which the caller must keep routable — ISC
/// appends them to the outlier list so coverage is preserved).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupDeletionReport {
    /// Number of group blocks that were deleted.
    pub groups_deleted: usize,
    /// The deleted connections, in row-major order.
    pub deleted: Vec<(usize, usize)>,
}

/// Deletes every connection that falls in a sparse group block.
///
/// The matrix is tiled into `group_size × group_size` blocks; any block
/// whose connection count is positive but at most `max_group_density ×
/// area` has all its connections removed and reported. Diagonal blocks
/// (a group with itself) are never deleted — they are exactly the dense
/// cores clustering exists to find.
///
/// Cost is O(nnz + groups²/64) time and O(nnz + groups²) bits of memory
/// (one flag per block pair), never O(n²).
///
/// # Errors
///
/// Returns [`ClusterError::InvalidSizeLimit`] for `group_size == 0` and
/// [`ClusterError::InvalidThreshold`] for a density outside `[0, 1]`.
pub fn group_connection_deletion(
    net: &ConnectionMatrix,
    opts: &GroupDeletionOptions,
) -> Result<(ConnectionMatrix, GroupDeletionReport), ClusterError> {
    if opts.group_size == 0 {
        return Err(ClusterError::InvalidSizeLimit { limit: 0 });
    }
    if !(0.0..=1.0).contains(&opts.max_group_density) {
        return Err(ClusterError::InvalidThreshold {
            value: opts.max_group_density,
        });
    }
    let n = net.neurons();
    let g = opts.group_size;
    let groups = n.div_ceil(g);
    // Pass 1: connection count per block pair.
    let mut counts = vec![0u32; groups * groups];
    for (i, j) in net.iter() {
        counts[(i / g) * groups + j / g] += 1;
    }
    // Decide which off-diagonal blocks die.
    let mut doomed = vec![false; groups * groups];
    let mut groups_deleted = 0;
    for gi in 0..groups {
        let rows = block_extent(gi, g, n);
        for gj in 0..groups {
            if gi == gj {
                continue;
            }
            let c = counts[gi * groups + gj];
            if c == 0 {
                continue;
            }
            let area = (rows * block_extent(gj, g, n)) as f64;
            if f64::from(c) <= opts.max_group_density * area {
                doomed[gi * groups + gj] = true;
                groups_deleted += 1;
            }
        }
    }
    // Pass 2: strip the doomed connections.
    let mut compressed = net.clone();
    let mut deleted = Vec::new();
    for (i, j) in net.iter() {
        if doomed[(i / g) * groups + j / g] {
            // In range by construction — the pair came from `net`.
            let _ = compressed.disconnect(i, j);
            deleted.push((i, j));
        }
    }
    Ok((
        compressed,
        GroupDeletionReport {
            groups_deleted,
            deleted,
        },
    ))
}

/// Number of neurons group `gi` actually spans (the last group may be
/// short).
fn block_extent(gi: usize, g: usize, n: usize) -> usize {
    ((gi + 1) * g).min(n) - gi * g
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_net::generators;

    #[test]
    fn default_options_disable_everything() {
        let opts = CompressionOptions::default();
        assert!(!opts.is_enabled());
        assert!(opts.rank_clip.is_none());
        assert!(opts.group_deletion.is_none());
    }

    #[test]
    fn deletes_sparse_bridge_blocks_only() {
        // Block-sparse network: dense 64-blocks plus single-connection
        // bridges. Bridges live in blocks at density 1/64² ≈ 0.02 %, far
        // below the threshold; the dense diagonal blocks must survive.
        let (net, blocks) = generators::block_sparse(320, 64, 0.5, 2, 9).unwrap();
        let (compressed, report) =
            group_connection_deletion(&net, &GroupDeletionOptions::default()).unwrap();
        assert!(report.groups_deleted > 0);
        assert!(!report.deleted.is_empty());
        assert_eq!(
            compressed.connections() + report.deleted.len(),
            net.connections(),
            "deletion must account for every removed connection"
        );
        for &(i, j) in &report.deleted {
            assert_ne!(blocks[i], blocks[j], "only cross-block bridges die");
            assert!(!compressed.is_connected(i, j));
            assert!(net.is_connected(i, j));
        }
        // All intra-block connections survive.
        for (i, j) in net.iter() {
            if blocks[i] == blocks[j] {
                assert!(compressed.is_connected(i, j));
            }
        }
    }

    #[test]
    fn diagonal_blocks_are_never_deleted() {
        // A single nearly-empty group: density is tiny but the block is
        // diagonal, so nothing may be removed.
        let net = ConnectionMatrix::from_pairs(64, [(0, 1), (1, 0)]).unwrap();
        let (compressed, report) = group_connection_deletion(
            &net,
            &GroupDeletionOptions {
                group_size: 64,
                max_group_density: 1.0,
            },
        )
        .unwrap();
        assert_eq!(report.groups_deleted, 0);
        assert_eq!(compressed, net);
    }

    #[test]
    fn dense_cross_blocks_survive_the_threshold() {
        // Fully-connected 4-neuron groups in both directions: density 1.0
        // beats any threshold below 1.0.
        let mut pairs = Vec::new();
        for a in 0..4 {
            for b in 4..8 {
                pairs.push((a, b));
                pairs.push((b, a));
            }
        }
        let net = ConnectionMatrix::from_pairs(8, pairs).unwrap();
        let (compressed, report) = group_connection_deletion(
            &net,
            &GroupDeletionOptions {
                group_size: 4,
                max_group_density: 0.5,
            },
        )
        .unwrap();
        assert_eq!(report.groups_deleted, 0);
        assert_eq!(compressed, net);
    }

    #[test]
    fn rejects_bad_options() {
        let net = ConnectionMatrix::from_pairs(8, [(0, 1)]).unwrap();
        assert!(group_connection_deletion(
            &net,
            &GroupDeletionOptions {
                group_size: 0,
                max_group_density: 0.1
            }
        )
        .is_err());
        assert!(group_connection_deletion(
            &net,
            &GroupDeletionOptions {
                group_size: 4,
                max_group_density: 1.5
            }
        )
        .is_err());
    }
}
