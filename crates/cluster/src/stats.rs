//! Mapping statistics backing the paper's Figures 7-9.
//!
//! Figure 9(d) plots, for every neuron, the `fanin + fanout` carried by
//! crossbars, by discrete synapses, and their sum — all normalized to the
//! FullCro baseline — sorted by magnitude. [`FaninFanoutProfile`] computes
//! exactly that series, and [`MappingComparison`] bundles the headline
//! ratios ("the average total fanin+fanout after ISC is only 80 % of the
//! baseline design").

use ncs_net::ConnectionMatrix;

use crate::{CpModel, HybridMapping};

/// Per-neuron fanin+fanout split between crossbars and discrete synapses.
#[derive(Debug, Clone, PartialEq)]
pub struct FaninFanoutProfile {
    /// Fanin+fanout carried by crossbar connections, per neuron.
    pub crossbar: Vec<usize>,
    /// Fanin+fanout carried by discrete synapses, per neuron.
    pub synapse: Vec<usize>,
}

impl FaninFanoutProfile {
    /// Computes the profile of a mapping.
    pub fn of(mapping: &HybridMapping) -> Self {
        FaninFanoutProfile {
            crossbar: mapping.crossbar_fanin_fanout(),
            synapse: mapping.synapse_fanin_fanout(),
        }
    }

    /// Per-neuron totals (crossbar + synapse).
    pub fn sum(&self) -> Vec<usize> {
        self.crossbar
            .iter()
            .zip(&self.synapse)
            .map(|(a, b)| a + b)
            .collect()
    }

    /// Mean of the per-neuron totals.
    pub fn average_sum(&self) -> f64 {
        let s = self.sum();
        if s.is_empty() {
            0.0
        } else {
            s.iter().sum::<usize>() as f64 / s.len() as f64
        }
    }

    /// The Figure 9(d) series: `(crossbar, synapse, sum)` triples sorted by
    /// ascending total fanin+fanout.
    pub fn sorted_series(&self) -> Vec<(usize, usize, usize)> {
        let mut rows: Vec<(usize, usize, usize)> = self
            .crossbar
            .iter()
            .zip(&self.synapse)
            .map(|(&c, &s)| (c, s, c + s))
            .collect();
        rows.sort_by_key(|r| r.2);
        rows
    }

    /// Fraction of neurons whose connectivity is carried *only* by
    /// crossbars ("many of them do not even connect to any discrete
    /// synapses").
    pub fn crossbar_only_fraction(&self) -> f64 {
        if self.synapse.is_empty() {
            return 0.0;
        }
        let connected = self
            .crossbar
            .iter()
            .zip(&self.synapse)
            .filter(|(&c, &s)| c + s > 0)
            .count();
        if connected == 0 {
            return 0.0;
        }
        let only = self
            .crossbar
            .iter()
            .zip(&self.synapse)
            .filter(|(&c, &s)| c > 0 && s == 0)
            .count();
        only as f64 / connected as f64
    }
}

/// Headline comparison of an AutoNCS mapping against the FullCro baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingComparison {
    /// AutoNCS average crossbar utilization.
    pub utilization: f64,
    /// Baseline average crossbar utilization.
    pub baseline_utilization: f64,
    /// AutoNCS average total fanin+fanout per neuron.
    pub average_fanin_fanout: f64,
    /// Baseline average total fanin+fanout per neuron.
    pub baseline_fanin_fanout: f64,
    /// AutoNCS average crossbar preference.
    pub average_cp: f64,
    /// Number of crossbars in the AutoNCS mapping.
    pub crossbars: usize,
    /// Number of discrete synapses in the AutoNCS mapping.
    pub synapses: usize,
}

impl MappingComparison {
    /// Compares `mapping` to `baseline` for the same source network.
    pub fn new(mapping: &HybridMapping, baseline: &HybridMapping, cp_model: CpModel) -> Self {
        let profile = FaninFanoutProfile::of(mapping);
        let base_profile = FaninFanoutProfile::of(baseline);
        MappingComparison {
            utilization: mapping.average_utilization(),
            baseline_utilization: baseline.average_utilization(),
            average_fanin_fanout: profile.average_sum(),
            baseline_fanin_fanout: base_profile.average_sum(),
            average_cp: mapping.average_cp(cp_model),
            crossbars: mapping.crossbars().len(),
            synapses: mapping.outliers().len(),
        }
    }

    /// AutoNCS utilization normalized to the baseline (>1 means better).
    pub fn normalized_utilization(&self) -> f64 {
        // ncs-lint: allow(float-eq) — exact-zero baseline guards the division
        if self.baseline_utilization == 0.0 {
            0.0
        } else {
            self.utilization / self.baseline_utilization
        }
    }

    /// AutoNCS average fanin+fanout normalized to the baseline (<1 means
    /// less congestion; the paper reports ≈0.8).
    pub fn normalized_fanin_fanout(&self) -> f64 {
        // ncs-lint: allow(float-eq) — exact-zero baseline guards the division
        if self.baseline_fanin_fanout == 0.0 {
            0.0
        } else {
            self.average_fanin_fanout / self.baseline_fanin_fanout
        }
    }
}

/// Convenience: outlier ratio of a mapping against an explicit network
/// (uses the network's connection count as the denominator).
pub fn outlier_ratio_against(mapping: &HybridMapping, net: &ConnectionMatrix) -> f64 {
    let total = net.connections();
    if total == 0 {
        0.0
    } else {
        mapping.outliers().len() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{full_crossbar, CrossbarAssignment};

    fn mapping_with_split() -> HybridMapping {
        let xbar = CrossbarAssignment::new(vec![0, 1], vec![0, 1], 16, vec![(0, 1), (1, 0)]);
        HybridMapping::new(4, vec![xbar], vec![(2, 3)])
    }

    #[test]
    fn profile_sums_and_series() {
        let p = FaninFanoutProfile::of(&mapping_with_split());
        assert_eq!(p.crossbar, vec![2, 2, 0, 0]);
        assert_eq!(p.synapse, vec![0, 0, 1, 1]);
        assert_eq!(p.sum(), vec![2, 2, 1, 1]);
        assert_eq!(p.average_sum(), 1.5);
        let series = p.sorted_series();
        assert_eq!(series.len(), 4);
        assert!(series.windows(2).all(|w| w[0].2 <= w[1].2));
    }

    #[test]
    fn crossbar_only_fraction_counts_connected_neurons() {
        let p = FaninFanoutProfile::of(&mapping_with_split());
        // Neurons 0,1 crossbar-only; neurons 2,3 synapse-only; all 4
        // connected.
        assert_eq!(p.crossbar_only_fraction(), 0.5);
    }

    #[test]
    fn comparison_normalizations() {
        let net = ncs_net::generators::uniform_random(100, 0.06, 3).unwrap();
        let baseline = full_crossbar(&net, 64).unwrap();
        let cmp = MappingComparison::new(&baseline, &baseline, CpModel::default());
        assert!((cmp.normalized_utilization() - 1.0).abs() < 1e-12);
        assert!((cmp.normalized_fanin_fanout() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn outlier_ratio_against_network() {
        let net = ConnectionMatrix::from_pairs(4, [(0, 1), (1, 0), (2, 3)]).unwrap();
        let m = mapping_with_split();
        assert!((outlier_ratio_against(&m, &net) - 1.0 / 3.0).abs() < 1e-12);
        let empty = ConnectionMatrix::empty(4).unwrap();
        assert_eq!(outlier_ratio_against(&m, &empty), 0.0);
    }
}
