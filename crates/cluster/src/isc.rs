use ncs_linalg::DenseMatrix;
use ncs_net::ConnectionMatrix;

use crate::gcp::gcp_from_embedding;
use crate::msc::EmbeddingSource;
use crate::{
    crossbar_preference, full_crossbar, group_connection_deletion, min_satisfiable_size,
    spectral_embedding, spectral_embedding_partial_warm, ClusterError, CompressionOptions, CpModel,
    CrossbarAssignment, CrossbarSizeSet, GcpOptions, HybridMapping, DENSE_EIGEN_MAX_N,
};

/// Which eigensolver backs the per-iteration spectral embedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EigenBackend {
    /// Pick per network size: [`EigenBackend::Dense`] at or below
    /// [`DENSE_EIGEN_MAX_N`] neurons (the bit-pinned reference path, and
    /// where the paper's 300-500 neuron testbenches land), the sparse
    /// [`EigenBackend::Lanczos`] path (with [`AUTO_OVERSAMPLE`] extra
    /// columns) above it. The default: small flows stay exactly as
    /// before, large flows never densify.
    #[default]
    Auto,
    /// Full dense decomposition — exact, `O(n³)`; right for the paper's
    /// 300-500 neuron testbenches.
    Dense,
    /// Sparse Lanczos partial decomposition — `O(k·nnz + k²·n)`; right for
    /// the thousands-of-neurons workloads the paper's introduction
    /// motivates. `oversample` extra embedding columns are computed beyond
    /// twice the predicted cluster count so GCP's splits rarely exhaust
    /// the budget (the embedding saturates gracefully if they do).
    Lanczos {
        /// Extra eigenvector columns beyond `2 · ⌈n / max_size⌉`.
        oversample: usize,
    },
}

/// Lanczos oversample used when [`EigenBackend::Auto`] routes a network
/// above [`DENSE_EIGEN_MAX_N`] onto the sparse path.
pub const AUTO_OVERSAMPLE: usize = 8;

impl EigenBackend {
    /// The concrete backend `Auto` routes an `n`-neuron network to
    /// (identity on the explicit variants).
    pub fn resolve(self, n: usize) -> EigenBackend {
        match self {
            EigenBackend::Auto => {
                if n <= DENSE_EIGEN_MAX_N {
                    EigenBackend::Dense
                } else {
                    EigenBackend::Lanczos {
                        oversample: AUTO_OVERSAMPLE,
                    }
                }
            }
            other => other,
        }
    }
}

/// Options for [`Isc`].
#[derive(Debug, Clone, PartialEq)]
pub struct IscOptions {
    /// Available crossbar sizes `S` (the paper uses 16..=64 step 4).
    pub sizes: CrossbarSizeSet,
    /// Stop threshold `t` on the per-iteration average crossbar
    /// utilization. `None` derives it from the FullCro baseline's average
    /// utilization, matching the experimental setup in Section 4.2.
    pub utilization_threshold: Option<f64>,
    /// CP quantile above which clusters are realized each iteration. The
    /// paper empirically removes the top 25 %, i.e. quantile 0.75.
    pub selection_quantile: f64,
    /// How crossbar preference is computed.
    pub cp_model: CpModel,
    /// RNG seed driving all k-means initializations.
    pub seed: u64,
    /// Hard cap on ISC iterations (safety net; the utilization threshold
    /// is the intended stop).
    pub max_iterations: usize,
    /// Whether to apply Algorithm 3's lines 6-8 literally and stop as soon
    /// as the CP-quantile cluster is smaller than the smallest crossbar
    /// class. Section 4.2 describes the utilization threshold as the
    /// operative stop ("the iteration of ISC stops when the average
    /// crossbar utilization is below that of the baseline design"), and on
    /// our regenerated testbenches the literal check fires several
    /// iterations early, so it defaults to `false`.
    pub quantile_size_stop: bool,
    /// Eigensolver backing each iteration's spectral embedding.
    pub eigensolver: EigenBackend,
    /// Whether the [`EigenBackend::Lanczos`] path seeds each iteration's
    /// Krylov basis with the previous iteration's embedding (connection
    /// removal perturbs the Laplacian only mildly, so the previous Ritz
    /// vectors are near-invariant directions), and reuses the embedding
    /// verbatim when an iteration removed nothing. Has no effect on the
    /// [`EigenBackend::Dense`] path.
    pub warm_start: bool,
    /// GCP inner options (size limit is overridden with `sizes.max()`).
    pub gcp: GcpOptions,
    /// Group-Scissor-style compression (rank clipping + group connection
    /// deletion), **off by default**. See
    /// [`CompressionOptions`](crate::CompressionOptions).
    pub compression: CompressionOptions,
}

impl Default for IscOptions {
    fn default() -> Self {
        IscOptions {
            sizes: CrossbarSizeSet::paper(),
            utilization_threshold: None,
            selection_quantile: 0.75,
            cp_model: CpModel::default(),
            seed: 0,
            max_iterations: 64,
            quantile_size_stop: false,
            eigensolver: EigenBackend::default(),
            warm_start: true,
            gcp: GcpOptions::default(),
            compression: CompressionOptions::default(),
        }
    }
}

/// Why an ISC run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Per-iteration average utilization fell below the threshold `t`
    /// (Algorithm 3 line 17).
    UtilizationBelowThreshold,
    /// The quantile cluster no longer fills even the smallest crossbar
    /// (Algorithm 3 lines 6-8).
    QuantileClusterTooSmall,
    /// Every connection has been clustered.
    NoConnectionsLeft,
    /// An iteration selected clusters but removed no connections.
    NothingRemoved,
    /// The `max_iterations` safety cap fired.
    IterationBudget,
}

/// Per-iteration record of an ISC run (the data behind Figures 6-9).
#[derive(Debug, Clone, PartialEq)]
pub struct IscIteration {
    /// 1-based iteration number `m`.
    pub iteration: usize,
    /// Clusters produced by GCP this iteration.
    pub clusters_formed: usize,
    /// Clusters selected (CP ≥ quantile) and realized on crossbars.
    pub clusters_selected: usize,
    /// Connections moved from the remaining network into crossbars.
    pub connections_removed: usize,
    /// Outlier ratio after this iteration (remaining / original).
    pub outlier_ratio: f64,
    /// Average utilization of the crossbars placed this iteration.
    pub average_utilization: f64,
    /// Average CP of the crossbars placed this iteration.
    pub average_cp: f64,
}

/// Full trace of an ISC run.
#[derive(Debug, Clone, PartialEq)]
pub struct IscTrace {
    /// One record per completed iteration.
    pub iterations: Vec<IscIteration>,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// The utilization threshold `t` that was in effect.
    pub threshold: f64,
}

/// Mirrors one completed [`IscIteration`] onto the `ncs-trace` counters,
/// so the observability stream and the returned [`IscTrace`] are derived
/// from the same bookkeeping (one source of truth, never two tallies).
fn trace_iteration(rec: &IscIteration) {
    ncs_trace::add("isc.iterations", 1);
    ncs_trace::add("isc.clusters_selected", rec.clusters_selected as u64);
    ncs_trace::add("isc.connections_removed", rec.connections_removed as u64);
}

/// **Iterative Spectral Clustering** (Algorithm 3) with the partial
/// selection strategy.
///
/// Each iteration clusters the *remaining* network with MSC+GCP, ranks the
/// clusters by [crossbar preference](CpModel), realizes only those at or
/// above the CP quantile on the minimum satisfiable crossbar from `S`, and
/// removes their connections. Re-clustering the remainder sidesteps the
/// *cluster concealing* effect described in Section 3.4; keeping
/// low-CP clusters in the pool lets their connections merge with
/// yet-unclustered ones in later rounds. Iteration stops when the
/// freshly-placed crossbars' average utilization drops below `t`; whatever
/// remains becomes discrete synapses.
///
/// # Examples
///
/// ```
/// use ncs_cluster::{Isc, IscOptions};
/// use ncs_net::generators;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = generators::planted_clusters(128, 4, 0.4, 0.01, 2)?.0;
/// let (mapping, trace) = Isc::new(IscOptions::default()).run_traced(&net)?;
/// mapping.verify_covers(&net).expect("mapping covers the network");
/// assert!(!trace.iterations.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Isc {
    options: IscOptions,
}

impl Isc {
    /// Creates an ISC runner with the given options.
    pub fn new(options: IscOptions) -> Self {
        Isc { options }
    }

    /// The options in effect.
    pub fn options(&self) -> &IscOptions {
        &self.options
    }

    /// Runs ISC and returns the hybrid mapping.
    ///
    /// # Errors
    ///
    /// See [`Isc::run_traced`].
    pub fn run(&self, net: &ConnectionMatrix) -> Result<HybridMapping, ClusterError> {
        self.run_traced(net).map(|(mapping, _)| mapping)
    }

    /// Runs ISC and returns both the mapping and the per-iteration trace.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidThreshold`] for a threshold or
    /// selection quantile outside `[0, 1]`, and propagates clustering
    /// failures.
    pub fn run_traced(
        &self,
        net: &ConnectionMatrix,
    ) -> Result<(HybridMapping, IscTrace), ClusterError> {
        let _span = ncs_trace::span("cluster.isc");
        let opts = &self.options;
        if !(0.0..=1.0).contains(&opts.selection_quantile) {
            return Err(ClusterError::InvalidThreshold {
                value: opts.selection_quantile,
            });
        }
        let threshold = match opts.utilization_threshold {
            Some(t) if !(0.0..=1.0).contains(&t) => {
                return Err(ClusterError::InvalidThreshold { value: t })
            }
            Some(t) => t,
            None => full_crossbar(net, opts.sizes.max())?.average_utilization(),
        };
        let total = net.connections();
        // Optional Group-Scissor stage: connections in sparse group blocks
        // are routed as discrete synapses up front, so clustering only
        // works the dense cores. Coverage is preserved — the deleted
        // connections join the outlier list below.
        let (mut remaining, pre_deleted) = match &opts.compression.group_deletion {
            Some(gd) => {
                let (compressed, report) = group_connection_deletion(net, gd)?;
                ncs_trace::add("compress.groups_deleted", report.groups_deleted as u64);
                ncs_trace::add("compress.connections_deleted", report.deleted.len() as u64);
                (compressed, report.deleted)
            }
            None => (net.clone(), Vec::new()),
        };
        let backend = opts.eigensolver.resolve(net.neurons());
        let mut crossbars: Vec<CrossbarAssignment> = Vec::new();
        let mut iterations = Vec::new();
        let mut stop_reason = StopReason::IterationBudget;
        let gcp_opts = GcpOptions {
            max_cluster_size: opts.sizes.max(),
            seed: opts.seed,
            ..opts.gcp
        };
        // Warm-start state for the Lanczos backend: the previous
        // iteration's embedding plus the connection count it was computed
        // for. `remaining` only ever shrinks (removal-only updates), so an
        // unchanged count is a complete fingerprint of an unchanged matrix.
        let mut prev_embedding: Option<DenseMatrix> = None;
        let mut prev_connections: Option<usize> = None;
        // Per-cluster scratch, hoisted so the candidate loop allocates
        // nothing per cluster (O(n·clusters) zeroing becomes O(n) total).
        let mut mask = vec![false; remaining.neurons()];
        let mut active_mask = vec![false; remaining.neurons()];

        for m in 1..=opts.max_iterations {
            if remaining.connections() == 0 {
                stop_reason = StopReason::NoConnectionsLeft;
                break;
            }
            // Line 3: cluster the remaining network with MSC+GCP.
            let n = remaining.neurons();
            // `backend` is already resolved, so anything that is not
            // Lanczos takes the dense reference path.
            let source = match backend {
                EigenBackend::Auto | EigenBackend::Dense => {
                    EmbeddingSource::Dense(spectral_embedding(&remaining)?)
                }
                EigenBackend::Lanczos { oversample } => {
                    let mut budget =
                        (2 * n.div_ceil(opts.sizes.max()).max(1) + oversample).clamp(1, n);
                    // Rank clipping (Group Scissor): bound the embedding
                    // width — and with it the O(n·m) Lanczos working set —
                    // regardless of the predicted cluster count.
                    if let Some(clip) = opts.compression.rank_clip {
                        let clipped = budget.min(clip.max(1));
                        if clipped < budget {
                            ncs_trace::add("compress.rank_clips", 1);
                        }
                        budget = clipped;
                    }
                    let connections = remaining.connections();
                    let reusable = opts.warm_start && prev_connections == Some(connections);
                    let u = match (&prev_embedding, reusable) {
                        (Some(prev), true) => {
                            // Nothing was removed since the last embed: the
                            // matrix is identical, so the embedding is too.
                            ncs_trace::add("isc.embed_reuses", 1);
                            prev.clone()
                        }
                        _ => {
                            let warm = if opts.warm_start {
                                prev_embedding.as_ref()
                            } else {
                                None
                            };
                            if warm.is_some() {
                                ncs_trace::add("isc.warm_starts", 1);
                            }
                            spectral_embedding_partial_warm(
                                &remaining,
                                budget,
                                opts.seed.wrapping_add(m as u64),
                                warm,
                            )?
                        }
                    };
                    prev_connections = Some(connections);
                    prev_embedding = Some(u.clone());
                    EmbeddingSource::Partial(u)
                }
            };
            let gcp_seeded = GcpOptions {
                seed: gcp_opts.seed.wrapping_add(m as u64 * 0x9e37),
                ..gcp_opts
            };
            let clustering = gcp_from_embedding(&source, n, &gcp_seeded)?;

            // Line 4: compute CP per cluster (on the remaining network).
            // A cluster's crossbar only needs rows/columns for the members
            // that actually carry within-cluster connections, so the size
            // is chosen for those *active* members.
            struct Candidate {
                active: Vec<usize>,
                connections: Vec<(usize, usize)>,
                cp: f64,
            }
            let mut candidates: Vec<Candidate> = Vec::with_capacity(clustering.len());
            for members in clustering.iter() {
                for &mm in members {
                    mask[mm] = true;
                }
                let mut connections = Vec::new();
                for &f in members {
                    for t in remaining.fanout_of(f) {
                        if mask[t] {
                            connections.push((f, t));
                            active_mask[f] = true;
                            active_mask[t] = true;
                        }
                    }
                }
                let active: Vec<usize> = members
                    .iter()
                    .copied()
                    .filter(|&mm| active_mask[mm])
                    .collect();
                // Every set entry of both masks is a member, so clearing
                // over `members` restores the scratch for the next cluster.
                for &mm in members {
                    mask[mm] = false;
                    active_mask[mm] = false;
                }
                let size = opts
                    .sizes
                    .smallest_fitting(active.len())
                    .unwrap_or(opts.sizes.max());
                candidates.push(Candidate {
                    cp: crossbar_preference(connections.len(), size, opts.cp_model),
                    active,
                    connections,
                });
            }

            // Line 5: the CP quantile q.
            let mut cps: Vec<f64> = candidates.iter().map(|c| c.cp).collect();
            cps.sort_by(|a, b| a.total_cmp(b));
            let q_idx = ((opts.selection_quantile * cps.len() as f64).ceil() as usize)
                .saturating_sub(1)
                .min(cps.len() - 1);
            let q = cps[q_idx];

            // Lines 6-8 (optional, see `quantile_size_stop`): stop when the
            // quantile cluster cannot fill even the smallest crossbar class.
            if opts.quantile_size_stop {
                let quantile_cluster = candidates
                    .iter()
                    .filter(|c| c.cp >= q)
                    .min_by(|a, b| a.cp.total_cmp(&b.cp));
                if let Some(qc) = quantile_cluster {
                    if qc.active.len() < opts.sizes.min() {
                        stop_reason = StopReason::QuantileClusterTooSmall;
                        break;
                    }
                }
            }

            // Lines 9-14: realize the selected clusters, remove their
            // connections from the remainder.
            let mut removed = 0usize;
            let mut selected = 0usize;
            let mut util_sum = 0.0;
            let mut cp_sum = 0.0;
            for c in candidates {
                if c.cp >= q && !c.connections.is_empty() {
                    let size = min_satisfiable_size(&opts.sizes, c.active.len())?;
                    removed += remaining.remove_within(&c.active);
                    let xbar =
                        CrossbarAssignment::new(c.active.clone(), c.active, size, c.connections);
                    util_sum += xbar.utilization();
                    cp_sum += xbar.cp(opts.cp_model);
                    crossbars.push(xbar);
                    selected += 1;
                }
            }

            // Line 15: per-iteration average utilization drives the stop.
            let avg_util = if selected > 0 {
                util_sum / selected as f64
            } else {
                0.0
            };
            let avg_cp = if selected > 0 {
                cp_sum / selected as f64
            } else {
                0.0
            };
            let record = IscIteration {
                iteration: m,
                clusters_formed: clustering.len(),
                clusters_selected: selected,
                connections_removed: removed,
                outlier_ratio: if total == 0 {
                    0.0
                } else {
                    remaining.connections() as f64 / total as f64
                },
                average_utilization: avg_util,
                average_cp: avg_cp,
            };
            trace_iteration(&record);
            iterations.push(record);
            if removed == 0 {
                stop_reason = StopReason::NothingRemoved;
                break;
            }
            if avg_util < threshold {
                stop_reason = StopReason::UtilizationBelowThreshold;
                break;
            }
        }

        // Line 18: remaining connections become discrete synapses, along
        // with anything the compression stage pre-deleted.
        let mut outliers: Vec<(usize, usize)> = remaining.iter().collect();
        outliers.extend(pre_deleted);
        ncs_trace::record("isc.outliers", outliers.len() as u64);
        let mapping = HybridMapping::new(net.neurons(), crossbars, outliers);
        Ok((
            mapping,
            IscTrace {
                iterations,
                stop_reason,
                threshold,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_net::generators;

    fn structured_net() -> ConnectionMatrix {
        generators::planted_clusters(128, 4, 0.4, 0.01, 21)
            .unwrap()
            .0
    }

    #[test]
    fn covering_invariant_holds() {
        let net = structured_net();
        let mapping = Isc::new(IscOptions::default()).run(&net).unwrap();
        mapping.verify_covers(&net).unwrap();
    }

    #[test]
    fn outlier_ratio_decreases_monotonically() {
        let net = structured_net();
        let (_, trace) = Isc::new(IscOptions::default()).run_traced(&net).unwrap();
        let mut last = 1.0;
        for it in &trace.iterations {
            assert!(
                it.outlier_ratio <= last + 1e-12,
                "iteration {}",
                it.iteration
            );
            last = it.outlier_ratio;
        }
        assert!(!trace.iterations.is_empty());
    }

    #[test]
    fn clusters_structured_network_well() {
        let net = structured_net();
        let (mapping, _) = Isc::new(IscOptions::default()).run_traced(&net).unwrap();
        assert!(
            mapping.outlier_ratio() < 0.5,
            "outlier ratio {} too high for a structured network",
            mapping.outlier_ratio()
        );
        // Crossbars never exceed the largest class and always come from S.
        let sizes = CrossbarSizeSet::paper();
        for c in mapping.crossbars() {
            assert!(sizes.sizes().contains(&c.size));
            assert!(c.inputs.len() <= c.size);
        }
    }

    #[test]
    fn beats_fullcro_utilization() {
        let net = structured_net();
        let mapping = Isc::new(IscOptions::default()).run(&net).unwrap();
        let baseline = full_crossbar(&net, 64).unwrap();
        assert!(
            mapping.average_utilization() > baseline.average_utilization(),
            "isc {} vs fullcro {}",
            mapping.average_utilization(),
            baseline.average_utilization()
        );
    }

    #[test]
    fn explicit_threshold_is_respected() {
        let net = structured_net();
        // Impossibly high threshold => stop after the first iteration.
        let opts = IscOptions {
            utilization_threshold: Some(0.99),
            ..IscOptions::default()
        };
        let (_, trace) = Isc::new(opts).run_traced(&net).unwrap();
        assert_eq!(trace.iterations.len(), 1);
        assert_eq!(trace.stop_reason, StopReason::UtilizationBelowThreshold);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let net = ConnectionMatrix::from_pairs(4, [(0, 1)]).unwrap();
        let opts = IscOptions {
            utilization_threshold: Some(1.5),
            ..IscOptions::default()
        };
        assert!(Isc::new(opts).run(&net).is_err());
        let opts = IscOptions {
            selection_quantile: -0.1,
            ..IscOptions::default()
        };
        assert!(Isc::new(opts).run(&net).is_err());
    }

    #[test]
    fn empty_network_maps_to_nothing() {
        let net = ConnectionMatrix::empty(32).unwrap();
        let (mapping, trace) = Isc::new(IscOptions::default()).run_traced(&net).unwrap();
        assert_eq!(mapping.crossbars().len(), 0);
        assert_eq!(mapping.outliers().len(), 0);
        assert_eq!(trace.stop_reason, StopReason::NoConnectionsLeft);
    }

    #[test]
    fn trace_records_are_consistent() {
        let net = structured_net();
        let (mapping, trace) = Isc::new(IscOptions::default()).run_traced(&net).unwrap();
        let total_removed: usize = trace.iterations.iter().map(|i| i.connections_removed).sum();
        assert_eq!(total_removed, mapping.realized_connections());
        let total_selected: usize = trace.iterations.iter().map(|i| i.clusters_selected).sum();
        assert_eq!(total_selected, mapping.crossbars().len());
    }

    #[test]
    fn deterministic_per_seed() {
        let net = structured_net();
        let a = Isc::new(IscOptions::default()).run(&net).unwrap();
        let b = Isc::new(IscOptions::default()).run(&net).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn iteration_budget_stops_the_loop() {
        let net = structured_net();
        let opts = IscOptions {
            max_iterations: 1,
            // A permissive threshold so the budget is the binding stop.
            utilization_threshold: Some(0.0),
            ..IscOptions::default()
        };
        let (_, trace) = Isc::new(opts).run_traced(&net).unwrap();
        assert_eq!(trace.iterations.len(), 1);
        assert_eq!(trace.stop_reason, StopReason::IterationBudget);
    }

    #[test]
    fn literal_quantile_stop_never_worsens_utilization() {
        // The paper-literal lines 6-8 stop can only cut iterations short,
        // which keeps only the better crossbars.
        let net = structured_net();
        let loose = Isc::new(IscOptions::default()).run(&net).unwrap();
        let strict = Isc::new(IscOptions {
            quantile_size_stop: true,
            ..IscOptions::default()
        })
        .run(&net)
        .unwrap();
        assert!(strict.crossbars().len() <= loose.crossbars().len());
        assert!(strict.average_utilization() >= loose.average_utilization() - 1e-9);
        strict.verify_covers(&net).unwrap();
    }

    #[test]
    fn lanczos_backend_matches_dense_quality() {
        let net = structured_net();
        let dense = Isc::new(IscOptions::default()).run(&net).unwrap();
        let lanczos = Isc::new(IscOptions {
            eigensolver: EigenBackend::Lanczos { oversample: 8 },
            ..IscOptions::default()
        })
        .run(&net)
        .unwrap();
        lanczos.verify_covers(&net).unwrap();
        // Same ballpark of coverage; the partial solver is an
        // approximation, so allow a band.
        assert!(
            (lanczos.outlier_ratio() - dense.outlier_ratio()).abs() < 0.2,
            "lanczos {} vs dense {}",
            lanczos.outlier_ratio(),
            dense.outlier_ratio()
        );
    }

    #[test]
    fn warm_started_lanczos_matches_cold_trace() {
        // Warm-starting changes where the Krylov iteration *starts*, so on
        // nets whose later iterations sit on near-tie cluster boundaries
        // the approximate partial solver can legitimately tile the
        // remainder differently. This planted two-community instance has
        // robust decisions at every iteration (verified to agree across
        // oversample budgets 8/16/32), so warm and cold runs must produce
        // the identical trace and mapping — and determinism keeps this
        // equality pinned.
        let net = generators::planted_clusters(96, 2, 0.8, 0.002, 4)
            .unwrap()
            .0;
        let warm_opts = IscOptions {
            eigensolver: EigenBackend::Lanczos { oversample: 8 },
            ..IscOptions::default()
        };
        let cold_opts = IscOptions {
            warm_start: false,
            ..warm_opts.clone()
        };
        let (warm_map, warm_trace) = Isc::new(warm_opts).run_traced(&net).unwrap();
        let (cold_map, cold_trace) = Isc::new(cold_opts).run_traced(&net).unwrap();
        assert_eq!(warm_trace, cold_trace);
        assert_eq!(warm_map, cold_map);
        assert!(
            warm_trace.iterations.len() >= 2,
            "need several iterations for the warm path to actually engage"
        );
    }

    #[test]
    fn warm_start_counter_fires() {
        let net = structured_net();
        let opts = IscOptions {
            eigensolver: EigenBackend::Lanczos { oversample: 8 },
            ..IscOptions::default()
        };
        let (_, events) = ncs_trace::capture(|| {
            Isc::new(opts).run(&net).unwrap();
        });
        let report = ncs_trace::TraceReport::from_events(&events);
        let warm = report
            .counters
            .iter()
            .find(|c| c.name == "isc.warm_starts")
            .map_or(0, |c| c.total);
        assert!(warm >= 1, "warm starts never engaged: {warm}");
    }

    #[test]
    fn auto_backend_is_dense_below_the_threshold() {
        // structured_net() has 128 neurons, far below DENSE_EIGEN_MAX_N:
        // the Auto default must reproduce the explicit Dense run bit for
        // bit (trace and mapping).
        let net = structured_net();
        assert_eq!(IscOptions::default().eigensolver, EigenBackend::Auto);
        let (auto_map, auto_trace) = Isc::new(IscOptions::default()).run_traced(&net).unwrap();
        let (dense_map, dense_trace) = Isc::new(IscOptions {
            eigensolver: EigenBackend::Dense,
            ..IscOptions::default()
        })
        .run_traced(&net)
        .unwrap();
        assert_eq!(auto_map, dense_map);
        assert_eq!(auto_trace, dense_trace);
    }

    #[test]
    fn backend_resolution_switches_at_the_threshold() {
        use crate::DENSE_EIGEN_MAX_N;
        assert_eq!(
            EigenBackend::Auto.resolve(DENSE_EIGEN_MAX_N),
            EigenBackend::Dense
        );
        assert_eq!(
            EigenBackend::Auto.resolve(DENSE_EIGEN_MAX_N + 1),
            EigenBackend::Lanczos {
                oversample: AUTO_OVERSAMPLE
            }
        );
        let forced = EigenBackend::Lanczos { oversample: 3 };
        assert_eq!(forced.resolve(4), forced);
        assert_eq!(EigenBackend::Dense.resolve(100_000), EigenBackend::Dense);
    }

    #[test]
    fn group_deletion_preserves_coverage() {
        // Block-sparse net: the bridges are pre-classified as outliers,
        // and the mapping still covers every original connection.
        let (net, blocks) = generators::block_sparse(256, 64, 0.5, 2, 7).unwrap();
        let opts = IscOptions {
            compression: crate::CompressionOptions {
                group_deletion: Some(crate::GroupDeletionOptions::default()),
                ..crate::CompressionOptions::default()
            },
            ..IscOptions::default()
        };
        let (mapping, _) = Isc::new(opts).run_traced(&net).unwrap();
        mapping.verify_covers(&net).unwrap();
        // At least one deleted bridge must appear among the outliers.
        assert!(
            mapping
                .outliers()
                .iter()
                .any(|&(f, t)| blocks[f] != blocks[t]),
            "no cross-block outlier found"
        );
    }

    #[test]
    fn rank_clip_bounds_the_embedding_and_preserves_coverage() {
        let net = structured_net();
        let opts = IscOptions {
            eigensolver: EigenBackend::Lanczos { oversample: 8 },
            compression: crate::CompressionOptions {
                rank_clip: Some(3),
                ..crate::CompressionOptions::default()
            },
            ..IscOptions::default()
        };
        let (mapping, events) = ncs_trace::capture(|| Isc::new(opts).run(&net).unwrap());
        mapping.verify_covers(&net).unwrap();
        let report = ncs_trace::TraceReport::from_events(&events);
        let clips = report
            .counters
            .iter()
            .find(|c| c.name == "compress.rank_clips")
            .map_or(0, |c| c.total);
        assert!(clips >= 1, "rank clipping never engaged");
    }

    #[test]
    fn crossbars_are_trimmed_to_active_members() {
        let net = structured_net();
        let (mapping, _) = Isc::new(IscOptions::default()).run_traced(&net).unwrap();
        for xbar in mapping.crossbars() {
            // Every listed input/output neuron actually carries at least
            // one of the crossbar's connections.
            for &m in xbar.inputs.iter().chain(&xbar.outputs) {
                assert!(
                    xbar.connections.iter().any(|&(f, t)| f == m || t == m),
                    "neuron {m} is wired to a crossbar it does not use"
                );
            }
        }
    }
}
