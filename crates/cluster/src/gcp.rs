use ncs_linalg::DenseMatrix;
use ncs_net::ConnectionMatrix;

use crate::isc::AUTO_OVERSAMPLE;
use crate::kmeans::kmeans_with_centroids;
use crate::msc::EmbeddingSource;
use crate::{
    kmeans, spectral_embedding, spectral_embedding_partial, ClusterError, Clustering,
    DENSE_EIGEN_MAX_N,
};

/// Above this neuron count GCP skips the global k-means and produces the
/// clustering purely by recursive bisection of oversize clusters —
/// O(n·d·log(n/s)) instead of the O(n·k·d) per Lloyd sweep that turns
/// quadratic once k grows with n. Far above every paper testbench, so the
/// small-flow results are untouched.
pub(crate) const GCP_BISECTION_MIN_N: usize = 1024;

/// Column cap for the standalone [`gcp`] sparse embedding; bounds the
/// O(n·width) embedding memory when the predicted cluster count is large.
const GCP_SPARSE_EMBED_MAX: usize = 128;

/// Options for [`gcp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcpOptions {
    /// Maximum allowed cluster size `s` (the largest available crossbar).
    pub max_cluster_size: usize,
    /// RNG seed for k-means initialization.
    pub seed: u64,
    /// Safety cap on outer (re-embedding) iterations; after this the
    /// current clustering is split-enforced without further k-means.
    pub max_outer_iterations: usize,
    /// Lloyd iteration budget per k-means call.
    pub kmeans_iterations: usize,
}

impl Default for GcpOptions {
    fn default() -> Self {
        GcpOptions {
            max_cluster_size: 64,
            seed: 0,
            max_outer_iterations: 16,
            kmeans_iterations: 100,
        }
    }
}

/// **Greedy Cluster size Prediction** (Algorithm 2).
///
/// Bounds the largest cluster below the maximum available crossbar size
/// *during* clustering: whenever k-means produces a cluster larger than
/// `s`, that cluster is immediately bisected by a 2-means on its own
/// embedding rows, `k` is incremented, and the centroid set is updated —
/// instead of restarting the whole clustering with a larger `k` as the
/// [traversing](crate::traversing) baseline does. The paper reports GCP
/// reaching near-identical quality at roughly half the runtime (Figure 4).
///
/// The full spectral embedding is computed once (Algorithm 2, step 1);
/// outer iterations only widen the number of embedding columns in use.
///
/// # Errors
///
/// Returns [`ClusterError::InvalidSizeLimit`] for a zero size limit and
/// propagates eigensolver errors.
///
/// # Examples
///
/// ```
/// use ncs_net::generators;
/// use ncs_cluster::{gcp, GcpOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (net, _) = generators::planted_clusters(120, 2, 0.5, 0.02, 3)?;
/// let opts = GcpOptions { max_cluster_size: 40, ..GcpOptions::default() };
/// let clustering = gcp(&net, &opts)?;
/// assert!(clustering.max_cluster_size() <= 40);
/// # Ok(())
/// # }
/// ```
pub fn gcp(net: &ConnectionMatrix, options: &GcpOptions) -> Result<Clustering, ClusterError> {
    let n = net.neurons();
    if n > DENSE_EIGEN_MAX_N {
        if options.max_cluster_size == 0 {
            return Err(ClusterError::InvalidSizeLimit { limit: 0 });
        }
        // Width budget: enough columns for the predicted cluster count plus
        // the usual Lanczos oversampling headroom, hard-capped so the
        // embedding stays O(n), not O(n·k).
        let k = n.div_ceil(options.max_cluster_size).max(1);
        let width = (2 * k + AUTO_OVERSAMPLE).min(GCP_SPARSE_EMBED_MAX).min(n);
        let u = spectral_embedding_partial(net, width, options.seed)?;
        return gcp_from_embedding(&EmbeddingSource::Partial(u), n, options);
    }
    let eig = spectral_embedding(net)?;
    gcp_from_embedding(&EmbeddingSource::Dense(eig), n, options)
}

/// GCP on a precomputed spectral embedding (shared with ISC, which
/// re-embeds the shrinking remainder network itself — densely or via
/// Lanczos).
pub(crate) fn gcp_from_embedding(
    source: &EmbeddingSource,
    n: usize,
    options: &GcpOptions,
) -> Result<Clustering, ClusterError> {
    let s = options.max_cluster_size;
    if s == 0 {
        return Err(ClusterError::InvalidSizeLimit { limit: 0 });
    }
    if options.max_outer_iterations == 0 {
        return Err(ClusterError::InvalidIterationBudget {
            what: "max_outer_iterations",
        });
    }
    if n >= GCP_BISECTION_MIN_N {
        return gcp_bisection(source, n, options);
    }
    // Step 2: predicted cluster count k = n / s (at least 1).
    let mut k = n.div_ceil(s).max(1);
    let mut assignment: Option<Vec<usize>> = None;
    for outer in 0..options.max_outer_iterations {
        let u = source.embedding(k.min(n));
        // Centroids: warm-start from the previous assignment when
        // available, otherwise k-means++ on the current embedding.
        let result = match &assignment {
            None => kmeans(
                &u,
                k.min(n),
                options.seed.wrapping_add(outer as u64),
                options.kmeans_iterations,
            )?,
            Some(prev) => {
                let centroids = centroids_from_assignment(&u, prev, k.min(n));
                kmeans_with_centroids(&u, centroids, options.kmeans_iterations)?
            }
        };
        let mut clusters = clusters_of(&result.assignment, k.min(n));
        // Inner loop: split every oversize cluster into two sub-clusters.
        let mut flag_outer = false;
        loop {
            let mut flag_inner = false;
            let mut j = 0;
            while j < clusters.len() {
                if clusters[j].len() > s {
                    let (a, b) = bisect(&u, &clusters[j], options.seed.wrapping_add(j as u64));
                    clusters[j] = a;
                    clusters.push(b);
                    ncs_trace::add("gcp.splits", 1);
                    flag_inner = true;
                    flag_outer = true;
                } else {
                    j += 1;
                }
            }
            if !flag_inner {
                break;
            }
        }
        k = clusters.len();
        let mut assign = vec![0usize; n];
        for (c, members) in clusters.iter().enumerate() {
            for &m in members {
                assign[m] = c;
            }
        }
        assignment = Some(assign);
        if !flag_outer {
            ncs_trace::record("gcp.outer_iterations", (outer + 1) as u64);
            return Ok(Clustering::new(clusters, n));
        }
    }
    // Outer budget exhausted: the last assignment is already size-feasible
    // because the inner loop ran to completion. `assignment` is `Some`
    // whenever at least one outer iteration ran, which the budget check
    // above guarantees — but keep the degenerate path an error, not a panic.
    let Some(assignment) = assignment else {
        return Err(ClusterError::InvalidIterationBudget {
            what: "max_outer_iterations",
        });
    };
    Ok(Clustering::from_assignment(&assignment, k))
}

/// Split-only GCP for large networks: start from a single all-neuron
/// cluster and recursively bisect every oversize cluster on the embedding.
/// Skipping the global k-means removes the O(n·k·d) Lloyd sweeps that
/// dominate once `k` grows with `n`, and the balanced spectral cut in
/// [`spread_split`] replaces the 2-means used on the small-n path — a
/// 2-means can peel one stray neuron per split off a sparse remainder
/// network, degenerating into thousands of near-empty clusters, while the
/// balanced cut shrinks every part geometrically. Total work is
/// O(n·d·log(n/s)).
// ncs-lint: hot
fn gcp_bisection(
    source: &EmbeddingSource,
    n: usize,
    options: &GcpOptions,
) -> Result<Clustering, ClusterError> {
    let s = options.max_cluster_size;
    let u = source.embedding(source.max_k());
    let mut clusters: Vec<Vec<usize>> = vec![(0..n).collect()];
    let mut j = 0;
    while j < clusters.len() {
        if clusters[j].len() > s {
            let (a, b) = spread_split(&u, &clusters[j]);
            clusters[j] = a;
            clusters.push(b);
            ncs_trace::add("gcp.splits", 1);
        } else {
            j += 1;
        }
    }
    ncs_trace::record("gcp.outer_iterations", 1);
    Ok(Clustering::new(clusters, n))
}

/// Deterministic balanced spectral cut: orders `members` by their
/// coordinate in the embedding column with the largest variance (the
/// direction along which the cluster is most spread) and cuts at the
/// largest coordinate gap within the middle half of the ordering. The
/// gap seeks the natural community boundary; restricting it to the
/// middle half guarantees both sides keep at least a quarter of the
/// members, so recursion depth stays logarithmic.
fn spread_split(u: &DenseMatrix, members: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let len = members.len();
    debug_assert!(len >= 2, "only oversize clusters are split");
    let mut best_col = 0usize;
    let mut best_var = f64::NEG_INFINITY;
    for c in 0..u.ncols() {
        let mut sum = 0.0;
        let mut sq = 0.0;
        for &m in members {
            let v = u[(m, c)];
            sum += v;
            sq += v * v;
        }
        let mean = sum / len as f64;
        let var = sq / len as f64 - mean * mean;
        if var > best_var {
            best_var = var;
            best_col = c;
        }
    }
    let mut order: Vec<usize> = members.to_vec();
    order.sort_by(|&a, &b| {
        u[(a, best_col)]
            .total_cmp(&u[(b, best_col)])
            .then(a.cmp(&b))
    });
    // Cut after the largest gap among positions that leave both sides
    // with at least len/4 members (and never empty).
    let lo = (len / 4).max(1);
    let hi = len - lo;
    let mut cut = len / 2;
    let mut best_gap = f64::NEG_INFINITY;
    for p in lo..=hi.min(len - 1) {
        let gap = u[(order[p], best_col)] - u[(order[p - 1], best_col)];
        if gap > best_gap {
            best_gap = gap;
            cut = p;
        }
    }
    let b = order.split_off(cut);
    (order, b)
}

fn clusters_of(assignment: &[usize], k: usize) -> Vec<Vec<usize>> {
    let mut clusters = vec![Vec::new(); k];
    for (i, &a) in assignment.iter().enumerate() {
        clusters[a].push(i);
    }
    clusters.retain(|c| !c.is_empty());
    clusters
}

fn centroids_from_assignment(u: &DenseMatrix, assignment: &[usize], k: usize) -> DenseMatrix {
    let dim = u.ncols();
    let mut centroids = DenseMatrix::zeros(k, dim);
    let mut counts = vec![0usize; k];
    for (i, &a) in assignment.iter().enumerate() {
        if a < k {
            counts[a] += 1;
            let row = u.row(i);
            for (t, &v) in centroids.row_mut(a).iter_mut().zip(row) {
                *t += v;
            }
        }
    }
    for (c, &count) in counts.iter().enumerate() {
        if count > 0 {
            let inv = 1.0 / count as f64;
            for t in centroids.row_mut(c).iter_mut() {
                *t *= inv;
            }
        }
    }
    centroids
}

/// Splits an oversize cluster into two non-empty halves with a 2-means on
/// its embedding rows, falling back to an index split for degenerate
/// (all-identical) embeddings.
fn bisect(u: &DenseMatrix, members: &[usize], seed: u64) -> (Vec<usize>, Vec<usize>) {
    let dim = u.ncols();
    let mut sub = DenseMatrix::zeros(members.len(), dim);
    for (r, &m) in members.iter().enumerate() {
        sub.row_mut(r).copy_from_slice(u.row(m));
    }
    if let Ok(result) = kmeans(&sub, 2, seed, 60) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (r, &m) in members.iter().enumerate() {
            if result.assignment[r] == 0 {
                a.push(m);
            } else {
                b.push(m);
            }
        }
        if !a.is_empty() && !b.is_empty() {
            return (a, b);
        }
    }
    let mid = members.len() / 2;
    (members[..mid].to_vec(), members[mid..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_net::generators;

    #[test]
    fn respects_size_limit() {
        let net = generators::uniform_random(150, 0.06, 5).unwrap();
        for limit in [16usize, 32, 64] {
            let c = gcp(
                &net,
                &GcpOptions {
                    max_cluster_size: limit,
                    ..GcpOptions::default()
                },
            )
            .unwrap();
            assert!(
                c.max_cluster_size() <= limit,
                "limit {limit} violated: {}",
                c.max_cluster_size()
            );
            // Every neuron appears exactly once.
            assert_eq!(c.sizes().iter().sum::<usize>(), 150);
        }
    }

    #[test]
    fn zero_limit_rejected() {
        let net = ConnectionMatrix::from_pairs(4, [(0, 1)]).unwrap();
        assert!(gcp(
            &net,
            &GcpOptions {
                max_cluster_size: 0,
                ..GcpOptions::default()
            }
        )
        .is_err());
    }

    #[test]
    fn limit_above_n_keeps_structure() {
        let (net, _) = generators::planted_clusters(40, 2, 0.6, 0.01, 1).unwrap();
        let c = gcp(
            &net,
            &GcpOptions {
                max_cluster_size: 100,
                ..GcpOptions::default()
            },
        )
        .unwrap();
        // No size pressure: expect very few clusters and low outliers.
        assert!(c.len() <= 4);
        assert!(c.outlier_ratio(&net) < 0.2);
    }

    #[test]
    fn preserves_community_quality_under_limit() {
        let (net, _) = generators::planted_clusters(120, 4, 0.5, 0.01, 9).unwrap();
        let c = gcp(
            &net,
            &GcpOptions {
                max_cluster_size: 30,
                ..GcpOptions::default()
            },
        )
        .unwrap();
        assert!(c.max_cluster_size() <= 30);
        assert!(
            c.outlier_ratio(&net) < 0.35,
            "outlier ratio {}",
            c.outlier_ratio(&net)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let net = generators::uniform_random(60, 0.08, 2).unwrap();
        let opts = GcpOptions {
            max_cluster_size: 20,
            seed: 3,
            ..GcpOptions::default()
        };
        let a = gcp(&net, &opts).unwrap();
        let b = gcp(&net, &opts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn large_networks_use_the_sparse_bisection_path() {
        // n = 1100 clears both DENSE_EIGEN_MAX_N (sparse embedding) and
        // GCP_BISECTION_MIN_N (split-only clustering).
        let (net, _) = generators::block_sparse(1100, 64, 0.4, 1, 5).unwrap();
        let opts = GcpOptions {
            max_cluster_size: 64,
            ..GcpOptions::default()
        };
        let (c, events) = ncs_trace::capture(|| gcp(&net, &opts).unwrap());
        assert!(c.max_cluster_size() <= 64);
        assert_eq!(c.sizes().iter().sum::<usize>(), 1100);
        let report = ncs_trace::TraceReport::from_events(&events);
        let counter = |name: &str| {
            report
                .counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.total)
        };
        assert!(
            counter("gcp.splits") >= 16,
            "split-only path must reach the cluster count by bisection"
        );
        assert!(
            counter("isc.sparse_matvecs") > 0,
            "embedding above DENSE_EIGEN_MAX_N must be Lanczos-driven"
        );
        // Deterministic per seed.
        let again = gcp(&net, &opts).unwrap();
        assert_eq!(c, again);
    }

    #[test]
    fn bisect_degenerate_points_still_splits() {
        let u = DenseMatrix::zeros(6, 2);
        let members: Vec<usize> = (0..6).collect();
        let (a, b) = bisect(&u, &members, 0);
        assert!(!a.is_empty() && !b.is_empty());
        assert_eq!(a.len() + b.len(), 6);
    }
}
