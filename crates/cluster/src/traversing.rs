use ncs_net::ConnectionMatrix;

use crate::msc::msc_from_embedding;
use crate::{spectral_embedding, ClusterError, Clustering};

/// The **traversing** baseline for cluster-size limitation (Section 3.3).
///
/// Instead of GCP's greedy in-loop splitting, this baseline "passively"
/// enforces the crossbar size limit by exhaustively increasing the cluster
/// count `k` in MSC until the largest cluster fits. The spectral embedding
/// is factorized once and reused across the scan, so the comparison with
/// [`gcp`](crate::gcp) (Figure 4 of the paper: same quality, ~2× slower)
/// isolates the clustering loop itself.
///
/// # Errors
///
/// Returns [`ClusterError::InvalidSizeLimit`] for a zero limit,
/// [`ClusterError::TraversingBudgetExceeded`] if no feasible `k ≤ n` is
/// found (cannot happen for `limit ≥ 1` since `k = n` yields singletons),
/// and propagates eigensolver errors.
///
/// # Examples
///
/// ```
/// use ncs_net::generators;
/// use ncs_cluster::traversing;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let net = generators::uniform_random(80, 0.08, 4)?;
/// let clustering = traversing(&net, 25, 42)?;
/// assert!(clustering.max_cluster_size() <= 25);
/// # Ok(())
/// # }
/// ```
pub fn traversing(
    net: &ConnectionMatrix,
    max_cluster_size: usize,
    seed: u64,
) -> Result<Clustering, ClusterError> {
    if max_cluster_size == 0 {
        return Err(ClusterError::InvalidSizeLimit { limit: 0 });
    }
    let n = net.neurons();
    let eig = spectral_embedding(net)?;
    let mut k = n.div_ceil(max_cluster_size).max(1);
    while k <= n {
        let clustering = msc_from_embedding(&eig, k, seed)?;
        if clustering.max_cluster_size() <= max_cluster_size {
            return Ok(clustering);
        }
        k += 1;
    }
    Err(ClusterError::TraversingBudgetExceeded { max_k: n })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncs_net::generators;

    #[test]
    fn respects_size_limit() {
        let net = generators::uniform_random(70, 0.08, 6).unwrap();
        let c = traversing(&net, 20, 1).unwrap();
        assert!(c.max_cluster_size() <= 20);
        assert_eq!(c.sizes().iter().sum::<usize>(), 70);
    }

    #[test]
    fn zero_limit_rejected() {
        let net = ConnectionMatrix::from_pairs(3, [(0, 1)]).unwrap();
        assert!(traversing(&net, 0, 0).is_err());
    }

    #[test]
    fn quality_comparable_to_gcp() {
        use crate::{gcp, GcpOptions};
        let (net, _) = generators::planted_clusters(100, 4, 0.5, 0.01, 8).unwrap();
        let trav = traversing(&net, 30, 5).unwrap();
        let greedy = gcp(
            &net,
            &GcpOptions {
                max_cluster_size: 30,
                seed: 5,
                ..GcpOptions::default()
            },
        )
        .unwrap();
        let a = trav.outlier_ratio(&net);
        let b = greedy.outlier_ratio(&net);
        // Figure 4: the two clusterings are "very close". Allow a generous
        // band since seeds differ from the paper's.
        assert!((a - b).abs() < 0.25, "traversing {a} vs gcp {b}");
    }

    #[test]
    fn limit_one_gives_singletons() {
        let net = ConnectionMatrix::from_pairs(5, [(0, 1), (1, 0)]).unwrap();
        let c = traversing(&net, 1, 0).unwrap();
        assert_eq!(c.max_cluster_size(), 1);
        assert_eq!(c.len(), 5);
    }
}
