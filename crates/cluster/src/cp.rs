use crate::ClusterError;

/// The set of crossbar sizes available in the technology specification.
///
/// The paper's experiments allow square crossbars "from 16 to 64 at a step
/// of 4" ([`CrossbarSizeSet::paper`]); the current reliable fabrication
/// limit is 64×64. Sizes are kept sorted and deduplicated.
///
/// # Examples
///
/// ```
/// use ncs_cluster::CrossbarSizeSet;
///
/// let s = CrossbarSizeSet::paper();
/// assert_eq!(s.min(), 16);
/// assert_eq!(s.max(), 64);
/// assert_eq!(s.smallest_fitting(17), Some(20));
/// assert_eq!(s.smallest_fitting(65), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossbarSizeSet {
    sizes: Vec<usize>,
}

impl CrossbarSizeSet {
    /// Builds a size set from arbitrary sizes (sorted, deduplicated).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::EmptySizeSet`] if no size remains, or
    /// [`ClusterError::InvalidSizeLimit`] if any size is zero.
    pub fn new<I: IntoIterator<Item = usize>>(sizes: I) -> Result<Self, ClusterError> {
        let mut sizes: Vec<usize> = sizes.into_iter().collect();
        if sizes.contains(&0) {
            return Err(ClusterError::InvalidSizeLimit { limit: 0 });
        }
        sizes.sort_unstable();
        sizes.dedup();
        if sizes.is_empty() {
            return Err(ClusterError::EmptySizeSet);
        }
        Ok(CrossbarSizeSet { sizes })
    }

    /// The paper's specification: 16, 20, 24, …, 64.
    pub fn paper() -> Self {
        // Built directly: the static range is already sorted, deduplicated,
        // and zero-free, so the fallible constructor has nothing to check.
        CrossbarSizeSet {
            sizes: (16..=64).step_by(4).collect(),
        }
    }

    /// A single-size set (used by the FullCro baseline).
    pub fn single(size: usize) -> Result<Self, ClusterError> {
        Self::new([size])
    }

    /// Smallest available size.
    pub fn min(&self) -> usize {
        self.sizes[0]
    }

    /// Largest available size.
    pub fn max(&self) -> usize {
        // Non-empty by construction (every constructor rejects empty sets).
        self.sizes[self.sizes.len() - 1]
    }

    /// All sizes, ascending.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The smallest size that can host a cluster of `cluster_size` neurons,
    /// or `None` if even the largest crossbar is too small.
    pub fn smallest_fitting(&self, cluster_size: usize) -> Option<usize> {
        self.sizes.iter().copied().find(|&s| s >= cluster_size)
    }
}

/// How the *crossbar preference* (CP) of a cluster is computed.
///
/// The paper defines CP so that (a) for fixed size `s` it grows with the
/// utilized connections `m` (equivalently utilization `u = m/s²`), and
/// (b) for fixed `m` it shrinks with `s`. The printed formula is garbled
/// in the PDF; the default reading `CP = (m/s)·√u` satisfies both criteria
/// and is what the experiments use. `MuOverS` (`CP = m·u/s`) is an
/// alternative consistent reading provided for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CpModel {
    /// `CP = (m / s) · √u` (default, used in all experiments).
    #[default]
    MOverSSqrtU,
    /// `CP = m · u / s` (ablation alternative).
    MuOverS,
}

/// Computes the crossbar preference of a cluster that uses `m` connections
/// on a crossbar of size `s`.
///
/// Returns 0.0 when `s == 0` (degenerate) so callers can rank uniformly.
///
/// # Examples
///
/// ```
/// use ncs_cluster::{crossbar_preference, CpModel};
///
/// let full = crossbar_preference(16 * 16, 16, CpModel::default());
/// let half = crossbar_preference(16 * 16 / 2, 16, CpModel::default());
/// assert!(full > half, "CP grows with utilized connections");
///
/// let small = crossbar_preference(100, 16, CpModel::default());
/// let large = crossbar_preference(100, 64, CpModel::default());
/// assert!(small > large, "CP shrinks with crossbar size at fixed m");
/// ```
pub fn crossbar_preference(m: usize, s: usize, model: CpModel) -> f64 {
    if s == 0 {
        return 0.0;
    }
    let m = m as f64;
    let s = s as f64;
    let u = m / (s * s);
    match model {
        CpModel::MOverSSqrtU => (m / s) * u.sqrt(),
        CpModel::MuOverS => m * u / s,
    }
}

/// Picks the minimum satisfiable crossbar size in `sizes` for a cluster of
/// `cluster_size` neurons (Algorithm 3, line 11).
///
/// # Errors
///
/// Returns [`ClusterError::InvalidSizeLimit`] if the cluster exceeds the
/// largest crossbar — callers should have bounded cluster sizes with GCP
/// first.
pub fn min_satisfiable_size(
    sizes: &CrossbarSizeSet,
    cluster_size: usize,
) -> Result<usize, ClusterError> {
    sizes
        .smallest_fitting(cluster_size)
        .ok_or(ClusterError::InvalidSizeLimit {
            limit: cluster_size,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_contents() {
        let s = CrossbarSizeSet::paper();
        assert_eq!(
            s.sizes(),
            &[16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60, 64]
        );
    }

    #[test]
    fn new_sorts_and_dedups() {
        let s = CrossbarSizeSet::new([32, 16, 32]).unwrap();
        assert_eq!(s.sizes(), &[16, 32]);
        assert!(CrossbarSizeSet::new([]).is_err());
        assert!(CrossbarSizeSet::new([0, 3]).is_err());
    }

    #[test]
    fn smallest_fitting_boundaries() {
        let s = CrossbarSizeSet::paper();
        assert_eq!(s.smallest_fitting(0), Some(16));
        assert_eq!(s.smallest_fitting(16), Some(16));
        assert_eq!(s.smallest_fitting(64), Some(64));
        assert_eq!(s.smallest_fitting(65), None);
    }

    #[test]
    fn cp_monotonicity_criterion_a() {
        // Fixed s: CP strictly increases with m for both models.
        for model in [CpModel::MOverSSqrtU, CpModel::MuOverS] {
            let mut last = -1.0;
            for m in [0usize, 10, 100, 256] {
                let cp = crossbar_preference(m, 16, model);
                assert!(cp > last || (m == 0 && cp >= last), "{model:?} m={m}");
                last = cp;
            }
        }
    }

    #[test]
    fn cp_monotonicity_criterion_b() {
        // Fixed m: CP strictly decreases with s for both models.
        for model in [CpModel::MOverSSqrtU, CpModel::MuOverS] {
            let mut last = f64::INFINITY;
            for s in [16usize, 32, 48, 64] {
                let cp = crossbar_preference(200, s, model);
                assert!(cp < last, "{model:?} s={s}");
                last = cp;
            }
        }
    }

    #[test]
    fn cp_degenerate_size_is_zero() {
        assert_eq!(crossbar_preference(5, 0, CpModel::default()), 0.0);
    }

    #[test]
    fn min_satisfiable_errors_when_oversize() {
        let s = CrossbarSizeSet::paper();
        assert_eq!(min_satisfiable_size(&s, 30).unwrap(), 32);
        assert!(min_satisfiable_size(&s, 100).is_err());
    }
}
