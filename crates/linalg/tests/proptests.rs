//! Seeded property tests for the linear-algebra kernels.
//!
//! Formerly a proptest suite; rewritten as deterministic case loops over
//! `ncs_rng`-generated inputs so the workspace builds offline with no
//! registry dependencies. The invariants are unchanged; the matrices are
//! drawn from the same distributions the proptest strategies described.

use ncs_linalg::{CsrMatrix, DenseMatrix, GeneralizedEigen, SymmetricEigen, Triplet};
use ncs_rng::Rng;

const CASES: usize = 64;

/// A random symmetric matrix of dimension 1..=12 with entries in [-5, 5].
fn symmetric_matrix(rng: &mut Rng) -> DenseMatrix {
    let n = rng.gen_range(1usize..=12);
    let mut m = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = rng.gen_range(-5.0..5.0);
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    m
}

/// A random binary adjacency matrix (undirected, no self-loops).
fn adjacency_matrix(rng: &mut Rng) -> DenseMatrix {
    let n = rng.gen_range(2usize..=10);
    let mut m = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool() {
                m[(i, j)] = 1.0;
                m[(j, i)] = 1.0;
            }
        }
    }
    m
}

/// Random triplets with row/col below `max_idx`, filtered to `n`.
fn triplets(rng: &mut Rng, n: usize, max_idx: usize, max_len: usize, unit: bool) -> Vec<Triplet> {
    let len = rng.gen_range(0usize..max_len);
    (0..len)
        .map(|_| {
            (
                rng.gen_range(0..max_idx),
                rng.gen_range(0..max_idx),
                if unit { 1.0 } else { rng.gen_range(-3.0..3.0) },
            )
        })
        .filter(|(r, c, _)| *r < n && *c < n)
        .map(|(r, c, v)| Triplet::new(r, c, v))
        .collect()
}

#[test]
fn eigen_trace_equals_eigenvalue_sum() {
    let mut rng = Rng::seed_from_u64(0xE1);
    for case in 0..CASES {
        let a = symmetric_matrix(&mut rng);
        let eig = SymmetricEigen::new(&a).unwrap();
        let trace: f64 = (0..a.nrows()).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.eigenvalues().iter().sum();
        assert!(
            (trace - sum).abs() < 1e-7 * (1.0 + trace.abs()),
            "case {case}: trace {trace} vs sum {sum}"
        );
    }
}

#[test]
fn eigen_residual_is_small() {
    let mut rng = Rng::seed_from_u64(0xE2);
    for case in 0..CASES {
        let a = symmetric_matrix(&mut rng);
        let eig = SymmetricEigen::new(&a).unwrap();
        let n = a.nrows();
        for j in 0..n {
            let v = eig.eigenvectors().column(j);
            let av = a.matvec(&v).unwrap();
            let lam = eig.eigenvalues()[j];
            for i in 0..n {
                assert!(
                    (av[i] - lam * v[i]).abs() < 1e-7 * (1.0 + a.max_abs()),
                    "case {case}: residual at ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn eigenvalues_are_sorted() {
    let mut rng = Rng::seed_from_u64(0xE3);
    for case in 0..CASES {
        let a = symmetric_matrix(&mut rng);
        let eig = SymmetricEigen::new(&a).unwrap();
        for w in eig.eigenvalues().windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "case {case}: {} > {}", w[0], w[1]);
        }
    }
}

#[test]
fn eigenvectors_have_unit_norm() {
    let mut rng = Rng::seed_from_u64(0xE4);
    for case in 0..CASES {
        let a = symmetric_matrix(&mut rng);
        let eig = SymmetricEigen::new(&a).unwrap();
        for j in 0..a.nrows() {
            let v = eig.eigenvectors().column(j);
            let nrm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!(
                (nrm - 1.0).abs() < 1e-9,
                "case {case}: column {j} norm {nrm}"
            );
        }
    }
}

#[test]
fn laplacian_generalized_eigenvalues_in_unit_interval() {
    let mut rng = Rng::seed_from_u64(0xE5);
    for case in 0..CASES {
        // Normalized (random-walk) Laplacian spectrum lies in [0, 2].
        let w = adjacency_matrix(&mut rng);
        let n = w.nrows();
        let d: Vec<f64> = (0..n).map(|i| w.row(i).iter().sum()).collect();
        let mut l = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                l[(i, j)] = if i == j { d[i] } else { 0.0 } - w[(i, j)];
            }
        }
        let ge = GeneralizedEigen::new(&l, &d).unwrap();
        assert!(ge.eigenvalues()[0] > -1e-8, "case {case}");
        assert!(
            *ge.eigenvalues().last().unwrap() < 2.0 + 1e-8,
            "case {case}"
        );
    }
}

#[test]
fn csr_matvec_matches_dense() {
    let mut rng = Rng::seed_from_u64(0xE6);
    for case in 0..CASES {
        let n = rng.gen_range(1usize..10);
        let trips = triplets(&mut rng, n, 10, 40, false);
        let m = CsrMatrix::from_triplets(n, n, &trips).unwrap();
        let v: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
        let sparse = m.matvec(&v).unwrap();
        let dense = m.to_dense().matvec(&v).unwrap();
        for (a, b) in sparse.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-10, "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn csr_roundtrip_preserves_entries() {
    let mut rng = Rng::seed_from_u64(0xE7);
    for case in 0..CASES {
        let n = rng.gen_range(1usize..8);
        let trips = triplets(&mut rng, n, 8, 20, true);
        let m = CsrMatrix::from_triplets(n, n, &trips).unwrap();
        let back = CsrMatrix::from_dense(&m.to_dense(), 0.0);
        assert_eq!(m, back, "case {case}");
    }
}
