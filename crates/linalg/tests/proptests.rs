//! Property-based tests for the linear-algebra kernels.

use ncs_linalg::{CsrMatrix, DenseMatrix, GeneralizedEigen, SymmetricEigen, Triplet};
use proptest::prelude::*;

/// Strategy: a random symmetric matrix of dimension 1..=12 with entries in
/// [-5, 5].
fn symmetric_matrix() -> impl Strategy<Value = DenseMatrix> {
    (1usize..=12).prop_flat_map(|n| {
        proptest::collection::vec(-5.0f64..5.0, n * n).prop_map(move |data| {
            let mut m = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in i..n {
                    let v = data[i * n + j];
                    m[(i, j)] = v;
                    m[(j, i)] = v;
                }
            }
            m
        })
    })
}

/// Strategy: a random binary adjacency matrix (undirected, no self-loops).
fn adjacency_matrix() -> impl Strategy<Value = DenseMatrix> {
    (2usize..=10).prop_flat_map(|n| {
        proptest::collection::vec(proptest::bool::ANY, n * n).prop_map(move |bits| {
            let mut m = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in (i + 1)..n {
                    if bits[i * n + j] {
                        m[(i, j)] = 1.0;
                        m[(j, i)] = 1.0;
                    }
                }
            }
            m
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eigen_trace_equals_eigenvalue_sum(a in symmetric_matrix()) {
        let eig = SymmetricEigen::new(&a).unwrap();
        let trace: f64 = (0..a.nrows()).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.eigenvalues().iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7 * (1.0 + trace.abs()));
    }

    #[test]
    fn eigen_residual_is_small(a in symmetric_matrix()) {
        let eig = SymmetricEigen::new(&a).unwrap();
        let n = a.nrows();
        for j in 0..n {
            let v = eig.eigenvectors().column(j);
            let av = a.matvec(&v).unwrap();
            let lam = eig.eigenvalues()[j];
            for i in 0..n {
                prop_assert!((av[i] - lam * v[i]).abs() < 1e-7 * (1.0 + a.max_abs()));
            }
        }
    }

    #[test]
    fn eigenvalues_are_sorted(a in symmetric_matrix()) {
        let eig = SymmetricEigen::new(&a).unwrap();
        for w in eig.eigenvalues().windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn eigenvectors_have_unit_norm(a in symmetric_matrix()) {
        let eig = SymmetricEigen::new(&a).unwrap();
        for j in 0..a.nrows() {
            let v = eig.eigenvectors().column(j);
            let nrm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            prop_assert!((nrm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn laplacian_generalized_eigenvalues_in_unit_interval(w in adjacency_matrix()) {
        // Normalized (random-walk) Laplacian spectrum lies in [0, 2].
        let n = w.nrows();
        let d: Vec<f64> = (0..n).map(|i| w.row(i).iter().sum()).collect();
        let mut l = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                l[(i, j)] = if i == j { d[i] } else { 0.0 } - w[(i, j)];
            }
        }
        let ge = GeneralizedEigen::new(&l, &d).unwrap();
        prop_assert!(ge.eigenvalues()[0] > -1e-8);
        prop_assert!(*ge.eigenvalues().last().unwrap() < 2.0 + 1e-8);
    }

    #[test]
    fn csr_matvec_matches_dense(
        n in 1usize..10,
        entries in proptest::collection::vec((0usize..10, 0usize..10, -3.0f64..3.0), 0..40)
    ) {
        let trips: Vec<Triplet> = entries
            .into_iter()
            .filter(|(r, c, _)| *r < n && *c < n)
            .map(|(r, c, v)| Triplet::new(r, c, v))
            .collect();
        let m = CsrMatrix::from_triplets(n, n, &trips).unwrap();
        let v: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
        let sparse = m.matvec(&v).unwrap();
        let dense = m.to_dense().matvec(&v).unwrap();
        for (a, b) in sparse.iter().zip(&dense) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn csr_roundtrip_preserves_entries(
        n in 1usize..8,
        entries in proptest::collection::vec((0usize..8, 0usize..8), 0..20)
    ) {
        let trips: Vec<Triplet> = entries
            .into_iter()
            .filter(|(r, c)| *r < n && *c < n)
            .map(|(r, c)| Triplet::new(r, c, 1.0))
            .collect();
        let m = CsrMatrix::from_triplets(n, n, &trips).unwrap();
        let back = CsrMatrix::from_dense(&m.to_dense(), 0.0);
        prop_assert_eq!(m, back);
    }
}
