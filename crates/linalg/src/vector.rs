//! Small vector helpers shared by the optimizer and the placer.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// assert_eq!(ncs_linalg::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
///
/// ```
/// assert_eq!(ncs_linalg::vector::norm(&[3.0, 4.0]), 5.0);
/// ```
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm (maximum absolute entry; 0.0 for an empty slice).
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Squared Euclidean distance between two points.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[0.0, 0.0]), 0.0);
        assert_eq!(norm_inf(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn distances() {
        assert_eq!(distance_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
