//! Lanczos iteration for a few extremal eigenpairs of a large symmetric
//! operator.
//!
//! The dense [`SymmetricEigen`](crate::SymmetricEigen) solver is `O(n³)`,
//! which is fine for the paper's 300-500 neuron testbenches but not for
//! the workloads its introduction motivates (deep networks with "more
//! than 4000 input nodes"). Spectral clustering only needs the `k`
//! smallest eigenvectors of the normalized Laplacian, and the Laplacian is
//! extremely sparse — exactly the setting where Lanczos with full
//! reorthogonalization shines: `O(m·nnz + m²·n)` for `m ≈ 2k` iterations.

use crate::eigen::tql2;
use crate::vector::{axpy, dot, norm};
use crate::{DenseMatrix, LinalgError};

/// Computes the `k` **largest** eigenpairs of a symmetric linear operator
/// given only as a matrix-vector product, using Lanczos with full
/// reorthogonalization.
///
/// Returns `(eigenvalues, vectors)` with eigenvalues in *descending* order
/// and the `i`-th column of `vectors` the Ritz vector for the `i`-th
/// value. Callers wanting the smallest eigenvalues of a matrix `B` with a
/// known spectral upper bound `c` should pass the operator `c·I − B` and
/// map the results back (`λ_B = c − λ_C`, same vectors) — this is what the
/// spectral-clustering front end does with `c = 2` for the normalized
/// Laplacian.
///
/// The Krylov subspace is restarted with fresh deterministic pseudo-random
/// directions whenever an invariant subspace is exhausted (disconnected
/// graphs produce these routinely), so high-multiplicity extremal
/// eigenvalues are recovered too.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for `n == 0`,
/// [`LinalgError::DimensionMismatch`] for `k > n`, and propagates
/// tridiagonal-solver failures.
///
/// # Examples
///
/// ```
/// use ncs_linalg::{lanczos_largest, DenseMatrix};
///
/// # fn main() -> Result<(), ncs_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[
///     &[2.0, 1.0, 0.0][..],
///     &[1.0, 2.0, 1.0][..],
///     &[0.0, 1.0, 2.0][..],
/// ])?;
/// let (values, _) = lanczos_largest(|x, y| {
///     let r = a.matvec(x).expect("square matvec");
///     y.copy_from_slice(&r);
/// }, 3, 1, 0)?;
/// assert!((values[0] - (2.0 + std::f64::consts::SQRT_2)).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn lanczos_largest<F>(
    matvec: F,
    n: usize,
    k: usize,
    seed: u64,
) -> Result<(Vec<f64>, DenseMatrix), LinalgError>
where
    F: Fn(&[f64], &mut [f64]),
{
    lanczos_largest_seeded(matvec, n, k, seed, None)
}

/// [`lanczos_largest`] with optional **warm-start directions**.
///
/// Each column of `warm` is orthogonalized against the Krylov basis built
/// so far and, if anything survives normalization, used as the next
/// starting direction — the first column seeds the initial vector, later
/// columns are consumed by invariant-subspace restarts. Only after every
/// warm column is exhausted does the solver fall back to the deterministic
/// pseudo-random restarts of the cold path, drawn from the same `seed`
/// stream.
///
/// Callers that solve a slowly-drifting sequence of operators (the ISC
/// loop re-embeds an ever-shrinking network each iteration) pass the
/// previous solve's Ritz vectors: they are near-invariant subspaces of the
/// perturbed operator, so the Krylov space concentrates on the extremal
/// spectrum within a few iterations instead of rediscovering it from
/// noise. `warm = None` (or a matrix with zero columns) reproduces
/// [`lanczos_largest`] bit for bit.
///
/// # Errors
///
/// Everything [`lanczos_largest`] returns, plus
/// [`LinalgError::DimensionMismatch`] when `warm` has a row count other
/// than `n`.
pub fn lanczos_largest_seeded<F>(
    matvec: F,
    n: usize,
    k: usize,
    seed: u64,
    warm: Option<&DenseMatrix>,
) -> Result<(Vec<f64>, DenseMatrix), LinalgError>
where
    F: Fn(&[f64], &mut [f64]),
{
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    if k == 0 || k > n {
        return Err(LinalgError::DimensionMismatch {
            expected: (n, 1),
            found: (k, 1),
        });
    }
    if let Some(w) = warm {
        if w.nrows() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, w.ncols()),
                found: (w.nrows(), w.ncols()),
            });
        }
    }
    // Subspace size: enough slack for clustered spectra, capped at n.
    let m_target = (2 * k + 40).min(n);

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m_target);
    let mut alphas: Vec<f64> = Vec::with_capacity(m_target);
    let mut betas: Vec<f64> = Vec::with_capacity(m_target);
    let mut rng_state = seed ^ 0x9e3779b97f4a7c15;
    let mut next_random = move || {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((rng_state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };

    let mut warm_next = 0usize;
    let mut fresh_direction =
        |basis: &[Vec<f64>], next_random: &mut dyn FnMut() -> f64| -> Option<Vec<f64>> {
            // Warm-start columns first: previous Ritz vectors are
            // near-invariant directions of the perturbed operator, so they
            // beat random noise as starting points. Consume them in order.
            if let Some(w) = warm {
                while warm_next < w.ncols() {
                    let mut v = w.column(warm_next);
                    warm_next += 1;
                    for b in basis {
                        let c = dot(b, &v);
                        axpy(-c, b, &mut v);
                    }
                    let nv = norm(&v);
                    if nv > 1e-8 {
                        for x in &mut v {
                            *x /= nv;
                        }
                        return Some(v);
                    }
                }
            }
            // Then a few random restarts; orthogonalize against the basis.
            for _ in 0..8 {
                let mut v: Vec<f64> = (0..n).map(|_| next_random()).collect();
                for b in basis {
                    let c = dot(b, &v);
                    axpy(-c, b, &mut v);
                }
                let nv = norm(&v);
                if nv > 1e-8 {
                    for x in &mut v {
                        *x /= nv;
                    }
                    return Some(v);
                }
            }
            None
        };

    let Some(mut v) = fresh_direction(&basis, &mut next_random) else {
        // Eight random restarts all collapsed under normalization — only
        // possible with a degenerate RNG stream; refuse rather than spin.
        return Err(LinalgError::NoConvergence {
            kernel: "lanczos starting vector",
            iterations: 8,
        });
    };
    let mut w = vec![0.0; n];
    let mut restarts = 0u64;
    while basis.len() < m_target {
        matvec(&v, &mut w);
        let alpha = dot(&v, &w);
        // w -= alpha*v + beta*prev  (three-term recurrence)...
        axpy(-alpha, &v, &mut w);
        if let Some(prev) = basis.last() {
            let beta_prev = *betas.last().unwrap_or(&0.0);
            axpy(-beta_prev, prev, &mut w);
        }
        // Move `v` into the basis instead of cloning: the storage the
        // basis keeps anyway is the only per-iteration allocation left.
        basis.push(std::mem::take(&mut v));
        alphas.push(alpha);
        // ...then full reorthogonalization (twice) for numerical hygiene.
        for _ in 0..2 {
            for b in &basis {
                let c = dot(b, &w);
                // ncs-lint: allow(float-eq) — exact zero just skips a no-op axpy
                if c != 0.0 {
                    axpy(-c, b, &mut w);
                }
            }
        }
        let beta = norm(&w);
        if basis.len() == m_target {
            break;
        }
        if beta < 1e-10 {
            // Invariant subspace exhausted: restart in a fresh direction
            // with a zero coupling coefficient.
            match fresh_direction(&basis, &mut next_random) {
                Some(fresh) => {
                    restarts += 1;
                    betas.push(0.0);
                    v = fresh;
                }
                None => break, // the whole space is spanned
            }
        } else {
            betas.push(beta);
            v = w.iter().map(|x| x / beta).collect();
        }
    }

    // Solve the tridiagonal Ritz problem (d = alphas, e = betas).
    let m = basis.len();
    ncs_trace::add("lanczos.restarts", restarts);
    ncs_trace::record("lanczos.basis", m as u64);
    let mut d = alphas.clone();
    // tql2 expects the subdiagonal in e[1..m].
    let mut e = vec![0.0; m];
    for (i, &b) in betas.iter().enumerate() {
        if i + 1 < m {
            e[i + 1] = b;
        }
    }
    let mut z = DenseMatrix::identity(m);
    tql2(&mut z, &mut d, &mut e)?;

    // Pick the k largest Ritz values.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| d[b].total_cmp(&d[a]));
    let k_found = k.min(m);
    let mut values = Vec::with_capacity(k_found);
    let mut vectors = DenseMatrix::zeros(n, k_found);
    for (col, &ritz) in order.iter().take(k_found).enumerate() {
        values.push(d[ritz]);
        // Ritz vector = Σ_j z[j][ritz] · basis_j.
        for (j, b) in basis.iter().enumerate() {
            let coeff = z[(j, ritz)];
            // ncs-lint: allow(float-eq) — exact zero just skips a no-op axpy
            if coeff != 0.0 {
                for (i, &bi) in b.iter().enumerate() {
                    vectors[(i, col)] += coeff * bi;
                }
            }
        }
        // Normalize for safety (full reorthogonalization keeps this ~1).
        let mut nrm = 0.0;
        for i in 0..n {
            nrm += vectors[(i, col)] * vectors[(i, col)];
        }
        let nrm = nrm.sqrt();
        if nrm > 0.0 {
            for i in 0..n {
                vectors[(i, col)] /= nrm;
            }
        }
    }
    Ok((values, vectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymmetricEigen;

    fn dense_operator(a: &DenseMatrix) -> impl Fn(&[f64], &mut [f64]) + '_ {
        move |x, y| {
            let r = a.matvec(x).expect("square matvec");
            y.copy_from_slice(&r);
        }
    }

    fn random_symmetric(n: usize, seed: u64) -> DenseMatrix {
        let mut a = DenseMatrix::zeros(n, n);
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    #[test]
    fn matches_dense_solver_on_largest_eigenvalues() {
        let a = random_symmetric(60, 5);
        let dense = SymmetricEigen::new(&a).unwrap();
        let (values, vectors) = lanczos_largest(dense_operator(&a), 60, 5, 1).unwrap();
        let n = 60;
        for (idx, &lam) in values.iter().enumerate() {
            let expect = dense.eigenvalues()[n - 1 - idx];
            assert!((lam - expect).abs() < 1e-7, "ritz {idx}: {lam} vs {expect}");
            // Residual check: ||A v - λ v|| small.
            let v = vectors.column(idx);
            let av = a.matvec(&v).unwrap();
            let res: f64 = av
                .iter()
                .zip(&v)
                .map(|(x, y)| (x - lam * y) * (x - lam * y))
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-6, "residual {res} for ritz {idx}");
        }
    }

    #[test]
    fn handles_high_multiplicity_via_restarts() {
        // Block-diagonal: four disconnected 2-node graphs whose shifted
        // Laplacians all share the top eigenvalue 2 with multiplicity 4.
        let n = 8;
        let mut c = DenseMatrix::zeros(n, n);
        for b in 0..4 {
            let i = 2 * b;
            // 2I - L for a single edge: [[1, 1], [1, 1]]; top eigenvalue 2.
            c[(i, i)] = 1.0;
            c[(i + 1, i + 1)] = 1.0;
            c[(i, i + 1)] = 1.0;
            c[(i + 1, i)] = 1.0;
        }
        let (values, vectors) = lanczos_largest(dense_operator(&c), n, 4, 3).unwrap();
        for &v in &values {
            assert!((v - 2.0).abs() < 1e-8, "expected eigenvalue 2, got {v}");
        }
        // The four Ritz vectors are mutually orthogonal.
        for a in 0..4 {
            for b in (a + 1)..4 {
                let d: f64 = (0..n).map(|i| vectors[(i, a)] * vectors[(i, b)]).sum();
                assert!(d.abs() < 1e-8, "columns {a},{b} not orthogonal: {d}");
            }
        }
    }

    #[test]
    fn k_equals_n_recovers_everything() {
        let a = random_symmetric(12, 9);
        let dense = SymmetricEigen::new(&a).unwrap();
        let (values, _) = lanczos_largest(dense_operator(&a), 12, 12, 2).unwrap();
        for (idx, &lam) in values.iter().enumerate() {
            let expect = dense.eigenvalues()[11 - idx];
            assert!((lam - expect).abs() < 1e-7, "{lam} vs {expect}");
        }
    }

    #[test]
    fn rejects_degenerate_requests() {
        let noop = |_: &[f64], _: &mut [f64]| {};
        assert!(matches!(
            lanczos_largest(noop, 0, 1, 0),
            Err(LinalgError::Empty)
        ));
        assert!(lanczos_largest(noop, 4, 0, 0).is_err());
        assert!(lanczos_largest(noop, 4, 5, 0).is_err());
    }

    #[test]
    fn warm_seeded_matches_cold_quality() {
        // Re-solving with the previous Ritz vectors as warm directions must
        // land on the same eigenvalues (the subspace already contains
        // them); the result stays a valid eigendecomposition.
        let a = random_symmetric(60, 17);
        let dense = SymmetricEigen::new(&a).unwrap();
        let (_, cold_vectors) = lanczos_largest(dense_operator(&a), 60, 5, 1).unwrap();
        let (values, vectors) =
            lanczos_largest_seeded(dense_operator(&a), 60, 5, 2, Some(&cold_vectors)).unwrap();
        for (idx, &lam) in values.iter().enumerate() {
            let expect = dense.eigenvalues()[59 - idx];
            assert!((lam - expect).abs() < 1e-7, "ritz {idx}: {lam} vs {expect}");
            let v = vectors.column(idx);
            let av = a.matvec(&v).unwrap();
            let res: f64 = av
                .iter()
                .zip(&v)
                .map(|(x, y)| (x - lam * y) * (x - lam * y))
                .sum::<f64>()
                .sqrt();
            // A hair looser than the cold-start gate: warm directions spend
            // the fixed subspace budget on the extremal end, so trailing
            // pairs of a flat random spectrum settle slightly less tightly.
            assert!(res < 1e-4, "residual {res} for ritz {idx}");
        }
    }

    #[test]
    fn empty_warm_matrix_is_bit_identical_to_cold() {
        // Zero warm columns leave the RNG stream untouched, so the seeded
        // entry point degenerates to the cold path exactly.
        let a = random_symmetric(24, 29);
        let warm = DenseMatrix::zeros(24, 0);
        let (cv, cx) = lanczos_largest(dense_operator(&a), 24, 4, 5).unwrap();
        let (wv, wx) = lanczos_largest_seeded(dense_operator(&a), 24, 4, 5, Some(&warm)).unwrap();
        for (c, w) in cv.iter().zip(&wv) {
            assert_eq!(c.to_bits(), w.to_bits());
        }
        for i in 0..24 {
            for j in 0..4 {
                assert_eq!(cx[(i, j)].to_bits(), wx[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn warm_seed_dimension_mismatch_rejected() {
        let a = random_symmetric(10, 3);
        let warm = DenseMatrix::zeros(9, 2);
        assert!(matches!(
            lanczos_largest_seeded(dense_operator(&a), 10, 2, 0, Some(&warm)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn zero_operator_returns_zero_eigenvalues() {
        let zero = |_: &[f64], y: &mut [f64]| y.fill(0.0);
        let (values, _) = lanczos_largest(zero, 6, 3, 7).unwrap();
        for v in values {
            assert!(v.abs() < 1e-10);
        }
    }
}
