use crate::{DenseMatrix, LinalgError};
use ncs_par::SharedF64Buf;

/// Full eigendecomposition of a real symmetric matrix.
///
/// Implements the classic EISPACK pair `tred2` (Householder reduction to
/// tridiagonal form with accumulation of the orthogonal transform) and
/// `tql2` (implicit-shift QL iteration). Eigenvalues are returned in
/// ascending order; the `i`-th column of [`SymmetricEigen::eigenvectors`]
/// is the unit eigenvector for the `i`-th eigenvalue.
///
/// This is exactly the kernel that the MSC step of AutoNCS needs: the
/// spectral embedding uses the eigenvectors of the graph Laplacian
/// corresponding to the *smallest* eigenvalues, i.e. the first `k` columns.
///
/// # Examples
///
/// ```
/// use ncs_linalg::{DenseMatrix, SymmetricEigen};
///
/// # fn main() -> Result<(), ncs_linalg::LinalgError> {
/// // Path-graph Laplacian on 3 nodes: eigenvalues 0, 1, 3.
/// let l = DenseMatrix::from_rows(&[
///     &[1.0, -1.0, 0.0][..],
///     &[-1.0, 2.0, -1.0][..],
///     &[0.0, -1.0, 1.0][..],
/// ])?;
/// let eig = SymmetricEigen::new(&l)?;
/// assert!(eig.eigenvalues()[0].abs() < 1e-10);
/// assert!((eig.eigenvalues()[1] - 1.0).abs() < 1e-10);
/// assert!((eig.eigenvalues()[2] - 3.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    eigenvectors: DenseMatrix,
}

impl SymmetricEigen {
    /// Maximum QL iterations per eigenvalue before reporting failure.
    const MAX_ITER: usize = 64;

    /// Computes the eigendecomposition of a symmetric matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] / [`LinalgError::Empty`] for bad shapes.
    /// * [`LinalgError::NotSymmetric`] if `a` deviates from symmetry by more
    ///   than `1e-8 * max_abs`.
    /// * [`LinalgError::NoConvergence`] if QL iteration stalls (essentially
    ///   never happens for well-formed input).
    pub fn new(a: &DenseMatrix) -> Result<Self, LinalgError> {
        let (r, c) = a.shape();
        if r == 0 || c == 0 {
            return Err(LinalgError::Empty);
        }
        if r != c {
            return Err(LinalgError::NotSquare { shape: (r, c) });
        }
        let tol = 1e-8 * a.max_abs().max(1.0);
        for i in 0..r {
            for j in (i + 1)..r {
                if (a[(i, j)] - a[(j, i)]).abs() > tol {
                    return Err(LinalgError::NotSymmetric { at: (i, j) });
                }
            }
        }
        // Work on the symmetrized copy so that tiny asymmetries cannot bias
        // the reduction.
        let n = r;
        let mut z = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                z[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
            }
        }
        let mut d = vec![0.0; n];
        let mut e = vec![0.0; n];
        tred2(&mut z, &mut d, &mut e);
        let sweeps = tql2(&mut z, &mut d, &mut e)?;
        ncs_trace::record("eigen.ql_sweeps", sweeps as u64);
        // Sort ascending, permuting eigenvector columns accordingly.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| d[i].total_cmp(&d[j]));
        let mut values = Vec::with_capacity(n);
        let mut vectors = DenseMatrix::zeros(n, n);
        for (new_j, &old_j) in order.iter().enumerate() {
            values.push(d[old_j]);
            for i in 0..n {
                vectors[(i, new_j)] = z[(i, old_j)];
            }
        }
        Ok(SymmetricEigen {
            eigenvalues: values,
            eigenvectors: vectors,
        })
    }

    /// Eigenvalues in ascending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Orthogonal matrix whose `i`-th column is the eigenvector for
    /// `eigenvalues()[i]`.
    pub fn eigenvectors(&self) -> &DenseMatrix {
        &self.eigenvectors
    }

    /// Consumes the decomposition, returning `(eigenvalues, eigenvectors)`.
    pub fn into_parts(self) -> (Vec<f64>, DenseMatrix) {
        (self.eigenvalues, self.eigenvectors)
    }
}

/// Solution of the generalized symmetric eigenproblem `L u = λ D u` with a
/// **diagonal** `D`, as used by normalized spectral clustering (Shi–Malik).
///
/// The problem is whitened into the ordinary symmetric problem
/// `D^{-1/2} L D^{-1/2} v = λ v` with `u = D^{-1/2} v`. Diagonal entries of
/// `D` that are zero (isolated graph nodes) are clamped to 1.0, which leaves
/// the corresponding rows of `L` untouched (they are all-zero anyway) and
/// assigns those nodes eigenvalue 0 — the standard guard in spectral
/// clustering implementations.
///
/// # Examples
///
/// ```
/// use ncs_linalg::{DenseMatrix, GeneralizedEigen};
///
/// # fn main() -> Result<(), ncs_linalg::LinalgError> {
/// // Two disconnected edges: the two smallest generalized eigenvalues are 0.
/// let l = DenseMatrix::from_rows(&[
///     &[1.0, -1.0, 0.0, 0.0][..],
///     &[-1.0, 1.0, 0.0, 0.0][..],
///     &[0.0, 0.0, 1.0, -1.0][..],
///     &[0.0, 0.0, -1.0, 1.0][..],
/// ])?;
/// let d = vec![1.0, 1.0, 1.0, 1.0];
/// let ge = GeneralizedEigen::new(&l, &d)?;
/// assert!(ge.eigenvalues()[0].abs() < 1e-10);
/// assert!(ge.eigenvalues()[1].abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GeneralizedEigen {
    eigenvalues: Vec<f64>,
    eigenvectors: DenseMatrix,
}

impl GeneralizedEigen {
    /// Solves `L u = λ D u` for symmetric `l` and diagonal `d` (given as the
    /// vector of diagonal entries).
    ///
    /// # Errors
    ///
    /// Propagates shape/symmetry errors from [`SymmetricEigen::new`], and
    /// returns [`LinalgError::DimensionMismatch`] if `d.len() != l.nrows()`.
    /// Negative diagonal entries yield [`LinalgError::NotPositive`].
    pub fn new(l: &DenseMatrix, d: &[f64]) -> Result<Self, LinalgError> {
        let n = l.nrows();
        if d.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                found: (d.len(), 1),
            });
        }
        if d.iter().any(|&v| v < 0.0) {
            return Err(LinalgError::NotPositive {
                what: "degree matrix diagonal",
            });
        }
        let inv_sqrt: Vec<f64> = d
            .iter()
            .map(|&v| if v > 0.0 { 1.0 / v.sqrt() } else { 1.0 })
            .collect();
        let mut b = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                b[(i, j)] = l[(i, j)] * inv_sqrt[i] * inv_sqrt[j];
            }
        }
        let eig = SymmetricEigen::new(&b)?;
        let (values, mut vectors) = eig.into_parts();
        // Un-whiten: u = D^{-1/2} v, then renormalize columns so callers get
        // a well-scaled embedding.
        for j in 0..n {
            let mut norm = 0.0;
            for i in 0..n {
                vectors[(i, j)] *= inv_sqrt[i];
                norm += vectors[(i, j)] * vectors[(i, j)];
            }
            let norm = norm.sqrt();
            if norm > 0.0 {
                for i in 0..n {
                    vectors[(i, j)] /= norm;
                }
            }
        }
        Ok(GeneralizedEigen {
            eigenvalues: values,
            eigenvectors: vectors,
        })
    }

    /// Generalized eigenvalues in ascending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Matrix whose `i`-th column is the generalized eigenvector for
    /// `eigenvalues()[i]`, normalized to unit Euclidean length.
    pub fn eigenvectors(&self) -> &DenseMatrix {
        &self.eigenvectors
    }

    /// The first `k` eigenvector columns as an `n × k` embedding matrix —
    /// exactly the `U` matrix of Algorithm 1 (MSC) in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the problem dimension.
    pub fn embedding(&self, k: usize) -> DenseMatrix {
        let n = self.eigenvectors.nrows();
        assert!(
            k <= n,
            "requested {k} eigenvectors from a {n}-dimensional problem"
        );
        let mut u = DenseMatrix::zeros(n, k);
        for i in 0..n {
            for j in 0..k {
                u[(i, j)] = self.eigenvectors[(i, j)];
            }
        }
        u
    }
}

/// Rows per ownership/fold chunk in the `tred2` team. The chunk grid is
/// part of the numeric contract: the accumulation-phase dot products are
/// folded per chunk in ascending chunk order, so this constant (never
/// the thread count) determines the rounding of the result.
const TRED2_GRAIN: usize = 32;

/// Total-work floor for the eigensolver's parallel paths, calibrated at
/// order 128 (the old `TEAM_MIN_N`): both `tred2` and `tql2` are O(n³)
/// kernels, and below ~n=128 spawn and barrier overhead swamps the
/// arithmetic.
const EIGEN_MIN_WORK: usize = 128 * 128 * 128;

/// The eigensolver cutoff for an order-`n` problem: `n` row-items at
/// ~`n²` work each, engaging the pool once n³ reaches
/// [`EIGEN_MIN_WORK`]. A pure function of `n`, so the inline/dispatch
/// decision (and its trace counters) never depends on the thread count.
fn eigen_cutoff(n: usize) -> ncs_par::Cutoff {
    ncs_par::Cutoff::min_work(EIGEN_MIN_WORK).work_per_item(n.saturating_mul(n))
}

/// Householder reduction of a symmetric matrix (stored in `z`) to
/// tridiagonal form; `d` receives the diagonal, `e` the subdiagonal
/// (`e[0]` unused), and `z` is overwritten with the accumulated orthogonal
/// transformation.
///
/// Runs as an SPMD team over row blocks of `z` ([`tred2_body`]): with one
/// worker the body executes inline on the calling thread, so the serial
/// and parallel paths are literally the same code and the output is
/// bit-identical at any thread count.
fn tred2(z: &mut DenseMatrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    if n == 0 {
        return;
    }
    let u_buf = SharedF64Buf::new(n);
    let e_buf = SharedF64Buf::new(n);
    let d_buf = SharedF64Buf::new(n);
    let u_all = SharedF64Buf::new(n * n);
    let chunks = ncs_par::chunk_count(n, TRED2_GRAIN);
    // Two partials buffers, alternated per accumulation column: with
    // only one barrier per column, a worker may start writing partials
    // for column i+1 while a straggler is still folding column i, so
    // consecutive columns must not share a buffer.
    let partials = [SharedF64Buf::new(chunks * n), SharedF64Buf::new(chunks * n)];
    ncs_par::team_split_mut(
        z.as_mut_slice(),
        n,
        TRED2_GRAIN,
        eigen_cutoff(n),
        |ctx, rows| tred2_body(&ctx, rows, n, &u_buf, &e_buf, &d_buf, &u_all, &partials),
    );
    for i in 0..n {
        d[i] = d_buf.get(i);
        e[i] = e_buf.get(i);
    }
}

/// One `tred2` worker: owns the contiguous row block `rows` (global rows
/// `ctx.range()`), synchronising through the shared exchange buffers.
///
/// The classic EISPACK sweep updates only the lower triangle; here every
/// rank-2 update is applied to the **full** active block, which keeps the
/// block bit-exactly symmetric (IEEE `+`/`*` are commutative), so the
/// first reduction pass can read each row as a plain own-row dot product
/// instead of walking a column owned by other workers. Column `i` of the
/// transform (written at iteration `i`) lies outside every later active
/// block, so the accumulated transform is unaffected. Scalar recurrences
/// (`scale`, `h`, the `e`-fold) are replayed redundantly by every worker
/// from identical bits, which keeps the barrier count at two per
/// iteration.
#[allow(clippy::too_many_arguments)]
fn tred2_body(
    ctx: &ncs_par::TeamCtx<'_>,
    rows: &mut [f64],
    n: usize,
    u_buf: &SharedF64Buf,
    e_buf: &SharedF64Buf,
    d_buf: &SharedF64Buf,
    u_all: &SharedF64Buf,
    partials: &[SharedF64Buf; 2],
) {
    let first = ctx.first_item;
    let own_end = first + ctx.items;
    let mut u = vec![0.0; n];
    let mut e_loc = vec![0.0; n];
    // --- Reduction sweep (i descending) ---
    for i in (1..n).rev() {
        let l = i - 1;
        if ctx.owns(i) {
            let row_i = &rows[(i - first) * n..(i - first) * n + n];
            for (k, &v) in row_i.iter().enumerate().take(l + 1) {
                u_buf.set(k, v);
            }
        }
        ctx.sync();
        for (k, slot) in u.iter_mut().enumerate().take(l + 1) {
            *slot = u_buf.get(k);
        }
        let mut h = 0.0;
        let mut synced = false;
        if l > 0 {
            let scale: f64 = u[..=l].iter().map(|x| x.abs()).sum();
            // ncs-lint: allow(float-eq) — exact zero means the row is structurally empty (Householder skip)
            if scale == 0.0 {
                if ctx.owns(i) {
                    e_buf.set(i, u[l]);
                }
            } else {
                for x in u.iter_mut().take(l + 1) {
                    *x /= scale;
                    h += *x * *x;
                }
                let f = u[l];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                if ctx.owns(i) {
                    e_buf.set(i, scale * g);
                }
                h -= f * g;
                u[l] = f - g;
                if ctx.owns(i) {
                    let row_i = &mut rows[(i - first) * n..(i - first) * n + n];
                    row_i[..=l].copy_from_slice(&u[..=l]);
                }
                // First pass over own rows: column-i store plus the
                // `A·u` dot (an own-row dot thanks to block symmetry).
                let j_hi = (l + 1).min(own_end);
                for j in first..j_hi {
                    let row_j = &mut rows[(j - first) * n..(j - first) * n + n];
                    let mut g_acc = 0.0;
                    for k in 0..=l {
                        g_acc += row_j[k] * u[k];
                    }
                    e_buf.set(j, g_acc / h);
                    row_j[i] = u[j] / h;
                }
                ctx.sync();
                synced = true;
                for (j, slot) in e_loc.iter_mut().enumerate().take(l + 1) {
                    *slot = e_buf.get(j);
                }
                let mut f_acc = 0.0;
                for j in 0..=l {
                    f_acc += e_loc[j] * u[j];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    e_loc[j] -= hh * u[j];
                }
                // Full-width symmetric rank-2 update of own rows.
                for j in first..j_hi {
                    let row_j = &mut rows[(j - first) * n..(j - first) * n + n];
                    let (uj, ej) = (u[j], e_loc[j]);
                    for k in 0..=l {
                        row_j[k] -= uj * e_loc[k] + ej * u[k];
                    }
                }
            }
        } else if ctx.owns(i) {
            e_buf.set(i, u[0]);
        }
        if ctx.owns(i) {
            d_buf.set(i, h);
        }
        if !synced {
            // Keep the per-iteration barrier count uniform so the next
            // iteration's row publish cannot race this one's readers.
            ctx.sync();
        }
    }
    if ctx.worker == 0 {
        d_buf.set(0, 0.0);
        e_buf.set(0, 0.0);
    }
    ctx.sync();
    // --- Accumulation of the orthogonal transform (i ascending) ---
    // Snapshot the Householder norms: the guard below must read the
    // reduction-phase values even after this loop starts overwriting
    // d_buf with the final diagonal.
    let d_final: Vec<f64> = (0..n).map(|i| d_buf.get(i)).collect();
    // Pre-publish every Householder vector for the whole phase: step i
    // reads row i columns `0..i`, and no earlier step touches row i
    // (step i' < i rank-updates only rows k < i' and rewrites row i'
    // itself), so the reduction-phase bits snapshotted here are exactly
    // what the old per-column publish would have sent. This removes one
    // publish barrier per column — the accumulation phase now costs a
    // single barrier per transformed column instead of two.
    for k in first..own_end {
        let row_k = &rows[(k - first) * n..(k - first) * n + n];
        for (j, &v) in row_k.iter().enumerate().take(k) {
            u_all.set(k * n + j, v);
        }
    }
    // Everyone must finish snapshotting/publishing before any worker's
    // tail below starts overwriting d_buf or its own rows, or a slow
    // worker reads a corrupted guard and the per-iteration barrier
    // counts diverge (deadlock).
    ctx.sync();
    let chunks = ncs_par::chunk_count(n, TRED2_GRAIN);
    let first_chunk = first / TRED2_GRAIN;
    let own_chunk_end = first_chunk + ncs_par::chunk_count(ctx.items, TRED2_GRAIN);
    let mut g = vec![0.0; n];
    let mut scratch = vec![0.0; n];
    // Parity of the partials buffer in use; advances only on columns
    // that synchronise, identically on every worker.
    let mut pass = 0usize;
    for i in 0..n {
        // ncs-lint: allow(float-eq) — exact zero marks an untouched transform column
        if d_final[i] != 0.0 {
            for (k, slot) in u.iter_mut().enumerate().take(i) {
                *slot = u_all.get(i * n + k);
            }
            // Per-chunk partials of g[j] = Σ_k z[i][k]·z[k][j]; each
            // chunk has exactly one owner (worker splits are
            // grain-aligned), and the fold below runs in ascending
            // chunk order on every worker — bit-identical at any team
            // size because the chunk grid depends only on n. The
            // buffers alternate by column parity: the barrier below is
            // the only one per column, so a worker one column ahead
            // writes the *other* buffer while a straggler still folds
            // this one.
            let pbuf = &partials[pass % 2];
            pass += 1;
            for c in first_chunk..own_chunk_end {
                let k_lo = c * TRED2_GRAIN;
                if k_lo >= i {
                    break;
                }
                let k_hi = ((c + 1) * TRED2_GRAIN).min(i);
                scratch[..i].fill(0.0);
                for k in k_lo..k_hi {
                    let uk = u[k];
                    let row_k = &rows[(k - first) * n..(k - first) * n + n];
                    for j in 0..i {
                        scratch[j] += row_k[j] * uk;
                    }
                }
                for (j, &s) in scratch.iter().enumerate().take(i) {
                    pbuf.set(c * n + j, s);
                }
            }
            ctx.sync();
            g[..i].fill(0.0);
            for c in 0..chunks {
                if c * TRED2_GRAIN >= i {
                    break;
                }
                for (j, slot) in g.iter_mut().enumerate().take(i) {
                    *slot += pbuf.get(c * n + j);
                }
            }
            let k_hi = i.min(own_end);
            for k in first..k_hi {
                let row_k = &mut rows[(k - first) * n..(k - first) * n + n];
                let zki = row_k[i];
                for j in 0..i {
                    row_k[j] -= g[j] * zki;
                }
            }
        }
        if ctx.owns(i) {
            let base = (i - first) * n;
            d_buf.set(i, rows[base + i]);
            rows[base + i] = 1.0;
            for j in 0..i {
                rows[base + j] = 0.0;
            }
        }
        let k_hi = i.min(own_end);
        for k in first..k_hi {
            rows[(k - first) * n + i] = 0.0;
        }
    }
}

/// Rows per strip in the `tql2` rotation-replay pass. Load-balance
/// only: each row receives the identical rotation sequence, so the
/// strip width cannot affect result bits.
const TQL2_STRIP_GRAIN: usize = 16;

/// Implicit-shift QL iteration on a tridiagonal matrix `(d, e)` with
/// eigenvector accumulation into `z`.
///
/// Parallel strategy: run the scalar recurrence **once**, serially,
/// recording every Givens rotation `(i, s, c)` in order; then apply the
/// whole log to each eigenvector row in one strip pass over `z`. The
/// rotations touch each row independently (columns `i`/`i+1` of that
/// row only), so replaying the identical sequence per row is exactly
/// the serial arithmetic — bit-identical at any thread count — while
/// the phase structure is one pool dispatch and zero barriers, however
/// many sweeps QL takes. (The previous shape had every team worker
/// replay the recurrence privately; the log costs O(rotations) memory
/// instead of W redundant recurrences.)
pub(crate) fn tql2(
    z: &mut DenseMatrix,
    d: &mut [f64],
    e: &mut [f64],
) -> Result<usize, LinalgError> {
    let n = d.len();
    if n == 1 {
        return Ok(0);
    }
    let cols = z.ncols();
    // Size-only mode decision (matching the tred2 team cutoff), so the
    // trace counter stream cannot depend on the thread count. Below the
    // cutoff, skip the log entirely — no allocation on the serial path.
    if eigen_cutoff(n).engages(n) {
        let mut log: Vec<(usize, f64, f64)> = Vec::new();
        let sweeps = tql2_kernel(d, e, |i, s, c| log.push((i, s, c)))?;
        // ncs-lint: allow(par-cutoff-discipline) — the eigen_cutoff gate
        // above already proved n large; Cutoff::NONE keeps the replay
        // mode decision size-only (thread-count independent).
        ncs_par::par_chunks_mut(
            z.as_mut_slice(),
            TQL2_STRIP_GRAIN * cols,
            ncs_par::Cutoff::NONE,
            |_, strip| {
                for row in strip.chunks_mut(cols) {
                    for &(i, s, c) in &log {
                        let f = row[i + 1];
                        row[i + 1] = s * row[i] + c * f;
                        row[i] = c * row[i] - s * f;
                    }
                }
            },
        );
        Ok(sweeps)
    } else {
        tql2_kernel(d, e, |i, s, c| {
            for row in z.as_mut_slice().chunks_mut(cols) {
                let f = row[i + 1];
                row[i + 1] = s * row[i] + c * f;
                row[i] = c * row[i] - s * f;
            }
        })
    }
}

/// The scalar QL recurrence, shared verbatim by the serial path and by
/// every team worker; `rotate(i, s, c)` must apply the Givens rotation
/// to columns `(i, i + 1)` of whichever eigenvector rows the caller
/// owns. Returns the total number of QL sweeps performed — a pure
/// function of the input bits, so every worker computes the same count.
fn tql2_kernel(
    d: &mut [f64],
    e: &mut [f64],
    mut rotate: impl FnMut(usize, f64, f64),
) -> Result<usize, LinalgError> {
    let n = d.len();
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    let mut sweeps = 0;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small subdiagonal element to split the problem.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            sweeps += 1;
            if iter > SymmetricEigen::MAX_ITER {
                return Err(LinalgError::NoConvergence {
                    kernel: "tql2",
                    iterations: iter,
                });
            }
            // Form the implicit Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                // ncs-lint: allow(float-eq) — exact underflow triggers the deflation recovery path
                if r == 0.0 {
                    // Deflate: recover from underflow and restart this l.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                rotate(i, s, c);
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &DenseMatrix, eig: &SymmetricEigen) -> f64 {
        let n = a.nrows();
        let mut worst = 0.0_f64;
        for j in 0..n {
            let v = eig.eigenvectors().column(j);
            let av = a.matvec(&v).unwrap();
            let lam = eig.eigenvalues()[j];
            for i in 0..n {
                worst = worst.max((av[i] - lam * v[i]).abs());
            }
        }
        worst
    }

    #[test]
    fn one_by_one() {
        let a = DenseMatrix::from_rows(&[&[4.2][..]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.eigenvalues(), &[4.2]);
        assert!((eig.eigenvectors()[(0, 0)].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_by_two_known() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0][..], &[1.0, 2.0][..]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.eigenvalues()[0] - 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues()[1] - 3.0).abs() < 1e-12);
        assert!(residual(&a, &eig) < 1e-10);
    }

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a = DenseMatrix::from_rows(&[
            &[3.0, 0.0, 0.0][..],
            &[0.0, -1.0, 0.0][..],
            &[0.0, 0.0, 2.0][..],
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.eigenvalues()[0] + 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues()[1] - 2.0).abs() < 1e-12);
        assert!((eig.eigenvalues()[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix() {
        let a = DenseMatrix::zeros(4, 4);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!(eig.eigenvalues().iter().all(|v| v.abs() < 1e-14));
    }

    #[test]
    fn rejects_asymmetric() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[0.0, 1.0][..]]).unwrap();
        assert!(matches!(
            SymmetricEigen::new(&a),
            Err(LinalgError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(matches!(
            SymmetricEigen::new(&DenseMatrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn laplacian_of_path_graph() {
        // Known spectrum of the path graph P4 Laplacian: 2 - 2 cos(k*pi/4).
        let a = DenseMatrix::from_rows(&[
            &[1.0, -1.0, 0.0, 0.0][..],
            &[-1.0, 2.0, -1.0, 0.0][..],
            &[0.0, -1.0, 2.0, -1.0][..],
            &[0.0, 0.0, -1.0, 1.0][..],
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        for (k, &lam) in eig.eigenvalues().iter().enumerate() {
            let expect = 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / 4.0).cos();
            assert!((lam - expect).abs() < 1e-10, "k={k}: {lam} vs {expect}");
        }
        assert!(residual(&a, &eig) < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        // Deterministic pseudo-random symmetric matrix.
        let n = 20;
        let mut a = DenseMatrix::zeros(n, n);
        let mut state = 0x9e3779b97f4a7c15_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let eig = SymmetricEigen::new(&a).unwrap();
        let q = eig.eigenvectors();
        for i in 0..n {
            for j in 0..n {
                let dot: f64 = (0..n).map(|k| q[(k, i)] * q[(k, j)]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9, "({i},{j}) dot={dot}");
            }
        }
        assert!(residual(&a, &eig) < 1e-8);
        // Trace equals sum of eigenvalues.
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.eigenvalues().iter().sum();
        assert!((trace - sum).abs() < 1e-8);
    }

    /// Deterministic pseudo-random symmetric matrix, large enough to
    /// engage the parallel team (n >= TEAM_MIN_N).
    fn random_symmetric(n: usize) -> DenseMatrix {
        let mut a = DenseMatrix::zeros(n, n);
        let mut state = 0x2545f4914f6cdd1d_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    #[test]
    fn decomposition_is_bit_identical_across_thread_counts() {
        // The determinism contract of the parallel kernels: the exact
        // same bits at NCS_THREADS=1 and NCS_THREADS=4. n=160 exceeds
        // TEAM_MIN_N so the team path genuinely runs multi-worker.
        let a = random_symmetric(160);
        let run_at = |t: usize| {
            ncs_par::set_thread_override(Some(t));
            let eig = SymmetricEigen::new(&a);
            ncs_par::set_thread_override(None);
            eig.unwrap()
        };
        let base = run_at(1);
        for t in [2, 4] {
            let other = run_at(t);
            let value_bits = |e: &SymmetricEigen| -> Vec<u64> {
                e.eigenvalues().iter().map(|v| v.to_bits()).collect()
            };
            assert_eq!(
                value_bits(&base),
                value_bits(&other),
                "eigenvalues at t={t}"
            );
            let vec_bits = |e: &SymmetricEigen| -> Vec<u64> {
                e.eigenvectors()
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            };
            assert_eq!(vec_bits(&base), vec_bits(&other), "eigenvectors at t={t}");
        }
        // And the parallel result is still a correct decomposition.
        assert!(residual(&a, &base) < 1e-8);
    }

    #[test]
    fn generalized_reduces_to_ordinary_for_identity_d() {
        let l = DenseMatrix::from_rows(&[&[2.0, -1.0][..], &[-1.0, 2.0][..]]).unwrap();
        let ge = GeneralizedEigen::new(&l, &[1.0, 1.0]).unwrap();
        let se = SymmetricEigen::new(&l).unwrap();
        for (a, b) in ge.eigenvalues().iter().zip(se.eigenvalues()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn generalized_eigen_residual() {
        // L = D - W for a triangle graph plus a pendant.
        let w = DenseMatrix::from_rows(&[
            &[0.0, 1.0, 1.0, 0.0][..],
            &[1.0, 0.0, 1.0, 0.0][..],
            &[1.0, 1.0, 0.0, 1.0][..],
            &[0.0, 0.0, 1.0, 0.0][..],
        ])
        .unwrap();
        let d: Vec<f64> = (0..4).map(|i| w.row(i).iter().sum()).collect();
        let mut l = DenseMatrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                l[(i, j)] = if i == j { d[i] } else { 0.0 } - w[(i, j)];
            }
        }
        let ge = GeneralizedEigen::new(&l, &d).unwrap();
        // Verify L u = lambda D u for every pair.
        for j in 0..4 {
            let u = ge.eigenvectors().column(j);
            let lu = l.matvec(&u).unwrap();
            let lam = ge.eigenvalues()[j];
            for i in 0..4 {
                assert!(
                    (lu[i] - lam * d[i] * u[i]).abs() < 1e-9,
                    "col {j} row {i}: {} vs {}",
                    lu[i],
                    lam * d[i] * u[i]
                );
            }
        }
        // Connected graph: exactly one ~zero eigenvalue, all in [0, 2].
        assert!(ge.eigenvalues()[0].abs() < 1e-10);
        assert!(ge.eigenvalues()[1] > 1e-6);
        assert!(*ge.eigenvalues().last().unwrap() <= 2.0 + 1e-9);
    }

    #[test]
    fn generalized_handles_isolated_nodes() {
        // Node 2 is isolated (zero degree).
        let l = DenseMatrix::from_rows(&[
            &[1.0, -1.0, 0.0][..],
            &[-1.0, 1.0, 0.0][..],
            &[0.0, 0.0, 0.0][..],
        ])
        .unwrap();
        let ge = GeneralizedEigen::new(&l, &[1.0, 1.0, 0.0]).unwrap();
        assert!(ge.eigenvalues()[0].abs() < 1e-10);
        assert!(ge.eigenvalues()[1].abs() < 1e-10);
    }

    #[test]
    fn generalized_rejects_bad_inputs() {
        let l = DenseMatrix::identity(2);
        assert!(GeneralizedEigen::new(&l, &[1.0]).is_err());
        assert!(matches!(
            GeneralizedEigen::new(&l, &[1.0, -2.0]),
            Err(LinalgError::NotPositive { .. })
        ));
    }

    #[test]
    fn embedding_takes_first_columns() {
        let l = DenseMatrix::from_rows(&[&[2.0, -1.0][..], &[-1.0, 2.0][..]]).unwrap();
        let ge = GeneralizedEigen::new(&l, &[1.0, 1.0]).unwrap();
        let u = ge.embedding(1);
        assert_eq!(u.shape(), (2, 1));
        assert_eq!(u[(0, 0)], ge.eigenvectors()[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn embedding_overflow_panics() {
        let l = DenseMatrix::identity(2);
        let ge = GeneralizedEigen::new(&l, &[1.0, 1.0]).unwrap();
        let _ = ge.embedding(3);
    }
}
