use crate::{DenseMatrix, LinalgError};

/// Full eigendecomposition of a real symmetric matrix.
///
/// Implements the classic EISPACK pair `tred2` (Householder reduction to
/// tridiagonal form with accumulation of the orthogonal transform) and
/// `tql2` (implicit-shift QL iteration). Eigenvalues are returned in
/// ascending order; the `i`-th column of [`SymmetricEigen::eigenvectors`]
/// is the unit eigenvector for the `i`-th eigenvalue.
///
/// This is exactly the kernel that the MSC step of AutoNCS needs: the
/// spectral embedding uses the eigenvectors of the graph Laplacian
/// corresponding to the *smallest* eigenvalues, i.e. the first `k` columns.
///
/// # Examples
///
/// ```
/// use ncs_linalg::{DenseMatrix, SymmetricEigen};
///
/// # fn main() -> Result<(), ncs_linalg::LinalgError> {
/// // Path-graph Laplacian on 3 nodes: eigenvalues 0, 1, 3.
/// let l = DenseMatrix::from_rows(&[
///     &[1.0, -1.0, 0.0][..],
///     &[-1.0, 2.0, -1.0][..],
///     &[0.0, -1.0, 1.0][..],
/// ])?;
/// let eig = SymmetricEigen::new(&l)?;
/// assert!(eig.eigenvalues()[0].abs() < 1e-10);
/// assert!((eig.eigenvalues()[1] - 1.0).abs() < 1e-10);
/// assert!((eig.eigenvalues()[2] - 3.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    eigenvectors: DenseMatrix,
}

impl SymmetricEigen {
    /// Maximum QL iterations per eigenvalue before reporting failure.
    const MAX_ITER: usize = 64;

    /// Computes the eigendecomposition of a symmetric matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] / [`LinalgError::Empty`] for bad shapes.
    /// * [`LinalgError::NotSymmetric`] if `a` deviates from symmetry by more
    ///   than `1e-8 * max_abs`.
    /// * [`LinalgError::NoConvergence`] if QL iteration stalls (essentially
    ///   never happens for well-formed input).
    pub fn new(a: &DenseMatrix) -> Result<Self, LinalgError> {
        let (r, c) = a.shape();
        if r == 0 || c == 0 {
            return Err(LinalgError::Empty);
        }
        if r != c {
            return Err(LinalgError::NotSquare { shape: (r, c) });
        }
        let tol = 1e-8 * a.max_abs().max(1.0);
        for i in 0..r {
            for j in (i + 1)..r {
                if (a[(i, j)] - a[(j, i)]).abs() > tol {
                    return Err(LinalgError::NotSymmetric { at: (i, j) });
                }
            }
        }
        // Work on the symmetrized copy so that tiny asymmetries cannot bias
        // the reduction.
        let n = r;
        let mut z = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                z[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
            }
        }
        let mut d = vec![0.0; n];
        let mut e = vec![0.0; n];
        tred2(&mut z, &mut d, &mut e);
        tql2(&mut z, &mut d, &mut e)?;
        // Sort ascending, permuting eigenvector columns accordingly.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| d[i].total_cmp(&d[j]));
        let mut values = Vec::with_capacity(n);
        let mut vectors = DenseMatrix::zeros(n, n);
        for (new_j, &old_j) in order.iter().enumerate() {
            values.push(d[old_j]);
            for i in 0..n {
                vectors[(i, new_j)] = z[(i, old_j)];
            }
        }
        Ok(SymmetricEigen {
            eigenvalues: values,
            eigenvectors: vectors,
        })
    }

    /// Eigenvalues in ascending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Orthogonal matrix whose `i`-th column is the eigenvector for
    /// `eigenvalues()[i]`.
    pub fn eigenvectors(&self) -> &DenseMatrix {
        &self.eigenvectors
    }

    /// Consumes the decomposition, returning `(eigenvalues, eigenvectors)`.
    pub fn into_parts(self) -> (Vec<f64>, DenseMatrix) {
        (self.eigenvalues, self.eigenvectors)
    }
}

/// Solution of the generalized symmetric eigenproblem `L u = λ D u` with a
/// **diagonal** `D`, as used by normalized spectral clustering (Shi–Malik).
///
/// The problem is whitened into the ordinary symmetric problem
/// `D^{-1/2} L D^{-1/2} v = λ v` with `u = D^{-1/2} v`. Diagonal entries of
/// `D` that are zero (isolated graph nodes) are clamped to 1.0, which leaves
/// the corresponding rows of `L` untouched (they are all-zero anyway) and
/// assigns those nodes eigenvalue 0 — the standard guard in spectral
/// clustering implementations.
///
/// # Examples
///
/// ```
/// use ncs_linalg::{DenseMatrix, GeneralizedEigen};
///
/// # fn main() -> Result<(), ncs_linalg::LinalgError> {
/// // Two disconnected edges: the two smallest generalized eigenvalues are 0.
/// let l = DenseMatrix::from_rows(&[
///     &[1.0, -1.0, 0.0, 0.0][..],
///     &[-1.0, 1.0, 0.0, 0.0][..],
///     &[0.0, 0.0, 1.0, -1.0][..],
///     &[0.0, 0.0, -1.0, 1.0][..],
/// ])?;
/// let d = vec![1.0, 1.0, 1.0, 1.0];
/// let ge = GeneralizedEigen::new(&l, &d)?;
/// assert!(ge.eigenvalues()[0].abs() < 1e-10);
/// assert!(ge.eigenvalues()[1].abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GeneralizedEigen {
    eigenvalues: Vec<f64>,
    eigenvectors: DenseMatrix,
}

impl GeneralizedEigen {
    /// Solves `L u = λ D u` for symmetric `l` and diagonal `d` (given as the
    /// vector of diagonal entries).
    ///
    /// # Errors
    ///
    /// Propagates shape/symmetry errors from [`SymmetricEigen::new`], and
    /// returns [`LinalgError::DimensionMismatch`] if `d.len() != l.nrows()`.
    /// Negative diagonal entries yield [`LinalgError::NotPositive`].
    pub fn new(l: &DenseMatrix, d: &[f64]) -> Result<Self, LinalgError> {
        let n = l.nrows();
        if d.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                found: (d.len(), 1),
            });
        }
        if d.iter().any(|&v| v < 0.0) {
            return Err(LinalgError::NotPositive {
                what: "degree matrix diagonal",
            });
        }
        let inv_sqrt: Vec<f64> = d
            .iter()
            .map(|&v| if v > 0.0 { 1.0 / v.sqrt() } else { 1.0 })
            .collect();
        let mut b = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                b[(i, j)] = l[(i, j)] * inv_sqrt[i] * inv_sqrt[j];
            }
        }
        let eig = SymmetricEigen::new(&b)?;
        let (values, mut vectors) = eig.into_parts();
        // Un-whiten: u = D^{-1/2} v, then renormalize columns so callers get
        // a well-scaled embedding.
        for j in 0..n {
            let mut norm = 0.0;
            for i in 0..n {
                vectors[(i, j)] *= inv_sqrt[i];
                norm += vectors[(i, j)] * vectors[(i, j)];
            }
            let norm = norm.sqrt();
            if norm > 0.0 {
                for i in 0..n {
                    vectors[(i, j)] /= norm;
                }
            }
        }
        Ok(GeneralizedEigen {
            eigenvalues: values,
            eigenvectors: vectors,
        })
    }

    /// Generalized eigenvalues in ascending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Matrix whose `i`-th column is the generalized eigenvector for
    /// `eigenvalues()[i]`, normalized to unit Euclidean length.
    pub fn eigenvectors(&self) -> &DenseMatrix {
        &self.eigenvectors
    }

    /// The first `k` eigenvector columns as an `n × k` embedding matrix —
    /// exactly the `U` matrix of Algorithm 1 (MSC) in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the problem dimension.
    pub fn embedding(&self, k: usize) -> DenseMatrix {
        let n = self.eigenvectors.nrows();
        assert!(
            k <= n,
            "requested {k} eigenvectors from a {n}-dimensional problem"
        );
        let mut u = DenseMatrix::zeros(n, k);
        for i in 0..n {
            for j in 0..k {
                u[(i, j)] = self.eigenvectors[(i, j)];
            }
        }
        u
    }
}

/// Householder reduction of a symmetric matrix (stored in `z`) to
/// tridiagonal form; `d` receives the diagonal, `e` the subdiagonal
/// (`e[0]` unused), and `z` is overwritten with the accumulated orthogonal
/// transformation.
fn tred2(z: &mut DenseMatrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[(i, k)].abs()).sum();
            // ncs-lint: allow(float-eq) — exact zero means the row is structurally empty (Householder skip)
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                let mut f_acc = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g_acc = 0.0;
                    for k in 0..=j {
                        g_acc += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g_acc += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g_acc / h;
                    f_acc += e[j] * z[(i, j)];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let delta = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        // ncs-lint: allow(float-eq) — exact zero marks an untouched transform column
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let delta = g * z[(k, i)];
                    z[(k, j)] -= delta;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// Implicit-shift QL iteration on a tridiagonal matrix `(d, e)` with
/// eigenvector accumulation into `z`.
pub(crate) fn tql2(z: &mut DenseMatrix, d: &mut [f64], e: &mut [f64]) -> Result<(), LinalgError> {
    let n = d.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small subdiagonal element to split the problem.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > SymmetricEigen::MAX_ITER {
                return Err(LinalgError::NoConvergence {
                    kernel: "tql2",
                    iterations: iter,
                });
            }
            // Form the implicit Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                // ncs-lint: allow(float-eq) — exact underflow triggers the deflation recovery path
                if r == 0.0 {
                    // Deflate: recover from underflow and restart this l.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &DenseMatrix, eig: &SymmetricEigen) -> f64 {
        let n = a.nrows();
        let mut worst = 0.0_f64;
        for j in 0..n {
            let v = eig.eigenvectors().column(j);
            let av = a.matvec(&v).unwrap();
            let lam = eig.eigenvalues()[j];
            for i in 0..n {
                worst = worst.max((av[i] - lam * v[i]).abs());
            }
        }
        worst
    }

    #[test]
    fn one_by_one() {
        let a = DenseMatrix::from_rows(&[&[4.2][..]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.eigenvalues(), &[4.2]);
        assert!((eig.eigenvectors()[(0, 0)].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_by_two_known() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0][..], &[1.0, 2.0][..]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.eigenvalues()[0] - 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues()[1] - 3.0).abs() < 1e-12);
        assert!(residual(&a, &eig) < 1e-10);
    }

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a = DenseMatrix::from_rows(&[
            &[3.0, 0.0, 0.0][..],
            &[0.0, -1.0, 0.0][..],
            &[0.0, 0.0, 2.0][..],
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!((eig.eigenvalues()[0] + 1.0).abs() < 1e-12);
        assert!((eig.eigenvalues()[1] - 2.0).abs() < 1e-12);
        assert!((eig.eigenvalues()[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix() {
        let a = DenseMatrix::zeros(4, 4);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!(eig.eigenvalues().iter().all(|v| v.abs() < 1e-14));
    }

    #[test]
    fn rejects_asymmetric() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[0.0, 1.0][..]]).unwrap();
        assert!(matches!(
            SymmetricEigen::new(&a),
            Err(LinalgError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(matches!(
            SymmetricEigen::new(&DenseMatrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn laplacian_of_path_graph() {
        // Known spectrum of the path graph P4 Laplacian: 2 - 2 cos(k*pi/4).
        let a = DenseMatrix::from_rows(&[
            &[1.0, -1.0, 0.0, 0.0][..],
            &[-1.0, 2.0, -1.0, 0.0][..],
            &[0.0, -1.0, 2.0, -1.0][..],
            &[0.0, 0.0, -1.0, 1.0][..],
        ])
        .unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        for (k, &lam) in eig.eigenvalues().iter().enumerate() {
            let expect = 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / 4.0).cos();
            assert!((lam - expect).abs() < 1e-10, "k={k}: {lam} vs {expect}");
        }
        assert!(residual(&a, &eig) < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        // Deterministic pseudo-random symmetric matrix.
        let n = 20;
        let mut a = DenseMatrix::zeros(n, n);
        let mut state = 0x9e3779b97f4a7c15_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let eig = SymmetricEigen::new(&a).unwrap();
        let q = eig.eigenvectors();
        for i in 0..n {
            for j in 0..n {
                let dot: f64 = (0..n).map(|k| q[(k, i)] * q[(k, j)]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9, "({i},{j}) dot={dot}");
            }
        }
        assert!(residual(&a, &eig) < 1e-8);
        // Trace equals sum of eigenvalues.
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.eigenvalues().iter().sum();
        assert!((trace - sum).abs() < 1e-8);
    }

    #[test]
    fn generalized_reduces_to_ordinary_for_identity_d() {
        let l = DenseMatrix::from_rows(&[&[2.0, -1.0][..], &[-1.0, 2.0][..]]).unwrap();
        let ge = GeneralizedEigen::new(&l, &[1.0, 1.0]).unwrap();
        let se = SymmetricEigen::new(&l).unwrap();
        for (a, b) in ge.eigenvalues().iter().zip(se.eigenvalues()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn generalized_eigen_residual() {
        // L = D - W for a triangle graph plus a pendant.
        let w = DenseMatrix::from_rows(&[
            &[0.0, 1.0, 1.0, 0.0][..],
            &[1.0, 0.0, 1.0, 0.0][..],
            &[1.0, 1.0, 0.0, 1.0][..],
            &[0.0, 0.0, 1.0, 0.0][..],
        ])
        .unwrap();
        let d: Vec<f64> = (0..4).map(|i| w.row(i).iter().sum()).collect();
        let mut l = DenseMatrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                l[(i, j)] = if i == j { d[i] } else { 0.0 } - w[(i, j)];
            }
        }
        let ge = GeneralizedEigen::new(&l, &d).unwrap();
        // Verify L u = lambda D u for every pair.
        for j in 0..4 {
            let u = ge.eigenvectors().column(j);
            let lu = l.matvec(&u).unwrap();
            let lam = ge.eigenvalues()[j];
            for i in 0..4 {
                assert!(
                    (lu[i] - lam * d[i] * u[i]).abs() < 1e-9,
                    "col {j} row {i}: {} vs {}",
                    lu[i],
                    lam * d[i] * u[i]
                );
            }
        }
        // Connected graph: exactly one ~zero eigenvalue, all in [0, 2].
        assert!(ge.eigenvalues()[0].abs() < 1e-10);
        assert!(ge.eigenvalues()[1] > 1e-6);
        assert!(*ge.eigenvalues().last().unwrap() <= 2.0 + 1e-9);
    }

    #[test]
    fn generalized_handles_isolated_nodes() {
        // Node 2 is isolated (zero degree).
        let l = DenseMatrix::from_rows(&[
            &[1.0, -1.0, 0.0][..],
            &[-1.0, 1.0, 0.0][..],
            &[0.0, 0.0, 0.0][..],
        ])
        .unwrap();
        let ge = GeneralizedEigen::new(&l, &[1.0, 1.0, 0.0]).unwrap();
        assert!(ge.eigenvalues()[0].abs() < 1e-10);
        assert!(ge.eigenvalues()[1].abs() < 1e-10);
    }

    #[test]
    fn generalized_rejects_bad_inputs() {
        let l = DenseMatrix::identity(2);
        assert!(GeneralizedEigen::new(&l, &[1.0]).is_err());
        assert!(matches!(
            GeneralizedEigen::new(&l, &[1.0, -2.0]),
            Err(LinalgError::NotPositive { .. })
        ));
    }

    #[test]
    fn embedding_takes_first_columns() {
        let l = DenseMatrix::from_rows(&[&[2.0, -1.0][..], &[-1.0, 2.0][..]]).unwrap();
        let ge = GeneralizedEigen::new(&l, &[1.0, 1.0]).unwrap();
        let u = ge.embedding(1);
        assert_eq!(u.shape(), (2, 1));
        assert_eq!(u[(0, 0)], ge.eigenvectors()[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn embedding_overflow_panics() {
        let l = DenseMatrix::identity(2);
        let ge = GeneralizedEigen::new(&l, &[1.0, 1.0]).unwrap();
        let _ = ge.embedding(3);
    }
}
