use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Matrix dimensions are inconsistent with the requested operation.
    DimensionMismatch {
        /// What the operation expected (rows, cols).
        expected: (usize, usize),
        /// What it was given (rows, cols).
        found: (usize, usize),
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Actual shape (rows, cols).
        shape: (usize, usize),
    },
    /// The operation requires a (numerically) symmetric matrix.
    NotSymmetric {
        /// First detected asymmetric entry (row, col).
        at: (usize, usize),
    },
    /// An empty (zero-dimensional) matrix was supplied where data is needed.
    Empty,
    /// An iterative kernel failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the kernel that failed.
        kernel: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// Input rows have ragged (unequal) lengths.
    RaggedRows {
        /// Index of the first offending row.
        row: usize,
    },
    /// A value that must be strictly positive was zero or negative.
    NotPositive {
        /// Description of the offending quantity.
        what: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::NotSymmetric { at } => {
                write!(f, "matrix is not symmetric at ({}, {})", at.0, at.1)
            }
            LinalgError::Empty => write!(f, "matrix has zero dimension"),
            LinalgError::NoConvergence { kernel, iterations } => {
                write!(
                    f,
                    "{kernel} failed to converge after {iterations} iterations"
                )
            }
            LinalgError::RaggedRows { row } => {
                write!(f, "input rows have unequal lengths starting at row {row}")
            }
            LinalgError::NotPositive { what } => {
                write!(f, "{what} must be strictly positive")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LinalgError::NotSquare { shape: (2, 3) };
        assert_eq!(e.to_string(), "matrix must be square, got 2x3");
        let e = LinalgError::NoConvergence {
            kernel: "tql2",
            iterations: 30,
        };
        assert!(e.to_string().contains("tql2"));
        assert!(e.to_string().contains("30"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
