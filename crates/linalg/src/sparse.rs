use crate::{DenseMatrix, LinalgError};

/// A `(row, col, value)` entry used to build sparse matrices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Entry value.
    pub value: f64,
}

impl Triplet {
    /// Convenience constructor.
    pub fn new(row: usize, col: usize, value: f64) -> Self {
        Triplet { row, col, value }
    }
}

/// Compressed sparse row matrix over `f64`.
///
/// Used to hold large, very sparse binary connection matrices (the paper's
/// testbenches are > 93 % sparse) without densifying. Duplicate triplets
/// are summed during construction; explicit zeros are dropped.
///
/// # Examples
///
/// ```
/// use ncs_linalg::{CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), ncs_linalg::LinalgError> {
/// let m = CsrMatrix::from_triplets(2, 3, &[
///     Triplet::new(0, 1, 2.0),
///     Triplet::new(1, 2, 3.0),
/// ])?;
/// assert_eq!(m.get(0, 1), 2.0);
/// assert_eq!(m.get(0, 0), 0.0);
/// assert_eq!(m.nnz(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from triplets, summing duplicates and dropping
    /// resulting zeros.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if any triplet index is
    /// out of bounds.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[Triplet],
    ) -> Result<Self, LinalgError> {
        for t in triplets {
            if t.row >= rows || t.col >= cols {
                return Err(LinalgError::DimensionMismatch {
                    expected: (rows, cols),
                    found: (t.row, t.col),
                });
            }
        }
        let mut sorted: Vec<Triplet> = triplets.to_vec();
        sorted.sort_by_key(|a| (a.row, a.col));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut iter = sorted.into_iter().peekable();
        while let Some(first) = iter.next() {
            let mut value = first.value;
            while let Some(next) = iter.peek() {
                if next.row == first.row && next.col == first.col {
                    value += next.value;
                    iter.next();
                } else {
                    break;
                }
            }
            // ncs-lint: allow(float-eq) — duplicates that sum to exactly zero are dropped
            if value != 0.0 {
                row_ptr[first.row + 1] += 1;
                col_idx.push(first.col);
                values.push(value);
            }
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Builds a CSR matrix from a dense one, dropping entries with
    /// `|v| <= tol`. Rows arrive pre-sorted, so the CSR arrays are built
    /// directly — no triplet round-trip, no fallible index validation.
    pub fn from_dense(m: &DenseMatrix, tol: f64) -> Self {
        let mut row_ptr = Vec::with_capacity(m.nrows() + 1);
        row_ptr.push(0);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..m.nrows() {
            for j in 0..m.ncols() {
                if m[(i, j)].abs() > tol {
                    col_idx.push(j);
                    values.push(m[(i, j)]);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows: m.nrows(),
            cols: m.ncols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Starts a direct row-major build with `nnz_hint` entries
    /// pre-reserved. See [`CsrBuilder`].
    pub fn builder(rows: usize, cols: usize, nnz_hint: usize) -> CsrBuilder {
        CsrBuilder::with_capacity(rows, cols, nnz_hint)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Entry lookup; returns 0.0 for entries not stored.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterator over `(col, value)` pairs of a row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= nrows()`.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(row < self.rows, "row {row} out of bounds");
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Iterator over all stored entries as triplets.
    pub fn iter(&self) -> impl Iterator<Item = Triplet> + '_ {
        (0..self.rows)
            .flat_map(move |r| self.row_entries(r).map(move |(c, v)| Triplet::new(r, c, v)))
    }

    /// Sparse matrix-vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != ncols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, 1),
                found: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        self.matvec_into(v, &mut out);
        Ok(out)
    }

    /// Infallible matrix–vector product into a caller-provided buffer.
    /// Skips the allocation and the `Result` of [`CsrMatrix::matvec`] for
    /// hot loops (e.g. one call per Lanczos iteration) where the shapes
    /// are fixed by construction.
    ///
    /// Rows are independent dot products, so above [`MATVEC_MIN_NNZ`]
    /// stored entries they are computed in row chunks across the
    /// [`ncs_par`] thread team; each row's arithmetic is identical either
    /// way, so the output bits never depend on the thread count.
    ///
    /// # Panics
    ///
    /// Panics (via slice indexing) if `v` is shorter than `ncols()` or
    /// `out` is shorter than `nrows()`.
    // ncs-lint: hot
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) {
        let out = &mut out[..self.rows];
        // Work per row is the average stored entries per row, so the
        // cutoff engages at (rounding aside) nnz >= MATVEC_MIN_NNZ — a
        // pure function of the matrix shape, never of the thread count.
        let per_row = self.values.len().checked_div(self.rows).unwrap_or(1).max(1);
        let cutoff = ncs_par::Cutoff::min_work(MATVEC_MIN_NNZ).work_per_item(per_row);
        ncs_par::par_chunks_mut(out, MATVEC_ROW_GRAIN, cutoff, |row0, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = self.row_entries(row0 + k).map(|(c, val)| val * v[c]).sum();
            }
        });
    }

    /// Row sums — for a graph adjacency matrix these are the node degrees.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.row_entries(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for t in self.iter() {
            m[(t.row, t.col)] = t.value;
        }
        m
    }
}

/// Direct row-major CSR construction without the triplet round-trip.
///
/// [`CsrMatrix::from_triplets`] sorts its input (O(nnz log nnz) plus a
/// second copy of every entry); when the producer already walks entries
/// in row-major, column-ascending order — e.g. a word-level scan over a
/// bit-packed connection matrix — this builder appends straight into the
/// CSR arrays in O(nnz).
///
/// # Examples
///
/// ```
/// use ncs_linalg::CsrMatrix;
///
/// let mut b = CsrMatrix::builder(2, 3, 2);
/// b.push(1, 2.0); // row 0
/// b.finish_row();
/// b.push(2, 3.0); // row 1
/// b.finish_row();
/// let m = b.finish();
/// assert_eq!(m.get(0, 1), 2.0);
/// assert_eq!(m.nnz(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrBuilder {
    /// Starts a build for a `rows × cols` matrix, reserving room for
    /// `nnz_hint` entries up front so pushes never reallocate when the
    /// caller knows the count (degrees of a bitset are a popcount away).
    pub fn with_capacity(rows: usize, cols: usize, nnz_hint: usize) -> Self {
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0);
        CsrBuilder {
            rows,
            cols,
            row_ptr,
            col_idx: Vec::with_capacity(nnz_hint),
            values: Vec::with_capacity(nnz_hint),
        }
    }

    /// Appends an entry to the current (unfinished) row.
    ///
    /// # Panics
    ///
    /// Panics if all rows are already finished, `col` is out of bounds,
    /// or `col` does not strictly increase within the row — the builder
    /// exists for producers that are already row-major and sorted, so a
    /// violation is a logic error, not a data condition.
    pub fn push(&mut self, col: usize, value: f64) {
        assert!(
            self.row_ptr.len() <= self.rows,
            "all {} rows already finished",
            self.rows
        );
        assert!(col < self.cols, "column {col} out of bounds");
        // `row_ptr` starts with one sentinel entry and only ever grows.
        let row_start = self.row_ptr[self.row_ptr.len() - 1];
        if self.col_idx.len() > row_start {
            let prev = self.col_idx[self.col_idx.len() - 1];
            assert!(prev < col, "columns must strictly increase within a row");
        }
        self.col_idx.push(col);
        self.values.push(value);
    }

    /// Closes the current row (also used for empty rows).
    ///
    /// # Panics
    ///
    /// Panics if all rows are already finished.
    pub fn finish_row(&mut self) {
        assert!(
            self.row_ptr.len() <= self.rows,
            "all {} rows already finished",
            self.rows
        );
        self.row_ptr.push(self.col_idx.len());
    }

    /// Finalizes the matrix.
    ///
    /// # Panics
    ///
    /// Panics unless exactly `rows` rows were finished.
    pub fn finish(self) -> CsrMatrix {
        assert!(
            self.row_ptr.len() == self.rows + 1,
            "finished {} of {} rows",
            self.row_ptr.len() - 1,
            self.rows
        );
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr,
            col_idx: self.col_idx,
            values: self.values,
        }
    }
}

/// Minimum stored-entry count before `matvec_into` fans out to the
/// [`ncs_par`] thread team; below this, spawn overhead dominates.
const MATVEC_MIN_NNZ: usize = 4096;

/// Output rows per parallel `matvec_into` chunk.
const MATVEC_ROW_GRAIN: usize = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let m = CsrMatrix::from_triplets(
            3,
            3,
            &[
                Triplet::new(0, 0, 1.0),
                Triplet::new(2, 1, 4.0),
                Triplet::new(0, 2, 2.0),
            ],
        )
        .unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(2, 1), 4.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn duplicates_are_summed_and_zeros_dropped() {
        let m = CsrMatrix::from_triplets(
            2,
            2,
            &[
                Triplet::new(0, 0, 1.0),
                Triplet::new(0, 0, 2.0),
                Triplet::new(1, 1, 3.0),
                Triplet::new(1, 1, -3.0),
            ],
        )
        .unwrap();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.nnz(), 1, "cancelled entries are not stored");
    }

    #[test]
    fn out_of_bounds_triplet_rejected() {
        assert!(CsrMatrix::from_triplets(2, 2, &[Triplet::new(2, 0, 1.0)]).is_err());
    }

    #[test]
    fn matvec_matches_dense() {
        let m = CsrMatrix::from_triplets(
            2,
            3,
            &[
                Triplet::new(0, 1, 2.0),
                Triplet::new(1, 0, 1.0),
                Triplet::new(1, 2, -1.0),
            ],
        )
        .unwrap();
        let v = [1.0, 2.0, 3.0];
        let sparse = m.matvec(&v).unwrap();
        let dense = m.to_dense().matvec(&v).unwrap();
        assert_eq!(sparse, dense);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matvec_is_bit_identical_across_thread_counts() {
        // Deterministic sparse matrix with enough stored entries to
        // engage the parallel row-chunked path.
        let n = 600;
        let mut state = 0xdeadbeefcafef00d_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let mut trips = Vec::new();
        while trips.len() < 8000 {
            let r = (next() >> 33) as usize % n;
            let c = (next() >> 33) as usize % n;
            let v = ((next() >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            trips.push(Triplet::new(r, c, v));
        }
        let m = CsrMatrix::from_triplets(n, n, &trips).unwrap();
        assert!(
            m.nnz() >= MATVEC_MIN_NNZ,
            "test must engage the parallel path"
        );
        let v: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let at = |t: usize| {
            ncs_par::set_thread_override(Some(t));
            let out = m.matvec(&v).unwrap();
            ncs_par::set_thread_override(None);
            out
        };
        let base = at(1);
        for t in [2, 4] {
            let out = at(t);
            let same = base
                .iter()
                .zip(&out)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "matvec bits differ at t={t}");
        }
    }

    #[test]
    fn dense_roundtrip() {
        let d = DenseMatrix::from_rows(&[&[0.0, 1.5][..], &[2.5, 0.0][..]]).unwrap();
        let s = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn row_sums_are_degrees() {
        let m = CsrMatrix::from_triplets(
            2,
            2,
            &[
                Triplet::new(0, 0, 1.0),
                Triplet::new(0, 1, 1.0),
                Triplet::new(1, 0, 1.0),
            ],
        )
        .unwrap();
        assert_eq!(m.row_sums(), vec![2.0, 1.0]);
    }

    #[test]
    fn builder_matches_from_triplets() {
        let trips = [
            Triplet::new(0, 1, 2.0),
            Triplet::new(0, 4, -1.0),
            Triplet::new(2, 0, 5.0),
        ];
        let reference = CsrMatrix::from_triplets(4, 5, &trips).unwrap();
        let mut b = CsrMatrix::builder(4, 5, trips.len());
        b.push(1, 2.0);
        b.push(4, -1.0);
        b.finish_row();
        b.finish_row(); // row 1 empty
        b.push(0, 5.0);
        b.finish_row();
        b.finish_row(); // row 3 empty
        assert_eq!(b.finish(), reference);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn builder_rejects_unsorted_columns() {
        let mut b = CsrMatrix::builder(1, 5, 2);
        b.push(3, 1.0);
        b.push(1, 1.0);
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn builder_rejects_unfinished_rows() {
        let b = CsrMatrix::builder(2, 2, 0);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn builder_rejects_out_of_bounds_column() {
        let mut b = CsrMatrix::builder(1, 2, 0);
        b.push(2, 1.0);
    }

    #[test]
    fn iter_yields_all_entries_in_row_order() {
        let trips = [Triplet::new(1, 0, 5.0), Triplet::new(0, 1, 3.0)];
        let m = CsrMatrix::from_triplets(2, 2, &trips).unwrap();
        let collected: Vec<Triplet> = m.iter().collect();
        assert_eq!(
            collected,
            vec![Triplet::new(0, 1, 3.0), Triplet::new(1, 0, 5.0)]
        );
    }
}
