//! Linear-algebra substrate for the AutoNCS reproduction.
//!
//! The AutoNCS flow (DAC 2015) needs three numeric kernels that the paper
//! takes from MATLAB / NTUplace3 and that this crate re-implements from
//! scratch:
//!
//! 1. a **dense symmetric eigensolver** ([`SymmetricEigen`]) used by the
//!    modified spectral clustering step to solve the generalized
//!    eigenproblem `L u = λ D u`,
//! 2. a **nonlinear conjugate-gradient minimizer** ([`optimize::minimize`])
//!    used by the analytical placer to solve
//!    `min WL(x, y) + λ · D(x, y)`, and
//! 3. **sparse matrix** utilities ([`CsrMatrix`]) used to hold large binary
//!    connection matrices without densifying them.
//!
//! Everything is `f64`, allocation-light, and deterministic.
//!
//! # Examples
//!
//! Solving a small symmetric eigenproblem:
//!
//! ```
//! use ncs_linalg::{DenseMatrix, SymmetricEigen};
//!
//! # fn main() -> Result<(), ncs_linalg::LinalgError> {
//! let a = DenseMatrix::from_rows(&[
//!     &[2.0, 1.0][..],
//!     &[1.0, 2.0][..],
//! ])?;
//! let eig = SymmetricEigen::new(&a)?;
//! assert!((eig.eigenvalues()[0] - 1.0).abs() < 1e-10);
//! assert!((eig.eigenvalues()[1] - 3.0).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eigen;
mod error;
mod lanczos;
mod matrix;
pub mod optimize;
mod sparse;
pub mod vector;

pub use eigen::{GeneralizedEigen, SymmetricEigen};
pub use error::LinalgError;
pub use lanczos::{lanczos_largest, lanczos_largest_seeded};
pub use matrix::DenseMatrix;
pub use sparse::{CsrBuilder, CsrMatrix, Triplet};
