use std::fmt;
use std::ops::{Index, IndexMut};

use crate::LinalgError;

/// A dense, row-major `f64` matrix.
///
/// This is the workhorse container for the spectral embedding (`U` matrices
/// whose columns are eigenvectors) and for small dense kernels. It favours
/// simplicity and cache-friendly row access over BLAS-level performance;
/// the largest dense matrices in the AutoNCS flow are `n × n` for networks
/// of a few hundred neurons.
///
/// # Examples
///
/// ```
/// use ncs_linalg::DenseMatrix;
///
/// let mut m = DenseMatrix::zeros(2, 3);
/// m[(0, 2)] = 5.0;
/// assert_eq!(m[(0, 2)], 5.0);
/// assert_eq!(m.shape(), (2, 3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// ```
    /// use ncs_linalg::DenseMatrix;
    /// let i = DenseMatrix::identity(3);
    /// assert_eq!(i[(1, 1)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for zero rows and
    /// [`LinalgError::RaggedRows`] if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::RaggedRows { row: i });
            }
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (rows, cols),
                found: (data.len(), 1),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols()`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "column {j} out of bounds for {} cols",
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage (rows are
    /// contiguous runs of `ncols()` elements) — the entry point for
    /// row-partitioned parallel kernels.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Output rows are computed independently (row-parallel over
    /// [`ncs_par`] above [`MATMUL_MIN_WORK`] flops), with arithmetic per
    /// row identical to the serial loop — the result is bit-identical at
    /// any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if inner dimensions differ.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, rhs.cols),
                found: (rhs.rows, rhs.cols),
            });
        }
        let ocols = rhs.cols;
        if ocols == 0 {
            // Degenerate rows×0 product: nothing to compute, and the
            // grain below (`MATMUL_ROW_GRAIN * ocols`) would collapse to
            // a nonsensical one-element chunk grid.
            return Ok(DenseMatrix::zeros(self.rows, 0));
        }
        let mut out = DenseMatrix::zeros(self.rows, ocols);
        // Items are output elements (rows*ocols), each costing one
        // inner-dimension dot: total work = rows*cols*ocols flops, the
        // unit MATMUL_MIN_WORK is calibrated in.
        let cutoff = ncs_par::Cutoff::min_work(MATMUL_MIN_WORK).work_per_item(self.cols);
        // Grain is a whole number of output rows, so every chunk is
        // a run of complete rows and `start / ocols` is exact.
        ncs_par::par_chunks_mut(
            out.as_mut_slice(),
            MATMUL_ROW_GRAIN * ocols,
            cutoff,
            |start, c| {
                matmul_rows(self, rhs, start / ocols, c);
            },
        );
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != ncols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, 1),
                found: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Checks numeric symmetry within tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum absolute entry (0.0 for an all-zero matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Minimum `rows * inner * cols` flop count before `matmul` fans out to
/// the [`ncs_par`] thread team; below this, spawn overhead dominates.
const MATMUL_MIN_WORK: usize = 32 * 1024;

/// Output rows per parallel `matmul` chunk.
const MATMUL_ROW_GRAIN: usize = 8;

/// Computes output rows `row0..` of `a * rhs` into `out_rows` (a run of
/// complete rows). Shared by the serial and parallel paths of
/// [`DenseMatrix::matmul`] so their per-row arithmetic is literally the
/// same code.
fn matmul_rows(a: &DenseMatrix, rhs: &DenseMatrix, row0: usize, out_rows: &mut [f64]) {
    let ocols = rhs.cols;
    for (ri, orow) in out_rows.chunks_mut(ocols).enumerate() {
        let i = row0 + ri;
        for k in 0..a.cols {
            let v = a[(i, k)];
            // ncs-lint: allow(float-eq) — exact-zero sparsity skip; approximate zeros must still multiply
            if v == 0.0 {
                continue;
            }
            let rrow = rhs.row(k);
            for (o, &b) in orow.iter_mut().zip(rrow) {
                *o += v * b;
            }
        }
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{}", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            let row = self.row(i);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:10.4}")).collect();
            let ellipsis = if self.cols > 8 { " ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_index() {
        let mut m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        m[(2, 3)] = 7.5;
        assert_eq!(m[(2, 3)], 7.5);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[3.0][..]]).unwrap_err();
        assert_eq!(err, LinalgError::RaggedRows { row: 1 });
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert_eq!(DenseMatrix::from_rows(&[]).unwrap_err(), LinalgError::Empty);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap();
        let i = DenseMatrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0][..], &[7.0, 8.0][..]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_with_zero_width_rhs() {
        // rows×0 product: must return an empty rows×0 matrix, not panic
        // on a zero-sized chunk grain.
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap();
        let b = DenseMatrix::zeros(2, 0);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 0));
        assert!(c.as_slice().is_empty());
        // Zero-row lhs against it, too.
        let empty = DenseMatrix::zeros(0, 2);
        assert_eq!(empty.matmul(&b).unwrap().shape(), (0, 0));
    }

    #[test]
    fn matmul_single_column_rhs_matches_matvec() {
        // ocols == 1 exercises the smallest legal grain (one chunk per
        // MATMUL_ROW_GRAIN rows); the result must equal matvec exactly.
        let a = DenseMatrix::from_rows(&[
            &[1.5, -2.0, 0.25][..],
            &[0.0, 3.0, -1.0][..],
            &[4.0, 0.5, 2.0][..],
        ])
        .unwrap();
        let v = [2.0, -1.0, 0.5];
        let mut b = DenseMatrix::zeros(3, 1);
        for (i, &x) in v.iter().enumerate() {
            b[(i, 0)] = x;
        }
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (3, 1));
        let mv = a.matvec(&v).unwrap();
        for i in 0..3 {
            assert_eq!(c[(i, 0)].to_bits(), mv[i].to_bits());
        }
    }

    #[test]
    fn matmul_is_bit_identical_across_thread_counts() {
        // 48^3 flops exceeds MATMUL_MIN_WORK, so the team path engages.
        let n = 48;
        let mut a = DenseMatrix::zeros(n, n);
        let mut b = DenseMatrix::zeros(n, n);
        let mut state = 0x9e3779b97f4a7c15_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
                b[(i, j)] = next();
            }
        }
        let at = |t: usize| {
            ncs_par::set_thread_override(Some(t));
            let c = a.matmul(&b).unwrap();
            ncs_par::set_thread_override(None);
            c
        };
        let base = at(1);
        for t in [2, 4] {
            let c = at(t);
            let same = base
                .as_slice()
                .iter()
                .zip(c.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "matmul bits differ at t={t}");
        }
    }

    #[test]
    fn matvec_known() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn symmetry_check() {
        let s = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[2.0, 1.0][..]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let ns = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[2.5, 1.0][..]]).unwrap();
        assert!(!ns.is_symmetric(1e-9));
        assert!(ns.is_symmetric(1.0));
        assert!(!DenseMatrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn norms() {
        let m = DenseMatrix::from_rows(&[&[3.0, -4.0][..]]).unwrap();
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn row_and_column_access() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        DenseMatrix::zeros(1, 1).row(1);
    }

    #[test]
    fn display_is_nonempty() {
        let s = DenseMatrix::identity(2).to_string();
        assert!(s.contains("DenseMatrix 2x2"));
    }
}
