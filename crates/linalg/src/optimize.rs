//! Nonlinear conjugate-gradient minimization.
//!
//! The AutoNCS placer (Algorithm 4 in the paper, following NTUplace3's
//! approach) repeatedly minimizes the smooth penalty function
//! `WL(x, y) + λ · D(x, y)` with a conjugate-gradient solver. This module
//! provides a self-contained Polak–Ribière+ CG with Armijo backtracking
//! line search over an arbitrary differentiable objective.
//!
//! # Examples
//!
//! Minimizing a shifted quadratic bowl:
//!
//! ```
//! use ncs_linalg::optimize::{minimize, CgOptions};
//!
//! let result = minimize(
//!     |x, grad| {
//!         grad[0] = 2.0 * (x[0] - 3.0);
//!         grad[1] = 2.0 * (x[1] + 1.0);
//!         (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2)
//!     },
//!     vec![0.0, 0.0],
//!     &CgOptions::default(),
//! );
//! assert!(result.converged);
//! assert!((result.x[0] - 3.0).abs() < 1e-5);
//! assert!((result.x[1] + 1.0).abs() < 1e-5);
//! ```

use crate::vector::{axpy, dot, norm};

/// Configuration for [`minimize`].
#[derive(Debug, Clone, PartialEq)]
pub struct CgOptions {
    /// Maximum CG iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the gradient Euclidean norm.
    pub gradient_tolerance: f64,
    /// Initial step length tried by the line search.
    pub initial_step: f64,
    /// Armijo sufficient-decrease constant (`c1`).
    pub armijo_c1: f64,
    /// Multiplicative backtracking factor in `(0, 1)`.
    pub backtrack_factor: f64,
    /// Maximum backtracking steps per line search.
    pub max_backtracks: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            max_iterations: 500,
            gradient_tolerance: 1e-6,
            initial_step: 1.0,
            armijo_c1: 1e-4,
            backtrack_factor: 0.5,
            max_backtracks: 40,
        }
    }
}

/// Result of a [`minimize`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct MinimizeResult {
    /// The final point.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Euclidean norm of the gradient at `x`.
    pub gradient_norm: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the gradient tolerance was reached.
    pub converged: bool,
}

/// Minimizes a differentiable function with Polak–Ribière+ conjugate
/// gradient and Armijo backtracking line search.
///
/// The objective closure receives the current point and a gradient buffer
/// (same length) that it must fill; it returns the objective value. This
/// "fused" signature lets objectives share work between the value and the
/// gradient — the placer's WA wirelength does exactly that.
///
/// The solver never fails: if the line search stalls it restarts along the
/// steepest-descent direction, and if that stalls too it stops and reports
/// `converged: false` with the best point found.
///
/// # Panics
///
/// Panics if `x0` is empty.
pub fn minimize<F>(mut objective: F, x0: Vec<f64>, options: &CgOptions) -> MinimizeResult
where
    F: FnMut(&[f64], &mut [f64]) -> f64,
{
    assert!(!x0.is_empty(), "cannot minimize over an empty point");
    let n = x0.len();
    let mut x = x0;
    let mut grad = vec![0.0; n];
    let mut value = objective(&x, &mut grad);
    let mut direction: Vec<f64> = grad.iter().map(|g| -g).collect();
    let mut grad_norm = norm(&grad);
    let mut prev_grad = grad.clone();
    let mut step_hint = options.initial_step;

    let mut iterations = 0;
    while iterations < options.max_iterations {
        if grad_norm <= options.gradient_tolerance {
            return MinimizeResult {
                x,
                value,
                gradient_norm: grad_norm,
                iterations,
                converged: true,
            };
        }
        iterations += 1;

        // Ensure descent; restart on uphill directions.
        let mut slope = dot(&grad, &direction);
        if slope >= 0.0 {
            for (d, g) in direction.iter_mut().zip(&grad) {
                *d = -g;
            }
            slope = -grad_norm * grad_norm;
        }

        // Armijo backtracking line search.
        let mut step = step_hint;
        let mut accepted = false;
        let mut trial = vec![0.0; n];
        let mut trial_grad = vec![0.0; n];
        let mut trial_value = value;
        for _ in 0..options.max_backtracks {
            trial.copy_from_slice(&x);
            axpy(step, &direction, &mut trial);
            trial_value = objective(&trial, &mut trial_grad);
            if trial_value.is_finite() && trial_value <= value + options.armijo_c1 * step * slope {
                accepted = true;
                break;
            }
            step *= options.backtrack_factor;
        }
        if !accepted {
            // The direction is numerically useless; try a pure gradient
            // step once, then give up.
            let tiny = 1e-12_f64.max(step);
            trial.copy_from_slice(&x);
            axpy(-tiny / grad_norm.max(1e-30), &grad, &mut trial);
            trial_value = objective(&trial, &mut trial_grad);
            if !(trial_value.is_finite() && trial_value < value) {
                return MinimizeResult {
                    x,
                    value,
                    gradient_norm: grad_norm,
                    iterations,
                    converged: grad_norm <= options.gradient_tolerance,
                };
            }
        }

        // Accept the step.
        std::mem::swap(&mut x, &mut trial);
        value = trial_value;
        prev_grad.copy_from_slice(&grad);
        grad.copy_from_slice(&trial_grad);
        let new_norm = norm(&grad);

        // Polak–Ribière+ with automatic restart (beta clamped at 0).
        let denom = dot(&prev_grad, &prev_grad);
        let beta = if denom > 0.0 {
            let mut num = 0.0;
            for i in 0..n {
                num += grad[i] * (grad[i] - prev_grad[i]);
            }
            (num / denom).max(0.0)
        } else {
            0.0
        };
        for i in 0..n {
            direction[i] = -grad[i] + beta * direction[i];
        }
        grad_norm = new_norm;
        // Carry the successful step forward, nudged up so the search can
        // re-lengthen after a cautious stretch.
        step_hint = (step * 2.0).min(options.initial_step.max(1.0));
    }

    MinimizeResult {
        converged: grad_norm <= options.gradient_tolerance,
        x,
        value,
        gradient_norm: grad_norm,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl_converges() {
        let r = minimize(
            |x, g| {
                g[0] = 2.0 * x[0];
                g[1] = 8.0 * x[1];
                x[0] * x[0] + 4.0 * x[1] * x[1]
            },
            vec![5.0, -3.0],
            &CgOptions::default(),
        );
        assert!(r.converged, "grad norm {}", r.gradient_norm);
        assert!(r.x[0].abs() < 1e-5);
        assert!(r.x[1].abs() < 1e-5);
        assert!(r.value < 1e-9);
    }

    #[test]
    fn rosenbrock_makes_progress() {
        let rosen = |x: &[f64], g: &mut [f64]| {
            let (a, b) = (1.0, 100.0);
            g[0] = -2.0 * (a - x[0]) - 4.0 * b * x[0] * (x[1] - x[0] * x[0]);
            g[1] = 2.0 * b * (x[1] - x[0] * x[0]);
            (a - x[0]).powi(2) + b * (x[1] - x[0] * x[0]).powi(2)
        };
        let opts = CgOptions {
            max_iterations: 8000,
            gradient_tolerance: 1e-6,
            ..CgOptions::default()
        };
        let r = minimize(rosen, vec![-1.2, 1.0], &opts);
        assert!(r.value < 1e-4, "rosenbrock value {}", r.value);
    }

    #[test]
    fn already_at_minimum_returns_immediately() {
        let r = minimize(
            |x, g| {
                g[0] = 2.0 * x[0];
                x[0] * x[0]
            },
            vec![0.0],
            &CgOptions::default(),
        );
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn respects_iteration_budget() {
        let opts = CgOptions {
            max_iterations: 3,
            gradient_tolerance: 0.0,
            ..CgOptions::default()
        };
        // A quartic never reaches an exactly-zero gradient in floating
        // point from this start, so the budget is the binding stop.
        let r = minimize(
            |x, g| {
                g[0] = 4.0 * (x[0] - std::f64::consts::PI).powi(3);
                (x[0] - std::f64::consts::PI).powi(4)
            },
            vec![0.0],
            &opts,
        );
        assert!(r.iterations <= 3);
        assert!(!r.converged);
    }

    #[test]
    fn high_dimension_quadratic() {
        let n = 200;
        let r = minimize(
            |x, g| {
                let mut v = 0.0;
                for i in 0..x.len() {
                    let w = 1.0 + (i % 7) as f64;
                    g[i] = 2.0 * w * x[i];
                    v += w * x[i] * x[i];
                }
                v
            },
            (0..n).map(|i| (i as f64 * 0.37).sin()).collect(),
            &CgOptions {
                max_iterations: 2000,
                ..CgOptions::default()
            },
        );
        assert!(r.converged);
        assert!(r.value < 1e-8);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_point_panics() {
        minimize(|_, _| 0.0, vec![], &CgOptions::default());
    }
}
