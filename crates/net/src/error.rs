use std::error::Error;
use std::fmt;

/// Errors produced by the network substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// A neuron index was out of range.
    NeuronOutOfRange {
        /// Offending index.
        index: usize,
        /// Network size.
        neurons: usize,
    },
    /// A requested sparsity was outside `[0, 1]`.
    InvalidSparsity {
        /// The offending value.
        value: f64,
    },
    /// Pattern dimension does not match the network size.
    PatternDimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Provided dimension.
        found: usize,
    },
    /// A generator was asked for an empty artifact (zero neurons/patterns).
    EmptyRequest {
        /// What was requested.
        what: &'static str,
    },
    /// An unknown paper testbench id (valid ids are 1, 2, 3).
    UnknownTestbench {
        /// The offending id.
        id: usize,
    },
    /// A parameter that must lie in `(0, 1]` was invalid.
    InvalidFraction {
        /// Description of the parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

// `InvalidSparsity`/`InvalidFraction` hold f64 but only for reporting;
// Eq is fine because we never compare NaN-carrying errors.
impl Eq for NetError {}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NeuronOutOfRange { index, neurons } => {
                write!(f, "neuron index {index} out of range for {neurons} neurons")
            }
            NetError::InvalidSparsity { value } => {
                write!(f, "sparsity {value} must lie in [0, 1]")
            }
            NetError::PatternDimensionMismatch { expected, found } => {
                write!(
                    f,
                    "pattern dimension {found} does not match network size {expected}"
                )
            }
            NetError::EmptyRequest { what } => write!(f, "cannot create an empty {what}"),
            NetError::UnknownTestbench { id } => {
                write!(f, "unknown testbench id {id}, valid ids are 1, 2 and 3")
            }
            NetError::InvalidFraction { what, value } => {
                write!(f, "{what} {value} must lie in (0, 1]")
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(NetError::UnknownTestbench { id: 9 }
            .to_string()
            .contains('9'));
        assert!(NetError::InvalidSparsity { value: 2.0 }
            .to_string()
            .contains("2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
