//! Neural-network substrate for the AutoNCS reproduction.
//!
//! The AutoNCS paper (DAC 2015) evaluates its EDA flow on sparse Hopfield
//! networks that store random quick-response-code patterns. This crate
//! provides everything needed to regenerate those workloads from scratch:
//!
//! * [`ConnectionMatrix`] — the binary `n × n` connection matrix that the
//!   whole flow operates on ("connection matrix" and "network" are
//!   interchangeable, exactly as in the paper),
//! * [`HopfieldNetwork`] — Hebbian training, sparsification to a target
//!   sparsity, recall dynamics, and recognition-rate measurement,
//! * [`PatternSet`] — random QR-code-like binary patterns with noise
//!   injection,
//! * [`generators`] — additional sparse-network generators (uniform random,
//!   planted clusters, LDPC-style bipartite graphs) used by tests,
//!   examples, and ablation benches,
//! * [`Testbench`] — the paper's three testbenches with their exact
//!   `(M, N)` factors and sparsities.
//!
//! # Examples
//!
//! Regenerating paper testbench 2 (the 400-neuron network of Figures 3-6):
//!
//! ```
//! use ncs_net::Testbench;
//!
//! let tb = Testbench::paper(2, 42).expect("testbench 2 exists");
//! let net = tb.network();
//! assert_eq!(net.neurons(), 400);
//! // Sparsity matches the paper's 93.59% to within one connection pair.
//! assert!((net.sparsity() - 0.9359).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conn;
mod error;
pub mod generators;
mod hopfield;
pub mod io;
mod patterns;
mod testbench;

pub use conn::ConnectionMatrix;
pub use error::NetError;
pub use hopfield::{HopfieldNetwork, RecallOutcome, RecognitionReport};
pub use patterns::PatternSet;
pub use testbench::{Testbench, TestbenchSpec};
