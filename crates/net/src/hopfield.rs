use ncs_linalg::DenseMatrix;

use crate::{ConnectionMatrix, NetError, PatternSet};

/// A Hopfield associative memory with real-valued Hebbian weights and an
/// optional binary connection mask.
///
/// The paper's testbenches are "sparse Hopfield networks": a dense Hebbian
/// weight matrix is *sparsified* by keeping only the strongest-magnitude
/// synapses until a target sparsity is reached. The surviving synapse
/// positions form the binary [`ConnectionMatrix`] that AutoNCS maps to
/// hardware, while the surviving weights still drive recall so the >90 %
/// recognition-rate claim can be checked.
///
/// # Examples
///
/// ```
/// use ncs_net::{HopfieldNetwork, PatternSet};
///
/// # fn main() -> Result<(), ncs_net::NetError> {
/// let patterns = PatternSet::random_qr(5, 120, 11)?;
/// let mut hopfield = HopfieldNetwork::train(&patterns)?;
/// hopfield.sparsify_to(0.90)?;
/// assert!((hopfield.mask().sparsity() - 0.90).abs() < 0.01);
/// let report = hopfield.recognition_rate(&patterns, 0.05, 0.9, 123)?;
/// assert!(report.rate() > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HopfieldNetwork {
    weights: DenseMatrix,
    mask: ConnectionMatrix,
}

/// Outcome of a single recall run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecallOutcome {
    /// Final network state.
    pub state: Vec<f64>,
    /// Synchronous update steps performed.
    pub steps: usize,
    /// Whether a fixed point was reached within the step budget.
    pub converged: bool,
}

/// Aggregate result of a recognition-rate measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecognitionReport {
    /// Patterns recognized (final overlap above the acceptance threshold).
    pub recognized: usize,
    /// Patterns tested.
    pub total: usize,
}

impl RecognitionReport {
    /// Recognition rate in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.recognized as f64 / self.total as f64
        }
    }
}

impl HopfieldNetwork {
    /// Trains a Hopfield network on a pattern set with the Hebbian
    /// outer-product rule `W = (1/M) Σ_p x_p x_pᵀ`, zero diagonal. The
    /// initial mask is fully connected (minus self-connections).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyRequest`] if the pattern set is empty
    /// (cannot happen for a constructed [`PatternSet`], but guards direct
    /// misuse).
    pub fn train(patterns: &PatternSet) -> Result<Self, NetError> {
        let n = patterns.dimension();
        if n == 0 || patterns.is_empty() {
            return Err(NetError::EmptyRequest {
                what: "hopfield training set",
            });
        }
        let m = patterns.len() as f64;
        let mut weights = DenseMatrix::zeros(n, n);
        for p in patterns.iter() {
            for i in 0..n {
                let pi = p[i];
                let row = weights.row_mut(i);
                for (j, w) in row.iter_mut().enumerate() {
                    *w += pi * p[j] / m;
                }
            }
        }
        let mut mask = ConnectionMatrix::empty(n)?;
        for i in 0..n {
            weights[(i, i)] = 0.0;
            for j in 0..n {
                if i != j {
                    mask.connect(i, j)?;
                }
            }
        }
        Ok(HopfieldNetwork { weights, mask })
    }

    /// Number of neurons.
    pub fn neurons(&self) -> usize {
        self.weights.nrows()
    }

    /// The dense Hebbian weights (diagonal is zero).
    pub fn weights(&self) -> &DenseMatrix {
        &self.weights
    }

    /// The current binary connection mask — the network that AutoNCS maps.
    pub fn mask(&self) -> &ConnectionMatrix {
        &self.mask
    }

    /// Consumes the network and returns the mask.
    pub fn into_mask(self) -> ConnectionMatrix {
        self.mask
    }

    /// Sparsifies the mask to the target sparsity by keeping the
    /// largest-|weight| symmetric synapse *pairs* (so the mask stays
    /// symmetric like the underlying Hopfield weights).
    ///
    /// The number of kept connections is `round((1 - sparsity) · n²)`
    /// rounded to an even pair count, matching the paper's sparsity
    /// definition (actual / all possible connections).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidSparsity`] if `sparsity ∉ [0, 1]`.
    pub fn sparsify_to(&mut self, sparsity: f64) -> Result<(), NetError> {
        if !(0.0..=1.0).contains(&sparsity) {
            return Err(NetError::InvalidSparsity { value: sparsity });
        }
        let n = self.neurons();
        let target_connections = ((1.0 - sparsity) * (n * n) as f64).round() as usize;
        let target_pairs = target_connections / 2;
        // Rank upper-triangle pairs by |w|.
        let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                pairs.push((i, j));
            }
        }
        pairs.sort_by(|&(ai, aj), &(bi, bj)| {
            let wa = self.weights[(ai, aj)].abs();
            let wb = self.weights[(bi, bj)].abs();
            wb.total_cmp(&wa)
                // Deterministic tie-break on index.
                .then((ai, aj).cmp(&(bi, bj)))
        });
        let mut mask = ConnectionMatrix::empty(n)?;
        for &(i, j) in pairs.iter().take(target_pairs) {
            mask.connect(i, j)?;
            mask.connect(j, i)?;
        }
        self.mask = mask;
        Ok(())
    }

    /// The Hopfield energy of a state under the masked weights:
    /// `E(s) = -½ Σ_{ij} W_ij·mask_ij·s_i·s_j`.
    ///
    /// For symmetric weights, *asynchronous* sign updates never increase
    /// this energy — the classic Lyapunov argument for Hopfield
    /// convergence; [`HopfieldNetwork::recall_async`] exercises it and the
    /// property tests assert it.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PatternDimensionMismatch`] for a wrong-length
    /// state.
    pub fn energy(&self, state: &[f64]) -> Result<f64, NetError> {
        let n = self.neurons();
        if state.len() != n {
            return Err(NetError::PatternDimensionMismatch {
                expected: n,
                found: state.len(),
            });
        }
        let mut e = 0.0;
        for j in 0..n {
            for i in self.mask.fanout_of(j) {
                e += self.weights[(j, i)] * state[j] * state[i];
            }
        }
        Ok(-0.5 * e)
    }

    /// Asynchronous (one-neuron-at-a-time, round-robin) recall. Each full
    /// sweep updates every neuron in index order; for symmetric masked
    /// weights the energy is non-increasing at every single update, so
    /// this variant always converges to a fixed point (unlike synchronous
    /// recall, which can 2-cycle).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PatternDimensionMismatch`] for a wrong-length
    /// state.
    pub fn recall_async(
        &self,
        initial: &[f64],
        max_sweeps: usize,
    ) -> Result<RecallOutcome, NetError> {
        let n = self.neurons();
        if initial.len() != n {
            return Err(NetError::PatternDimensionMismatch {
                expected: n,
                found: initial.len(),
            });
        }
        let mut state = initial.to_vec();
        for sweep in 0..max_sweeps {
            let mut changed = false;
            for j in 0..n {
                let mut h = 0.0;
                for i in self.mask.fanout_of(j) {
                    h += self.weights[(j, i)] * state[i];
                }
                let new = if h > 0.0 {
                    1.0
                } else if h < 0.0 {
                    -1.0
                } else {
                    state[j]
                };
                if new != state[j] {
                    state[j] = new;
                    changed = true;
                }
            }
            if !changed {
                return Ok(RecallOutcome {
                    state,
                    steps: sweep,
                    converged: true,
                });
            }
        }
        Ok(RecallOutcome {
            state,
            steps: max_sweeps,
            converged: false,
        })
    }

    /// Runs masked synchronous recall from an initial state until a fixed
    /// point or `max_steps`.
    ///
    /// Each step computes `h_j = Σ_i W[i][j] · mask[i][j] · s_i` and sets
    /// `s_j = sign(h_j)` (keeping the previous value on an exact zero
    /// field, which avoids oscillating dead neurons).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PatternDimensionMismatch`] if the state length
    /// differs from the network size.
    pub fn recall(&self, initial: &[f64], max_steps: usize) -> Result<RecallOutcome, NetError> {
        let n = self.neurons();
        if initial.len() != n {
            return Err(NetError::PatternDimensionMismatch {
                expected: n,
                found: initial.len(),
            });
        }
        let mut state = initial.to_vec();
        let mut next = vec![0.0; n];
        for step in 0..max_steps {
            for j in 0..n {
                let mut h = 0.0;
                for i in self.mask.fanout_of(j) {
                    // Mask and weights are symmetric; iterate the sparse
                    // row of j for O(degree) work.
                    h += self.weights[(j, i)] * state[i];
                }
                next[j] = if h > 0.0 {
                    1.0
                } else if h < 0.0 {
                    -1.0
                } else {
                    state[j]
                };
            }
            if next == state {
                return Ok(RecallOutcome {
                    state,
                    steps: step,
                    converged: true,
                });
            }
            std::mem::swap(&mut state, &mut next);
        }
        Ok(RecallOutcome {
            state,
            steps: max_steps,
            converged: false,
        })
    }

    /// Measures the recognition rate: every stored pattern is corrupted by
    /// flipping `noise_fraction` of its bits, recalled for up to 50 steps,
    /// and counted as recognized when the final overlap with the original
    /// is at least `accept_overlap`.
    ///
    /// # Errors
    ///
    /// Propagates dimension and fraction errors from
    /// [`PatternSet::noisy_pattern`] / [`HopfieldNetwork::recall`].
    pub fn recognition_rate(
        &self,
        patterns: &PatternSet,
        noise_fraction: f64,
        accept_overlap: f64,
        seed: u64,
    ) -> Result<RecognitionReport, NetError> {
        let mut recognized = 0;
        for idx in 0..patterns.len() {
            let noisy = patterns.noisy_pattern(idx, noise_fraction, seed ^ (idx as u64))?;
            let outcome = self.recall(&noisy, 50)?;
            if PatternSet::overlap(&outcome.state, patterns.pattern(idx)) >= accept_overlap {
                recognized += 1;
            }
        }
        Ok(RecognitionReport {
            recognized,
            total: patterns.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_produces_symmetric_zero_diagonal_weights() {
        let p = PatternSet::random_qr(3, 40, 7).unwrap();
        let h = HopfieldNetwork::train(&p).unwrap();
        let w = h.weights();
        for i in 0..40 {
            assert_eq!(w[(i, i)], 0.0);
            for j in 0..40 {
                assert!((w[(i, j)] - w[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dense_network_recalls_exact_patterns() {
        let p = PatternSet::random_qr(3, 80, 21).unwrap();
        let h = HopfieldNetwork::train(&p).unwrap();
        for idx in 0..p.len() {
            let out = h.recall(p.pattern(idx), 10).unwrap();
            assert!(out.converged);
            assert!(PatternSet::overlap(&out.state, p.pattern(idx)) > 0.99);
        }
    }

    #[test]
    fn dense_network_corrects_noise() {
        let p = PatternSet::random_qr(2, 100, 33).unwrap();
        let h = HopfieldNetwork::train(&p).unwrap();
        let noisy = p.noisy_pattern(0, 0.1, 5).unwrap();
        let out = h.recall(&noisy, 20).unwrap();
        assert!(PatternSet::overlap(&out.state, p.pattern(0)) > 0.95);
    }

    #[test]
    fn sparsify_hits_target_and_stays_symmetric() {
        let p = PatternSet::random_qr(5, 60, 3).unwrap();
        let mut h = HopfieldNetwork::train(&p).unwrap();
        h.sparsify_to(0.94).unwrap();
        assert!(h.mask().is_symmetric());
        assert!((h.mask().sparsity() - 0.94).abs() < 0.01);
        assert!(h.sparsify_to(1.5).is_err());
    }

    #[test]
    fn sparsify_to_full_sparsity_empties_the_mask() {
        let p = PatternSet::random_qr(2, 20, 3).unwrap();
        let mut h = HopfieldNetwork::train(&p).unwrap();
        h.sparsify_to(1.0).unwrap();
        assert_eq!(h.mask().connections(), 0);
    }

    #[test]
    fn recall_rejects_wrong_dimension() {
        let p = PatternSet::random_qr(1, 10, 0).unwrap();
        let h = HopfieldNetwork::train(&p).unwrap();
        assert!(h.recall(&[1.0; 9], 5).is_err());
    }

    #[test]
    fn sparse_network_keeps_high_recognition() {
        // Moderate load (M = 4 patterns on 150 neurons) survives
        // top-|w| sparsification well.
        let p = PatternSet::random_qr(4, 150, 9).unwrap();
        let mut h = HopfieldNetwork::train(&p).unwrap();
        h.sparsify_to(0.85).unwrap();
        let rep = h.recognition_rate(&p, 0.05, 0.9, 1234).unwrap();
        assert!(rep.rate() >= 0.75, "rate {}", rep.rate());
        assert_eq!(rep.total, 4);
    }

    #[test]
    fn async_recall_never_increases_energy() {
        let p = PatternSet::random_qr(3, 60, 5).unwrap();
        let mut h = HopfieldNetwork::train(&p).unwrap();
        h.sparsify_to(0.8).unwrap();
        let noisy = p.noisy_pattern(0, 0.2, 9).unwrap();
        let e_start = h.energy(&noisy).unwrap();
        let out = h.recall_async(&noisy, 50).unwrap();
        assert!(out.converged);
        let e_end = h.energy(&out.state).unwrap();
        assert!(
            e_end <= e_start + 1e-12,
            "energy rose: {e_start} -> {e_end}"
        );
    }

    #[test]
    fn stored_patterns_sit_in_energy_minima() {
        let p = PatternSet::random_qr(2, 80, 31).unwrap();
        let h = HopfieldNetwork::train(&p).unwrap();
        let stored = h.energy(p.pattern(0)).unwrap();
        let scrambled = p.noisy_pattern(0, 0.5, 3).unwrap();
        assert!(stored < h.energy(&scrambled).unwrap());
        assert!(h.energy(&[1.0; 3]).is_err());
    }

    #[test]
    fn async_and_sync_recall_agree_on_clean_patterns() {
        let p = PatternSet::random_qr(3, 60, 8).unwrap();
        let h = HopfieldNetwork::train(&p).unwrap();
        for idx in 0..p.len() {
            let sync = h.recall(p.pattern(idx), 10).unwrap();
            let asyn = h.recall_async(p.pattern(idx), 10).unwrap();
            assert_eq!(sync.state, asyn.state);
        }
        assert!(h.recall_async(&[1.0; 2], 5).is_err());
    }

    #[test]
    fn recognition_report_rate() {
        assert_eq!(
            RecognitionReport {
                recognized: 9,
                total: 10
            }
            .rate(),
            0.9
        );
        assert_eq!(
            RecognitionReport {
                recognized: 0,
                total: 0
            }
            .rate(),
            0.0
        );
    }
}
