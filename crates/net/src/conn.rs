use std::fmt;

use ncs_linalg::DenseMatrix;

use crate::NetError;

/// A binary `n × n` connection matrix.
///
/// Entry `(i, j) == true` means a synapse connects neuron `i` (fan-in side)
/// to neuron `j` (fan-out side). Following the paper, the *connection
/// matrix* and the *network* are the same object; all clustering operates
/// on this structure. Storage is a bit-packed row-major bitmap, so a
/// 500-neuron network costs ~31 KiB.
///
/// # Examples
///
/// ```
/// use ncs_net::ConnectionMatrix;
///
/// # fn main() -> Result<(), ncs_net::NetError> {
/// let mut net = ConnectionMatrix::empty(4)?;
/// net.connect(0, 1)?;
/// net.connect(1, 0)?;
/// assert_eq!(net.connections(), 2);
/// assert_eq!(net.sparsity(), 1.0 - 2.0 / 16.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl ConnectionMatrix {
    /// Creates an `n × n` matrix with no connections.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyRequest`] for `n == 0`.
    pub fn empty(n: usize) -> Result<Self, NetError> {
        if n == 0 {
            return Err(NetError::EmptyRequest {
                what: "connection matrix",
            });
        }
        let words_per_row = n.div_ceil(64);
        Ok(ConnectionMatrix {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        })
    }

    /// Builds a matrix from an iterator of `(from, to)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NeuronOutOfRange`] on the first bad index, or
    /// [`NetError::EmptyRequest`] for `n == 0`.
    pub fn from_pairs<I>(n: usize, pairs: I) -> Result<Self, NetError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut m = Self::empty(n)?;
        for (i, j) in pairs {
            m.connect(i, j)?;
        }
        Ok(m)
    }

    /// Number of neurons `n`.
    pub fn neurons(&self) -> usize {
        self.n
    }

    /// Whether a connection `(from, to)` exists.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn is_connected(&self, from: usize, to: usize) -> bool {
        assert!(
            from < self.n && to < self.n,
            "index ({from},{to}) out of range"
        );
        let word = self.bits[from * self.words_per_row + to / 64];
        (word >> (to % 64)) & 1 == 1
    }

    /// Adds a connection.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NeuronOutOfRange`] if an index is out of range.
    pub fn connect(&mut self, from: usize, to: usize) -> Result<(), NetError> {
        self.check(from)?;
        self.check(to)?;
        self.set(from, to, true);
        Ok(())
    }

    /// Infallible bit write for indices already proven in range (panics
    /// via slice indexing otherwise — internal use only).
    fn set(&mut self, from: usize, to: usize, on: bool) {
        let word = &mut self.bits[from * self.words_per_row + to / 64];
        if on {
            *word |= 1 << (to % 64);
        } else {
            *word &= !(1 << (to % 64));
        }
    }

    /// Removes a connection (no-op if absent).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NeuronOutOfRange`] if an index is out of range.
    pub fn disconnect(&mut self, from: usize, to: usize) -> Result<(), NetError> {
        self.check(from)?;
        self.check(to)?;
        self.set(from, to, false);
        Ok(())
    }

    fn check(&self, idx: usize) -> Result<(), NetError> {
        if idx >= self.n {
            Err(NetError::NeuronOutOfRange {
                index: idx,
                neurons: self.n,
            })
        } else {
            Ok(())
        }
    }

    /// Total number of connections (set bits).
    pub fn connections(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Sparsity per the paper: one minus actual connections over all `n²`
    /// possible connections.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.connections() as f64 / (self.n * self.n) as f64
    }

    /// Density, `1 - sparsity`.
    pub fn density(&self) -> f64 {
        1.0 - self.sparsity()
    }

    /// Iterator over the fan-out targets of neuron `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn fanout_of(&self, from: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(from < self.n, "neuron {from} out of range");
        let row = &self.bits[from * self.words_per_row..(from + 1) * self.words_per_row];
        let n = self.n;
        row.iter().enumerate().flat_map(move |(wi, &w)| {
            BitIter {
                word: w,
                base: wi * 64,
            }
            .take_while(move |&b| b < n)
        })
    }

    /// Iterator over the neighbours recorded in row `row` of the bitmap
    /// (a bit-scan, so cost is proportional to the set bits). On a
    /// [`symmetrized`](Self::symmetrized) matrix this is the undirected
    /// neighbour list that row-parallel Laplacian builders consume.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_neighbors(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        self.fanout_of(row)
    }

    /// Number of fan-outs (out-degree) of a neuron.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn fanout(&self, from: usize) -> usize {
        assert!(from < self.n, "neuron {from} out of range");
        self.bits[from * self.words_per_row..(from + 1) * self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of fan-ins (in-degree) of a neuron.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn fanin(&self, to: usize) -> usize {
        assert!(to < self.n, "neuron {to} out of range");
        let word = to / 64;
        let bit = 1u64 << (to % 64);
        (0..self.n)
            .filter(|&i| self.bits[i * self.words_per_row + word] & bit != 0)
            .count()
    }

    /// Out-degrees of every neuron in one pass: `out_degrees()[i] ==
    /// fanout(i)`. Popcounts whole words, so the cost is O(n·words) —
    /// the bulk form the CSR builder uses to size row pointers without
    /// per-bit probing.
    pub fn out_degrees(&self) -> Vec<usize> {
        self.bits
            .chunks_exact(self.words_per_row)
            .map(|row| row.iter().map(|w| w.count_ones() as usize).sum())
            .collect()
    }

    /// In-degrees of every neuron in one pass: `fanins()[j] == fanin(j)`.
    /// A single word-level sweep over the bitmap (O(n·words + nnz))
    /// instead of `n` calls to [`fanin`](Self::fanin) (O(n²) probes).
    pub fn fanins(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n];
        for row in 0..self.n {
            for j in self.row_neighbors(row) {
                counts[j] += 1;
            }
        }
        counts
    }

    /// Appends the fan-out targets of `row` to `out` (which is cleared
    /// first), in ascending order. Word-level scan like
    /// [`row_neighbors`](Self::row_neighbors), but writing into a caller
    /// scratch buffer so hot loops can reuse one allocation.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_neighbors_into(&self, row: usize, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.row_neighbors(row));
    }

    /// `fanin + fanout` of a neuron — the paper's congestion proxy.
    ///
    /// # Panics
    ///
    /// Panics if `neuron` is out of range.
    pub fn fanin_fanout(&self, neuron: usize) -> usize {
        self.fanin(neuron) + self.fanout(neuron)
    }

    /// Iterator over all `(from, to)` connections in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |i| self.fanout_of(i).map(move |j| (i, j)))
    }

    /// Whether the matrix is symmetric (every connection has its reverse).
    pub fn is_symmetric(&self) -> bool {
        self.iter().all(|(i, j)| self.is_connected(j, i))
    }

    /// Symmetrized copy: connection `(i, j)` exists if either direction
    /// exists in `self`. This is the undirected similarity graph MSC
    /// clusters on.
    pub fn symmetrized(&self) -> ConnectionMatrix {
        let mut out = self.clone();
        for (i, j) in self.iter() {
            // Indices come from self, so they are in range.
            out.set(j, i, true);
        }
        out
    }

    /// Node degrees of the symmetrized graph, counting each incident
    /// connection once.
    pub fn degrees(&self) -> Vec<f64> {
        let sym = self.symmetrized();
        sym.out_degrees().into_iter().map(|d| d as f64).collect()
    }

    /// Bit-mask over neuron indices with one bit set per in-range member
    /// (out-of-range entries and duplicates are ignored).
    fn member_word_mask(&self, members: &[usize]) -> Vec<u64> {
        let mut mask = vec![0u64; self.words_per_row];
        for &m in members {
            if m < self.n {
                mask[m / 64] |= 1 << (m % 64);
            }
        }
        mask
    }

    /// Number of connections `(i, j)` with both `i` and `j` inside
    /// `members` — the within-cluster connections a crossbar would absorb.
    ///
    /// Only member rows are visited, AND-ed word-by-word against the
    /// member mask: O(|members|·words) instead of a full-matrix scan.
    pub fn connections_within(&self, members: &[usize]) -> usize {
        let mask = self.member_word_mask(members);
        let mut count = 0;
        for i in mask_rows(&mask, self.n) {
            let row = &self.bits[i * self.words_per_row..(i + 1) * self.words_per_row];
            count += row
                .iter()
                .zip(&mask)
                .map(|(w, m)| (w & m).count_ones() as usize)
                .sum::<usize>();
        }
        count
    }

    /// Removes every connection `(i, j)` with both endpoints in `members`
    /// and returns how many were removed. This is the "delete connections
    /// within Ai from R" step of ISC (Algorithm 3, line 12).
    ///
    /// Word-level like [`connections_within`](Self::connections_within):
    /// each member row is popcounted against the member mask and cleared
    /// in one pass, so a selected cluster is deleted in
    /// O(|members|·words) regardless of how large the network is.
    pub fn remove_within(&mut self, members: &[usize]) -> usize {
        let mask = self.member_word_mask(members);
        let mut removed = 0;
        for i in mask_rows(&mask, self.n) {
            let row = &mut self.bits[i * self.words_per_row..(i + 1) * self.words_per_row];
            for (w, m) in row.iter_mut().zip(&mask) {
                removed += (*w & m).count_ones() as usize;
                *w &= !m;
            }
        }
        removed
    }

    /// Dense `{0,1}` matrix view (used by the spectral embedding).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.n, self.n);
        for (i, j) in self.iter() {
            m[(i, j)] = 1.0;
        }
        m
    }

    /// Builds from a dense matrix, treating entries with `|v| > tol` as
    /// connections.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyRequest`] for an empty matrix and
    /// [`NetError::PatternDimensionMismatch`] for a non-square one.
    pub fn from_dense(m: &DenseMatrix, tol: f64) -> Result<Self, NetError> {
        if m.nrows() == 0 {
            return Err(NetError::EmptyRequest {
                what: "connection matrix",
            });
        }
        if m.nrows() != m.ncols() {
            return Err(NetError::PatternDimensionMismatch {
                expected: m.nrows(),
                found: m.ncols(),
            });
        }
        let mut out = Self::empty(m.nrows())?;
        for i in 0..m.nrows() {
            for j in 0..m.ncols() {
                if m[(i, j)].abs() > tol {
                    out.connect(i, j)?;
                }
            }
        }
        Ok(out)
    }

    /// The union of two networks of the same size.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PatternDimensionMismatch`] if sizes differ.
    pub fn union(&self, other: &ConnectionMatrix) -> Result<ConnectionMatrix, NetError> {
        if self.n != other.n {
            return Err(NetError::PatternDimensionMismatch {
                expected: self.n,
                found: other.n,
            });
        }
        let mut out = self.clone();
        for (a, b) in out.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
        Ok(out)
    }

    /// Connections present in `self` but not in `other` (set difference).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PatternDimensionMismatch`] if sizes differ.
    pub fn difference(&self, other: &ConnectionMatrix) -> Result<ConnectionMatrix, NetError> {
        if self.n != other.n {
            return Err(NetError::PatternDimensionMismatch {
                expected: self.n,
                found: other.n,
            });
        }
        let mut out = self.clone();
        for (a, b) in out.bits.iter_mut().zip(&other.bits) {
            *a &= !b;
        }
        Ok(out)
    }
}

impl fmt::Display for ConnectionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ConnectionMatrix({} neurons, {} connections, sparsity {:.2}%)",
            self.n,
            self.connections(),
            self.sparsity() * 100.0
        )
    }
}

/// Iterator over the set-bit positions (`< n`) of a word-packed mask.
fn mask_rows(mask: &[u64], n: usize) -> impl Iterator<Item = usize> + '_ {
    mask.iter()
        .enumerate()
        .flat_map(|(wi, &w)| BitIter {
            word: w,
            base: wi * 64,
        })
        .take_while(move |&b| b < n)
}

/// Iterator over set-bit positions of a single word.
struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_connections() {
        let m = ConnectionMatrix::empty(5).unwrap();
        assert_eq!(m.connections(), 0);
        assert_eq!(m.sparsity(), 1.0);
        assert!(ConnectionMatrix::empty(0).is_err());
    }

    #[test]
    fn connect_disconnect_roundtrip() {
        let mut m = ConnectionMatrix::empty(100).unwrap();
        m.connect(3, 77).unwrap();
        assert!(m.is_connected(3, 77));
        assert!(!m.is_connected(77, 3));
        m.disconnect(3, 77).unwrap();
        assert!(!m.is_connected(3, 77));
        assert!(m.connect(100, 0).is_err());
        assert!(m.disconnect(0, 100).is_err());
    }

    #[test]
    fn bit_packing_across_word_boundaries() {
        let mut m = ConnectionMatrix::empty(130).unwrap();
        for j in [0, 63, 64, 65, 127, 128, 129] {
            m.connect(1, j).unwrap();
        }
        let targets: Vec<usize> = m.fanout_of(1).collect();
        assert_eq!(targets, vec![0, 63, 64, 65, 127, 128, 129]);
        assert_eq!(m.fanout(1), 7);
    }

    #[test]
    fn fanin_fanout_counts() {
        let m = ConnectionMatrix::from_pairs(4, [(0, 1), (0, 2), (2, 1), (3, 0)]).unwrap();
        assert_eq!(m.fanout(0), 2);
        assert_eq!(m.fanin(1), 2);
        assert_eq!(m.fanin_fanout(0), 3); // fanin 1 (from 3), fanout 2
        assert_eq!(m.fanin_fanout(1), 2);
    }

    #[test]
    fn row_neighbors_matches_fanout() {
        let m = ConnectionMatrix::from_pairs(70, [(2, 1), (2, 65), (2, 2)]).unwrap();
        let got: Vec<usize> = m.row_neighbors(2).collect();
        assert_eq!(got, vec![1, 2, 65]);
        assert_eq!(m.row_neighbors(0).count(), 0);
    }

    #[test]
    fn iteration_yields_all_pairs() {
        let pairs = [(0, 1), (1, 0), (2, 2)];
        let m = ConnectionMatrix::from_pairs(3, pairs).unwrap();
        let got: Vec<(usize, usize)> = m.iter().collect();
        assert_eq!(got, vec![(0, 1), (1, 0), (2, 2)]);
    }

    #[test]
    fn symmetrize_and_check() {
        let m = ConnectionMatrix::from_pairs(3, [(0, 1)]).unwrap();
        assert!(!m.is_symmetric());
        let s = m.symmetrized();
        assert!(s.is_symmetric());
        assert_eq!(s.connections(), 2);
        assert_eq!(s.degrees(), vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn within_cluster_counting_and_removal() {
        let mut m =
            ConnectionMatrix::from_pairs(5, [(0, 1), (1, 0), (0, 4), (2, 3), (3, 2)]).unwrap();
        assert_eq!(m.connections_within(&[0, 1]), 2);
        assert_eq!(m.connections_within(&[0, 1, 4]), 3);
        assert_eq!(m.connections_within(&[4]), 0);
        let removed = m.remove_within(&[0, 1]);
        assert_eq!(removed, 2);
        assert_eq!(m.connections(), 3);
        assert!(m.is_connected(0, 4), "cross-cluster connection survives");
    }

    #[test]
    fn dense_roundtrip() {
        let m = ConnectionMatrix::from_pairs(3, [(0, 2), (1, 1)]).unwrap();
        let d = m.to_dense();
        assert_eq!(d[(0, 2)], 1.0);
        assert_eq!(d[(0, 0)], 0.0);
        let back = ConnectionMatrix::from_dense(&d, 0.5).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn union_and_difference() {
        let a = ConnectionMatrix::from_pairs(3, [(0, 1), (1, 2)]).unwrap();
        let b = ConnectionMatrix::from_pairs(3, [(1, 2), (2, 0)]).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.connections(), 3);
        let d = a.difference(&b).unwrap();
        assert_eq!(d.connections(), 1);
        assert!(d.is_connected(0, 1));
        let c = ConnectionMatrix::empty(4).unwrap();
        assert!(a.union(&c).is_err());
        assert!(a.difference(&c).is_err());
    }

    /// Seeded pseudo-random matrix without going through `generators`
    /// (keeps these unit tests independent of generator semantics).
    fn lcg_matrix(n: usize, seed: u64, keep_mod: u64) -> ConnectionMatrix {
        let mut m = ConnectionMatrix::empty(n).unwrap();
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for i in 0..n {
            for j in 0..n {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state.is_multiple_of(keep_mod) {
                    m.connect(i, j).unwrap();
                }
            }
        }
        m
    }

    #[test]
    fn bulk_degree_kernels_match_naive_bit_probes() {
        for n in [5, 63, 64, 65, 130] {
            let m = lcg_matrix(n, n as u64, 7);
            let naive_out: Vec<usize> = (0..n).map(|i| m.fanout(i)).collect();
            assert_eq!(m.out_degrees(), naive_out, "out_degrees at n={n}");
            let naive_in: Vec<usize> = (0..n)
                .map(|j| (0..n).filter(|&i| m.is_connected(i, j)).count())
                .collect();
            assert_eq!(m.fanins(), naive_in, "fanins at n={n}");
            let mut buf = vec![usize::MAX; 3];
            for i in 0..n {
                m.row_neighbors_into(i, &mut buf);
                let naive: Vec<usize> = m.fanout_of(i).collect();
                assert_eq!(buf, naive, "row_neighbors_into at n={n} row={i}");
            }
        }
    }

    #[test]
    fn word_level_within_kernels_match_naive_scan() {
        for (n, members) in [
            (65, vec![0, 1, 63, 64]),
            (130, vec![5, 5, 128, 129, 7]),
            (40, vec![]),
            (40, (0..40).collect::<Vec<_>>()),
        ] {
            let m = lcg_matrix(n, 99, 5);
            // Naive reference: bool mask plus a full-matrix scan, exactly
            // the pre-word-level implementation.
            let mut mask = vec![false; n];
            for &mm in &members {
                if mm < n {
                    mask[mm] = true;
                }
            }
            let naive_count = m.iter().filter(|&(i, j)| mask[i] && mask[j]).count();
            assert_eq!(
                m.connections_within(&members),
                naive_count,
                "connections_within n={n}"
            );
            let mut naive_removed = m.clone();
            let doomed: Vec<(usize, usize)> =
                m.iter().filter(|&(i, j)| mask[i] && mask[j]).collect();
            for &(i, j) in &doomed {
                naive_removed.set(i, j, false);
            }
            let mut fast_removed = m.clone();
            let removed = fast_removed.remove_within(&members);
            assert_eq!(removed, doomed.len(), "removal count n={n}");
            assert_eq!(fast_removed, naive_removed, "post-removal bits n={n}");
        }
    }

    #[test]
    fn sparsity_definition_uses_n_squared() {
        let mut m = ConnectionMatrix::empty(10).unwrap();
        for j in 0..10 {
            m.connect(0, j).unwrap();
        }
        assert!((m.sparsity() - 0.9).abs() < 1e-12);
        assert!((m.density() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_sparsity() {
        let m = ConnectionMatrix::empty(4).unwrap();
        assert!(m.to_string().contains("sparsity"));
    }
}
