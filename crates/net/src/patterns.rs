use ncs_rng::Rng;

use crate::NetError;

/// A set of bipolar (`±1`) patterns of a fixed dimension.
///
/// The paper's testbenches store "random quick response code patterns" —
/// random black/white module grids — in Hopfield networks. A QR code
/// rasterizes to an (approximately) i.i.d. binary vector, which is what
/// [`PatternSet::random_qr`] generates from a seeded RNG so experiments are
/// reproducible.
///
/// # Examples
///
/// ```
/// use ncs_net::PatternSet;
///
/// # fn main() -> Result<(), ncs_net::NetError> {
/// let set = PatternSet::random_qr(15, 300, 7)?;
/// assert_eq!(set.len(), 15);
/// assert_eq!(set.dimension(), 300);
/// assert!(set.pattern(0).iter().all(|&v| v == 1.0 || v == -1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PatternSet {
    dimension: usize,
    patterns: Vec<Vec<f64>>,
}

impl PatternSet {
    /// Generates `count` random QR-code-like bipolar patterns of dimension
    /// `dimension` from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyRequest`] if `count == 0` or
    /// `dimension == 0`.
    pub fn random_qr(count: usize, dimension: usize, seed: u64) -> Result<Self, NetError> {
        if count == 0 || dimension == 0 {
            return Err(NetError::EmptyRequest {
                what: "pattern set",
            });
        }
        let mut rng = Rng::seed_from_u64(seed);
        let patterns = (0..count)
            .map(|_| {
                (0..dimension)
                    .map(|_| if rng.gen_bool() { 1.0 } else { -1.0 })
                    .collect()
            })
            .collect();
        Ok(PatternSet {
            dimension,
            patterns,
        })
    }

    /// Builds a pattern set from explicit bipolar vectors.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::EmptyRequest`] for an empty input and
    /// [`NetError::PatternDimensionMismatch`] for ragged patterns.
    pub fn from_vecs(patterns: Vec<Vec<f64>>) -> Result<Self, NetError> {
        if patterns.is_empty() || patterns[0].is_empty() {
            return Err(NetError::EmptyRequest {
                what: "pattern set",
            });
        }
        let dimension = patterns[0].len();
        for p in &patterns {
            if p.len() != dimension {
                return Err(NetError::PatternDimensionMismatch {
                    expected: dimension,
                    found: p.len(),
                });
            }
        }
        Ok(PatternSet {
            dimension,
            patterns,
        })
    }

    /// Number of patterns `M`.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the set holds no patterns (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Pattern dimension `N`.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Borrow of the `idx`-th pattern.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn pattern(&self, idx: usize) -> &[f64] {
        &self.patterns[idx]
    }

    /// Iterator over all patterns.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        self.patterns.iter().map(|p| p.as_slice())
    }

    /// Copy of `pattern(idx)` with a fraction `flip_fraction` of entries
    /// sign-flipped at uniformly random positions (without replacement).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidFraction`] if `flip_fraction` lies outside
    /// `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    pub fn noisy_pattern(
        &self,
        idx: usize,
        flip_fraction: f64,
        seed: u64,
    ) -> Result<Vec<f64>, NetError> {
        if !(0.0..=1.0).contains(&flip_fraction) {
            return Err(NetError::InvalidFraction {
                what: "flip fraction",
                value: flip_fraction,
            });
        }
        let mut out = self.patterns[idx].clone();
        let flips = (flip_fraction * self.dimension as f64).round() as usize;
        let mut rng = Rng::seed_from_u64(seed);
        // Partial Fisher-Yates: choose `flips` distinct positions.
        let mut positions: Vec<usize> = (0..self.dimension).collect();
        for k in 0..flips.min(self.dimension) {
            let j = rng.gen_range(k..self.dimension);
            positions.swap(k, j);
            out[positions[k]] = -out[positions[k]];
        }
        Ok(out)
    }

    /// Normalized overlap `⟨a, b⟩ / N` between two bipolar states — 1.0 for
    /// identical, -1.0 for inverted.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn overlap(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "overlap length mismatch");
        a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>() / a.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = PatternSet::random_qr(3, 50, 1).unwrap();
        let b = PatternSet::random_qr(3, 50, 1).unwrap();
        let c = PatternSet::random_qr(3, 50, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn patterns_are_bipolar_and_roughly_balanced() {
        let s = PatternSet::random_qr(4, 1000, 99).unwrap();
        for p in s.iter() {
            assert!(p.iter().all(|&v| v == 1.0 || v == -1.0));
            let mean: f64 = p.iter().sum::<f64>() / p.len() as f64;
            assert!(mean.abs() < 0.15, "mean {mean} too far from 0");
        }
    }

    #[test]
    fn rejects_empty_requests() {
        assert!(PatternSet::random_qr(0, 10, 0).is_err());
        assert!(PatternSet::random_qr(10, 0, 0).is_err());
        assert!(PatternSet::from_vecs(vec![]).is_err());
    }

    #[test]
    fn from_vecs_rejects_ragged() {
        let err = PatternSet::from_vecs(vec![vec![1.0, -1.0], vec![1.0]]).unwrap_err();
        assert_eq!(
            err,
            NetError::PatternDimensionMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn noise_flips_exactly_the_requested_fraction() {
        let s = PatternSet::random_qr(1, 200, 5).unwrap();
        let noisy = s.noisy_pattern(0, 0.1, 77).unwrap();
        let differing = s
            .pattern(0)
            .iter()
            .zip(&noisy)
            .filter(|(a, b)| *a != *b)
            .count();
        assert_eq!(differing, 20);
        assert!(s.noisy_pattern(0, 1.5, 0).is_err());
    }

    #[test]
    fn zero_noise_is_identity() {
        let s = PatternSet::random_qr(1, 64, 3).unwrap();
        assert_eq!(s.noisy_pattern(0, 0.0, 0).unwrap(), s.pattern(0));
    }

    #[test]
    fn overlap_extremes() {
        let a = vec![1.0, 1.0, -1.0, -1.0];
        let inv: Vec<f64> = a.iter().map(|v| -v).collect();
        assert_eq!(PatternSet::overlap(&a, &a), 1.0);
        assert_eq!(PatternSet::overlap(&a, &inv), -1.0);
    }
}
